#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace photherm {
namespace {

TEST(Stats, MeanMinMaxSpread) {
  const std::vector<double> v{1.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 5.0);
  EXPECT_DOUBLE_EQ(spread(v), 4.0);
}

TEST(Stats, SingleElement) {
  const std::vector<double> v{2.5};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(spread(v), 0.0);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW(mean(v), Error);
  EXPECT_THROW(min_value(v), Error);
  EXPECT_THROW(max_value(v), Error);
  EXPECT_THROW(spread(v), Error);
}

TEST(Stats, StdDev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
  const std::vector<double> one{1.0};
  EXPECT_THROW(stddev(one), Error);
}

TEST(Stats, WeightedMean) {
  const std::vector<double> v{10.0, 20.0};
  const std::vector<double> w{1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), 17.5);
}

TEST(Stats, WeightedMeanRejectsBadWeights) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(weighted_mean(v, std::vector<double>{1.0}), Error);
  EXPECT_THROW(weighted_mean(v, std::vector<double>{-1.0, 2.0}), Error);
  EXPECT_THROW(weighted_mean(v, std::vector<double>{0.0, 0.0}), Error);
}

}  // namespace
}  // namespace photherm
