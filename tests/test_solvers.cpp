#include "math/solvers.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace photherm::math {
namespace {

/// 1-D Laplacian (SPD) of size n with Dirichlet-like ends.
CsrMatrix laplacian(std::size_t n) {
  CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0);
    if (i > 0) {
      builder.add(i, i - 1, -1.0);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
    }
  }
  return builder.build();
}

/// A diagonally dominant non-symmetric matrix.
CsrMatrix nonsymmetric(std::size_t n) {
  CsrBuilder builder(n, n);
  Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0 + rng.uniform(0.0, 1.0));
    if (i > 0) {
      builder.add(i, i - 1, -1.2);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -0.7);
    }
  }
  return builder.build();
}

class PreconditionerSweep : public ::testing::TestWithParam<PreconditionerKind> {};

TEST_P(PreconditionerSweep, CgSolvesLaplacian) {
  const std::size_t n = 200;
  const CsrMatrix a = laplacian(n);
  Vector x_true(n);
  Rng rng(7);
  for (double& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const Vector b = a.multiply(x_true);

  Vector x;
  SolverOptions options;
  options.preconditioner = GetParam();
  const SolverResult result = conjugate_gradient(a, b, x, options);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-6);
  }
}

TEST_P(PreconditionerSweep, BicgstabSolvesNonsymmetric) {
  const std::size_t n = 150;
  const CsrMatrix a = nonsymmetric(n);
  Vector x_true(n, 1.0);
  const Vector b = a.multiply(x_true);

  Vector x;
  SolverOptions options;
  options.preconditioner = GetParam();
  const SolverResult result = bicgstab(a, b, x, options);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, PreconditionerSweep,
                         ::testing::Values(PreconditionerKind::kIdentity,
                                           PreconditionerKind::kJacobi,
                                           PreconditionerKind::kSsor,
                                           PreconditionerKind::kIlu0,
                                           PreconditionerKind::kChebyshev),
                         [](const auto& info) {
                           switch (info.param) {
                             case PreconditionerKind::kIdentity:
                               return "Identity";
                             case PreconditionerKind::kJacobi:
                               return "Jacobi";
                             case PreconditionerKind::kSsor:
                               return "Ssor";
                             case PreconditionerKind::kIlu0:
                               return "Ilu0";
                             case PreconditionerKind::kChebyshev:
                               return "Chebyshev";
                           }
                           return "Unknown";
                         });

TEST(Solvers, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplacian(10);
  Vector x;
  const SolverResult result = conjugate_gradient(a, Vector(10, 0.0), x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (double v : x) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Solvers, GaussSeidelAgreesWithCg) {
  const std::size_t n = 60;
  const CsrMatrix a = laplacian(n);
  Vector b(n, 1.0);
  Vector x_cg, x_gs;
  conjugate_gradient(a, b, x_cg);
  SolverOptions options;
  options.rel_tolerance = 1e-10;
  options.max_iterations = 500000;
  gauss_seidel(a, b, x_gs, options);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_gs[i], x_cg[i], 1e-5);
  }
}

TEST(Solvers, CgRejectsIndefiniteMatrix) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  const CsrMatrix a = builder.build();
  Vector x;
  EXPECT_THROW(conjugate_gradient(a, {1.0, 1.0}, x), Error);
}

TEST(Solvers, FailureThrowsWhenRequested) {
  const CsrMatrix a = laplacian(50);
  Vector x;
  SolverOptions options;
  options.max_iterations = 1;
  options.rel_tolerance = 1e-14;
  // ILU(0) on a tridiagonal matrix is an exact factorisation and converges
  // in one step; use Jacobi so a single iteration genuinely falls short.
  options.preconditioner = PreconditionerKind::kJacobi;
  EXPECT_THROW(conjugate_gradient(a, Vector(50, 1.0), x, options), SolverError);
  options.throw_on_failure = false;
  x.clear();
  const SolverResult result = conjugate_gradient(a, Vector(50, 1.0), x, options);
  EXPECT_FALSE(result.converged);
}

TEST(Solvers, WarmStartReducesIterations) {
  const std::size_t n = 300;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);
  Vector cold;
  const auto cold_result = conjugate_gradient(a, b, cold);
  Vector warm = cold;  // exact solution as initial guess
  const auto warm_result = conjugate_gradient(a, b, warm);
  EXPECT_LT(warm_result.iterations, cold_result.iterations);
}

// --- Regression tests for the convergence-reporting bugfixes. ---------------

/// Find an (iteration budget, tolerance) pair for which the solver runs its
/// full budget (no early inner-loop exit) and lands with a true residual
/// strictly between `tol` and `10 * tol`. Probes the deterministic residual
/// trajectory, then verifies each candidate by re-running with the
/// candidate tolerance. Returns (budget, tolerance); budget == 0 if no such
/// pair exists.
template <typename Solver>
std::pair<std::size_t, double> find_mid_window_budget(Solver&& solve, SolverOptions options) {
  options.throw_on_failure = false;
  for (std::size_t budget = 1; budget <= 120; ++budget) {
    options.max_iterations = budget;
    options.rel_tolerance = 1e-14;
    Vector probe_x;
    const double res = solve(probe_x, options).relative_residual;
    if (res <= 1e-10) {
      continue;  // too close to the rounding floor to split into a window
    }
    const double tol = res / 2.0;
    options.rel_tolerance = tol;
    Vector x;
    const SolverResult mid = solve(x, options);
    if (mid.iterations == budget && mid.relative_residual > tol &&
        mid.relative_residual < 10.0 * tol) {
      return {budget, tol};
    }
  }
  return {0, 0.0};
}

/// `converged` must be judged against the tolerance the caller requested,
/// not a silent 10x loosening: a residual landing strictly between `tol`
/// and `10 * tol` is NOT converged.
TEST(Solvers, ResidualBetweenTolAndTenTolIsNotConverged) {
  const std::size_t n = 100;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);

  SolverOptions options;
  options.preconditioner = PreconditionerKind::kJacobi;
  const auto solve = [&](Vector& x, const SolverOptions& opts) {
    return conjugate_gradient(a, b, x, opts);
  };
  const auto [budget, tolerance] = find_mid_window_budget(solve, options);
  ASSERT_GT(budget, 0u) << "no suitable trajectory point found";

  // Stop at that budget with a tolerance the run misses by less than 10x:
  // the result lands between tol and 10 * tol. The old code declared this
  // converged.
  options.max_iterations = budget;
  options.rel_tolerance = tolerance;
  options.throw_on_failure = false;
  Vector x;
  const SolverResult mid = conjugate_gradient(a, b, x, options);
  ASSERT_GT(mid.relative_residual, options.rel_tolerance);
  ASSERT_LT(mid.relative_residual, 10.0 * options.rel_tolerance);
  EXPECT_FALSE(mid.converged);

  // And with throw_on_failure it must actually throw.
  options.throw_on_failure = true;
  x.clear();
  EXPECT_THROW(conjugate_gradient(a, b, x, options), SolverError);

  // Callers that want the old acceptance window must now ask for it.
  options.throw_on_failure = false;
  options.convergence_slack = 10.0;
  x.clear();
  EXPECT_TRUE(conjugate_gradient(a, b, x, options).converged);
}

TEST(Solvers, BicgstabAlsoReportsAgainstRequestedTolerance) {
  const std::size_t n = 80;
  const CsrMatrix a = nonsymmetric(n);
  const Vector b(n, 1.0);
  SolverOptions options;
  options.preconditioner = PreconditionerKind::kJacobi;
  const auto solve = [&](Vector& x, const SolverOptions& opts) {
    return bicgstab(a, b, x, opts);
  };
  const auto [budget, tolerance] = find_mid_window_budget(solve, options);
  ASSERT_GT(budget, 0u) << "no suitable trajectory point found";

  options.max_iterations = budget;
  options.rel_tolerance = tolerance;
  options.throw_on_failure = false;
  Vector x;
  const SolverResult mid = bicgstab(a, b, x, options);
  ASSERT_GT(mid.relative_residual, options.rel_tolerance);
  ASSERT_LT(mid.relative_residual, 10.0 * options.rel_tolerance);
  EXPECT_FALSE(mid.converged);
}

/// A stale vector of the wrong size must not leak into the initial guess:
/// the solve must match a cold (zero-guess) start bit for bit.
TEST(Solvers, WrongSizedWarmStartIsResetToZero) {
  const std::size_t n = 120;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);

  Vector cold;
  const SolverResult cold_result = conjugate_gradient(a, b, cold);

  Vector stale(n + 37, 1e30);  // wrong size, garbage values
  const SolverResult stale_result = conjugate_gradient(a, b, stale);
  EXPECT_EQ(stale_result.iterations, cold_result.iterations);
  ASSERT_EQ(stale.size(), n);
  EXPECT_EQ(stale, cold);

  Vector undersized(3, 1e30);
  const SolverResult undersized_result = conjugate_gradient(a, b, undersized);
  EXPECT_EQ(undersized_result.iterations, cold_result.iterations);
  EXPECT_EQ(undersized, cold);

  // Same contract for BiCGSTAB and Gauss-Seidel.
  Vector gs_cold, gs_stale(n + 5, -1e12);
  SolverOptions gs_options;
  gs_options.rel_tolerance = 1e-8;
  gs_options.max_iterations = 500000;
  gauss_seidel(a, b, gs_cold, gs_options);
  gauss_seidel(a, b, gs_stale, gs_options);
  EXPECT_EQ(gs_stale, gs_cold);

  Vector bi_cold, bi_stale(n + 11, 7e22);
  const CsrMatrix an = nonsymmetric(n);
  bicgstab(an, b, bi_cold);
  bicgstab(an, b, bi_stale);
  EXPECT_EQ(bi_stale, bi_cold);
}

/// A correctly sized vector IS the initial guess (documented warm-start
/// contract): starting at the exact solution must converge immediately.
TEST(Solvers, CorrectlySizedVectorIsUsedAsGuess) {
  const std::size_t n = 150;
  const CsrMatrix a = laplacian(n);
  Vector x_true(n);
  Rng rng(11);
  for (double& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const Vector b = a.multiply(x_true);
  Vector x = x_true;
  const SolverResult result = conjugate_gradient(a, b, x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

/// Gauss-Seidel used to check the true residual only every 10th sweep, so
/// it could run up to 9 sweeps past convergence and report the inflated
/// count. The reported count must now be minimal: re-running with exactly
/// that budget converges, with a couple fewer sweeps it does not.
TEST(Solvers, GaussSeidelReportsMinimalIterationCount) {
  const std::size_t n = 40;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);
  SolverOptions options;
  options.rel_tolerance = 1e-8;
  options.max_iterations = 500000;
  Vector x;
  const SolverResult result = gauss_seidel(a, b, x, options);
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.iterations, 20u);  // slow enough to be meaningful
  EXPECT_LE(result.iterations, options.max_iterations);

  // Exactly the reported budget: converges.
  options.max_iterations = result.iterations;
  Vector x_exact;
  EXPECT_TRUE(gauss_seidel(a, b, x_exact, options).converged);

  // Two sweeps fewer: must fall short (GS on the Laplacian converges
  // slowly, so the residual cannot jump below tol two sweeps early).
  options.max_iterations = result.iterations - 2;
  options.throw_on_failure = false;
  Vector x_short;
  EXPECT_FALSE(gauss_seidel(a, b, x_short, options).converged);
}

/// The sweep budget is respected exactly and the reported count is clamped
/// to it, even when `max_iterations` is not a multiple of the periodic
/// residual-check interval.
TEST(Solvers, GaussSeidelRespectsMaxIterationsBudget) {
  const std::size_t n = 60;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);
  SolverOptions options;
  options.rel_tolerance = 1e-12;
  options.max_iterations = 17;  // not a multiple of 10
  options.throw_on_failure = false;
  Vector x;
  const SolverResult result = gauss_seidel(a, b, x, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 17u);
}

// --- Preconditioner hazard regressions. -------------------------------------

/// Diagonal matrix with one bad (zero or negative) entry.
CsrMatrix diagonal_matrix(std::size_t n, std::size_t bad_row, double bad_value) {
  CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, i == bad_row ? bad_value : 2.0);
  }
  return builder.build();
}

/// The guard must fire at construction and name the offending row — a zero
/// diagonal otherwise divides to inf and surfaces much later as a cryptic
/// CG non-convergence.
TEST(Solvers, ConvergenceHistoryIsOffByDefaultAndDeterministic) {
  const std::size_t n = 200;
  const CsrMatrix a = laplacian(n);
  Vector x_true(n);
  Rng rng(7);
  for (double& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const Vector b = a.multiply(x_true);

  // Off by default: no history, no allocation.
  Vector x_plain;
  SolverOptions plain;
  const SolverResult without = conjugate_gradient(a, b, x_plain, plain);
  EXPECT_TRUE(without.convergence.empty());

  // Recording captures exactly the per-iteration stopping check: one entry
  // per iteration entered, monotone start, final entry at or under the
  // tolerance, and the solution bit-identical to the unrecorded solve.
  Vector x1;
  SolverOptions record;
  record.record_convergence = true;
  record.threads = 1;
  const SolverResult serial = conjugate_gradient(a, b, x1, record);
  ASSERT_TRUE(serial.converged);
  ASSERT_FALSE(serial.convergence.empty());
  EXPECT_EQ(serial.convergence.size(), serial.iterations + 1);
  EXPECT_DOUBLE_EQ(serial.convergence.front(), 1.0);  // r0 = b with x0 = 0
  EXPECT_LE(serial.convergence.back(), record.rel_tolerance);
  for (std::size_t i = 0; i < x_plain.size(); ++i) {
    ASSERT_EQ(x_plain[i], x1[i]) << i;
  }

  // The history is part of the determinism contract: 1 vs 4 threads must
  // produce bit-identical residual sequences.
  Vector x4;
  record.threads = 4;
  const SolverResult threaded = conjugate_gradient(a, b, x4, record);
  ASSERT_EQ(serial.convergence.size(), threaded.convergence.size());
  for (std::size_t i = 0; i < serial.convergence.size(); ++i) {
    ASSERT_EQ(serial.convergence[i], threaded.convergence[i]) << "iteration " << i;
  }
}

TEST(Solvers, BicgstabRecordsConvergenceToo) {
  const std::size_t n = 120;
  const CsrMatrix a = nonsymmetric(n);
  const Vector b(n, 1.0);
  Vector x;
  SolverOptions options;
  options.record_convergence = true;
  // Unpreconditioned so the solve takes several iterations (with ILU(0)
  // this system converges via the mid-iteration s-norm exit on the first
  // pass, leaving only the iteration-0 entry).
  options.preconditioner = PreconditionerKind::kIdentity;
  const SolverResult result = bicgstab(a, b, x, options);
  ASSERT_TRUE(result.converged);
  ASSERT_GE(result.convergence.size(), 2u);
  EXPECT_DOUBLE_EQ(result.convergence.front(), 1.0);
  EXPECT_GT(result.convergence.front(), result.convergence.back());
}

TEST(PreconditionerGuards, JacobiNamesNonPositiveDiagonalRow) {
  const CsrMatrix a = diagonal_matrix(6, 3, 0.0);
  try {
    JacobiPreconditioner precond(a);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW(JacobiPreconditioner(diagonal_matrix(6, 2, -1.5)), Error);
}

TEST(PreconditionerGuards, Ilu0NamesNonPositiveDiagonalRow) {
  try {
    Ilu0Preconditioner precond(diagonal_matrix(8, 5, -0.25));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("row 5"), std::string::npos) << e.what();
  }
}

TEST(PreconditionerGuards, SsorNamesNonPositiveDiagonalRow) {
  try {
    SsorPreconditioner precond(diagonal_matrix(4, 1, 0.0));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos) << e.what();
  }
}

TEST(PreconditionerGuards, ChebyshevNamesNonPositiveDiagonalRow) {
  try {
    ChebyshevPreconditioner precond(diagonal_matrix(7, 4, 0.0));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("row 4"), std::string::npos) << e.what();
  }
}

/// Regression for the stale-matrix hazard: SSOR used to keep a raw pointer
/// into the caller's CsrMatrix, so rebuilding (or destroying) A between
/// applies made apply() read freed or rewritten storage. It now owns a
/// copy: the apply result must stay bit-identical no matter what happens
/// to A after construction.
TEST(PreconditionerGuards, SsorSurvivesMatrixRebuild) {
  const std::size_t n = 50;
  const Vector r(n, 1.0);
  auto a = std::make_unique<CsrMatrix>(laplacian(n));
  const SsorPreconditioner precond(*a);
  Vector z_before;
  precond.apply(r, z_before);

  *a = nonsymmetric(n);  // reassemble in place
  Vector z_after_rebuild;
  precond.apply(r, z_after_rebuild);
  EXPECT_EQ(z_before, z_after_rebuild);

  a.reset();  // destroy A outright
  Vector z_after_free;
  precond.apply(r, z_after_free);
  EXPECT_EQ(z_before, z_after_free);
}

/// Same ownership contract for Chebyshev (it clones the operator).
TEST(PreconditionerGuards, ChebyshevSurvivesMatrixRebuild) {
  const std::size_t n = 50;
  const Vector r(n, 1.0);
  auto a = std::make_unique<CsrMatrix>(laplacian(n));
  const ChebyshevPreconditioner precond(*a);
  Vector z_before;
  precond.apply(r, z_before);
  a.reset();
  Vector z_after;
  precond.apply(r, z_after);
  EXPECT_EQ(z_before, z_after);
}

/// The caller-owned-preconditioner overload must run the exact same
/// iteration as the kind-based one — bit-identical solution and equal
/// iteration count — so callers can cache M across solves without changing
/// results.
TEST(Solvers, CachedPreconditionerOverloadMatchesKindBased) {
  const std::size_t n = 200;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);

  SolverOptions options;
  options.preconditioner = PreconditionerKind::kIlu0;
  Vector x_kind;
  const SolverResult by_kind = conjugate_gradient(a, b, x_kind, options);

  const Ilu0Preconditioner cached(a);
  Vector x_cached;
  const SolverResult by_cached = conjugate_gradient(a, b, x_cached, cached, options);

  EXPECT_EQ(by_kind.iterations, by_cached.iterations);
  EXPECT_EQ(x_kind, x_cached);
}

TEST(Solvers, PreconditionerKindRoundTripsThroughStrings) {
  for (PreconditionerKind kind :
       {PreconditionerKind::kIdentity, PreconditionerKind::kJacobi, PreconditionerKind::kSsor,
        PreconditionerKind::kIlu0, PreconditionerKind::kChebyshev}) {
    EXPECT_EQ(preconditioner_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(preconditioner_kind_from_string("multigrid"), Error);
}

}  // namespace
}  // namespace photherm::math
