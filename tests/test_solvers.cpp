#include "math/solvers.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace photherm::math {
namespace {

/// 1-D Laplacian (SPD) of size n with Dirichlet-like ends.
CsrMatrix laplacian(std::size_t n) {
  CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 2.0);
    if (i > 0) {
      builder.add(i, i - 1, -1.0);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
    }
  }
  return builder.build();
}

/// A diagonally dominant non-symmetric matrix.
CsrMatrix nonsymmetric(std::size_t n) {
  CsrBuilder builder(n, n);
  Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0 + rng.uniform(0.0, 1.0));
    if (i > 0) {
      builder.add(i, i - 1, -1.2);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -0.7);
    }
  }
  return builder.build();
}

class PreconditionerSweep : public ::testing::TestWithParam<PreconditionerKind> {};

TEST_P(PreconditionerSweep, CgSolvesLaplacian) {
  const std::size_t n = 200;
  const CsrMatrix a = laplacian(n);
  Vector x_true(n);
  Rng rng(7);
  for (double& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const Vector b = a.multiply(x_true);

  Vector x;
  SolverOptions options;
  options.preconditioner = GetParam();
  const SolverResult result = conjugate_gradient(a, b, x, options);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-6);
  }
}

TEST_P(PreconditionerSweep, BicgstabSolvesNonsymmetric) {
  const std::size_t n = 150;
  const CsrMatrix a = nonsymmetric(n);
  Vector x_true(n, 1.0);
  const Vector b = a.multiply(x_true);

  Vector x;
  SolverOptions options;
  options.preconditioner = GetParam();
  const SolverResult result = bicgstab(a, b, x, options);
  EXPECT_TRUE(result.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, PreconditionerSweep,
                         ::testing::Values(PreconditionerKind::kIdentity,
                                           PreconditionerKind::kJacobi,
                                           PreconditionerKind::kSsor,
                                           PreconditionerKind::kIlu0),
                         [](const auto& info) {
                           switch (info.param) {
                             case PreconditionerKind::kIdentity:
                               return "Identity";
                             case PreconditionerKind::kJacobi:
                               return "Jacobi";
                             case PreconditionerKind::kSsor:
                               return "Ssor";
                             case PreconditionerKind::kIlu0:
                               return "Ilu0";
                           }
                           return "Unknown";
                         });

TEST(Solvers, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplacian(10);
  Vector x;
  const SolverResult result = conjugate_gradient(a, Vector(10, 0.0), x);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
  for (double v : x) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Solvers, GaussSeidelAgreesWithCg) {
  const std::size_t n = 60;
  const CsrMatrix a = laplacian(n);
  Vector b(n, 1.0);
  Vector x_cg, x_gs;
  conjugate_gradient(a, b, x_cg);
  SolverOptions options;
  options.rel_tolerance = 1e-10;
  options.max_iterations = 500000;
  gauss_seidel(a, b, x_gs, options);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_gs[i], x_cg[i], 1e-5);
  }
}

TEST(Solvers, CgRejectsIndefiniteMatrix) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -1.0);
  const CsrMatrix a = builder.build();
  Vector x;
  EXPECT_THROW(conjugate_gradient(a, {1.0, 1.0}, x), Error);
}

TEST(Solvers, FailureThrowsWhenRequested) {
  const CsrMatrix a = laplacian(50);
  Vector x;
  SolverOptions options;
  options.max_iterations = 1;
  options.rel_tolerance = 1e-14;
  // ILU(0) on a tridiagonal matrix is an exact factorisation and converges
  // in one step; use Jacobi so a single iteration genuinely falls short.
  options.preconditioner = PreconditionerKind::kJacobi;
  EXPECT_THROW(conjugate_gradient(a, Vector(50, 1.0), x, options), SolverError);
  options.throw_on_failure = false;
  x.clear();
  const SolverResult result = conjugate_gradient(a, Vector(50, 1.0), x, options);
  EXPECT_FALSE(result.converged);
}

TEST(Solvers, WarmStartReducesIterations) {
  const std::size_t n = 300;
  const CsrMatrix a = laplacian(n);
  const Vector b(n, 1.0);
  Vector cold;
  const auto cold_result = conjugate_gradient(a, b, cold);
  Vector warm = cold;  // exact solution as initial guess
  const auto warm_result = conjugate_gradient(a, b, warm);
  EXPECT_LT(warm_result.iterations, cold_result.iterations);
}

}  // namespace
}  // namespace photherm::math
