#include "noc/snr.hpp"

#include <gtest/gtest.h>

#include "core/tech.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::noc {
namespace {

SnrModelConfig default_model() { return core::make_snr_model(); }

/// 4-node, 18 mm ring with one neighbour communication per node, all on
/// the same waveguide/wavelength (disjoint arcs).
struct Rig {
  RingTopology ring = RingTopology::uniform(4, 18e-3);
  std::vector<Communication> comms;
  SnrModelConfig model = default_model();

  Rig() {
    for (std::size_t i = 0; i < 4; ++i) {
      comms.push_back({i, (i + 1) % 4, 0, 0});
    }
  }
};

TEST(Snr, UniformTemperatureGivesCleanLinks) {
  Rig rig;
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto result = analyzer.analyze(rig.comms, {50.0, 50.0, 50.0, 50.0},
                                       CommDrive{3.6e-3});
  // Perfect alignment: every link drops ~everything at its destination; no
  // power continues to pollute downstream same-wavelength receivers.
  for (const auto& c : result.comms) {
    EXPECT_GT(c.snr_db, 40.0);
    EXPECT_TRUE(c.detectable);
    EXPECT_GT(c.signal_power, 0.0);
  }
  EXPECT_EQ(result.undetectable_count, 0u);
}

TEST(Snr, TemperatureGradientCreatesCrosstalk) {
  Rig rig;
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto uniform = analyzer.analyze(rig.comms, {50, 50, 50, 50}, CommDrive{3.6e-3});
  const auto skewed = analyzer.analyze(rig.comms, {50, 53, 56, 53}, CommDrive{3.6e-3});
  EXPECT_LT(skewed.worst_snr_db, uniform.worst_snr_db);
  EXPECT_GT(skewed.max_crosstalk_power, uniform.max_crosstalk_power);
}

TEST(Snr, MonotoneDegradationWithGradient) {
  Rig rig;
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  double previous = 1e9;
  for (double dt : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    const auto result = analyzer.analyze(
        rig.comms, {50.0, 50.0 + dt, 50.0 + dt / 2, 50.0 + dt / 4}, CommDrive{3.6e-3});
    EXPECT_LE(result.worst_snr_db, previous + 1e-9);
    previous = result.worst_snr_db;
  }
}

TEST(Snr, SevenPointSevenDegreesHalvesSignal) {
  // Sec. IV-C anchor: a 7.75 degC source/receiver difference misaligns by
  // 0.775 nm and the intended MR only drops half the power.
  Rig rig;
  rig.comms = {{0, 1, 0, 0}};
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto aligned = analyzer.analyze(rig.comms, {50, 50, 50, 50}, CommDrive{3.6e-3});
  // The source VCSEL emission tracks its own ONI; heat the *receiver* only.
  const auto detuned =
      analyzer.analyze(rig.comms, {50, 57.75, 50, 50}, CommDrive{3.6e-3});
  EXPECT_NEAR(detuned.comms[0].signal_power / aligned.comms[0].signal_power, 0.5, 0.02);
}

TEST(Snr, LongerRingLosesSignal) {
  const SnrModelConfig model = default_model();
  std::vector<Communication> comms{{0, 2, 0, 0}};
  const SnrAnalyzer short_ring(RingTopology::uniform(4, 18e-3), model);
  const SnrAnalyzer long_ring(RingTopology::uniform(4, 46.8e-3), model);
  const std::vector<double> temps(4, 50.0);
  const double s_short =
      short_ring.analyze(comms, temps, CommDrive{3.6e-3}).comms[0].signal_power;
  const double s_long =
      long_ring.analyze(comms, temps, CommDrive{3.6e-3}).comms[0].signal_power;
  EXPECT_GT(s_short, s_long);
  // Propagation-loss ratio for the 2-hop arc: 0.5 dB/cm x (23.4-9) mm.
  EXPECT_NEAR(ratio_db(s_short, s_long), 0.5 * (23.4 - 9.0) / 10.0, 0.05);
}

TEST(Snr, HotterSourceEmitsLessPower) {
  Rig rig;
  rig.comms = {{0, 1, 0, 0}};
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto cool = analyzer.analyze(rig.comms, {45, 45, 45, 45}, CommDrive{3.6e-3});
  const auto hot = analyzer.analyze(rig.comms, {65, 65, 65, 65}, CommDrive{3.6e-3});
  EXPECT_GT(cool.comms[0].op_vcsel, hot.comms[0].op_vcsel);
  // Both uniform: alignment perfect, so SNR stays high even when hot.
  EXPECT_GT(hot.comms[0].snr_db, 40.0);
}

TEST(Snr, TaperCouplingApplied) {
  Rig rig;
  rig.comms = {{0, 1, 0, 0}};
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto result = analyzer.analyze(rig.comms, {50, 50, 50, 50}, CommDrive{3.6e-3});
  EXPECT_NEAR(result.comms[0].op_net,
              0.7 * result.comms[0].op_vcsel, 1e-15);
}

TEST(Snr, AdjacentChannelCrosstalkSmallAtWideSpacing) {
  // Two co-propagating communications on neighbouring WDM channels: with
  // the 6.4 nm default spacing the foreign drop is tiny.
  SnrModelConfig model = default_model();
  std::vector<Communication> comms{{0, 2, 0, 0}, {1, 2, 0, 1}};
  const SnrAnalyzer analyzer(RingTopology::uniform(4, 18e-3), model);
  const auto result =
      analyzer.analyze(comms, {50, 50, 50, 50}, CommDrive{3.6e-3});
  // Lorentzian drop two half-spacings away: ~1.4 % -> SNR floor ~18 dB.
  for (const auto& c : result.comms) {
    EXPECT_GT(c.snr_db, 15.0);
  }
  EXPECT_GT(result.max_crosstalk_power, 0.0);  // but it exists
}

TEST(Snr, PerCommDrivesRespected) {
  Rig rig;
  rig.comms = {{0, 1, 0, 0}, {1, 2, 0, 0}};
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const std::vector<CommDrive> drives{{2e-3}, {6e-3}};
  const auto result = analyzer.analyze(rig.comms, {50, 50, 50, 50}, drives);
  EXPECT_GT(result.comms[1].op_vcsel, result.comms[0].op_vcsel);
}

TEST(Snr, NoiseFloorKeepsSnrFinite) {
  Rig rig;
  rig.comms = {{0, 1, 0, 0}};
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto result = analyzer.analyze(rig.comms, {50, 50, 50, 50}, CommDrive{3.6e-3});
  EXPECT_TRUE(std::isfinite(result.comms[0].snr_db));
  EXPECT_DOUBLE_EQ(result.worst_snr_db, result.comms[0].snr_db);
}

TEST(Snr, Validation) {
  Rig rig;
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  EXPECT_THROW(analyzer.analyze(rig.comms, {50, 50}, CommDrive{3.6e-3}), Error);
  EXPECT_THROW(analyzer.analyze({}, {50, 50, 50, 50}, CommDrive{3.6e-3}), Error);
  std::vector<Communication> bad{{0, 9, 0, 0}};
  EXPECT_THROW(analyzer.analyze(bad, {50, 50, 50, 50}, CommDrive{3.6e-3}), Error);
  std::vector<Communication> bad_channel{{0, 1, 0, 99}};
  EXPECT_THROW(analyzer.analyze(bad_channel, {50, 50, 50, 50}, CommDrive{3.6e-3}), Error);
  const std::vector<CommDrive> wrong_drives{{1e-3}, {1e-3}, {1e-3}};
  EXPECT_THROW(analyzer.analyze(rig.comms, {50, 50, 50, 50}, wrong_drives), Error);
}

TEST(Snr, WorstCommIdentified) {
  Rig rig;
  const SnrAnalyzer analyzer(rig.ring, rig.model);
  const auto result = analyzer.analyze(rig.comms, {50, 52, 55, 51}, CommDrive{3.6e-3});
  const auto& worst = result.worst_comm();
  for (const auto& c : result.comms) {
    EXPECT_GE(c.snr_db, worst.snr_db);
  }
}

}  // namespace
}  // namespace photherm::noc
