#include "soc/scc.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::soc {
namespace {

TEST(SccBuilder, StackOrderAndThicknesses) {
  SccBuilder builder;
  const SccSystem system = builder.build();
  const auto& z = system.z;
  EXPECT_GT(z.beol_hi, z.beol_lo);
  EXPECT_GT(z.optical_lo, z.beol_hi);      // bonding layer between
  EXPECT_GT(z.optical_hi, z.optical_lo);
  EXPECT_NEAR(z.optical_hi - z.optical_lo, 4e-6, 1e-12);   // Fig. 7: ~4 um
  EXPECT_NEAR(z.beol_hi - z.beol_lo, 15e-6, 1e-12);        // metal layers
  EXPECT_GT(z.stack_top, 6e-3);  // back plate + boards + lid dominate
  const auto bb = system.scene.bounding_box();
  EXPECT_NEAR(bb.hi.x, 26.5e-3, 1e-9);
  EXPECT_NEAR(bb.hi.y, 21.4e-3, 1e-9);
}

TEST(SccBuilder, UniformActivityPower) {
  SccBuilder builder;
  builder.set_activity(power::ActivityKind::kUniform, 25.0);
  const SccSystem system = builder.build();
  EXPECT_NEAR(system.scene.total_power(), 25.0, 1e-9);
  EXPECT_EQ(system.tiles.tile_count(), 24u);
  EXPECT_EQ(system.onis.size(), 0u);
}

TEST(SccBuilder, ExplicitTilePowers) {
  SccBuilder builder;
  std::vector<double> powers(24, 0.0);
  powers[5] = 10.0;
  builder.set_tile_powers(powers);
  const SccSystem system = builder.build();
  EXPECT_NEAR(system.scene.total_power(), 10.0, 1e-12);
  EXPECT_THROW(builder.set_tile_powers({1.0, 2.0}), Error);
}

TEST(SccBuilder, OniPlacementAndPower) {
  SccBuilder builder;
  OniPowerConfig power;
  power.p_vcsel = 1e-3;
  power.p_driver = 1e-3;
  power.p_heater = 0.3e-3;
  power.active_tx_per_waveguide = 4;
  builder.set_oni_power(power);
  builder.add_oni_on_tile(2, 1).add_oni(5e-3, 5e-3);
  const SccSystem system = builder.build();
  ASSERT_EQ(system.onis.size(), 2u);
  // 2 ONIs x (16 lasers x 2 mW + 16 heaters x 0.3 mW).
  EXPECT_NEAR(system.scene.total_power(), 2 * (16 * 2e-3 + 16 * 0.3e-3), 1e-9);
  // Footprints on the optical layer.
  for (const auto& oni : system.onis) {
    EXPECT_NEAR(oni.footprint.lo.z, system.z.optical_lo, 1e-12);
    EXPECT_NEAR(oni.footprint.hi.z, system.z.optical_hi, 1e-12);
  }
  // Second ONI centred at (5, 5) mm.
  const auto c = system.onis[1].footprint.center();
  EXPECT_NEAR(c.x, 5e-3, 1e-9);
  EXPECT_NEAR(c.y, 5e-3, 1e-9);
}

TEST(SccBuilder, RejectsOniOffDie) {
  SccBuilder builder;
  EXPECT_THROW(builder.add_oni(-1e-3, 5e-3), Error);
  EXPECT_THROW(builder.add_oni(5e-3, 50e-3), Error);
  EXPECT_THROW(builder.add_oni_on_tile(6, 0), Error);
  // ONI centred too close to the edge: footprint exceeds the die.
  builder.add_oni(0.05e-3, 5e-3);
  EXPECT_THROW(builder.build(), Error);
}

TEST(SccBuilder, RandomActivitySeeded) {
  SccBuilder a, b;
  a.set_activity(power::ActivityKind::kRandom, 20.0).set_seed(5);
  b.set_activity(power::ActivityKind::kRandom, 20.0).set_seed(5);
  const auto pa = a.build();
  const auto pb = b.build();
  // Same seed -> identical tile blocks.
  for (std::size_t i = 0; i < pa.scene.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.scene[i].power, pb.scene[i].power);
  }
}

TEST(SccBuilder, ConfigValidation) {
  SccPackageConfig config;
  config.heat_source_thickness = 1.0;  // exceeds BEOL
  EXPECT_THROW(SccBuilder{config}, Error);
  config = SccPackageConfig{};
  config.die_x = 0.0;
  EXPECT_THROW(SccBuilder{config}, Error);
}

}  // namespace
}  // namespace photherm::soc
