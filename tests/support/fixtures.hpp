/// \file fixtures.hpp
/// \brief Shared scene/spec builders for the test suites. Keeps the
/// "uniform slab + block heater" and "coarse OnocDesignSpec" setups in one
/// place instead of re-declaring them in every test file.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "core/design_space.hpp"
#include "geometry/stack.hpp"
#include "mesh/mesh.hpp"

namespace photherm::fixtures {

/// Uniform single-material slab, footprint `a` x `a`, thickness `t`.
inline geometry::Scene uniform_slab(double a, double t,
                                    const std::string& material = "silicon") {
  geometry::Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"die", material, t});
  stack.emit(scene);
  return scene;
}

/// Add a rectangular block heat source dissipating `power` watts.
inline void add_heater(geometry::Scene& scene, const geometry::Box3& box,
                       double power, const std::string& material = "silicon",
                       const std::string& name = "heater") {
  geometry::Block heat;
  heat.name = name;
  heat.box = box;
  heat.material = scene.materials().id_of(material);
  heat.power = power;
  scene.add(std::move(heat));
}

/// Mesh options with uniform cell-size caps. Pass `cell_z <= 0` to keep the
/// default vertical resolution (one cell per layer).
inline mesh::MeshOptions uniform_mesh_options(double cell_xy,
                                              double cell_z = 0.0) {
  mesh::MeshOptions options;
  options.default_max_cell_xy = cell_xy;
  if (cell_z > 0.0) {
    options.default_max_cell_z = cell_z;
  }
  return options;
}

/// Build a shared-ownership mesh, as consumed by the transient/nonlinear
/// solvers and ThermalField.
inline std::shared_ptr<const mesh::RectilinearMesh> shared_mesh(
    const geometry::Scene& scene, const mesh::MeshOptions& options) {
  return std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, options));
}

/// Coarse ONoC design spec for integration-speed tests: small ring case,
/// 3 mm global cells, 20 um ONI cells. Individual suites override fields
/// (chip power, placement, activity, ...) as needed.
inline core::OnocDesignSpec coarse_onoc_spec() {
  core::OnocDesignSpec spec;
  spec.placement = core::OniPlacementMode::kRing;
  spec.ring_case_id = 1;
  spec.chip_power = 24.0;
  spec.global_cell_xy = 3e-3;
  spec.oni_cell_xy = 20e-6;
  spec.oni_cell_z = 2e-6;
  return spec;
}

}  // namespace photherm::fixtures
