/// Determinism contract of the parallel sweep engine: every sweep and every
/// threaded math kernel must produce bit-identical results at 1, 2 and N
/// threads (N beyond the machine's core count, i.e. oversubscribed).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/design_space.hpp"
#include "math/solvers.hpp"
#include "noc/calibration.hpp"
#include "support/fixtures.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace photherm {
namespace {

core::OnocDesignSpec sweep_spec() {
  core::OnocDesignSpec spec = fixtures::coarse_onoc_spec();
  // Coarse enough that a handful of grid points stays test-sized.
  spec.placement = core::OniPlacementMode::kAllTiles;
  spec.heater_ratio = 0.0;
  spec.oni_cell_xy = 40e-6;
  return spec;
}

template <typename T>
void expect_bit_identical(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0) << what;
}

TEST(ParallelSweep, VcselChipPowerGridIsBitIdenticalAcrossThreadCounts) {
  const core::OnocDesignSpec spec = sweep_spec();
  const std::vector<double> p_chip{12.5, 25.0};
  const std::vector<double> p_vcsel{0.0, 6e-3};

  const auto at = [&](std::size_t threads) {
    core::SweepOptions sweep;
    sweep.threads = threads;
    return core::sweep_vcsel_chip_power(spec, p_chip, p_vcsel, sweep);
  };
  const auto serial = at(1);
  ASSERT_EQ(serial.size(), 4u);
  expect_bit_identical(serial, at(2), "2 threads vs serial");
  expect_bit_identical(serial, at(8), "8 threads (oversubscribed) vs serial");
}

TEST(ParallelSweep, HeaterRatioSweepIsBitIdenticalAcrossThreadCounts) {
  const core::OnocDesignSpec spec = sweep_spec();
  const std::vector<double> ratios{0.0, 0.3, 0.6};

  const auto at = [&](std::size_t threads) {
    core::SweepOptions sweep;
    sweep.threads = threads;
    return core::explore_heater_ratios(spec, ratios, sweep);
  };
  const auto serial = at(1);
  ASSERT_EQ(serial.size(), ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    EXPECT_EQ(serial[i].heater_ratio, ratios[i]);
  }
  expect_bit_identical(serial, at(4), "4 threads vs serial");
}

void expect_same_thermal(const core::ThermalReport& a, const core::ThermalReport& b,
                         const char* what) {
  ASSERT_EQ(a.onis.size(), b.onis.size()) << what;
  EXPECT_EQ(a.chip_average, b.chip_average) << what;
  EXPECT_EQ(a.max_gradient, b.max_gradient) << what;
  EXPECT_EQ(a.oni_average, b.oni_average) << what;
  EXPECT_EQ(a.oni_spread, b.oni_spread) << what;
  for (std::size_t i = 0; i < a.onis.size(); ++i) {
    EXPECT_EQ(a.onis[i].oni, b.onis[i].oni) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].average, b.onis[i].average) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].gradient, b.onis[i].gradient) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].peak_spread, b.onis[i].peak_spread) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].vcsel_average, b.onis[i].vcsel_average) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].mr_average, b.onis[i].mr_average) << what << ", ONI " << i;
    EXPECT_EQ(a.onis[i].vcsel_to_mr, b.onis[i].vcsel_to_mr) << what << ", ONI " << i;
  }
}

TEST(ParallelSweep, OniWindowLoopIsBitIdenticalAcrossThreadCounts) {
  // Ring placement: four independent per-ONI local-window solves, shared
  // across thread counts from one coarse global solve.
  core::OnocDesignSpec spec = fixtures::coarse_onoc_spec();
  spec.oni_cell_xy = 40e-6;
  const core::ThermalAwareDesigner designer(spec);
  const core::CoarseGlobalSolve global = designer.solve_global();

  const core::ThermalReport serial = designer.evaluate_thermal(global, std::nullopt, 1);
  ASSERT_EQ(serial.onis.size(), 4u);
  expect_same_thermal(serial, designer.evaluate_thermal(global, std::nullopt, 2),
                      "2 threads vs serial");
  expect_same_thermal(serial, designer.evaluate_thermal(global, std::nullopt, 8),
                      "8 threads (oversubscribed) vs serial");
}

TEST(ParallelSweep, SharedCoarseSolveMatchesColdSolveBitForBit) {
  core::OnocDesignSpec spec = fixtures::coarse_onoc_spec();
  spec.oni_cell_xy = 40e-6;
  const core::ThermalAwareDesigner designer(spec);

  // A designer whose spec differs only in SNR/local knobs shares the same
  // global scene and must reproduce its own cold solve exactly when handed
  // the other designer's coarse field.
  core::OnocDesignSpec snr_variant = spec;
  snr_variant.wdm_channels = 16;
  const core::ThermalAwareDesigner other(snr_variant);
  ASSERT_EQ(designer.global_scene_key(), other.global_scene_key());

  const core::CoarseGlobalSolve global = designer.solve_global();
  EXPECT_EQ(global.key, designer.global_scene_key());
  expect_same_thermal(other.evaluate_thermal(),               // cold: own global solve
                      other.evaluate_thermal(global),         // shared coarse field
                      "shared coarse solve vs cold");
}

TEST(ParallelSweep, CalibrationPlansAreBitIdenticalAcrossThreadCounts) {
  // Network-scale per-ring plan: large enough to span many pool chunks.
  const std::size_t rings = 100'000;
  std::vector<double> errors(rings);
  std::vector<std::size_t> clusters(rings);
  Rng rng(2026);
  for (std::size_t i = 0; i < rings; ++i) {
    errors[i] = rng.uniform(-6.0, 6.0);
    clusters[i] = i % 128;
  }
  const noc::CalibrationParams params;

  const auto serial = noc::per_ring_plan(errors, params, 1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = noc::per_ring_plan(errors, params, threads);
    ASSERT_EQ(parallel.trims.size(), serial.trims.size());
    EXPECT_EQ(parallel.total_power, serial.total_power) << threads << " threads";
    EXPECT_EQ(parallel.heater_count, serial.heater_count) << threads << " threads";
    for (std::size_t i = 0; i < rings; ++i) {
      ASSERT_EQ(parallel.trims[i].misalignment, serial.trims[i].misalignment) << "ring " << i;
      ASSERT_EQ(parallel.trims[i].power, serial.trims[i].power) << "ring " << i;
      ASSERT_EQ(parallel.trims[i].uses_heater, serial.trims[i].uses_heater) << "ring " << i;
    }
  }

  const auto serial_clustered = noc::clustered_plan(errors, clusters, params, 1);
  const auto parallel_clustered = noc::clustered_plan(errors, clusters, params, 8);
  EXPECT_EQ(parallel_clustered.plan.total_power, serial_clustered.plan.total_power);
  EXPECT_EQ(parallel_clustered.worst_residual, serial_clustered.worst_residual);
}

TEST(ParallelSweep, ThreadedSolverIsBitIdenticalAcrossThreadCounts) {
  // A system big enough that SpMV and the reductions leave the serial
  // fallback and genuinely run chunked.
  const std::size_t n = util::kSerialCutoff + 4321;
  math::CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0);
    if (i > 0) {
      builder.add(i, i - 1, -1.0);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
    }
  }
  const math::CsrMatrix a = builder.build();
  math::Vector b(n);
  Rng rng(7);
  for (double& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }

  const auto solve_at = [&](std::size_t threads) {
    math::Vector x;
    math::SolverOptions options;
    options.preconditioner = math::PreconditionerKind::kJacobi;
    options.threads = threads;
    const auto result = math::conjugate_gradient(a, b, x, options);
    EXPECT_TRUE(result.converged);
    return std::make_pair(x, result.iterations);
  };
  const auto [x1, iters1] = solve_at(1);
  const auto [x2, iters2] = solve_at(2);
  const auto [x8, iters8] = solve_at(8);
  EXPECT_EQ(iters1, iters2);
  EXPECT_EQ(iters1, iters8);
  expect_bit_identical(x1, x2, "CG solution, 2 threads vs serial");
  expect_bit_identical(x1, x8, "CG solution, 8 threads vs serial");
}

}  // namespace
}  // namespace photherm
