/// Boundary-condition coverage of the FVM solver beyond the package setup:
/// side-face convection, all-Dirichlet boxes, mixed conditions and heat
/// flow accounting per face type.
#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "support/fixtures.hpp"
#include "thermal/fvm.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Box3;
using geometry::Scene;

Scene cube(double a, double power) {
  Scene scene = fixtures::uniform_slab(a, a);
  if (power > 0.0) {
    fixtures::add_heater(
        scene, Box3::make({a / 4, a / 4, a / 4}, {3 * a / 4, 3 * a / 4, 3 * a / 4}),
        power, "silicon", "core");
  }
  return scene;
}

mesh::RectilinearMesh mesh_cube(const Scene& scene, double cell) {
  return mesh::RectilinearMesh::build(scene,
                                      fixtures::uniform_mesh_options(cell, cell));
}

TEST(FvmBc, SideConvectionCoolsLaterally) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.3);
  BoundarySet bcs;
  bcs[Face::kXMin] = FaceBc::convection(1e4, 20.0);
  const auto field = solve_steady_state(mesh_cube(scene, 100e-6), bcs);
  // Heat escapes through x-: the far (x+) side must run hotter.
  EXPECT_GT(field.at({0.95e-3, 0.5e-3, 0.5e-3}), field.at({0.05e-3, 0.5e-3, 0.5e-3}));
  EXPECT_NEAR(boundary_heat_flow(field, bcs), 0.3, 1e-6);
}

TEST(FvmBc, AllSixFacesConvective) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.6);
  BoundarySet bcs;
  for (int f = 0; f < 6; ++f) {
    bcs.faces[f] = FaceBc::convection(5e3, 25.0);
  }
  const auto field = solve_steady_state(mesh_cube(scene, 100e-6), bcs);
  // Symmetric cooling: centre is the hottest point.
  EXPECT_NEAR(field.global_max(), field.at({0.5e-3, 0.5e-3, 0.5e-3}), 1e-9);
  EXPECT_NEAR(boundary_heat_flow(field, bcs), 0.6, 1e-6);
  // Symmetry of the field across x (probe at mirrored cell centres).
  EXPECT_NEAR(field.at({0.3e-3, 0.5e-3, 0.5e-3}), field.at({0.7e-3, 0.5e-3, 0.5e-3}), 1e-6);
}

TEST(FvmBc, OpposingDirichletWallsGiveLinearProfile) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.0);
  BoundarySet bcs;
  bcs[Face::kXMin] = FaceBc::dirichlet(10.0);
  bcs[Face::kXMax] = FaceBc::dirichlet(90.0);
  const auto field = solve_steady_state(mesh_cube(scene, 50e-6), bcs);
  // Pure conduction between walls: exactly linear at cell centres
  // (50 um cells -> centres at 25 + 50 k um): T(x) = 10 + 80 x / L.
  EXPECT_NEAR(field.at({0.275e-3, 0.5e-3, 0.5e-3}), 32.0, 1e-6);
  EXPECT_NEAR(field.at({0.525e-3, 0.5e-3, 0.5e-3}), 52.0, 1e-6);
  EXPECT_NEAR(field.at({0.775e-3, 0.5e-3, 0.5e-3}), 72.0, 1e-6);
  // Net wall-to-wall flow: k A dT / L = 130 * 1e-6 * 80 / 1e-3 = 10.4 W
  // through each wall, but the *net* boundary flow is zero (no sources).
  EXPECT_NEAR(boundary_heat_flow(field, bcs), 0.0, 1e-6);
}

TEST(FvmBc, MixedConvectionAndDirichlet) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.4);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(2e3, 30.0);
  bcs[Face::kZMin] = FaceBc::dirichlet(30.0);
  const auto field = solve_steady_state(mesh_cube(scene, 100e-6), bcs);
  EXPECT_NEAR(boundary_heat_flow(field, bcs), 0.4, 1e-6);
  EXPECT_GE(field.global_min(), 30.0 - 1e-6);
}

TEST(FvmBc, StrongerConvectionLowersTemperature) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.5);
  double previous = 1e9;
  for (double h : {1e3, 5e3, 2e4}) {
    BoundarySet bcs;
    bcs[Face::kZMax] = FaceBc::convection(h, 25.0);
    const auto field = solve_steady_state(mesh_cube(scene, 125e-6), bcs);
    EXPECT_LT(field.global_max(), previous);
    previous = field.global_max();
  }
}

TEST(FvmBc, DirichletFieldOnSideFace) {
  const double a = 1e-3;
  const Scene scene = cube(a, 0.0);
  BoundarySet bcs;
  bcs[Face::kYMin] = FaceBc::dirichlet_field(
      [](const geometry::Vec3& p) { return 20.0 + 2e4 * p.z; });  // 20..40 over z
  const auto field = solve_steady_state(mesh_cube(scene, 100e-6), bcs);
  EXPECT_LT(field.at({0.5e-3, 0.05e-3, 0.1e-3}), field.at({0.5e-3, 0.05e-3, 0.9e-3}));
  EXPECT_GE(field.global_min(), 20.0 - 1.0);
  EXPECT_LE(field.global_max(), 40.0 + 1.0);
}

TEST(FvmBc, ConvectionRequiresPositiveH) {
  const Scene scene = cube(1e-3, 0.1);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(0.0, 25.0);
  EXPECT_THROW(solve_steady_state(mesh_cube(scene, 250e-6), bcs), Error);
}

}  // namespace
}  // namespace photherm::thermal
