/// End-to-end integration tests: the full methodology pipeline at coarse
/// resolution, exercising every module together the way the benches do.
#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/methodology.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm::core {
namespace {

OnocDesignSpec coarse_spec() { return fixtures::coarse_onoc_spec(); }

TEST(Integration, ActivityOrderingMatchesPaper) {
  // Diagonal activity spreads the ONI temperatures more than uniform; the
  // worst-case SNR follows (Fig. 12 trend), evaluated on the large ring
  // where the effect is strongest.
  OnocDesignSpec spec = coarse_spec();
  spec.ring_case_id = 3;

  spec.activity = power::ActivityKind::kUniform;
  const auto uniform = ThermalAwareDesigner(spec).run();
  spec.activity = power::ActivityKind::kDiagonal;
  const auto diagonal = ThermalAwareDesigner(spec).run();

  ASSERT_TRUE(uniform.snr && diagonal.snr);
  EXPECT_GT(diagonal.thermal.oni_spread, uniform.thermal.oni_spread);
  EXPECT_LE(diagonal.snr->network.worst_snr_db,
            uniform.snr->network.worst_snr_db + 0.5);
}

TEST(Integration, SnrDecreasesWithRingLength) {
  // Fig. 12: longer waveguides -> more propagation loss and more
  // co-propagating communications -> lower worst-case SNR.
  OnocDesignSpec spec = coarse_spec();
  spec.ring_case_id = 1;
  const auto short_ring = ThermalAwareDesigner(spec).run();
  spec.ring_case_id = 3;
  const auto long_ring = ThermalAwareDesigner(spec).run();
  ASSERT_TRUE(short_ring.snr && long_ring.snr);
  EXPECT_GT(short_ring.snr->network.worst_snr_db, long_ring.snr->network.worst_snr_db);
  EXPECT_GT(short_ring.snr->network.min_signal_power,
            long_ring.snr->network.min_signal_power);
}

TEST(Integration, SweepSnrProducesAllRows) {
  OnocDesignSpec spec = coarse_spec();
  const auto rows = sweep_snr(spec, {1}, {power::ActivityKind::kUniform,
                                          power::ActivityKind::kDiagonal});
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.ring_case, 1);
    EXPECT_NEAR(row.waveguide_length, 18e-3, 1e-12);
    EXPECT_GT(row.signal_power, 0.0);
    EXPECT_GE(row.oni_t_max, row.oni_t_min);
    EXPECT_TRUE(std::isfinite(row.worst_snr_db));
  }
}

TEST(Integration, VcselChipPowerSweepTrends) {
  OnocDesignSpec spec = coarse_spec();
  spec.placement = OniPlacementMode::kAllTiles;
  spec.heater_ratio = 0.0;
  const auto rows =
      sweep_vcsel_chip_power(spec, {12.5, 25.0}, {0.0, 6e-3});
  ASSERT_EQ(rows.size(), 4u);
  // Fig. 9-a trends: average rises with both chip power and laser power.
  const auto find = [&](double chip, double vcsel) {
    for (const auto& row : rows) {
      if (row.p_chip == chip && row.p_vcsel == vcsel) {
        return row;
      }
    }
    throw Error("row not found");
  };
  EXPECT_GT(find(25.0, 0.0).average, find(12.5, 0.0).average);
  EXPECT_GT(find(12.5, 6e-3).average, find(12.5, 0.0).average);
  EXPECT_GT(find(12.5, 6e-3).gradient, find(12.5, 0.0).gradient);
}

TEST(Integration, GradientConstraintCheck) {
  // With a small laser power and the optimal heater the interface meets
  // the paper's < 1 degC intra-ONI constraint.
  OnocDesignSpec spec = coarse_spec();
  spec.p_vcsel = 1e-3;
  spec.heater_ratio = 0.3;
  const auto report = ThermalAwareDesigner(spec).run();
  EXPECT_LT(report.thermal.max_gradient, 2.5);
}

TEST(Integration, ReportConsistency) {
  const auto report = ThermalAwareDesigner(coarse_spec()).run();
  // The SNR analysis consumed exactly the ONI temperatures of the thermal
  // report; spot-check the bookkeeping.
  ASSERT_TRUE(report.snr.has_value());
  EXPECT_EQ(report.thermal.onis.size(), report.snr->oni_count);
  for (const auto& comm : report.snr->network.comms) {
    EXPECT_LT(comm.comm.src, report.snr->oni_count);
    EXPECT_LT(comm.comm.dst, report.snr->oni_count);
    EXPECT_GE(comm.signal_power, 0.0);
    EXPECT_GE(comm.crosstalk_power, 0.0);
  }
}

}  // namespace
}  // namespace photherm::core
