#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace photherm {
namespace {

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(StringUtil, FormatPower) {
  EXPECT_EQ(format_power(3.6e-3), "3.600 mW");
  EXPECT_EQ(format_power(25.0), "25.000 W");
  EXPECT_EQ(format_power(130e-6), "130.000 uW");
  EXPECT_EQ(format_power(5e-9), "5.000 nW");
}

TEST(StringUtil, FormatLength) {
  EXPECT_EQ(format_length(15e-6), "15.000 um");
  EXPECT_EQ(format_length(26.5e-3), "26.500 mm");
  EXPECT_EQ(format_length(1.55e-9), "1.550 nm");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("VCSEL MicroRing"), "vcsel microring");
}

}  // namespace
}  // namespace photherm
