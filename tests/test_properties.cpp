/// Property-based suites: physical invariants checked across randomised
/// configurations (seeded, reproducible).
#include <gtest/gtest.h>

#include "core/tech.hpp"
#include "geometry/stack.hpp"
#include "noc/snr.hpp"
#include "thermal/fvm.hpp"
#include "util/rng.hpp"

namespace photherm {
namespace {

using geometry::Block;
using geometry::Box3;
using geometry::Scene;

// ---------------------------------------------------------------------------
// Thermal invariants on randomised scenes.
// ---------------------------------------------------------------------------

class ThermalProperties : public ::testing::TestWithParam<std::uint64_t> {};

Scene random_scene(Rng& rng, double* total_power) {
  Scene scene;
  geometry::LayerStackBuilder stack(2e-3, 2e-3);
  stack.add_layer({"bulk", "silicon", 200e-6});
  stack.add_layer({"ox", "silicon_dioxide", 20e-6});
  stack.emit(scene);
  const int sources = rng.uniform_int(1, 5);
  *total_power = 0.0;
  for (int s = 0; s < sources; ++s) {
    const double x = rng.uniform(0.1e-3, 1.5e-3);
    const double y = rng.uniform(0.1e-3, 1.5e-3);
    const double w = rng.uniform(0.1e-3, 0.4e-3);
    Block heat;
    heat.name = "src" + std::to_string(s);
    heat.box = Box3::make({x, y, 0}, {x + w, y + w, 30e-6});
    heat.material = scene.materials().id_of("silicon");
    heat.power = rng.uniform(0.05, 0.5);
    *total_power += heat.power;
    scene.add(std::move(heat));
  }
  return scene;
}

TEST_P(ThermalProperties, EnergyBalanceAndMaximumPrinciple) {
  Rng rng(GetParam());
  double total_power = 0.0;
  const Scene scene = random_scene(rng, &total_power);

  thermal::BoundarySet bcs;
  const double t_amb = rng.uniform(20.0, 45.0);
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(rng.uniform(2e3, 2e4), t_amb);

  mesh::MeshOptions options;
  options.default_max_cell_xy = 100e-6;
  const auto field =
      thermal::solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);

  // Energy balance: all injected power leaves through the boundary.
  EXPECT_NEAR(thermal::boundary_heat_flow(field, bcs), total_power,
              1e-6 * std::max(1.0, total_power));
  // Maximum principle: with positive sources and one ambient sink, every
  // temperature lies above ambient and the maximum is interior.
  EXPECT_GE(field.global_min(), t_amb - 1e-9);
  EXPECT_GT(field.global_max(), t_amb);
}

TEST_P(ThermalProperties, LinearityInPower) {
  // Conduction is linear: scaling every source by s scales all rises by s.
  Rng rng(GetParam());
  double total_power = 0.0;
  Scene scene = random_scene(rng, &total_power);

  thermal::BoundarySet bcs;
  bcs[thermal::Face::kZMax] = thermal::FaceBc::convection(5e3, 30.0);
  mesh::MeshOptions options;
  options.default_max_cell_xy = 200e-6;

  const auto base =
      thermal::solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);

  Scene doubled;
  geometry::LayerStackBuilder stack(2e-3, 2e-3);
  stack.add_layer({"bulk", "silicon", 200e-6});
  stack.add_layer({"ox", "silicon_dioxide", 20e-6});
  stack.emit(doubled);
  for (const Block& b : scene.blocks()) {
    if (b.power > 0.0) {
      Block copy = b;
      copy.power *= 2.0;
      doubled.add(std::move(copy));
    }
  }
  const auto twice =
      thermal::solve_steady_state(mesh::RectilinearMesh::build(doubled, options), bcs);
  EXPECT_NEAR(twice.global_max() - 30.0, 2.0 * (base.global_max() - 30.0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThermalProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------------------------------------------------------------------------
// Optical power conservation in the SNR engine.
// ---------------------------------------------------------------------------

class SnrProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnrProperties, ReceivedPowerNeverExceedsInjected) {
  Rng rng(GetParam());
  const std::size_t nodes = static_cast<std::size_t>(rng.uniform_int(4, 12));
  const noc::RingTopology ring =
      noc::RingTopology::uniform(nodes, rng.uniform(10e-3, 50e-3));
  const noc::OrnocAssigner assigner(nodes, 4, 8);
  const auto comms =
      assigner.assign(noc::spread_requests(nodes, static_cast<std::size_t>(
                                                      rng.uniform_int(1, 3))));

  std::vector<double> temps(nodes);
  for (double& t : temps) {
    t = rng.uniform(45.0, 65.0);
  }

  const noc::SnrAnalyzer analyzer(ring, core::make_snr_model());
  const auto result = analyzer.analyze(comms, temps, noc::CommDrive{3.6e-3});

  double injected = 0.0;
  double received_signal = 0.0;
  double received_crosstalk = 0.0;
  for (const auto& c : result.comms) {
    EXPECT_LE(c.signal_power, c.op_net + 1e-15);
    EXPECT_GE(c.signal_power, 0.0);
    EXPECT_GE(c.crosstalk_power, 0.0);
    injected += c.op_net;
    received_signal += c.signal_power;
    received_crosstalk += c.crosstalk_power;
  }
  // Global passivity: nothing is amplified anywhere.
  EXPECT_LE(received_signal + received_crosstalk, injected + 1e-15);
}

TEST_P(SnrProperties, UniformTemperatureIsOptimal) {
  // Any temperature skew can only reduce the worst-case SNR relative to
  // the same network at uniform temperature.
  Rng rng(GetParam());
  const std::size_t nodes = 8;
  const noc::RingTopology ring = noc::RingTopology::uniform(nodes, 32.4e-3);
  const noc::OrnocAssigner assigner(nodes, 4, 8);
  const auto comms = assigner.assign(noc::spread_requests(nodes, 3));
  const noc::SnrAnalyzer analyzer(ring, core::make_snr_model());

  const double base = 55.0;
  const auto uniform =
      analyzer.analyze(comms, std::vector<double>(nodes, base), noc::CommDrive{3.6e-3});
  std::vector<double> skewed(nodes);
  for (double& t : skewed) {
    t = base + rng.uniform(-4.0, 4.0);
  }
  const auto perturbed = analyzer.analyze(comms, skewed, noc::CommDrive{3.6e-3});
  EXPECT_LE(perturbed.worst_snr_db, uniform.worst_snr_db + 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnrProperties, ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Mesh invariants under random refinement.
// ---------------------------------------------------------------------------

class MeshProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshProperties, PowerConservedUnderAnyRefinement) {
  Rng rng(GetParam());
  double total_power = 0.0;
  const Scene scene = random_scene(rng, &total_power);
  mesh::MeshOptions options;
  options.default_max_cell_xy = rng.uniform(100e-6, 600e-6);
  if (rng.uniform_int(0, 1) == 1) {
    mesh::RefinementBox refine;
    const double x = rng.uniform(0.2e-3, 1.2e-3);
    refine.box = Box3::make({x, x, 0}, {x + 0.4e-3, x + 0.4e-3, 220e-6});
    refine.max_cell_xy = rng.uniform(10e-6, 50e-6);
    refine.max_cell_z = 0.0;
    options.refinements.push_back(refine);
  }
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  EXPECT_NEAR(mesh.total_power(), total_power, 1e-9 * std::max(1.0, total_power));

  // Cell geometry tiles the domain exactly.
  double volume = 0.0;
  for (std::size_t iz = 0; iz < mesh.nz(); ++iz) {
    for (std::size_t iy = 0; iy < mesh.ny(); ++iy) {
      for (std::size_t ix = 0; ix < mesh.nx(); ++ix) {
        volume += mesh.cell_volume(ix, iy, iz);
      }
    }
  }
  EXPECT_NEAR(volume, scene.bounding_box().volume(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeshProperties,
                         ::testing::Values(7u, 17u, 27u, 37u, 47u, 57u));

}  // namespace
}  // namespace photherm
