#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "math/csr_matrix.hpp"
#include "math/vector_ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace photherm::util {
namespace {

/// Restores the concurrency override on scope exit so tests stay isolated.
class ConcurrencyGuard {
 public:
  ~ConcurrencyGuard() { set_concurrency(0); }
};

TEST(Concurrency, DefaultsToAtLeastOne) {
  ConcurrencyGuard guard;
  set_concurrency(0);
  EXPECT_GE(concurrency(), 1u);
}

TEST(Concurrency, SetOverrideWins) {
  ConcurrencyGuard guard;
  set_concurrency(3);
  EXPECT_EQ(concurrency(), 3u);
  set_concurrency(0);
  EXPECT_GE(concurrency(), 1u);
}

TEST(Concurrency, EnvVariableOverridesDefault) {
  ConcurrencyGuard guard;
  set_concurrency(0);
  ASSERT_EQ(setenv("PHOTHERM_THREADS", "5", 1), 0);
  EXPECT_EQ(concurrency(), 5u);
  ASSERT_EQ(setenv("PHOTHERM_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(concurrency(), 1u);  // malformed values fall back to hardware
  ASSERT_EQ(unsetenv("PHOTHERM_THREADS"), 0);
  // An explicit set_concurrency beats the environment.
  ASSERT_EQ(setenv("PHOTHERM_THREADS", "7", 1), 0);
  set_concurrency(2);
  EXPECT_EQ(concurrency(), 2u);
  ASSERT_EQ(unsetenv("PHOTHERM_THREADS"), 0);
}

TEST(Concurrency, AbsurdRequestsAreClampedNotSpawned) {
  ConcurrencyGuard guard;
  set_concurrency(100'000);
  EXPECT_EQ(concurrency(), kMaxThreads);
  ASSERT_EQ(setenv("PHOTHERM_THREADS", "100000", 1), 0);
  set_concurrency(0);
  EXPECT_EQ(concurrency(), kMaxThreads);
  ASSERT_EQ(unsetenv("PHOTHERM_THREADS"), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::size_t n = 10'007;  // prime: exercises the ragged last chunk
    std::vector<std::atomic<int>> hits(n);
    parallel_for(
        n, 64,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1);
          }
        },
        threads);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
  const std::size_t n = 1000;
  const std::size_t grain = 96;
  auto boundaries_at = [&](std::size_t threads) {
    std::vector<std::pair<std::size_t, std::size_t>> chunks((n + grain - 1) / grain);
    parallel_for(
        n, grain, [&](std::size_t begin, std::size_t end) { chunks[begin / grain] = {begin, end}; },
        threads);
    return chunks;
  };
  const auto serial = boundaries_at(1);
  EXPECT_EQ(serial, boundaries_at(2));
  EXPECT_EQ(serial, boundaries_at(16));
  EXPECT_EQ(serial.back().second, n);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool called = false;
  parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(
          1000, 10,
          [&](std::size_t begin, std::size_t) {
            if (begin >= 500) {
              throw std::runtime_error("boom");
            }
          },
          4),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> count{0};
  parallel_for(100, 10, [&](std::size_t b, std::size_t e) { count += static_cast<int>(e - b); }, 4);
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for(
      8, 1,
      [&](std::size_t, std::size_t) {
        // Nested region: must complete inline without deadlocking the pool.
        parallel_for(16, 4, [&](std::size_t b, std::size_t e) { total += static_cast<int>(e - b); },
                     4);
      },
      4);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, RunExecutesAllChunksAndRethrows) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_THROW(pool.run(8, 4, [](std::size_t i) {
    if (i == 3) {
      throw Error("chunk failed");
    }
  }),
               Error);
}

TEST(ThreadPool, DoesNotSpawnMoreWorkersThanChunks) {
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.run(2, 8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
  // 2 chunks need at most 1 extra executor beyond the caller; the other 6
  // requested threads must not be spawned (the pool never shrinks).
  EXPECT_LE(pool.size(), 1u);
}

TEST(ThreadPool, EnsureSizeGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.ensure_size(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.ensure_size(2);
  EXPECT_EQ(pool.size(), 4u);
}

/// The determinism contract of the reductions: bit-identical results at
/// any thread count, including the serial path.
TEST(DeterministicKernels, DotIsBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 3 * kSerialCutoff + 1234;  // well into the parallel regime
  math::Vector a(n), b(n);
  Rng rng(123);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
  }
  const double d1 = math::dot(a, b, 1);
  const double d2 = math::dot(a, b, 2);
  const double d8 = math::dot(a, b, 8);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d8);
  const double n1 = math::norm2(a, 1);
  EXPECT_EQ(n1, math::norm2(a, 4));
}

TEST(DeterministicKernels, AxpyAndXpbyAreBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 2 * kSerialCutoff;
  math::Vector x(n), y0(n);
  Rng rng(321);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.0, 1.0);
    y0[i] = rng.uniform(-1.0, 1.0);
  }
  math::Vector y1 = y0, y4 = y0;
  math::axpy(0.37, x, y1, 1);
  math::axpy(0.37, x, y4, 4);
  EXPECT_EQ(y1, y4);
  math::xpby(x, -0.61, y1, 1);
  math::xpby(x, -0.61, y4, 4);
  EXPECT_EQ(y1, y4);
}

TEST(DeterministicKernels, SpmvIsBitIdenticalAcrossThreadCounts) {
  const std::size_t n = kSerialCutoff + 777;
  math::CsrBuilder builder(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 4.0);
    if (i > 0) {
      builder.add(i, i - 1, -1.0);
    }
    if (i + 1 < n) {
      builder.add(i, i + 1, -1.0);
    }
  }
  const math::CsrMatrix a = builder.build();
  math::Vector x(n);
  Rng rng(99);
  for (double& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  math::Vector y1, y2, y8;
  a.multiply(x, y1, 1);
  a.multiply(x, y2, 2);
  a.multiply(x, y8, 8);
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(y1, y8);
}

}  // namespace
}  // namespace photherm::util
