#include "geometry/vec.hpp"

#include <gtest/gtest.h>

#include "geometry/block.hpp"
#include "util/error.hpp"

namespace photherm::geometry {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_EQ((a * 2.0), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(distance({0, 0, 0}, {3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(Box3, ConstructionValidation) {
  EXPECT_NO_THROW(Box3::make({0, 0, 0}, {1, 1, 1}));
  EXPECT_THROW(Box3::make({0, 0, 0}, {0, 1, 1}), Error);
  EXPECT_THROW(Box3::make({0, 0, 0}, {1, -1, 1}), Error);
  const Box3 b = Box3::from_size({1, 1, 1}, {2, 3, 4});
  EXPECT_EQ(b.hi, (Vec3{3, 4, 5}));
}

TEST(Box3, VolumeExtentCenter) {
  const Box3 b = Box3::make({0, 0, 0}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(b.volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.extent(0), 2.0);
  EXPECT_DOUBLE_EQ(b.extent(2), 4.0);
  EXPECT_EQ(b.center(), (Vec3{1, 1.5, 2}));
}

TEST(Box3, Containment) {
  const Box3 b = Box3::make({0, 0, 0}, {1, 1, 1});
  EXPECT_TRUE(b.contains({0.5, 0.5, 0.5}));
  EXPECT_TRUE(b.contains({0, 0, 0}));  // boundary inclusive
  EXPECT_FALSE(b.contains_interior({0, 0, 0}));
  EXPECT_FALSE(b.contains({1.1, 0.5, 0.5}));
}

TEST(Box3, Intersection) {
  const Box3 a = Box3::make({0, 0, 0}, {2, 2, 2});
  const Box3 b = Box3::make({1, 1, 1}, {3, 3, 3});
  const Box3 c = Box3::make({5, 5, 5}, {6, 6, 6});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_volume(c), 0.0);
  // Touching faces do not intersect (open intervals).
  const Box3 d = Box3::make({2, 0, 0}, {3, 2, 2});
  EXPECT_FALSE(a.intersects(d));
  EXPECT_DOUBLE_EQ(a.overlap_volume(d), 0.0);
}

TEST(Box3, Union) {
  const Box3 a = Box3::make({0, 0, 0}, {1, 1, 1});
  const Box3 b = Box3::make({2, 2, 2}, {3, 3, 3});
  const Box3 u = a.union_with(b);
  EXPECT_EQ(u.lo, (Vec3{0, 0, 0}));
  EXPECT_EQ(u.hi, (Vec3{3, 3, 3}));
}

TEST(Scene, PaintOrderSemantics) {
  Scene scene;
  const auto si = scene.materials().id_of("silicon");
  const auto cu = scene.materials().id_of("copper");
  const auto air = scene.materials().id_of("air");
  scene.add({"slab", Box3::make({0, 0, 0}, {2, 2, 1}), si, 0.0, BlockKind::kLayer, -1});
  scene.add({"via", Box3::make({0.5, 0.5, 0}, {1, 1, 1}), cu, 0.0, BlockKind::kTsv, -1});
  EXPECT_EQ(scene.material_at({0.1, 0.1, 0.5}, air), si);
  EXPECT_EQ(scene.material_at({0.75, 0.75, 0.5}, air), cu);  // later block wins
  EXPECT_EQ(scene.material_at({5, 5, 5}, air), air);
}

TEST(Scene, PowersAndBounds) {
  Scene scene;
  const auto si = scene.materials().id_of("silicon");
  scene.add({"a", Box3::make({0, 0, 0}, {1, 1, 1}), si, 2.0, BlockKind::kHeatSource, 0});
  scene.add({"b", Box3::make({1, 1, 1}, {2, 2, 2}), si, 3.0, BlockKind::kHeatSource, 1});
  EXPECT_DOUBLE_EQ(scene.total_power(), 5.0);
  EXPECT_EQ(scene.bounding_box(), Box3::make({0, 0, 0}, {2, 2, 2}));
  EXPECT_THROW(scene.add({"bad", Box3::make({0, 0, 0}, {1, 1, 1}), si, -1.0,
                          BlockKind::kOther, -1}),
               Error);
}

TEST(Scene, FindByKindAndGroup) {
  Scene scene;
  const auto si = scene.materials().id_of("silicon");
  scene.add({"v0", Box3::make({0, 0, 0}, {1, 1, 1}), si, 0.0, BlockKind::kVcsel, 0});
  scene.add({"v1", Box3::make({1, 0, 0}, {2, 1, 1}), si, 0.0, BlockKind::kVcsel, 1});
  scene.add({"m0", Box3::make({2, 0, 0}, {3, 1, 1}), si, 0.0, BlockKind::kMicroRing, 0});
  EXPECT_EQ(scene.find(BlockKind::kVcsel).size(), 2u);
  EXPECT_EQ(scene.find(BlockKind::kVcsel, 1).size(), 1u);
  EXPECT_EQ(scene.find(BlockKind::kHeater).size(), 0u);
  EXPECT_EQ(scene.by_name("m0").kind, BlockKind::kMicroRing);
  EXPECT_THROW(scene.by_name("nope"), SpecError);
}

TEST(Scene, BlockKindNames) {
  EXPECT_EQ(to_string(BlockKind::kVcsel), "vcsel");
  EXPECT_EQ(to_string(BlockKind::kMicroRing), "microring");
  EXPECT_EQ(to_string(BlockKind::kHeatSource), "heat_source");
}

}  // namespace
}  // namespace photherm::geometry
