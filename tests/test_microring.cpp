#include "photonics/microring.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {
namespace {

TEST(MicroRing, PaperDropAnchors) {
  // Sec. IV-C: with BW3dB = 1.55 nm, 50 % of the signal is dropped at a
  // 0.775 nm misalignment (a 7.75 degC temperature difference).
  const MicroRing ring{MicroRingParams{}};
  EXPECT_DOUBLE_EQ(ring.drop_fraction_detuned(0.0), 1.0);
  EXPECT_NEAR(ring.drop_fraction_detuned(0.775e-9), 0.5, 1e-12);
  EXPECT_NEAR(ring.drop_fraction_detuned(-0.775e-9), 0.5, 1e-12);
  EXPECT_NEAR(ring.drop_fraction_detuned(1.55e-9), 0.2, 1e-12);
}

TEST(MicroRing, MostPowerPassesWhenFarDetuned) {
  // "In case both wavelengths are significantly different (above 1.5 nm),
  // most of the input signal power continues to the through port."
  const MicroRing ring{MicroRingParams{}};
  EXPECT_LT(ring.drop_fraction_detuned(3e-9), 0.07);
  EXPECT_LT(ring.drop_fraction_detuned(6.4e-9), 0.015);
}

TEST(MicroRing, ThermalShiftMovesResonance) {
  const MicroRing ring{MicroRingParams{}};
  EXPECT_DOUBLE_EQ(ring.resonance_at(25.0), 1550e-9);
  EXPECT_NEAR(ring.resonance_at(35.0) - 1550e-9, 1e-9, 1e-16);
  // A 7.75 degC ring heating detunes a previously aligned signal to 50 %.
  EXPECT_NEAR(ring.drop_fraction(1550e-9, 25.0 + 7.75), 0.5, 1e-9);
}

TEST(MicroRing, DropPlusThroughBoundedByUnity) {
  MicroRingParams params;
  const MicroRing ring{params};
  for (double detuning_nm = -4.0; detuning_nm <= 4.0; detuning_nm += 0.1) {
    const double lambda = 1550e-9 + detuning_nm * 1e-9;
    const double drop = ring.drop_fraction(lambda, 25.0);
    const double through = ring.through_fraction(lambda, 25.0);
    EXPECT_GE(drop, 0.0);
    EXPECT_GE(through, 0.0);
    EXPECT_LE(drop + through, 1.0 + 1e-12);
  }
}

TEST(MicroRing, DropLossApplied) {
  MicroRingParams params;
  params.drop_loss_db = 3.0103;  // x0.5
  const MicroRing ring{params};
  EXPECT_NEAR(ring.dropped_power(1e-3, 1550e-9, 25.0), 0.5e-3, 1e-9);
}

TEST(MicroRing, SymmetricLineShape) {
  const MicroRing ring{MicroRingParams{}};
  for (double d = 0.1; d <= 3.0; d += 0.3) {
    EXPECT_DOUBLE_EQ(ring.drop_fraction_detuned(d * 1e-9),
                     ring.drop_fraction_detuned(-d * 1e-9));
  }
}

TEST(MicroRing, NarrowerBandwidthIsMoreSelective) {
  MicroRingParams narrow;
  narrow.bandwidth_3db = 0.4e-9;
  const MicroRing ring_narrow{narrow};
  const MicroRing ring_wide{MicroRingParams{}};
  EXPECT_LT(ring_narrow.drop_fraction_detuned(1e-9), ring_wide.drop_fraction_detuned(1e-9));
}

TEST(MicroRing, Validation) {
  MicroRingParams p;
  p.d_max = 0.0;
  EXPECT_THROW(MicroRing{p}, Error);
  p = MicroRingParams{};
  p.bandwidth_3db = -1.0;
  EXPECT_THROW(MicroRing{p}, Error);
  const MicroRing ok{MicroRingParams{}};
  EXPECT_THROW(ok.dropped_power(-1.0, 1550e-9, 25.0), Error);
}

TEST(MrHeater, TemperatureRiseAndInverse) {
  MrHeater heater;
  heater.r_th = 1.5e3;
  EXPECT_DOUBLE_EQ(heater.temperature_rise(1e-3), 1.5);
  // Power needed to shift by 0.15 nm at 0.1 nm/degC = 1.5 degC -> 1 mW.
  EXPECT_NEAR(heater.power_for_shift(0.15e-9, 0.1e-9), 1e-3, 1e-12);
  EXPECT_THROW(heater.power_for_shift(-1e-9, 0.1e-9), Error);
  EXPECT_THROW(heater.power_for_shift(1e-9, 0.0), Error);
}

}  // namespace
}  // namespace photherm::photonics
