/// Tests of the temperature-dependent-conductivity (Picard) solver.
#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "thermal/fvm.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Block;
using geometry::Box3;
using geometry::Scene;

TEST(Material, PowerLawConductivity) {
  geometry::Material si{"si_t", 130.0, 2330.0, 712.0, 1.3, 300.0};
  EXPECT_NEAR(si.conductivity_at(300.0 - 273.15), 130.0, 1e-9);
  // Hotter silicon conducts worse.
  EXPECT_LT(si.conductivity_at(100.0), 130.0);
  EXPECT_GT(si.conductivity_at(-50.0), 130.0);
  // Default materials are temperature-independent.
  geometry::Material constant{"c", 10.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(constant.conductivity_at(500.0), 10.0);
}

struct Rig {
  std::shared_ptr<const mesh::RectilinearMesh> mesh;
  BoundarySet bcs;
  double power;
};

Rig make_rig(double exponent, double power) {
  auto scene = Scene(geometry::MaterialLibrary::empty());
  geometry::Material si{"si_t", 130.0, 2330.0, 712.0, exponent, 300.0};
  scene.materials().add(si);
  scene.materials().add({"air", 0.026, 1.2, 1005.0});

  Block slab;
  slab.name = "die";
  slab.box = Box3::make({0, 0, 0}, {1e-3, 1e-3, 200e-6});
  slab.material = scene.materials().id_of("si_t");
  scene.add(slab);
  Block heat;
  heat.name = "source";
  heat.box = Box3::make({0.25e-3, 0.25e-3, 0}, {0.75e-3, 0.75e-3, 40e-6});
  heat.material = scene.materials().id_of("si_t");
  heat.power = power;
  scene.add(std::move(heat));

  mesh::MeshOptions options;
  options.default_max_cell_xy = 100e-6;
  options.default_max_cell_z = 50e-6;
  Rig rig;
  rig.mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, options));
  rig.bcs[Face::kZMax] = FaceBc::convection(5e3, 40.0);
  rig.power = power;
  return rig;
}

TEST(Nonlinear, ConstantExponentReducesToLinear) {
  Rig rig = make_rig(0.0, 0.5);
  const auto linear = solve_steady_state(rig.mesh, rig.bcs);
  const auto nonlinear = solve_steady_state_nonlinear(rig.mesh, rig.bcs);
  EXPECT_NEAR(nonlinear.global_max(), linear.global_max(), 1e-9);
}

TEST(Nonlinear, DeratedSiliconRunsHotter) {
  // k(T) drops as the die heats -> the self-consistent field is hotter
  // than the constant-k prediction.
  Rig rig = make_rig(1.3, 1.0);
  const auto linear = solve_steady_state(rig.mesh, rig.bcs);
  const auto nonlinear = solve_steady_state_nonlinear(rig.mesh, rig.bcs);
  EXPECT_GT(nonlinear.global_max(), linear.global_max());
  // The correction is physical (a few percent of the rise), not runaway.
  const double rise_linear = linear.global_max() - 40.0;
  const double rise_nonlinear = nonlinear.global_max() - 40.0;
  EXPECT_LT(rise_nonlinear, 1.25 * rise_linear);
}

TEST(Nonlinear, SelfConsistency) {
  // Re-assembling at the converged field and solving once more must not
  // move the solution (fixed point).
  Rig rig = make_rig(1.3, 1.0);
  NonlinearOptions options;
  options.temperature_tolerance = 1e-6;
  const auto field = solve_steady_state_nonlinear(rig.mesh, rig.bcs, options);

  const auto& lib = rig.mesh->materials_library();
  math::Vector k(rig.mesh->cell_count());
  for (std::size_t cell = 0; cell < rig.mesh->cell_count(); ++cell) {
    k[cell] = lib.get(rig.mesh->material(cell)).conductivity_at(field.temperatures()[cell]);
  }
  auto system = assemble(*rig.mesh, rig.bcs, &k);
  math::Vector t = field.temperatures();
  math::conjugate_gradient(system.matrix, system.rhs, t);
  for (std::size_t cell = 0; cell < rig.mesh->cell_count(); ++cell) {
    EXPECT_NEAR(t[cell], field.temperatures()[cell], 1e-4);
  }
}

TEST(Nonlinear, PicardBudgetEnforced) {
  Rig rig = make_rig(1.3, 1.0);
  NonlinearOptions options;
  options.max_picard_iterations = 1;
  options.temperature_tolerance = 1e-12;
  EXPECT_THROW(solve_steady_state_nonlinear(rig.mesh, rig.bcs, options), SolverError);
}

TEST(Nonlinear, ConductivityOverrideValidated) {
  Rig rig = make_rig(0.0, 0.1);
  math::Vector wrong(3, 100.0);
  EXPECT_THROW(assemble(*rig.mesh, rig.bcs, &wrong), Error);
}

}  // namespace
}  // namespace photherm::thermal
