/// Golden-value regression tests pinning key paper quantities at coarse
/// resolution. These exist so future performance/refactor PRs cannot
/// silently drift the physics: the exact numbers below were produced by the
/// seed implementation and agree with the paper's published anchors
/// (Fig. 5-b, Fig. 9-a, Table 1). If a change moves one of these outside
/// its tolerance, it changed the model — not just the code.
#include <gtest/gtest.h>

#include "core/design_space.hpp"
#include "core/tech.hpp"
#include "photonics/microring.hpp"
#include "photonics/vcsel.hpp"
#include "support/fixtures.hpp"

namespace photherm {
namespace {

// ---------------------------------------------------------------------------
// Table 1: technological parameters (exact — these ARE the paper's table).
// ---------------------------------------------------------------------------

TEST(GoldenTable1, TechnologyParameters) {
  const core::TechnologyParameters tech;
  EXPECT_DOUBLE_EQ(tech.wavelength, 1550e-9);
  EXPECT_DOUBLE_EQ(tech.bandwidth_3db, 1.55e-9);
  EXPECT_DOUBLE_EQ(tech.pd_sensitivity_dbm, -20.0);
  EXPECT_DOUBLE_EQ(tech.thermal_sensitivity, 0.1e-9);
  EXPECT_DOUBLE_EQ(tech.propagation_loss_db_cm, 0.5);
  EXPECT_DOUBLE_EQ(tech.taper_coupling, 0.70);
}

TEST(GoldenTable1, DerivedDeviceAnchors) {
  const core::TechnologyParameters tech;
  const auto model = core::make_snr_model(tech);
  const photonics::Vcsel vcsel(model.vcsel);
  // Paper Sec. III-C: wall-plug efficiency ~15 % at 40 degC and ~4 % at
  // 60 degC for a 5 mA drive. Golden values from the seed implementation.
  EXPECT_NEAR(vcsel.wall_plug_efficiency(5e-3, 40.0), 0.16073, 5e-4);
  EXPECT_NEAR(vcsel.wall_plug_efficiency(5e-3, 60.0), 0.04167, 5e-4);
  // 50 % wrong drop corresponds to a 7.75 degC neighbour-ONI difference.
  EXPECT_NEAR(0.5 * tech.bandwidth_3db / tech.thermal_sensitivity, 7.75, 1e-9);
}

// ---------------------------------------------------------------------------
// Fig. 5-b: microring transmission vs wavelength misalignment.
// ---------------------------------------------------------------------------

TEST(GoldenFig5, MicroringTransmissionAnchors) {
  const auto model = core::make_snr_model();
  const photonics::MicroRing ring(model.microring);
  // On-resonance the drop port takes all the power.
  EXPECT_NEAR(ring.drop_fraction_detuned(0.0), 1.0, 1e-9);
  // Half the 3-dB bandwidth -> exactly 50 % drop (the paper's key anchor).
  EXPECT_NEAR(ring.drop_fraction_detuned(0.775e-9), 0.5, 1e-6);
  EXPECT_NEAR(ring.drop_fraction_detuned(-0.775e-9), 0.5, 1e-6);
  // One full bandwidth out: Lorentzian tail, golden value 0.2.
  EXPECT_NEAR(ring.drop_fraction_detuned(1.55e-9), 0.2, 1e-6);
  // The response is symmetric and monotonically decreasing in |detuning|.
  double previous = 1.0;
  for (double d_nm = 0.25; d_nm <= 3.0; d_nm += 0.25) {
    const double drop = ring.drop_fraction_detuned(d_nm * 1e-9);
    EXPECT_NEAR(ring.drop_fraction_detuned(-d_nm * 1e-9), drop, 1e-12);
    EXPECT_LT(drop, previous);
    previous = drop;
  }
}

// ---------------------------------------------------------------------------
// Fig. 9-a: ONI average temperature vs PVCSEL and Pchip (coarse mesh).
// ---------------------------------------------------------------------------

core::OnocDesignSpec fig9a_spec() {
  core::OnocDesignSpec spec;
  spec.placement = core::OniPlacementMode::kAllTiles;
  spec.activity = power::ActivityKind::kUniform;
  spec.heater_ratio = 0.0;
  spec.oni_cell_xy = 10e-6;
  spec.global_cell_xy = 2e-3;
  return spec;
}

TEST(GoldenFig9a, AverageTemperatureSweep) {
  const auto sweep =
      core::sweep_vcsel_chip_power(fig9a_spec(), {12.5, 25.0}, {0.0, 6e-3});
  ASSERT_EQ(sweep.size(), 4u);
  const auto at = [&](double chip, double vcsel) {
    for (const auto& row : sweep) {
      if (row.p_chip == chip && row.p_vcsel == vcsel) {
        return row;
      }
    }
    ADD_FAILURE() << "sweep point not found";
    return sweep.front();
  };
  // Golden averages from the seed implementation at this resolution.
  const double tol = 0.05;  // degC
  EXPECT_NEAR(at(12.5, 0.0).average, 43.316, tol);
  EXPECT_NEAR(at(12.5, 6e-3).average, 57.840, tol);
  EXPECT_NEAR(at(25.0, 0.0).average, 49.633, tol);
  EXPECT_NEAR(at(25.0, 6e-3).average, 64.156, tol);
  // Lasers dominate the intra-ONI gradient (Fig. 9-b motivation).
  EXPECT_NEAR(at(12.5, 6e-3).gradient, 8.292, 0.05);
  EXPECT_LT(at(12.5, 0.0).gradient, 0.2);

  // Paper-trend anchors: ~0.53 degC per W of chip power, ~1.8 degC per mW
  // of laser power (coarse mesh runs a bit hotter on the laser slope).
  const double chip_slope =
      (at(25.0, 0.0).average - at(12.5, 0.0).average) / 12.5;
  const double vcsel_slope =
      (at(12.5, 6e-3).average - at(12.5, 0.0).average) / 6.0;
  EXPECT_NEAR(chip_slope, 0.53, 0.15);
  EXPECT_GT(vcsel_slope, 1.0);
  EXPECT_LT(vcsel_slope, 3.5);
}

TEST(GoldenFig9a, AnchorsHoldOnStencilChebyshevPath) {
  // The matrix-free stencil + Chebyshev solve path must reproduce the same
  // golden anchors as the default CSR + ILU(0) path: the flag changes how
  // the system is solved, never what it converges to.
  core::SweepOptions sweep_options;
  thermal::SteadyStateOptions solver;
  solver.operator_kind = thermal::OperatorKind::kStencil;
  solver.solver.preconditioner = math::PreconditionerKind::kChebyshev;
  sweep_options.solver = solver;

  const auto sweep = core::sweep_vcsel_chip_power(fig9a_spec(), {12.5}, {0.0, 6e-3},
                                                  sweep_options);
  ASSERT_EQ(sweep.size(), 2u);
  const double tol = 0.05;  // same golden tolerance as the CSR run
  EXPECT_NEAR(sweep[0].average, 43.316, tol);
  EXPECT_NEAR(sweep[1].average, 57.840, tol);
  EXPECT_NEAR(sweep[1].gradient, 8.292, 0.05);
}

}  // namespace
}  // namespace photherm
