#include "power/activity.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace photherm::power {
namespace {

using geometry::Box3;

TileGrid grid_6x4() {
  return TileGrid(Box3::make({0, 0, 0}, {26.5e-3, 21.4e-3, 10e-6}), 6, 4);
}

TEST(TileGrid, Geometry) {
  const TileGrid grid = grid_6x4();
  EXPECT_EQ(grid.tile_count(), 24u);
  const Box3 t00 = grid.tile_box(0, 0);
  EXPECT_NEAR(t00.extent(0), 26.5e-3 / 6, 1e-12);
  EXPECT_NEAR(t00.extent(1), 21.4e-3 / 4, 1e-12);
  const Box3 t53 = grid.tile_box(5, 3);
  EXPECT_NEAR(t53.hi.x, 26.5e-3, 1e-12);
  EXPECT_NEAR(t53.hi.y, 21.4e-3, 1e-12);
  EXPECT_THROW(grid.tile_box(6, 0), Error);
}

class ActivitySweep : public ::testing::TestWithParam<ActivityKind> {};

TEST_P(ActivitySweep, ConservesTotalPower) {
  const TileGrid grid = grid_6x4();
  Rng rng(3);
  const auto powers = generate_activity(grid, GetParam(), 25.0, rng);
  ASSERT_EQ(powers.size(), 24u);
  const double total = std::accumulate(powers.begin(), powers.end(), 0.0);
  EXPECT_NEAR(total, 25.0, 1e-9);
  for (double p : powers) {
    EXPECT_GE(p, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivitySweep,
                         ::testing::Values(ActivityKind::kUniform, ActivityKind::kDiagonal,
                                           ActivityKind::kRandom, ActivityKind::kHotspot,
                                           ActivityKind::kCheckerboard),
                         [](const auto& info) { return to_string(info.param); });

TEST(Activity, UniformIsFlat) {
  const auto powers = generate_activity(grid_6x4(), ActivityKind::kUniform, 24.0);
  for (double p : powers) {
    EXPECT_NEAR(p, 1.0, 1e-12);
  }
}

TEST(Activity, DiagonalQuadrantsMatchPaper) {
  // Paper Sec. V-C: UL and BR dissipate 8 W each, UR and BL 4 W each for a
  // 24 W chip -> heavy quadrants carry twice the light ones.
  const TileGrid grid = grid_6x4();
  const auto powers = generate_activity(grid, ActivityKind::kDiagonal, 24.0);
  double ul = 0.0, ur = 0.0, bl = 0.0, br = 0.0;
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      const double p = powers[grid.tile_index(i, j)];
      const bool right = i >= grid.nx() / 2;
      const bool top = j >= grid.ny() / 2;
      (top ? (right ? ur : ul) : (right ? br : bl)) += p;
    }
  }
  EXPECT_NEAR(ul, 8.0, 1e-9);
  EXPECT_NEAR(br, 8.0, 1e-9);
  EXPECT_NEAR(ur, 4.0, 1e-9);
  EXPECT_NEAR(bl, 4.0, 1e-9);
}

TEST(Activity, RandomIsSeededDeterministic) {
  const TileGrid grid = grid_6x4();
  Rng a(11), b(11), c(12);
  const auto pa = generate_activity(grid, ActivityKind::kRandom, 10.0, a);
  const auto pb = generate_activity(grid, ActivityKind::kRandom, 10.0, b);
  const auto pc = generate_activity(grid, ActivityKind::kRandom, 10.0, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

TEST(Activity, RandomWithoutRngThrows) {
  EXPECT_THROW(generate_activity(grid_6x4(), ActivityKind::kRandom, 10.0), Error);
}

TEST(Activity, HotspotPeaksAtCenter) {
  const TileGrid grid = grid_6x4();
  const auto powers = generate_activity(grid, ActivityKind::kHotspot, 10.0);
  double corner = powers[grid.tile_index(0, 0)];
  double center = powers[grid.tile_index(3, 2)];
  EXPECT_GT(center, 2.0 * corner);
}

TEST(Activity, HeatSourceEmission) {
  const TileGrid grid = grid_6x4();
  geometry::Scene scene;
  const auto powers = generate_activity(grid, ActivityKind::kUniform, 24.0);
  add_heat_sources(scene, grid, powers, 0.0, 10e-6, "beol");
  EXPECT_EQ(scene.size(), 24u);
  EXPECT_NEAR(scene.total_power(), 24.0, 1e-9);
  EXPECT_EQ(scene[0].kind, geometry::BlockKind::kHeatSource);
  EXPECT_THROW(add_heat_sources(scene, grid, {1.0}, 0.0, 1e-6, "beol"), Error);
}

TEST(ActivityTrace, PhaseLookup) {
  const ActivityTrace trace({{1.0, 1.0}, {2.0, 0.5}, {1.0, 2.0}});
  EXPECT_DOUBLE_EQ(trace.total_duration(), 4.0);
  EXPECT_DOUBLE_EQ(trace.scale_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(trace.scale_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(trace.scale_at(3.5), 2.0);
  EXPECT_DOUBLE_EQ(trace.scale_at(99.0), 2.0);  // clamps to last
  EXPECT_THROW(ActivityTrace({}), Error);
  EXPECT_THROW(ActivityTrace({{0.0, 1.0}}), Error);
}

}  // namespace
}  // namespace photherm::power
