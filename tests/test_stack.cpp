#include "geometry/stack.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::geometry {
namespace {

TEST(LayerStack, StacksBottomUp) {
  LayerStackBuilder stack(1e-3, 2e-3);
  stack.add_layer({"a", "silicon", 100e-6});
  stack.add_layer({"b", "copper", 50e-6});
  EXPECT_DOUBLE_EQ(stack.top(), 150e-6);
  EXPECT_EQ(stack.layer_count(), 2u);
  const auto [lo, hi] = stack.layer_range(1);
  EXPECT_DOUBLE_EQ(lo, 100e-6);
  EXPECT_DOUBLE_EQ(hi, 150e-6);
}

TEST(LayerStack, EmitsSceneBlocks) {
  Scene scene;
  LayerStackBuilder stack(1e-3, 2e-3, 10e-6);
  stack.add_layer({"die", "silicon", 100e-6});
  stack.add_layer({"lid", "copper", 200e-6, BlockKind::kPackage});
  stack.emit(scene);
  ASSERT_EQ(scene.size(), 2u);
  EXPECT_EQ(scene[0].name, "die");
  EXPECT_DOUBLE_EQ(scene[0].box.lo.z, 10e-6);
  EXPECT_DOUBLE_EQ(scene[1].box.hi.z, 310e-6);
  EXPECT_EQ(scene[1].kind, BlockKind::kPackage);
  EXPECT_DOUBLE_EQ(scene[0].box.extent(0), 1e-3);
  EXPECT_DOUBLE_EQ(scene[0].box.extent(1), 2e-3);
}

TEST(LayerStack, Validation) {
  EXPECT_THROW(LayerStackBuilder(0.0, 1.0), Error);
  LayerStackBuilder stack(1e-3, 1e-3);
  EXPECT_THROW(stack.add_layer({"z", "silicon", 0.0}), Error);
  EXPECT_THROW(stack.layer_range(0), Error);
  Scene scene;
  stack.add_layer({"u", "unknown_material", 1e-6});
  EXPECT_THROW(stack.emit(scene), SpecError);
}

}  // namespace
}  // namespace photherm::geometry
