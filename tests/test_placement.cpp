#include "soc/placement.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::soc {
namespace {

TEST(RingPlacement, ArcLengthsSumToPerimeter) {
  const auto sites = ring_placement({0, 0, 0}, 6e-3, 4e-3, 5);
  ASSERT_EQ(sites.size(), 5u);
  double total = 0.0;
  for (const auto& s : sites) {
    total += s.arc_to_next;
  }
  EXPECT_NEAR(total, 2 * (6e-3 + 4e-3), 1e-12);
}

TEST(RingPlacement, SitesOnRectanglePerimeter) {
  const double w = 6e-3, h = 4e-3;
  const auto sites = ring_placement({10e-3, 10e-3, 0}, w, h, 8);
  for (const auto& s : sites) {
    const double dx = std::abs(s.center.x - 10e-3);
    const double dy = std::abs(s.center.y - 10e-3);
    const bool on_vertical = std::abs(dx - w / 2) < 1e-12 && dy <= h / 2 + 1e-12;
    const bool on_horizontal = std::abs(dy - h / 2) < 1e-12 && dx <= w / 2 + 1e-12;
    EXPECT_TRUE(on_vertical || on_horizontal)
        << s.center.x << ", " << s.center.y;
  }
}

TEST(RingPlacement, SitesAreDistinct) {
  const auto sites = ring_placement({0, 0, 0}, 5e-3, 3e-3, 12);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      EXPECT_GT(geometry::distance(sites[i].center, sites[j].center), 1e-4);
    }
  }
}

TEST(RingPlacement, FourSitesAvoidEdgeMidpoints) {
  // The half-step phase must keep 4-ONI rings off the mirror axes of the
  // die, otherwise the diagonal activity cannot differentiate them.
  const auto sites = ring_placement({0, 0, 0}, 6e-3, 4e-3, 4);
  for (const auto& s : sites) {
    EXPECT_GT(std::abs(s.center.x), 1e-4);
    EXPECT_GT(std::abs(s.center.y), 1e-4);
  }
}

TEST(RingPlacement, Validation) {
  EXPECT_THROW(ring_placement({0, 0, 0}, 0.0, 1e-3, 4), Error);
  EXPECT_THROW(ring_placement({0, 0, 0}, 1e-3, 1e-3, 1), Error);
}

TEST(RingCases, PaperPerimetersAndCounts) {
  const double die_x = 26.5e-3, die_y = 21.4e-3;
  const auto cases = all_ring_cases(die_x, die_y);
  ASSERT_EQ(cases.size(), 3u);
  EXPECT_NEAR(cases[0].perimeter, 18e-3, 1e-12);
  EXPECT_NEAR(cases[1].perimeter, 32.4e-3, 1e-12);
  EXPECT_NEAR(cases[2].perimeter, 46.8e-3, 1e-12);
  EXPECT_EQ(cases[0].oni_count, 4u);
  EXPECT_EQ(cases[1].oni_count, 8u);
  EXPECT_EQ(cases[2].oni_count, 12u);
  for (const auto& rc : cases) {
    EXPECT_EQ(rc.sites.size(), rc.oni_count);
    double total = 0.0;
    for (const auto& s : rc.sites) {
      total += s.arc_to_next;
      // Every site fits on the die.
      EXPECT_GT(s.center.x, 0.0);
      EXPECT_LT(s.center.x, die_x);
      EXPECT_GT(s.center.y, 0.0);
      EXPECT_LT(s.center.y, die_y);
    }
    EXPECT_NEAR(total, rc.perimeter, 1e-12);
  }
}

TEST(RingCases, Validation) {
  EXPECT_THROW(ring_case(0, 26.5e-3, 21.4e-3), Error);
  EXPECT_THROW(ring_case(4, 26.5e-3, 21.4e-3), Error);
  // Die too small for the case-3 rectangle.
  EXPECT_THROW(ring_case(3, 5e-3, 5e-3), Error);
}

}  // namespace
}  // namespace photherm::soc
