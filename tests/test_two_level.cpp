#include "thermal/two_level.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Block;
using geometry::Box3;
using geometry::Scene;

/// A 4 mm die with a 100 um hotspot in the middle: the case where the
/// two-level scheme matters (fine detail inside a big domain).
Scene hotspot_scene() {
  Scene scene;
  geometry::LayerStackBuilder stack(4e-3, 4e-3);
  stack.add_layer({"die", "silicon", 300e-6});
  stack.emit(scene);
  Block heat;
  heat.name = "hotspot";
  heat.box = Box3::make({1.95e-3, 1.95e-3, 0}, {2.05e-3, 2.05e-3, 30e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 0.2;
  scene.add(std::move(heat));
  // Background power elsewhere.
  Block bg;
  bg.name = "background";
  bg.box = Box3::make({0, 0, 0}, {4e-3, 4e-3, 30e-6});
  bg.material = scene.materials().id_of("silicon");
  bg.power = 2.0;
  scene.add(std::move(bg));
  return scene;
}

BoundarySet bcs() {
  BoundarySet set;
  set[Face::kZMax] = FaceBc::convection(5e3, 30.0);
  return set;
}

TEST(TwoLevel, LocalFieldRefinesGlobal) {
  const Scene scene = hotspot_scene();
  TwoLevelOptions options;
  options.global_mesh.default_max_cell_xy = 500e-6;
  options.local_mesh.default_max_cell_xy = 25e-6;
  options.window_margin = 300e-6;

  const Box3 window = Box3::make({1.9e-3, 1.9e-3, 0}, {2.1e-3, 2.1e-3, 300e-6});
  const auto result = solve_two_level(scene, bcs(), window, options);

  // The local field genuinely refines the window (more cells)...
  EXPECT_GT(result.local_field.mesh().cells_in(window).size(),
            result.global_field.mesh().cells_in(window).size());
  // ...resolves the hotspot above its surroundings...
  const Box3 rim = Box3::make({1.9e-3, 1.9e-3, 250e-6}, {2.1e-3, 2.1e-3, 300e-6});
  EXPECT_GT(result.local_field.max_in(window), result.local_field.average_in(rim));

  // ...and stays consistent with the coarse solution (Dirichlet shell):
  // window averages agree within a couple of degrees.
  const double global_avg = result.global_field.average_in(window);
  const double local_avg = result.local_field.average_in(window);
  EXPECT_NEAR(local_avg, global_avg, 2.5);
}

TEST(TwoLevel, LocalMatchesSingleLevelFineReference) {
  // On a domain small enough to solve entirely at fine resolution, the
  // two-level result must agree with the one-shot fine solve.
  Scene scene;
  geometry::LayerStackBuilder stack(1e-3, 1e-3);
  stack.add_layer({"die", "silicon", 200e-6});
  stack.emit(scene);
  Block heat;
  heat.name = "hotspot";
  heat.box = Box3::make({0.45e-3, 0.45e-3, 0}, {0.55e-3, 0.55e-3, 40e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 0.3;
  scene.add(std::move(heat));

  mesh::MeshOptions fine;
  fine.default_max_cell_xy = 20e-6;
  fine.default_max_cell_z = 40e-6;
  const auto reference =
      solve_steady_state(mesh::RectilinearMesh::build(scene, fine), bcs());

  TwoLevelOptions options;
  options.global_mesh.default_max_cell_xy = 100e-6;
  options.global_mesh.default_max_cell_z = 40e-6;
  options.local_mesh.default_max_cell_xy = 20e-6;
  options.local_mesh.default_max_cell_z = 40e-6;
  options.window_margin = 250e-6;
  const Box3 window = Box3::make({0.4e-3, 0.4e-3, 0}, {0.6e-3, 0.6e-3, 200e-6});
  const auto result = solve_two_level(scene, bcs(), window, options);

  const geometry::Vec3 probe{0.5e-3, 0.5e-3, 10e-6};
  const double t_ref = reference.at(probe);
  const double t_two = result.local_field.at(probe);
  // Within a few percent of the rise over ambient.
  EXPECT_NEAR(t_two, t_ref, 0.05 * (t_ref - 30.0));
}

TEST(TwoLevel, ReusingGlobalFieldAcrossWindows) {
  const Scene scene = hotspot_scene();
  TwoLevelOptions options;
  options.global_mesh.default_max_cell_xy = 500e-6;
  options.local_mesh.default_max_cell_xy = 50e-6;

  auto global_mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, options.global_mesh));
  const auto global_field = solve_steady_state(global_mesh, bcs());

  const Box3 w1 = Box3::make({1.9e-3, 1.9e-3, 0}, {2.1e-3, 2.1e-3, 300e-6});
  const Box3 w2 = Box3::make({0.5e-3, 0.5e-3, 0}, {0.9e-3, 0.9e-3, 300e-6});
  const auto f1 = solve_local_window(scene, bcs(), global_field, w1, options);
  const auto f2 = solve_local_window(scene, bcs(), global_field, w2, options);
  EXPECT_GT(f1.max_in(w1), f2.max_in(w2));  // hotspot window is hotter
}

TEST(TwoLevel, WindowOutsideDomainRejected) {
  const Scene scene = hotspot_scene();
  TwoLevelOptions options;
  const Box3 outside = Box3::make({10e-3, 10e-3, 0}, {11e-3, 11e-3, 1e-3});
  EXPECT_THROW(solve_two_level(scene, bcs(), outside, options), Error);
}

}  // namespace
}  // namespace photherm::thermal
