// photherm_lint fixture: the layering rule MUST fire on this file.
//
// fixtures.rules assigns this file to the `util` layer — the bottom of the
// module DAG, which may include nothing above itself — and it then includes
// a thermal/ header. An upward edge like util -> thermal would let the
// foundation depend on the solvers built on top of it, so the layering rule
// reports it. Fixtures are scanned, not compiled.

#include "thermal/fvm.hpp"  // upward edge: util may not include thermal
#include "util/error.hpp"   // own module: always allowed

namespace photherm::util {

inline double cell_temperature_hint() {
  return 300.0;  // pretend helper that peeked at solver internals
}

}  // namespace photherm::util
