// photherm_lint fixture: the concurrency rule MUST fire on this file.
//
// The inline lambda handed to parallel_for captures the enclosing locals by
// reference and mutates them without partitioning by the loop index:
// concurrent iterations race on `sum` and `hot`, and the result depends on
// the interleaving. Fixtures are scanned, not compiled.

#include <cstddef>
#include <vector>

namespace photherm {

inline double hot_cell_average(util::ThreadPool& pool, const std::vector<double>& cells) {
  double sum = 0.0;
  std::size_t hot = 0;
  util::parallel_for(pool, cells.size(), [&](std::size_t i) {
    if (cells[i] > 350.0) {
      ++hot;  // racy read-modify-write of a by-reference capture
    }
    sum += cells[i];  // ditto: not partitioned by i
  });
  return sum / static_cast<double>(hot);
}

inline void drain(util::ThreadPool& pool, std::vector<double>& queue, double& last_seen) {
  pool.submit([&last_seen, &queue] {
    last_seen = queue.back();  // explicit &-capture written from the pool thread
  });
}

}  // namespace photherm
