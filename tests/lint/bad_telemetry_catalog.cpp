// photherm_lint fixture: the telemetry rule MUST fire on this file — in
// both directions. fixtures.rules declares this file as its own
// telemetry_catalog, so the rule joins the call sites below against the
// seeded entries:
//   * `solver.demo.iterations` is used but never seeded (catalog-driven
//     reports silently drop it);
//   * `pool.demo.queue_wait` is seeded but never used (it reports a
//     permanent zero).
// Fixtures are scanned, not compiled.

namespace photherm::demo {

struct MetricDef {
  const char* name;
  const char* kind;
};

inline const MetricDef* catalog() {
  static const MetricDef entries[] = {
      {"solver.demo.solves", "counter"},
      {"pool.demo.queue_wait", "timer"},  // dead entry: no call site below
  };
  return entries;
}

inline void instrument(int iterations) {
  telemetry::count("solver.demo.solves", 1);
  // Name drift: "iterations" was never added to the catalog.
  telemetry::count("solver.demo.iterations", iterations);
}

}  // namespace photherm::demo
