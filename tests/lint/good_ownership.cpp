// photherm_lint fixture: the ownership rule must stay SILENT on this file.
//
// The owning spellings of the patterns in bad_ownership.cpp: value members,
// smart pointers, and borrowing only for the duration of a call (parameters
// and locals are fine — the hazard is a *member* that outlives the call).
// Fixtures are scanned, not compiled.

#include <memory>

#include "math/csr_matrix.hpp"
#include "math/linear_operator.hpp"

namespace photherm::math {

class OwningSsorPreconditioner {
 public:
  // Borrowing a reference parameter for the duration of the constructor is
  // fine; the constructor copies what it needs.
  explicit OwningSsorPreconditioner(const CsrMatrix& matrix) : matrix_(matrix) {}

  void apply(const std::vector<double>& r, std::vector<double>& z) const;

 private:
  CsrMatrix matrix_;  // owned copy: cannot dangle
};

class CloningSolver {
 private:
  std::unique_ptr<LinearOperator> op_;              // owned clone
  std::shared_ptr<const CsrMatrix> shared_matrix_;  // shared ownership
};

inline double first_diagonal(const CsrMatrix& matrix) {
  const CsrMatrix* local = &matrix;  // local borrow, dies with the call
  return local->diagonal(0);
}

// An allowlisted view member carries its lifetime argument inline.
class ScratchView {
 private:
  // ph-lint: allow(ownership) borrowed for one solve; caller outlives us by contract
  const CsrMatrix* matrix_ = nullptr;
};

}  // namespace photherm::math
