// photherm_lint fixture: the determinism rule MUST fire on this file.
//
// Wall clocks and ambient randomness make two runs differ; iterating an
// unordered container visits hash order, so any output or accumulation it
// feeds loses bit-identity across platforms and standard libraries.
// Fixtures are scanned, not compiled.

#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace photherm {

inline double ambient_noise() {
  std::random_device entropy;        // non-deterministic seed
  std::srand(entropy());             // ambient global state
  return std::rand() / 2147483647.0; /* unseeded draw */
}

inline long stamp() {
  return time(nullptr);  // wall clock in library code
}

inline double hash_order_sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, weight] : weights) {  // hash-order accumulation
    total += weight;
  }
  return total;
}

}  // namespace photherm
