// photherm_lint fixture: raw and spliced string literals must be BLANKED —
// no rule may fire on this file even though the literal bodies below spell
// out every determinism trigger.
//
// This pins the two PR 7 lexer bugs: the old blanker only recognized a
// bare `R"` (so the u8R-prefixed raw string leaked its body into the
// scanned code), and it did not splice string literals continued by a
// trailing backslash. Fixtures are scanned, not compiled.

#include <string>

namespace photherm {

inline const char* ban_summary() {
  return R"(calling std::rand() or time(nullptr) is banned in src/)";
}

inline const char* ban_details() {
  // The encoding prefix defeated the PR 7 blanker.
  return u8R"doc(std::random_device, srand(seed), steady_clock: banned too)doc";
}

inline const char* ban_multiline() {
  return R"(first line mentions a // comment marker
second line has an unmatched " quote and clock( text
third line: gettimeofday, localtime, system_clock)";
}

inline const char* ban_spliced() {
  return "std::ra\
nd() split by a line splice is still one literal";
}

}  // namespace photherm
