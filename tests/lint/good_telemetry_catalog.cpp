// photherm_lint fixture: the telemetry rule must stay SILENT on this file.
//
// fixtures.rules declares this file as its own telemetry_catalog. Every
// call site below resolves against the seeded entries — an exact literal, a
// ScopedTimer, and a dynamically assembled name (matched by its ordered
// literal fragments, anchored at both ends) — and every catalog entry has
// at least one call site. Fixtures are scanned, not compiled.

#include <string>

namespace photherm::demo {

struct MetricDef {
  const char* name;
  const char* kind;
};

inline const MetricDef* catalog() {
  static const MetricDef entries[] = {
      {"solver.demo.solves", "counter"},
      {"solver.demo.time", "timer"},
      {"precond.demo.builds", "counter"},
  };
  return entries;
}

inline void instrument(const std::string& kind, int builds) {
  telemetry::count("solver.demo.solves", 1);
  telemetry::ScopedTimer solve_timer("solver.demo.time");
  // Dynamic name: fragments "precond." + <kind> + ".builds" match the
  // seeded precond.demo.builds entry.
  telemetry::count(std::string("precond.") + kind + ".builds", builds);
}

}  // namespace photherm::demo
