// photherm_lint fixture: the serialization rule MUST fire on this file.
// (The fixture config lists it as a persisted-format writer.)
//
// Every spelling here loses the exact-round-trip guarantee: std::to_string
// truncates doubles to 6 digits, iostream precision either truncates or
// over-spells, and printf float conversions do both. Persisted doubles go
// through util::format_shortest. Fixtures are scanned, not compiled.

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace photherm {

inline std::string checkpoint_line(double temperature) {
  return "t=" + std::to_string(temperature);  // 6 digits: 0.1+0.2 won't round-trip
}

inline std::string csv_cell(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;  // truncated spelling
  return os.str();
}

inline std::string fixed_cell(double value) {
  std::ostringstream os;
  os << std::fixed << value;
  return os.str();
}

inline int printf_cell(char* buffer, double value) {
  return std::sprintf(buffer, "%.17g", value);  // printf float conversion
}

}  // namespace photherm
