// photherm_lint fixture: the lifetime rule MUST fire on this file.
//
// Containers (and aliases) whose elements are raw pointers, references, or
// reference_wrappers to solver-lifetime types: reseating or destroying the
// pointee dangles every element at once — the collection-sized version of
// the PR 6 SSOR bug. The rule walks the token stream, so the multi-line
// declaration fires too. Fixtures are scanned, not compiled.

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace photherm {

// Raw-pointer pool: nothing owns the matrices the cache points at.
std::vector<CsrMatrix*> warm_factor_cache;

// Multi-line spelling of the same hazard: single-line regexes miss it.
std::map<std::string,
         const ThermalField*>
    fields_by_name;

// Alias spelling: the alias is the container type, the hazard is identical.
using PreconditionerList = std::vector<Preconditioner*>;

// reference_wrapper is still a non-owning view.
std::vector<std::reference_wrapper<RectilinearMesh>> meshes_under_test;

}  // namespace photherm
