// photherm_lint fixture: the errors rule MUST fire on this file.
//
// Throwing anything that is not photherm::Error (or a subclass, by the
// project convention of type names ending in `Error`) breaks the contract
// that callers and the test suite can assert on failure modes; abort() and
// exit() skip the contract entirely. Fixtures are scanned, not compiled.

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace photherm {

inline void reject(const std::string& what) {
  throw std::runtime_error(what);  // not a photherm::Error
}

inline void reject_literal() {
  throw "bad input";  // untyped throw
}

inline void reject_logic(int value) {
  if (value < 0) {
    throw std::logic_error("negative");
  }
}

inline void give_up() {
  std::abort();  // not an error path
}

inline void bail(int code) {
  exit(code);  // skips every destructor and every test assertion
}

}  // namespace photherm
