// photherm_lint fixture: the determinism rule must stay SILENT on this file.
//
// Deterministic spellings of the patterns in bad_determinism.cpp: seeded
// util::Rng draws, keyed unordered lookups (no iteration), ordered
// containers for anything that feeds output, and member functions that
// merely *name* time. Fixtures are scanned, not compiled.

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace photherm {

inline double seeded_noise(std::uint64_t seed) {
  Rng rng(seed);  // every stochastic input derives from an explicit seed
  return rng.uniform(0.0, 1.0);
}

class Clocked {
 public:
  double time() const { return time_; }    // accessor named `time` is fine
  void set_time(double time) { time_ = time; }

 private:
  double time_ = 0.0;
};

inline double keyed_lookup(const std::unordered_map<std::string, double>& cache,
                           const std::vector<std::string>& ordered_keys) {
  // Lookups are deterministic; only iteration visits hash order. Walk the
  // caller's ordered key list instead of the container.
  double total = 0.0;
  for (const std::string& key : ordered_keys) {
    const auto it = cache.find(key);
    if (it != cache.end()) {
      total += it->second;
    }
  }
  return total;
}

inline double sorted_sum(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, weight] : weights) {  // std::map iterates in key order
    total += weight;
  }
  return total;
}

}  // namespace photherm
