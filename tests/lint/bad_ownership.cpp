// photherm_lint fixture: the ownership rule MUST fire on this file.
//
// Reconstruction of the PR 6 SsorPreconditioner bug: the preconditioner
// captured a raw `const CsrMatrix*` into a matrix it did not own, so a
// caller could free or mutate the matrix between build() and apply() and
// the triangular sweeps would read dangling or stale data. The fix (and
// the invariant this rule enforces) is that every holder owns its data.
// Fixtures are scanned, not compiled.

#include "math/csr_matrix.hpp"
#include "math/preconditioner.hpp"

namespace photherm::math {

class DanglingSsorPreconditioner {
 public:
  explicit DanglingSsorPreconditioner(const CsrMatrix& matrix) : matrix_(&matrix) {}

  void apply(const std::vector<double>& r, std::vector<double>& z) const;

 private:
  const CsrMatrix* matrix_;  // the PR 6 bug: non-owning view member
};

// Reference members are the same hazard (and additionally pin the class to
// one binding for its whole lifetime).
struct StencilView {
  const StencilOperator7& op;
};

// NSDMI spelling of the same pointer member.
class MeshProbe {
 private:
  const mesh::RectilinearMesh* mesh_ = nullptr;
};

}  // namespace photherm::math
