// photherm_lint fixture: the concurrency rule must stay SILENT on this file.
//
// Every write inside the parallel lambdas is either index-partitioned
// (each iteration owns slot i, so no two iterations touch the same
// element) or lands on a lambda-local — the two patterns the codebase uses
// for race-free parallel writes. Fixtures are scanned, not compiled.

#include <cstddef>
#include <vector>

namespace photherm {

inline void scaled_copy(util::ThreadPool& pool, const std::vector<double>& x,
                        std::vector<double>& out) {
  util::parallel_for(pool, x.size(), [&](std::size_t i) {
    const double scaled = 2.0 * x[i];  // lambda-local scratch
    out[i] = scaled;                   // index-partitioned write
  });
}

inline double chunk_sum(util::ThreadPool& pool, const std::vector<double>& x,
                        std::vector<double>& partial, std::size_t grain) {
  util::parallel_for(pool, partial.size(), [&](std::size_t slot) {
    double local = 0.0;  // accumulate locally, publish once per slot
    for (std::size_t j = slot * grain; j < (slot + 1) * grain && j < x.size(); ++j) {
      local += x[j];
    }
    partial[slot] = local;
  });
  double total = 0.0;
  for (const double p : partial) {  // sequential combine after the join
    total += p;
  }
  return total;
}

}  // namespace photherm
