// photherm_lint fixture: the layering rule must stay SILENT on this file.
//
// fixtures.rules assigns this file to the `util` layer, like its bad_ twin,
// but every include here is legal: its own module, a same-directory header
// (no module prefix), and angled system headers, which are exempt from
// layering. Fixtures are scanned, not compiled.

#include <string>
#include <vector>

#include "util/error.hpp"    // own module: always allowed
#include "local_helpers.hpp" // no module prefix: not a layered include

namespace photherm::util {

inline std::string layer_name() { return "util"; }

}  // namespace photherm::util
