// photherm_lint fixture: the serialization rule must stay SILENT on this
// file, even though the fixture config lists it as a persisted-format
// writer: every double goes through util::format_shortest, integral
// std::to_string carries an inline allow naming the type, and prose
// mentioning std::to_string or %g lives in comments and string literals the
// scanner blanks. Fixtures are scanned, not compiled.

#include <string>

#include "util/string_util.hpp"

namespace photherm {

inline std::string checkpoint_line(double temperature) {
  // format_shortest: the shortest spelling that parses back bit-identically.
  return "t=" + format_shortest(temperature);
}

inline std::string row_header(std::size_t row) {
  // ph-lint: allow(serialization) std::size_t row index; integers round-trip exactly
  return "row" + std::to_string(row);
}

inline std::string describe() {
  // A message *about* formatting is not formatting: `std::to_string` below
  // lives in a string literal the scanner blanks before the rules run.
  return std::string("doubles are written with format_shortest, never std::to_string");
}

}  // namespace photherm
