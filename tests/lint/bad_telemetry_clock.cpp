// photherm_lint fixture: the determinism rule MUST fire on this file.
//
// A clock read outside the allowlisted telemetry site. The real tree
// grants exactly one `allow determinism` clock entry —
// src/util/telemetry.cpp — and this fixture proves that a second file
// reaching for std::chrono directly (instead of routing through
// util::telemetry's Span/ScopedTimer) is still caught. Fixtures are
// scanned, not compiled.

#include <chrono>
#include <cstdint>

namespace photherm {

inline std::int64_t ad_hoc_stamp() {
  // A "quick local timing hack" that bypasses util::telemetry: the clock
  // read below must be flagged even though the intent is observability.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count();
}

}  // namespace photherm
