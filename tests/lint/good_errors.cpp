// photherm_lint fixture: the errors rule must stay SILENT on this file.
//
// The blessed spellings: PH_REQUIRE for preconditions, photherm::Error and
// its subclasses (any type ending in `Error`) for everything else, bare
// `throw;` to rethrow, and prose about throwing in comments or literals.
// Fixtures are scanned, not compiled.

#include <string>

#include "util/error.hpp"

namespace photherm {

inline void require_positive(double value) {
  PH_REQUIRE(value > 0.0, "value must be positive");
}

inline void reject(const std::string& what) {
  throw SpecError("invalid spec: " + what);
}

inline void diverge() {
  throw SolverError("did not converge");
}

inline void reject_qualified() {
  throw ::photherm::Error("qualified spelling");
}

inline void annotate_and_rethrow(const std::string& context) {
  try {
    diverge();
  } catch (const Error&) {
    (void)context;
    throw;  // rethrow keeps the original type
  }
}

inline std::string describe() {
  return "call sites may throw std::runtime_error only in this string";
}

}  // namespace photherm
