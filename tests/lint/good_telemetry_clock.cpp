// photherm_lint fixture: the determinism rule must stay SILENT on this
// file.
//
// This fixture mirrors src/util/telemetry.cpp's role as the project's
// single allowlisted clock site: fixtures.rules carries an
// `allow determinism` entry for it, exactly like the real
// tools/photherm_lint.rules does for the telemetry implementation. The
// clock read is identical to bad_telemetry_clock.cpp — only the allowlist
// entry separates them, which is the mechanism under test. Fixtures are
// scanned, not compiled.

#include <chrono>
#include <cstdint>

namespace photherm {

inline std::int64_t telemetry_site_stamp() {
  // The one sanctioned spelling: a monotonic read inside the allowlisted
  // telemetry implementation, never fed back into numerical state.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count();
}

}  // namespace photherm
