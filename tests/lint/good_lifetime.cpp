// photherm_lint fixture: the lifetime rule must stay SILENT on this file.
//
// The owning spellings of the collections in bad_lifetime.cpp: element
// values and owning smart pointers tie element lifetime to the container,
// and raw pointers to non-solver types are outside the rule's guarded set.
// Fixtures are scanned, not compiled.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace photherm {

// Values: the container owns its elements outright.
std::vector<CsrMatrix> cached_factors;

// Owning smart pointers: destruction order belongs to the container.
std::vector<std::unique_ptr<Preconditioner>> preconditioner_chain;

std::map<std::string,
         ThermalField>
    fields_by_name;

// Raw pointers to non-solver-lifetime types are not this rule's concern.
std::vector<const char*> column_names;

}  // namespace photherm
