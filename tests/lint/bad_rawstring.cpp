// photherm_lint fixture: the determinism rule MUST fire on this file — on
// the real std::rand() call at the bottom, not on the raw-string bodies
// above it.
//
// The raw strings are the same decoys as in good_rawstring.cpp. They prove
// the lexer closes each literal at its own )delim" terminator: if blanking
// overshot (or never ended), the genuine call after them would be swallowed
// and this fixture would stop firing. Fixtures are scanned, not compiled.

#include <cstdlib>
#include <string>

namespace photherm {

inline const char* ban_summary() {
  return R"(calling std::rand() or time(nullptr) is banned in src/)";
}

inline const char* ban_details() {
  return u8R"doc(std::random_device, srand(seed), steady_clock: banned too)doc";
}

inline const char* ban_multiline() {
  return R"(first line mentions a // comment marker
second line has an unmatched " quote and clock( text
third line: gettimeofday, localtime, system_clock)";
}

inline int entropy() {
  return std::rand();  // the real call: lexing resumed after the raw strings
}

}  // namespace photherm
