#include "geometry/material.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::geometry {
namespace {

TEST(MaterialLibrary, StandardSetPresent) {
  MaterialLibrary lib;
  for (const std::string& name : standard_material_names()) {
    EXPECT_TRUE(lib.contains(name)) << name;
  }
  EXPECT_GE(lib.size(), 15u);
}

TEST(MaterialLibrary, PhysicallyPlausibleConductivities) {
  MaterialLibrary lib;
  // Sanity ordering of the heat paths in the package model.
  EXPECT_GT(lib.get("copper").conductivity, lib.get("silicon").conductivity);
  EXPECT_GT(lib.get("silicon").conductivity, lib.get("inp").conductivity);
  EXPECT_GT(lib.get("inp").conductivity, lib.get("silicon_dioxide").conductivity);
  EXPECT_GT(lib.get("silicon_dioxide").conductivity, lib.get("air").conductivity);
  for (const std::string& name : standard_material_names()) {
    const Material& m = lib.get(name);
    EXPECT_GT(m.conductivity, 0.0) << name;
    EXPECT_GT(m.density, 0.0) << name;
    EXPECT_GT(m.specific_heat, 0.0) << name;
  }
}

TEST(MaterialLibrary, AddAndLookup) {
  MaterialLibrary lib = MaterialLibrary::empty();
  EXPECT_EQ(lib.size(), 0u);
  const MaterialId id = lib.add({"diamond", 2200.0, 3510.0, 520.0});
  EXPECT_EQ(lib.id_of("diamond"), id);
  EXPECT_DOUBLE_EQ(lib.get(id).conductivity, 2200.0);
  EXPECT_THROW(lib.id_of("unobtainium"), SpecError);
}

TEST(MaterialLibrary, RejectsDuplicatesAndBadValues) {
  MaterialLibrary lib = MaterialLibrary::empty();
  lib.add({"x", 1.0, 1.0, 1.0});
  EXPECT_THROW(lib.add({"x", 2.0, 2.0, 2.0}), Error);
  EXPECT_THROW(lib.add({"", 1.0, 1.0, 1.0}), Error);
  EXPECT_THROW(lib.add({"bad_k", 0.0, 1.0, 1.0}), Error);
  EXPECT_THROW(lib.add({"bad_rho", 1.0, -1.0, 1.0}), Error);
}

TEST(MaterialLibrary, IdOutOfRangeThrows) {
  MaterialLibrary lib = MaterialLibrary::empty();
  EXPECT_THROW(lib.get(MaterialId{3}), Error);
}

}  // namespace
}  // namespace photherm::geometry
