#include "core/tech.hpp"

#include <gtest/gtest.h>

namespace photherm::core {
namespace {

TEST(Tech, Table1Defaults) {
  const TechnologyParameters tech;
  EXPECT_DOUBLE_EQ(tech.wavelength, 1550e-9);
  EXPECT_DOUBLE_EQ(tech.bandwidth_3db, 1.55e-9);
  EXPECT_DOUBLE_EQ(tech.pd_sensitivity_dbm, -20.0);
  EXPECT_DOUBLE_EQ(tech.thermal_sensitivity, 0.1e-9);
  EXPECT_DOUBLE_EQ(tech.propagation_loss_db_cm, 0.5);
  EXPECT_DOUBLE_EQ(tech.taper_coupling, 0.70);
}

TEST(Tech, ModelInheritsParameters) {
  TechnologyParameters tech;
  tech.bandwidth_3db = 2e-9;
  tech.thermal_sensitivity = 0.2e-9;
  tech.propagation_loss_db_cm = 1.0;
  const auto model = make_snr_model(tech);
  EXPECT_DOUBLE_EQ(model.microring.bandwidth_3db, 2e-9);
  EXPECT_DOUBLE_EQ(model.microring.dlambda_dt, 0.2e-9);
  EXPECT_DOUBLE_EQ(model.vcsel.dlambda_dt, 0.2e-9);
  EXPECT_DOUBLE_EQ(model.waveguide.propagation_loss_db_per_cm, 1.0);
  EXPECT_DOUBLE_EQ(model.taper.coupling_efficiency, 0.70);
  EXPECT_DOUBLE_EQ(model.channels.center, 1550e-9);
}

TEST(Tech, TableHasAllRows) {
  const Table table = technology_table();
  EXPECT_EQ(table.column_count(), 2u);
  EXPECT_GE(table.row_count(), 6u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("1550 nm"), std::string::npos);
  EXPECT_NE(text.find("-20"), std::string::npos);
}

}  // namespace
}  // namespace photherm::core
