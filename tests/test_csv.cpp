#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace photherm {
namespace {

TEST(Table, RowWidthEnforced) {
  Table table({"a", "b"});
  table.add_row({1.0, 2.0});
  EXPECT_THROW(table.add_row({1.0}), Error);
  EXPECT_THROW(table.add_row({1.0, 2.0, 3.0}), Error);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(Table, TextRenderingContainsHeaderAndValues) {
  Table table({"name", "value"});
  table.add_row({std::string("x"), 42.0});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table table({"a", "b"});
  table.add_row({1.5, std::string("two")});
  EXPECT_EQ(table.to_csv(), "a,b\n1.5,two\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a"});
  table.add_row({std::string("hello, world")});
  table.add_row({std::string("say \"hi\"")});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrecisionControlsNumericFormat) {
  Table table({"v"});
  table.add_row({3.14159265});
  table.set_precision(3);
  EXPECT_NE(table.to_csv().find("3.14\n"), std::string::npos);
  EXPECT_THROW(table.set_precision(0), Error);
  EXPECT_THROW(table.set_precision(99), Error);
}

TEST(Table, EmptyHeaderRejected) { EXPECT_THROW(Table({}), Error); }

TEST(Table, PrintTableWritesTitle) {
  Table table({"x"});
  table.add_row({1.0});
  std::ostringstream os;
  print_table(os, "My Title", table);
  EXPECT_NE(os.str().find("== My Title =="), std::string::npos);
}

}  // namespace
}  // namespace photherm
