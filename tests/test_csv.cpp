#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm {
namespace {

TEST(Table, RowWidthEnforced) {
  Table table({"a", "b"});
  table.add_row({1.0, 2.0});
  EXPECT_THROW(table.add_row({1.0}), Error);
  EXPECT_THROW(table.add_row({1.0, 2.0, 3.0}), Error);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(Table, TextRenderingContainsHeaderAndValues) {
  Table table({"name", "value"});
  table.add_row({std::string("x"), 42.0});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table table({"a", "b"});
  table.add_row({1.5, std::string("two")});
  EXPECT_EQ(table.to_csv(), "a,b\n1.5,two\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"a"});
  table.add_row({std::string("hello, world")});
  table.add_row({std::string("say \"hi\"")});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrecisionControlsNumericFormat) {
  Table table({"v"});
  table.add_row({3.14159265});
  table.set_precision(3);
  EXPECT_NE(table.to_csv().find("3.14\n"), std::string::npos);
  EXPECT_THROW(table.set_precision(0), Error);
  EXPECT_THROW(table.set_precision(99), Error);
}

// Exact mode (set_exact / precision 17) routes numeric cells through
// util::format_shortest: the shortest spelling that parses back to the
// identical double, so persisted CSVs round-trip bit-for-bit. The lint
// serialization rule forbids iostream-precision doubles in persisted
// formats; this pins the replacement behaviour.
TEST(Table, ExactModeUsesShortestRoundTripSpelling) {
  Table table({"v"});
  table.set_exact();
  // 0.1 + 0.2 != 0.3: the shortest round-trip spelling keeps the extra
  // digits where they matter...
  const double awkward = 0.1 + 0.2;
  table.add_row({awkward});
  // ...and common values stay readable instead of 17-digit spellings.
  table.add_row({0.3});
  EXPECT_EQ(table.to_csv(), "v\n" + format_shortest(awkward) + "\n0.3\n");
  EXPECT_NE(format_shortest(awkward), "0.3");
  // The cell text parses back to the exact bits that were formatted.
  EXPECT_EQ(std::stod(format_shortest(awkward)), awkward);
}

TEST(Table, SetExactMatchesPrecision17) {
  Table by_exact({"v"});
  by_exact.set_exact();
  Table by_precision({"v"});
  by_precision.set_precision(Table::kExactPrecision);
  by_exact.add_row({1.0 / 3.0});
  by_precision.add_row({1.0 / 3.0});
  EXPECT_EQ(by_exact.to_csv(), by_precision.to_csv());
}

TEST(Table, EmptyHeaderRejected) { EXPECT_THROW(Table({}), Error); }

TEST(Table, PrintTableWritesTitle) {
  Table table({"x"});
  table.add_row({1.0});
  std::ostringstream os;
  print_table(os, "My Title", table);
  EXPECT_NE(os.str().find("== My Title =="), std::string::npos);
}

}  // namespace
}  // namespace photherm
