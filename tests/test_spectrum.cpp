#include "photonics/spectrum.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::photonics {
namespace {

TEST(ChannelPlan, CenteredAroundWindow) {
  ChannelPlanParams params;
  params.center = 1550e-9;
  params.spacing = 2e-9;
  params.channel_count = 4;
  const ChannelPlan plan{params};
  // Channels at -3, -1, +1, +3 half-spacings around the centre.
  EXPECT_NEAR(plan.wavelength(0), 1547e-9, 1e-15);
  EXPECT_NEAR(plan.wavelength(1), 1549e-9, 1e-15);
  EXPECT_NEAR(plan.wavelength(2), 1551e-9, 1e-15);
  EXPECT_NEAR(plan.wavelength(3), 1553e-9, 1e-15);
  // Mean equals the centre.
  double mean = 0.0;
  for (double l : plan.wavelengths()) {
    mean += l;
  }
  EXPECT_NEAR(mean / 4.0, 1550e-9, 1e-15);
}

TEST(ChannelPlan, OddCountPutsChannelOnCenter) {
  ChannelPlanParams params;
  params.channel_count = 5;
  params.spacing = 1e-9;
  const ChannelPlan plan{params};
  EXPECT_NEAR(plan.wavelength(2), params.center, 1e-15);
}

TEST(ChannelPlan, UniformSpacing) {
  const ChannelPlan plan{ChannelPlanParams{}};
  const auto ls = plan.wavelengths();
  for (std::size_t i = 1; i < ls.size(); ++i) {
    EXPECT_NEAR(ls[i] - ls[i - 1], plan.params().spacing, 1e-15);
  }
}

TEST(ChannelPlan, NearestChannel) {
  ChannelPlanParams params;
  params.channel_count = 4;
  params.spacing = 2e-9;
  const ChannelPlan plan{params};
  EXPECT_EQ(plan.nearest_channel(plan.wavelength(2) + 0.3e-9), 2u);
  EXPECT_EQ(plan.nearest_channel(1500e-9), 0u);
  EXPECT_EQ(plan.nearest_channel(1600e-9), 3u);
}

TEST(ChannelPlan, Validation) {
  ChannelPlanParams params;
  params.channel_count = 0;
  EXPECT_THROW(ChannelPlan{params}, Error);
  params = ChannelPlanParams{};
  params.spacing = 0.0;
  EXPECT_THROW(ChannelPlan{params}, Error);
  const ChannelPlan ok{ChannelPlanParams{}};
  EXPECT_THROW(ok.wavelength(99), Error);
}

}  // namespace
}  // namespace photherm::photonics
