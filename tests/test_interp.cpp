#include "util/interp.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm {
namespace {

TEST(LinearInterp, ExactAtKnots) {
  const LinearInterp1D f({0.0, 1.0, 3.0}, {2.0, 4.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f(1.0), 4.0);
  EXPECT_DOUBLE_EQ(f(3.0), 0.0);
}

TEST(LinearInterp, LinearBetweenKnots) {
  const LinearInterp1D f({0.0, 2.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(f(0.5), 2.5);
  EXPECT_DOUBLE_EQ(f(1.0), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 7.5);
}

TEST(LinearInterp, ClampsOutsideDomain) {
  const LinearInterp1D f({1.0, 2.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(10.0), 7.0);
}

TEST(LinearInterp, Derivative) {
  const LinearInterp1D f({0.0, 1.0, 2.0}, {0.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(f.derivative(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f.derivative(1.5), 2.0);
}

TEST(LinearInterp, RejectsBadInput) {
  EXPECT_THROW(LinearInterp1D({1.0}, {1.0}), Error);
  EXPECT_THROW(LinearInterp1D({1.0, 1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(LinearInterp1D({2.0, 1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(LinearInterp1D({1.0, 2.0}, {1.0}), Error);
}

TEST(FindSegment, BoundariesAndInterior) {
  const std::vector<double> knots{0.0, 1.0, 2.0, 5.0};
  EXPECT_EQ(find_segment(knots, -1.0), 0u);
  EXPECT_EQ(find_segment(knots, 0.0), 0u);
  EXPECT_EQ(find_segment(knots, 0.5), 0u);
  EXPECT_EQ(find_segment(knots, 1.0), 1u);
  EXPECT_EQ(find_segment(knots, 1.999), 1u);
  EXPECT_EQ(find_segment(knots, 4.0), 2u);
  EXPECT_EQ(find_segment(knots, 5.0), 2u);
  EXPECT_EQ(find_segment(knots, 99.0), 2u);
}

TEST(BilinearInterp, ExactAtGridPoints) {
  const BilinearInterp2D f({0.0, 1.0}, {0.0, 1.0}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(f(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(1.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(1.0, 1.0), 4.0);
}

TEST(BilinearInterp, CenterIsMean) {
  const BilinearInterp2D f({0.0, 1.0}, {0.0, 1.0}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(f(0.5, 0.5), 2.5);
}

TEST(BilinearInterp, ClampsOutside) {
  const BilinearInterp2D f({0.0, 1.0}, {0.0, 1.0}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(f(-5.0, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(f(5.0, 5.0), 4.0);
}

TEST(BilinearInterp, RejectsRaggedValues) {
  EXPECT_THROW(BilinearInterp2D({0.0, 1.0}, {0.0, 1.0}, {{1.0}, {3.0, 4.0}}), Error);
  EXPECT_THROW(BilinearInterp2D({0.0, 1.0}, {0.0, 1.0}, {{1.0, 2.0}}), Error);
}

}  // namespace
}  // namespace photherm
