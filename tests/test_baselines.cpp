#include "noc/baselines.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::noc {
namespace {

TEST(Baselines, OrnocIsCrossingFree) {
  const CrossbarLossParams params;
  for (std::size_t s = 0; s < 8; ++s) {
    for (std::size_t d = 0; d < 8; ++d) {
      if (s == d) {
        continue;
      }
      EXPECT_EQ(path_model(CrossbarTopology::kOrnoc, 8, s, d, params).crossings, 0);
    }
  }
}

TEST(Baselines, OrnocTakesShorterArc) {
  const CrossbarLossParams params;
  const auto near = path_model(CrossbarTopology::kOrnoc, 8, 0, 1, params);
  const auto far = path_model(CrossbarTopology::kOrnoc, 8, 0, 7, params);  // 1 hop ccw
  EXPECT_DOUBLE_EQ(near.length, far.length);
}

TEST(Baselines, WorstAtLeastAverage) {
  const CrossbarLossParams params;
  for (const auto topology :
       {CrossbarTopology::kOrnoc, CrossbarTopology::kMatrix,
        CrossbarTopology::kLambdaRouter, CrossbarTopology::kSnake}) {
    for (std::size_t n : {4u, 8u, 16u}) {
      EXPECT_GE(worst_case_loss_db(topology, n, params),
                average_loss_db(topology, n, params) - 1e-12)
          << to_string(topology) << " n=" << n;
    }
  }
}

TEST(Baselines, LossGrowsWithScale) {
  const CrossbarLossParams params;
  for (const auto topology :
       {CrossbarTopology::kOrnoc, CrossbarTopology::kMatrix,
        CrossbarTopology::kLambdaRouter, CrossbarTopology::kSnake}) {
    EXPECT_LT(worst_case_loss_db(topology, 4, params),
              worst_case_loss_db(topology, 32, params))
        << to_string(topology);
  }
}

TEST(Baselines, OrnocWinsAtPaperScale) {
  // Sec. II claim: ORNoC reduces both worst-case and average insertion loss
  // versus Matrix, lambda-router and Snake at 4x4 (16 nodes).
  const CrossbarLossParams params;
  const std::size_t n = 16;
  const double ornoc_worst = worst_case_loss_db(CrossbarTopology::kOrnoc, n, params);
  const double ornoc_avg = average_loss_db(CrossbarTopology::kOrnoc, n, params);
  for (const auto topology :
       {CrossbarTopology::kMatrix, CrossbarTopology::kLambdaRouter,
        CrossbarTopology::kSnake}) {
    EXPECT_LT(ornoc_worst, worst_case_loss_db(topology, n, params)) << to_string(topology);
    EXPECT_LT(ornoc_avg, average_loss_db(topology, n, params)) << to_string(topology);
  }
}

TEST(Baselines, ReductionMagnitudeNearPaper) {
  // ~42.5 % worst-case and ~38 % average reduction (we accept a band).
  const CrossbarLossParams params;
  const std::size_t n = 16;
  const double ornoc_worst = worst_case_loss_db(CrossbarTopology::kOrnoc, n, params);
  double reduction = 0.0;
  for (const auto topology :
       {CrossbarTopology::kMatrix, CrossbarTopology::kLambdaRouter,
        CrossbarTopology::kSnake}) {
    reduction += 1.0 - ornoc_worst / worst_case_loss_db(topology, n, params);
  }
  reduction /= 3.0;
  EXPECT_GT(reduction, 0.30);
  EXPECT_LT(reduction, 0.60);
}

TEST(Baselines, InsertionLossComposition) {
  CrossbarLossParams params;
  params.drop_loss_db = 1.0;
  params.through_loss_db = 0.1;
  params.crossing_loss_db = 0.2;
  params.propagation_db_per_cm = 1.0;
  PathModel path;
  path.drops = 1;
  path.throughs = 3;
  path.crossings = 2;
  path.length = 2e-2;
  EXPECT_NEAR(insertion_loss_db(path, params), 1.0 + 0.3 + 0.4 + 2.0, 1e-12);
}

TEST(Baselines, Validation) {
  const CrossbarLossParams params;
  EXPECT_THROW(path_model(CrossbarTopology::kMatrix, 1, 0, 0, params), Error);
  EXPECT_THROW(path_model(CrossbarTopology::kMatrix, 4, 0, 0, params), Error);
  EXPECT_THROW(path_model(CrossbarTopology::kMatrix, 4, 0, 9, params), Error);
}

}  // namespace
}  // namespace photherm::noc
