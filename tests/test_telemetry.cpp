#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace photherm::telemetry {
namespace {

/// Every test starts from a blank slate and leaves telemetry disabled so
/// the other suites in this binary (and their physics assertions) never see
/// a recording session bleed through.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

/// One parsed "X"/"i" trace event. parse_events deliberately re-parses the
/// JSON with a regex over the emitted shape: the test asserting
/// well-formedness must not reuse the emitter's own serializer.
struct ParsedEvent {
  std::string ph;
  std::string name;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< 0 for instant events
  int depth = -1;       ///< -1 when absent (instant events)
};

std::vector<ParsedEvent> parse_events(const std::string& json) {
  // One event object per line (the emitter writes them that way); match the
  // fields the assertions need.
  static const std::regex complete_re(
      "\\{\"ph\":\"X\",\"name\":\"([^\"]*)\",\"pid\":1,\"tid\":([0-9]+),"
      "\"ts\":([-0-9.e+]+),\"dur\":([-0-9.e+]+),\"args\":\\{\"depth\":([0-9]+)");
  static const std::regex instant_re(
      "\\{\"ph\":\"i\",\"name\":\"([^\"]*)\",\"pid\":1,\"tid\":([0-9]+),"
      "\"ts\":([-0-9.e+]+),\"s\":\"t\"\\}");
  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, complete_re)) {
      events.push_back({"X", m[1], std::stoi(m[2]), std::stod(m[3]), std::stod(m[4]),
                        std::stoi(m[5])});
    } else if (std::regex_search(line, m, instant_re)) {
      events.push_back({"i", m[1], std::stoi(m[2]), std::stod(m[3]), 0.0, -1});
    }
  }
  return events;
}

/// Structural well-formedness without a JSON library: balanced braces and
/// brackets outside strings, no trailing comma before a closer.
void check_json_well_formed(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  char last_significant = '\0';
  for (char ch : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
        last_significant = '"';
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        ASSERT_NE(last_significant, ',') << "trailing comma before }";
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        ASSERT_NE(last_significant, ',') << "trailing comma before ]";
        break;
      default:
        break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
    if (!std::isspace(static_cast<unsigned char>(ch))) {
      last_significant = ch;
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

std::map<std::string, std::vector<std::string>> metrics_by_name() {
  const Table table = metrics_table();
  const std::string csv = table.to_csv();
  std::map<std::string, std::vector<std::string>> rows;
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream cells_in(line);
    while (std::getline(cells_in, cell, ',')) {
      cells.push_back(cell);
    }
    cells.resize(9);  // empty trailing min/max/percentile cells
    rows[cells[0]] = cells;
  }
  return rows;
}

TEST_F(TelemetryTest, DisabledRecordsNothingAndEmitsValidJson) {
  ASSERT_FALSE(enabled());
  count("solver.conjugate_gradient.iterations", 7);
  gauge("solver.conjugate_gradient.relative_residual", 1e-9);
  timer_add("pool.queue_wait", 123);
  instant("checkpoint.pauses");
  {
    Span span("solver.conjugate_gradient");
    ScopedTimer wall("playback.scenario.wall");
  }
  const Table table = metrics_table();
  EXPECT_EQ(table.row_count(), 0u);
  const std::string json = trace_json();
  check_json_well_formed(json);
  EXPECT_TRUE(parse_events(json).empty());
}

TEST_F(TelemetryTest, EnableSeedsTheCatalogAtZero) {
  set_enabled(true);
  const auto rows = metrics_by_name();
  ASSERT_EQ(rows.size(), metric_catalog().size());
  for (const auto& [name, kind] : metric_catalog()) {
    ASSERT_TRUE(rows.count(name)) << name;
    EXPECT_EQ(rows.at(name)[1], kind) << name;
    EXPECT_EQ(rows.at(name)[2], "0") << name;
    EXPECT_EQ(rows.at(name)[3], "0") << name;
  }
}

TEST_F(TelemetryTest, MetricsCsvGolden) {
  set_enabled(true);
  count("golden.counter", 2);
  count("golden.counter", 3);
  gauge("golden.gauge", 2.5);
  gauge("golden.gauge", -1.25);
  timer_add("golden.timer", 40);
  timer_add("golden.timer", 60);
  const std::string csv = metrics_table().to_csv();
  // The golden pins the exact-mode serialization contract: header shape,
  // lexicographic row order, counters with empty min/max, gauges carrying
  // per-observation extremes, timers in integer nanoseconds with
  // log2-histogram percentiles (40 and 60 ns both land in the [32,63]
  // bucket, whose inclusive upper bound 63 is what every percentile
  // reports).
  EXPECT_NE(csv.find("metric,kind,count,total,min,max,p50,p90,p99\n"), std::string::npos);
  EXPECT_NE(csv.find("golden.counter,counter,2,5,,,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("golden.gauge,gauge,2,1.25,-1.25,2.5,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("golden.timer,timer,2,100,40,60,63,63,63\n"), std::string::npos);
  // Lexicographic order: the three golden rows appear in name order.
  EXPECT_LT(csv.find("golden.counter"), csv.find("golden.gauge"));
  EXPECT_LT(csv.find("golden.gauge"), csv.find("golden.timer"));
  // And they sort into the seeded catalog, not after it.
  EXPECT_LT(csv.find("checkpoint.resumes"), csv.find("golden.counter"));
  EXPECT_LT(csv.find("golden.timer"), csv.find("playback.steps"));
}

TEST_F(TelemetryTest, SpanNestingDepthAndContainment) {
  set_enabled(true);
  {
    Span outer("outer");
    {
      Span middle("middle");
      Span inner("inner");
    }
    Span sibling("sibling");
  }
  const std::string json = trace_json();
  check_json_well_formed(json);
  const auto events = parse_events(json);
  ASSERT_EQ(events.size(), 4u);
  // Spans close inner-first, so completion order is inner, middle,
  // sibling, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);
  EXPECT_EQ(events[3].depth, 0);
  // Containment: every child interval sits inside its parent's.
  const ParsedEvent& outer = events[3];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(events[i].ts_us, outer.ts_us) << events[i].name;
    EXPECT_LE(events[i].ts_us + events[i].dur_us, outer.ts_us + outer.dur_us)
        << events[i].name;
  }
  EXPECT_GE(events[0].ts_us, events[1].ts_us);  // inner starts inside middle
  EXPECT_LE(events[0].ts_us + events[0].dur_us, events[1].ts_us + events[1].dur_us);
}

TEST_F(TelemetryTest, CountersAccumulateAcrossPoolWorkers) {
  set_enabled(true);
  constexpr std::size_t kChunks = 64;
  util::parallel_for(
      kChunks, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Span span("worker.chunk");
          count("worker.items");
          gauge("worker.value", static_cast<double>(i));
        }
      },
      4);
  const auto rows = metrics_by_name();
  ASSERT_TRUE(rows.count("worker.items"));
  EXPECT_EQ(rows.at("worker.items")[3], "64");
  ASSERT_TRUE(rows.count("worker.value"));
  EXPECT_EQ(rows.at("worker.value")[2], "64");
  EXPECT_EQ(rows.at("worker.value")[4], "0");   // min over 0..63
  EXPECT_EQ(rows.at("worker.value")[5], "63");  // max over 0..63
  const auto events = parse_events(trace_json());
  std::size_t spans = 0;
  for (const ParsedEvent& e : events) {
    spans += e.name == "worker.chunk" ? 1 : 0;
  }
  EXPECT_EQ(spans, kChunks);
}

TEST_F(TelemetryTest, InstantEventsBumpTheirCounter) {
  set_enabled(true);
  instant("checkpoint.pauses");
  instant("checkpoint.pauses");
  const auto rows = metrics_by_name();
  EXPECT_EQ(rows.at("checkpoint.pauses")[3], "2");
  const auto events = parse_events(trace_json());
  std::size_t instants = 0;
  for (const ParsedEvent& e : events) {
    if (e.ph == "i" && e.name == "checkpoint.pauses") {
      ++instants;
    }
  }
  EXPECT_EQ(instants, 2u);
}

TEST_F(TelemetryTest, ThreadLabelsAndDetailAreEscaped) {
  set_enabled(true);
  set_thread_label("label \"quoted\"\\back");
  {
    Span span("escaping", std::string("line1\nline2\ttab"));
  }
  const std::string json = trace_json();
  check_json_well_formed(json);
  EXPECT_NE(json.find("label \\\"quoted\\\"\\\\back"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  set_thread_label("main");
}

TEST_F(TelemetryTest, ResetClearsAndReseeds) {
  set_enabled(true);
  count("ephemeral.counter", 9);
  {
    Span span("ephemeral.span");
  }
  reset();
  const auto rows = metrics_by_name();
  EXPECT_FALSE(rows.count("ephemeral.counter"));
  ASSERT_TRUE(rows.count("transient.steps"));  // catalog reseeded
  EXPECT_EQ(rows.at("transient.steps")[3], "0");
  EXPECT_TRUE(parse_events(trace_json()).empty());
}

TEST_F(TelemetryTest, WritersMatchInMemoryExports) {
  set_enabled(true);
  count("written.counter", 3);
  {
    Span span("written.span");
  }
  const std::string metrics_path = ::testing::TempDir() + "telemetry_metrics.csv";
  const std::string trace_path = ::testing::TempDir() + "telemetry_trace.json";
  write_metrics_csv(metrics_path);
  write_trace_json(trace_path);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  // The CSV on disk is metrics_csv(): the manifest comment block followed
  // by the exact table serialization.
  EXPECT_EQ(slurp(metrics_path), metrics_csv());
  EXPECT_EQ(slurp(trace_path), trace_json());
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST_F(TelemetryTest, TimerHistogramPercentileGolden) {
  set_enabled(true);
  // Observations spanning decades. Bucket b holds [2^(b-1), 2^b - 1] and a
  // percentile reports its bucket's inclusive upper bound, so the goldens
  // are exact integers: bucket counts are 1@[1,1], 2@[2,3], 1@[4,7],
  // 1@[64,127], 2@[512,1023], 1@[4096,8191], 1@[65536,131071],
  // 1@[524288,1048575]. With N=10: p50 hits rank 5 (the 100 ns value's
  // bucket), p90 rank 9 (100 us), p99 rank 10 (1 ms).
  for (const std::uint64_t ns :
       {1ull, 2ull, 3ull, 4ull, 100ull, 1000ull, 1000ull, 5000ull, 100000ull, 1000000ull}) {
    timer_add("hist.timer", ns);
  }
  timer_add("hist.zero", 0);  // zero durations get their own bucket 0
  const auto rows = metrics_by_name();
  ASSERT_TRUE(rows.count("hist.timer"));
  EXPECT_EQ(rows.at("hist.timer")[6], "127");      // p50
  EXPECT_EQ(rows.at("hist.timer")[7], "131071");   // p90
  EXPECT_EQ(rows.at("hist.timer")[8], "1048575");  // p99
  ASSERT_TRUE(rows.count("hist.zero"));
  EXPECT_EQ(rows.at("hist.zero")[6], "0");
  EXPECT_EQ(rows.at("hist.zero")[8], "0");
}

TEST_F(TelemetryTest, HistogramsMergeDeterministicallyAcrossWorkers) {
  set_enabled(true);
  // The same multiset of durations recorded from pool workers must produce
  // the same percentiles as a serial recording: bucket counts are summed at
  // export, so the merge cannot depend on which thread saw which value.
  util::parallel_for(
      64, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          timer_add("merge.timer", 100 * (i + 1));
        }
      },
      4);
  const auto rows = metrics_by_name();
  ASSERT_TRUE(rows.count("merge.timer"));
  EXPECT_EQ(rows.at("merge.timer")[2], "64");
  // Values 100..6400 ns; rank 32 (p50) is 3200 ns -> bucket [2048,4095],
  // rank 58 (p90) is 5800 -> [4096,8191], rank 64 (p99) likewise.
  EXPECT_EQ(rows.at("merge.timer")[6], "4095");
  EXPECT_EQ(rows.at("merge.timer")[7], "8191");
  EXPECT_EQ(rows.at("merge.timer")[8], "8191");
}

TEST_F(TelemetryTest, ManifestRoundTripsThroughBothExports) {
  set_enabled(true);
  set_manifest("suite", "builtin:unit");
  set_manifest("custom key", "custom value");
  // The merged view carries the build-time entries plus the runtime ones.
  bool saw_build_type = false;
  for (const auto& [key, value] : manifest()) {
    if (key == "build_type") {
      saw_build_type = true;
      EXPECT_TRUE(value == "debug" || value == "release") << value;
    }
  }
  EXPECT_TRUE(saw_build_type);

  const std::string csv = metrics_csv();
  EXPECT_EQ(csv.find("# photherm-manifest v1\n"), 0u);
  EXPECT_NE(csv.find("# suite=builtin:unit\n"), std::string::npos);
  EXPECT_NE(csv.find("# custom key=custom value\n"), std::string::npos);
  EXPECT_NE(csv.find("# git_sha="), std::string::npos);
  EXPECT_NE(csv.find("metric,kind,count,total,min,max,p50,p90,p99\n"), std::string::npos);

  const std::string json = trace_json();
  check_json_well_formed(json);
  EXPECT_NE(json.find("\"manifest\":{"), std::string::npos);
  EXPECT_NE(json.find("\"suite\":\"builtin:unit\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);

  // reset() clears the runtime entries but keeps the build-time constants.
  reset();
  const std::string cleared = metrics_csv();
  EXPECT_EQ(cleared.find("builtin:unit"), std::string::npos);
  EXPECT_NE(cleared.find("# build_type="), std::string::npos);
}

TEST_F(TelemetryTest, CounterEventsCarryValueAndIteration) {
  set_enabled(true);
  counter("conv.residual", 0.5, 0);
  counter("conv.residual", 0.25, 1);
  const std::string json = trace_json();
  check_json_well_formed(json);
  EXPECT_NE(json.find("\"ph\":\"C\",\"name\":\"conv.residual\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.5,\"iteration\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":0.25,\"iteration\":1}"), std::string::npos);
}

TEST_F(TelemetryTest, CounterEventsDropWhenDisabled) {
  ASSERT_FALSE(enabled());
  counter("conv.residual", 0.5, 0);
  set_enabled(true);
  const std::string json = trace_json();
  EXPECT_EQ(json.find("conv.residual"), std::string::npos);
}

TEST_F(TelemetryTest, DisableKeepsCollectedData) {
  set_enabled(true);
  count("kept.counter", 5);
  set_enabled(false);
  count("kept.counter", 100);  // dropped: recording is off
  const auto rows = metrics_by_name();
  ASSERT_TRUE(rows.count("kept.counter"));
  EXPECT_EQ(rows.at("kept.counter")[3], "5");
}

}  // namespace
}  // namespace photherm::telemetry
