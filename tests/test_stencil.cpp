/// Tests for the matrix-free 7-point stencil operator and the Chebyshev
/// preconditioner: equivalence with the CSR assembly on non-uniform meshes
/// with every boundary face active, bit-identical threading, and the
/// stencil solve path end to end.
#include "math/stencil_operator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/preconditioner.hpp"
#include "math/solvers.hpp"
#include "support/fixtures.hpp"
#include "thermal/fvm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace photherm::math {
namespace {

using fixtures::add_heater;
using fixtures::uniform_mesh_options;
using fixtures::uniform_slab;
using geometry::Box3;
using thermal::BoundarySet;
using thermal::Face;
using thermal::FaceBc;

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector v(n);
  Rng rng(seed);
  for (double& x : v) {
    x = rng.uniform(-1.0, 1.0);
  }
  return v;
}

/// Slab with an off-centre heater block: the block's edges insert mesh
/// ticks, so the x/y axes are genuinely non-uniform; two z layers via an
/// explicit cell cap make z non-uniform as well.
mesh::RectilinearMesh heated_mesh(double cell_xy, double cell_z) {
  const double a = 1e-3;
  const double t = 200e-6;
  geometry::Scene scene = uniform_slab(a, t);
  add_heater(scene, Box3::make({0.3e-3, 0.45e-3, 0.0}, {0.75e-3, 0.8e-3, t}), 0.5);
  return mesh::RectilinearMesh::build(scene, uniform_mesh_options(cell_xy, cell_z));
}

/// Every face non-adiabatic, mixing all three fixing BC kinds.
BoundarySet all_faces_bcs() {
  BoundarySet bcs;
  bcs[Face::kXMin] = FaceBc::convection(500.0, 30.0);
  bcs[Face::kXMax] = FaceBc::dirichlet(45.0);
  bcs[Face::kYMin] = FaceBc::dirichlet_field(
      [](const geometry::Vec3& p) { return 25.0 + 1e4 * p.x; });
  bcs[Face::kYMax] = FaceBc::convection(2e3, 22.0);
  bcs[Face::kZMin] = FaceBc::convection(1e3, 25.0);
  bcs[Face::kZMax] = FaceBc::dirichlet(60.0);
  return bcs;
}

TEST(Stencil, MatchesCsrOnNonUniformMeshWithAllBcFaces) {
  const auto mesh = heated_mesh(60e-6, 90e-6);
  ASSERT_GT(mesh.nx(), 2u);
  ASSERT_GT(mesh.nz(), 1u);
  const BoundarySet bcs = all_faces_bcs();

  const thermal::DiscreteSystem csr = thermal::assemble(mesh, bcs);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, bcs);

  // rhs and capacitance come from the shared assembly core: bit-equal.
  EXPECT_EQ(csr.rhs, stencil.rhs);
  EXPECT_EQ(csr.capacitance, stencil.capacitance);

  // The operators match coefficient for coefficient up to the CsrBuilder's
  // unspecified duplicate-summation order (a few ULP on the diagonal).
  const std::size_t n = mesh.cell_count();
  const Vector x = random_vector(n, 3);
  Vector y_csr, y_stencil;
  csr.matrix.apply(x, y_csr, 1);
  stencil.op.apply(x, y_stencil, 1);
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scale = std::max(scale, std::abs(y_csr[i]));
  }
  ASSERT_GT(scale, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_stencil[i], y_csr[i], 1e-13 * scale) << "row " << i;
  }
}

TEST(Stencil, FromCsrAppliesBitIdenticallyToCsr) {
  const auto mesh = heated_mesh(80e-6, 90e-6);
  const thermal::DiscreteSystem csr = thermal::assemble(mesh, all_faces_bcs());
  const StencilOperator7 op =
      StencilOperator7::from_csr(csr.matrix, mesh.nx(), mesh.ny(), mesh.nz());

  // Same values, same ascending-column accumulation order -> the matrix-free
  // kernel reproduces the CSR SpMV exactly, not just approximately.
  const Vector x = random_vector(mesh.cell_count(), 11);
  Vector y_csr, y_stencil;
  csr.matrix.apply(x, y_csr, 1);
  op.apply(x, y_stencil, 1);
  EXPECT_EQ(y_csr, y_stencil);
  EXPECT_EQ(csr.matrix.diagonal(), op.diagonal());
}

TEST(Stencil, ToCsrRoundTripIsExact) {
  const auto mesh = heated_mesh(80e-6, 90e-6);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  const CsrMatrix csr = stencil.op.to_csr();
  const StencilOperator7 back =
      StencilOperator7::from_csr(csr, mesh.nx(), mesh.ny(), mesh.nz());
  EXPECT_EQ(back.diag(), stencil.op.diag());
  EXPECT_EQ(back.west(), stencil.op.west());
  EXPECT_EQ(back.east(), stencil.op.east());
  EXPECT_EQ(back.south(), stencil.op.south());
  EXPECT_EQ(back.north(), stencil.op.north());
  EXPECT_EQ(back.down(), stencil.op.down());
  EXPECT_EQ(back.up(), stencil.op.up());
}

TEST(Stencil, ApplyIsBitIdenticalAcrossThreadCounts) {
  // 26^3 = 17576 rows exceeds kSerialCutoff, so the threaded kernel runs.
  const double a = 1e-3;
  geometry::Scene scene = uniform_slab(a, a);
  const auto mesh =
      mesh::RectilinearMesh::build(scene, uniform_mesh_options(a / 26.0, a / 26.0));
  ASSERT_GE(mesh.cell_count(), util::kSerialCutoff);

  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(1e4, 25.0);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, bcs);
  const Vector x = random_vector(mesh.cell_count(), 17);

  Vector y1, y2, y4;
  stencil.op.apply(x, y1, 1);
  stencil.op.apply(x, y2, 2);
  stencil.op.apply(x, y4, 4);
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(y1, y4);
}

TEST(Stencil, AddToDiagonalShiftsOnlyTheDiagonal) {
  const auto mesh = heated_mesh(100e-6, 0.0);
  thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  const StencilOperator7 original = stencil.op;

  Vector shift(mesh.cell_count());
  for (std::size_t i = 0; i < shift.size(); ++i) {
    shift[i] = static_cast<double>(i + 1);
  }
  stencil.op.add_to_diagonal(shift);
  for (std::size_t i = 0; i < shift.size(); ++i) {
    EXPECT_DOUBLE_EQ(stencil.op.diag()[i], original.diag()[i] + shift[i]);
  }
  EXPECT_EQ(stencil.op.west(), original.west());
  EXPECT_EQ(stencil.op.up(), original.up());
}

TEST(Stencil, FromCsrRejectsOffPatternEntries) {
  // 2x2x2 grid; (0, 3) is neither a face neighbour of cell 0 nor the
  // diagonal.
  CsrBuilder builder(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    builder.add(i, i, 6.0);
  }
  builder.add(0, 3, -1.0);
  EXPECT_THROW(StencilOperator7::from_csr(builder.build(), 2, 2, 2), Error);

  // An in-pattern offset on the wrong side of a grid seam must also be
  // rejected: (1, 2) has offset +1 but cell 1 is at ix == nx - 1.
  CsrBuilder seam(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    seam.add(i, i, 6.0);
  }
  seam.add(1, 2, -1.0);
  EXPECT_THROW(StencilOperator7::from_csr(seam.build(), 2, 2, 2), Error);
}

TEST(Stencil, GershgorinBoundContainsJacobiScaledSpectrum) {
  const auto mesh = heated_mesh(80e-6, 90e-6);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  const std::size_t n = mesh.cell_count();

  Vector inv_diag = stencil.op.diagonal();
  for (double& d : inv_diag) {
    ASSERT_GT(d, 0.0);
    d = 1.0 / d;
  }
  const double bound = stencil.op.scaled_row_sum_bound(inv_diag);
  ASSERT_TRUE(std::isfinite(bound));
  // The scaled row sum includes the diagonal itself, so the bound is >= 1.
  EXPECT_GE(bound, 1.0);

  // Power iteration on B = D^{-1} A: its estimate grows toward the true
  // spectral radius from below, so it must stay under the bound.
  Vector v = random_vector(n, 23);
  Vector av(n);
  double estimate = 0.0;
  for (int iter = 0; iter < 30; ++iter) {
    stencil.op.apply(v, av, 1);
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      av[i] *= inv_diag[i];
      norm += av[i] * av[i];
    }
    norm = std::sqrt(norm);
    ASSERT_GT(norm, 0.0);
    double vnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      vnorm += v[i] * v[i];
    }
    estimate = norm / std::sqrt(vnorm);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = av[i] / norm;
    }
  }
  EXPECT_LE(estimate, bound * (1.0 + 1e-12));
}

// --- Chebyshev preconditioning on the stencil path. --------------------------

TEST(Chebyshev, PreconditionerIsSymmetric) {
  const auto mesh = heated_mesh(80e-6, 90e-6);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  const ChebyshevPreconditioner precond(stencil.op);
  const std::size_t n = mesh.cell_count();

  // CG needs a symmetric M^{-1}: <M^{-1}u, v> == <u, M^{-1}v>.
  const Vector u = random_vector(n, 5);
  const Vector v = random_vector(n, 6);
  Vector mu, mv;
  precond.apply(u, mu, 1);
  precond.apply(v, mv, 1);
  double left = 0.0, right = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    left += mu[i] * v[i];
    right += u[i] * mv[i];
    mag += std::abs(mu[i] * v[i]);
  }
  EXPECT_NEAR(left, right, 1e-12 * std::max(1.0, mag));
}

TEST(Chebyshev, SameResultOnCsrAndStencilForms) {
  const auto mesh = heated_mesh(80e-6, 90e-6);
  const thermal::DiscreteSystem csr = thermal::assemble(mesh, all_faces_bcs());
  const StencilOperator7 op =
      StencilOperator7::from_csr(csr.matrix, mesh.nx(), mesh.ny(), mesh.nz());

  const ChebyshevPreconditioner from_csr_matrix(csr.matrix);
  const ChebyshevPreconditioner from_stencil(op);
  EXPECT_EQ(from_csr_matrix.lambda_max(), from_stencil.lambda_max());

  const Vector r = random_vector(mesh.cell_count(), 9);
  Vector z_csr, z_stencil;
  from_csr_matrix.apply(r, z_csr, 1);
  from_stencil.apply(r, z_stencil, 1);
  EXPECT_EQ(z_csr, z_stencil);
}

TEST(Chebyshev, ApplyIsBitIdenticalAcrossThreadCounts) {
  const double a = 1e-3;
  geometry::Scene scene = uniform_slab(a, a);
  const auto mesh =
      mesh::RectilinearMesh::build(scene, uniform_mesh_options(a / 26.0, a / 26.0));
  ASSERT_GE(mesh.cell_count(), util::kSerialCutoff);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(1e4, 25.0);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, bcs);
  const ChebyshevPreconditioner precond(stencil.op);

  const Vector r = random_vector(mesh.cell_count(), 31);
  Vector z1, z2, z4;
  precond.apply(r, z1, 1);
  precond.apply(r, z2, 2);
  precond.apply(r, z4, 4);
  EXPECT_EQ(z1, z2);
  EXPECT_EQ(z1, z4);
}

TEST(Chebyshev, StencilCgMatchesIlu0CsrField) {
  const auto mesh = heated_mesh(60e-6, 90e-6);
  const BoundarySet bcs = all_faces_bcs();

  const thermal::DiscreteSystem csr = thermal::assemble(mesh, bcs);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, bcs);

  SolverOptions ilu0_options;
  ilu0_options.rel_tolerance = 1e-12;
  ilu0_options.preconditioner = PreconditionerKind::kIlu0;
  Vector t_ilu0;
  const SolverResult r_ilu0 = conjugate_gradient(csr.matrix, csr.rhs, t_ilu0, ilu0_options);
  ASSERT_TRUE(r_ilu0.converged);

  SolverOptions chebyshev_options;
  chebyshev_options.rel_tolerance = 1e-12;
  chebyshev_options.preconditioner = PreconditionerKind::kChebyshev;
  Vector t_chebyshev;
  const SolverResult r_chebyshev =
      conjugate_gradient(stencil.op, stencil.rhs, t_chebyshev, chebyshev_options);
  ASSERT_TRUE(r_chebyshev.converged);

  double scale = 1.0;
  for (double t : t_ilu0) {
    scale = std::max(scale, std::abs(t));
  }
  for (std::size_t i = 0; i < t_ilu0.size(); ++i) {
    EXPECT_NEAR(t_chebyshev[i], t_ilu0[i], 1e-9 * scale) << "cell " << i;
  }
}

TEST(Chebyshev, StencilOperatorRejectsSparsityPreconditioners) {
  const auto mesh = heated_mesh(100e-6, 0.0);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  EXPECT_THROW(make_preconditioner(PreconditionerKind::kSsor, stencil.op), Error);
  EXPECT_THROW(make_preconditioner(PreconditionerKind::kIlu0, stencil.op), Error);
  // The kinds that do work build fine.
  EXPECT_NE(make_preconditioner(PreconditionerKind::kJacobi, stencil.op), nullptr);
  EXPECT_NE(make_preconditioner(PreconditionerKind::kChebyshev, stencil.op), nullptr);
}

TEST(Chebyshev, SettingsAreValidated) {
  const auto mesh = heated_mesh(100e-6, 0.0);
  const thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());
  ChebyshevSettings bad_degree;
  bad_degree.degree = 0;
  EXPECT_THROW(ChebyshevPreconditioner(stencil.op, bad_degree), Error);
  ChebyshevSettings bad_ratio;
  bad_ratio.eig_ratio = 1.0;
  EXPECT_THROW(ChebyshevPreconditioner(stencil.op, bad_ratio), Error);
}

TEST(Chebyshev, ShiftedOperatorTightensTheSpectrumInterval) {
  const auto mesh = heated_mesh(100e-6, 0.0);
  thermal::StencilSystem stencil = thermal::assemble_stencil(mesh, all_faces_bcs());

  // The lower bound is the best of the eig_ratio fallback and the
  // Gershgorin disc floor 2 - lambda_max of the Jacobi-scaled operator.
  const ChebyshevPreconditioner bare(stencil.op);
  EXPECT_NEAR(bare.lambda_min(),
              std::max(bare.lambda_max() / ChebyshevSettings().eig_ratio,
                       2.0 - bare.lambda_max()),
              1e-12 * bare.lambda_max());

  // A strong diagonal shift (transient stepping with a small dt) squeezes
  // the Jacobi-scaled spectrum toward 1; the lower bound must follow it
  // instead of staying at lambda_max / eig_ratio.
  Vector shift = stencil.capacitance;
  const double dt = 1e-6;
  for (double& c : shift) {
    c /= dt;
  }
  stencil.op.add_to_diagonal(shift);
  const ChebyshevPreconditioner shifted(stencil.op);
  EXPECT_LT(shifted.lambda_max(), 1.5);
  EXPECT_NEAR(shifted.lambda_min(), 2.0 - shifted.lambda_max(),
              1e-12 * shifted.lambda_max());
  EXPECT_GT(shifted.lambda_min(), shifted.lambda_max() / ChebyshevSettings().eig_ratio);
}

TEST(Chebyshev, SteadyStateStencilFieldMatchesCsr) {
  // End to end through solve_steady_state: the flagged stencil+Chebyshev
  // path must reproduce the default CSR+ILU(0) field.
  const double a = 1e-3;
  const double t = 200e-6;
  geometry::Scene scene = uniform_slab(a, t);
  add_heater(scene, Box3::make({0.25e-3, 0.25e-3, 0.0}, {0.75e-3, 0.75e-3, t}), 0.4);
  const auto options = uniform_mesh_options(60e-6, 90e-6);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(1e4, 25.0);
  bcs[Face::kZMin] = FaceBc::convection(1e3, 25.0);

  const auto field_csr =
      thermal::solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);

  thermal::SteadyStateOptions stencil_options;
  stencil_options.operator_kind = thermal::OperatorKind::kStencil;
  stencil_options.solver.preconditioner = PreconditionerKind::kChebyshev;
  const auto field_stencil = thermal::solve_steady_state(
      mesh::RectilinearMesh::build(scene, options), bcs, stencil_options);

  const auto& t_csr = field_csr.temperatures();
  const auto& t_stencil = field_stencil.temperatures();
  ASSERT_EQ(t_csr.size(), t_stencil.size());
  for (std::size_t i = 0; i < t_csr.size(); ++i) {
    EXPECT_NEAR(t_stencil[i], t_csr[i], 1e-6) << "cell " << i;
  }
}

}  // namespace
}  // namespace photherm::math
