/// Tests of the MR model extensions beyond the paper's first-order ring:
/// filter order, free spectral range aliasing and athermal cladding.
#include <gtest/gtest.h>

#include "photonics/microring.hpp"
#include "util/error.hpp"

namespace photherm::photonics {
namespace {

TEST(MicroRingOrder, HigherOrderSuppressesFarCrosstalk) {
  MicroRingParams second;
  second.filter_order = 2;
  const MicroRing ring1{MicroRingParams{}};
  const MicroRing ring2{second};
  // Same peak...
  EXPECT_DOUBLE_EQ(ring2.drop_fraction_detuned(0.0), 1.0);
  // ...same 3 dB point definition is NOT preserved (order-n of the
  // Lorentzian): at the old half-drop point the second-order drops 25 %.
  EXPECT_NEAR(ring2.drop_fraction_detuned(0.775e-9), 0.25, 1e-12);
  // Far detuning: dramatically more selective.
  EXPECT_LT(ring2.drop_fraction_detuned(6.4e-9), 0.1 * ring1.drop_fraction_detuned(6.4e-9));
}

class OrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(OrderSweep, MonotoneRolloffAndBoundedPeak) {
  MicroRingParams params;
  params.filter_order = GetParam();
  const MicroRing ring{params};
  double previous = 2.0;
  for (double d_nm = 0.0; d_nm <= 5.0; d_nm += 0.25) {
    const double drop = ring.drop_fraction_detuned(d_nm * 1e-9);
    EXPECT_LE(drop, previous + 1e-15);
    EXPECT_GE(drop, 0.0);
    EXPECT_LE(drop, 1.0);
    previous = drop;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, OrderSweep, ::testing::Values(1, 2, 3, 4));

TEST(MicroRingFsr, AliasesOneFsrAway) {
  MicroRingParams params;
  params.fsr = 18e-9;  // ~10 um ring at 1550 nm
  const MicroRing ring{params};
  // A signal exactly one FSR away couples as strongly as on-resonance.
  EXPECT_NEAR(ring.drop_fraction_detuned(18e-9), 1.0, 1e-9);
  EXPECT_NEAR(ring.drop_fraction_detuned(-18e-9), 1.0, 1e-9);
  // Half-way between orders: minimal coupling.
  EXPECT_LT(ring.drop_fraction_detuned(9e-9), 0.04);
  // Without FSR the same detuning is simply far off-resonance.
  const MicroRing plain{MicroRingParams{}};
  EXPECT_LT(plain.drop_fraction_detuned(18e-9), 0.01);
}

TEST(MicroRingAthermal, CladdingFreezesResonance) {
  MicroRingParams params;
  params.athermal_factor = 0.0;  // perfect athermal design (ref [9])
  const MicroRing ring{params};
  EXPECT_DOUBLE_EQ(ring.resonance_at(25.0), ring.resonance_at(85.0));
  // Partial compensation scales linearly.
  params.athermal_factor = 0.25;
  const MicroRing partial{params};
  EXPECT_NEAR(partial.resonance_at(35.0) - partial.resonance_at(25.0), 0.25e-9, 1e-15);
}

TEST(MicroRingExtensions, Validation) {
  MicroRingParams params;
  params.filter_order = 0;
  EXPECT_THROW(MicroRing{params}, Error);
  params = MicroRingParams{};
  params.fsr = -1e-9;
  EXPECT_THROW(MicroRing{params}, Error);
  params = MicroRingParams{};
  params.athermal_factor = 1.5;
  EXPECT_THROW(MicroRing{params}, Error);
}

}  // namespace
}  // namespace photherm::photonics
