#include "core/methodology.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/design_space.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm::core {
namespace {

/// Coarse spec for test speed: the shared fixture spec with a slightly
/// finer ONI mesh and the paper's nominal chip/VCSEL powers.
OnocDesignSpec fast_spec() {
  OnocDesignSpec spec = fixtures::coarse_onoc_spec();
  spec.chip_power = 25.0;
  spec.p_vcsel = 3.6e-3;
  spec.oni_cell_xy = 15e-6;
  return spec;
}

TEST(Methodology, BuildSystemRingPlacement) {
  const ThermalAwareDesigner designer(fast_spec());
  const auto system = designer.build_system();
  EXPECT_EQ(system.onis.size(), 4u);  // ring case 1
  EXPECT_NEAR(system.scene.total_power(),
              25.0 + 4 * (16 * (3.6e-3 + 3.6e-3) + 16 * 1.08e-3), 1e-6);
}

TEST(Methodology, BuildSystemAllTiles) {
  OnocDesignSpec spec = fast_spec();
  spec.placement = OniPlacementMode::kAllTiles;
  const ThermalAwareDesigner designer(spec);
  EXPECT_EQ(designer.build_system().onis.size(), 24u);
}

TEST(Methodology, ThermalReportShape) {
  const ThermalAwareDesigner designer(fast_spec());
  const ThermalReport report = designer.evaluate_thermal();
  ASSERT_EQ(report.onis.size(), 4u);
  for (const auto& oni : report.onis) {
    // Physical sanity: everything sits between ambient and 120 degC.
    EXPECT_GT(oni.average, 37.0);
    EXPECT_LT(oni.average, 120.0);
    EXPECT_GE(oni.gradient, 0.0);
    EXPECT_LE(oni.gradient, oni.peak_spread + 1e-9);
    // Lasers run hotter than the rings when heaters are modest.
    EXPECT_GT(oni.vcsel_average, oni.mr_average - 5.0);
  }
  EXPECT_GT(report.chip_average, 37.0);
  EXPECT_GT(report.oni_average, report.chip_average - 30.0);
  EXPECT_GE(report.max_gradient, 0.0);
  EXPECT_GE(report.hottest().average, report.oni_average - 1e-9);
}

TEST(Methodology, OnlyOniFilters) {
  const ThermalAwareDesigner designer(fast_spec());
  const ThermalReport report = designer.evaluate_thermal(2);
  ASSERT_EQ(report.onis.size(), 1u);
  EXPECT_EQ(report.onis.front().oni, 2);
  EXPECT_THROW(designer.evaluate_thermal(99), Error);
}

TEST(Methodology, MorePowerRaisesTemperatures) {
  OnocDesignSpec cool = fast_spec();
  cool.chip_power = 12.5;
  OnocDesignSpec hot = fast_spec();
  hot.chip_power = 31.25;
  const auto report_cool = ThermalAwareDesigner(cool).evaluate_thermal(0);
  const auto report_hot = ThermalAwareDesigner(hot).evaluate_thermal(0);
  EXPECT_GT(report_hot.onis[0].average, report_cool.onis[0].average + 3.0);
  EXPECT_GT(report_hot.chip_average, report_cool.chip_average + 3.0);
}

TEST(Methodology, VcselPowerRaisesGradient) {
  OnocDesignSpec low = fast_spec();
  low.p_vcsel = 1e-3;
  low.heater_ratio = 0.0;
  OnocDesignSpec high = fast_spec();
  high.p_vcsel = 6e-3;
  high.heater_ratio = 0.0;
  const auto report_low = ThermalAwareDesigner(low).evaluate_thermal(0);
  const auto report_high = ThermalAwareDesigner(high).evaluate_thermal(0);
  EXPECT_GT(report_high.onis[0].gradient, report_low.onis[0].gradient);
  EXPECT_GT(report_high.onis[0].vcsel_to_mr, report_low.onis[0].vcsel_to_mr);
}

TEST(Methodology, HeaterReducesGradient) {
  // The paper's central claim: heating the MRs closes the laser/ring
  // temperature gap inside the interface.
  OnocDesignSpec spec = fast_spec();
  spec.p_vcsel = 6e-3;
  const auto sweep = explore_heater_ratios(spec, {0.0, 0.3});
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_LT(sweep[1].gradient, sweep[0].gradient);
  EXPECT_GT(sweep[1].oni_average, sweep[0].oni_average);  // heaters add heat
  EXPECT_DOUBLE_EQ(sweep[1].p_heater, 0.3 * 6e-3);
}

TEST(Methodology, SnrReportFromRun) {
  const ThermalAwareDesigner designer(fast_spec());
  const DesignReport report = designer.run();
  ASSERT_TRUE(report.snr.has_value());
  EXPECT_EQ(report.snr->oni_count, 4u);
  EXPECT_NEAR(report.snr->waveguide_length, 18e-3, 1e-12);
  EXPECT_FALSE(report.snr->network.comms.empty());
  EXPECT_TRUE(std::isfinite(report.snr->network.worst_snr_db));
  // Every link must clear the -20 dBm photodetector sensitivity here.
  EXPECT_TRUE(report.links_ok());
  // Tables render.
  EXPECT_GT(report.thermal.to_table().row_count(), 0u);
  EXPECT_GT(report.snr->to_table().row_count(), 0u);
}

TEST(Methodology, AllTilesRunSkipsSnr) {
  OnocDesignSpec spec = fast_spec();
  spec.placement = OniPlacementMode::kAllTiles;
  spec.global_cell_xy = 3e-3;
  // Restrict to a single ONI evaluation through the sweep helper to keep
  // the test fast.
  const auto sweep = explore_heater_ratios(spec, {0.3});
  EXPECT_EQ(sweep.size(), 1u);
  EXPECT_GT(sweep[0].oni_average, 37.0);
}

TEST(Methodology, SpecValidation) {
  OnocDesignSpec spec = fast_spec();
  spec.p_vcsel = -1.0;
  EXPECT_THROW(ThermalAwareDesigner{spec}, Error);
  spec = fast_spec();
  spec.heater_ratio = -0.1;
  EXPECT_THROW(ThermalAwareDesigner{spec}, Error);
  spec = fast_spec();
  spec.chip_power = -5.0;
  EXPECT_THROW(ThermalAwareDesigner{spec}, Error);
}

// validate() fails before any meshing, names the offending field and says
// how to fix it — malformed specs must not surface as deep solver errors.
TEST(Methodology, SpecValidationMessagesAreActionable) {
  const auto message_for = [](auto&& mutate) {
    OnocDesignSpec spec = fast_spec();
    mutate(spec);
    try {
      spec.validate();
      return std::string();
    } catch (const SpecError& e) {
      return std::string(e.what());
    }
  };

  std::string msg = message_for([](OnocDesignSpec& s) { s.oni_cell_xy = 0.0; });
  EXPECT_NE(msg.find("oni_cell_xy"), std::string::npos) << msg;
  EXPECT_NE(msg.find("positive"), std::string::npos) << msg;

  msg = message_for([](OnocDesignSpec& s) { s.oni_layout.waveguide_count = 0; });
  EXPECT_NE(msg.find("waveguide_count"), std::string::npos) << msg;

  msg = message_for([](OnocDesignSpec& s) { s.heater_ratio = 50.0; });
  EXPECT_NE(msg.find("heater_ratio"), std::string::npos) << msg;

  msg = message_for([](OnocDesignSpec& s) { s.ring_case_id = 7; });
  EXPECT_NE(msg.find("ring_case_id"), std::string::npos) << msg;

  msg = message_for([](OnocDesignSpec& s) {
    s.package.h_top = 0.0;
    s.package.h_bottom = 0.0;
  });
  EXPECT_NE(msg.find("adiabatic"), std::string::npos) << msg;

  // Every problem is reported at once.
  msg = message_for([](OnocDesignSpec& s) {
    s.global_cell_xy = -1.0;
    s.wdm_channels = 0;
  });
  EXPECT_NE(msg.find("global_cell_xy"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wdm_channels"), std::string::npos) << msg;

  msg = message_for([](OnocDesignSpec& s) {
    s.package.t_ambient = std::numeric_limits<double>::quiet_NaN();
  });
  EXPECT_NE(msg.find("t_ambient"), std::string::npos) << msg;
  EXPECT_NE(msg.find("finite"), std::string::npos) << msg;

  // A sound spec passes.
  EXPECT_NO_THROW(fast_spec().validate());
}

TEST(DesignSpace, Linspace) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  EXPECT_DOUBLE_EQ(v[4], 1.0);
  EXPECT_THROW(linspace(0.0, 1.0, 1), Error);
  EXPECT_THROW(linspace(1.0, 0.0, 3), Error);
}

TEST(DesignSpace, BestHeaterPoint) {
  std::vector<HeaterSweepPoint> sweep(3);
  sweep[0].heater_ratio = 0.0;
  sweep[0].gradient = 3.0;
  sweep[1].heater_ratio = 0.3;
  sweep[1].gradient = 1.0;
  sweep[2].heater_ratio = 0.6;
  sweep[2].gradient = 2.0;
  EXPECT_DOUBLE_EQ(best_heater_point(sweep).heater_ratio, 0.3);
  EXPECT_THROW(best_heater_point({}), Error);
}

}  // namespace
}  // namespace photherm::core
