/// Scenario subsystem: spec parse/serialize round-trip, registry family
/// expansion, batch-runner determinism across thread counts and the
/// coarse-solve cache equivalence guarantee (cached fields bit-identical to
/// cold solves).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/batch_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm {
namespace {

using scenario::BatchOptions;
using scenario::BatchResult;
using scenario::BatchRunner;
using scenario::FamilySpec;
using scenario::ScenarioSpec;

/// Fast base for the solver-touching tests: smoke-suite resolution.
ScenarioSpec fast_scenario(const std::string& name) {
  ScenarioSpec s;
  s.name = name;
  s.design = fixtures::coarse_onoc_spec();
  s.design.oni_cell_xy = 40e-6;
  return s;
}

/// The batch suite used by the determinism/cache tests: three WDM-ladder
/// scenarios sharing one global scene plus one hotspot scenario.
std::vector<ScenarioSpec> fast_suite() {
  FamilySpec wdm;
  wdm.family = "wdm_ladder";
  wdm.base = fast_scenario("base");
  auto suite = scenario::expand_family(wdm);
  ScenarioSpec hotspot = fast_scenario("hotspot");
  hotspot.design.activity = power::ActivityKind::kHotspot;
  suite.push_back(std::move(hotspot));
  return suite;
}

void expect_same_design(const core::OnocDesignSpec& a, const core::OnocDesignSpec& b) {
  EXPECT_EQ(a.activity, b.activity);
  EXPECT_EQ(a.chip_power, b.chip_power);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.ring_case_id, b.ring_case_id);
  EXPECT_EQ(a.p_vcsel, b.p_vcsel);
  EXPECT_EQ(a.heater_ratio, b.heater_ratio);
  EXPECT_EQ(a.active_tx_per_waveguide, b.active_tx_per_waveguide);
  EXPECT_EQ(a.p_driver_equals_p_vcsel, b.p_driver_equals_p_vcsel);
  EXPECT_EQ(a.package.t_ambient, b.package.t_ambient);
  EXPECT_EQ(a.package.h_top, b.package.h_top);
  EXPECT_EQ(a.package.h_bottom, b.package.h_bottom);
  EXPECT_EQ(a.fanout, b.fanout);
  EXPECT_EQ(a.waveguides, b.waveguides);
  EXPECT_EQ(a.wdm_channels, b.wdm_channels);
  EXPECT_EQ(a.global_cell_xy, b.global_cell_xy);
  EXPECT_EQ(a.oni_cell_xy, b.oni_cell_xy);
  EXPECT_EQ(a.oni_cell_z, b.oni_cell_z);
  EXPECT_EQ(a.window_margin, b.window_margin);
}

TEST(ScenarioSpec, SerializeParseRoundTripIsExact) {
  ScenarioSpec a;
  a.name = "corner.hot-1";
  a.design.activity = power::ActivityKind::kCheckerboard;
  a.design.chip_power = 31.25;
  a.design.seed = 42;
  a.design.placement = core::OniPlacementMode::kAllTiles;
  a.design.ring_case_id = 2;
  a.design.p_vcsel = 3.3e-3;
  a.design.heater_ratio = 0.45;
  a.design.active_tx_per_waveguide = 2;
  a.design.p_driver_equals_p_vcsel = false;
  a.design.package.t_ambient = -40.0;
  a.design.package.h_top = 5000.0;
  a.design.package.h_bottom = 35.5;
  a.design.fanout = 5;
  a.design.waveguides = 2;
  a.design.wdm_channels = 16;
  a.design.global_cell_xy = 1.5e-3;
  a.design.oni_cell_xy = 7e-6;
  a.design.oni_cell_z = 1.5e-6;
  a.design.window_margin = 2e-4;
  a.schedule = {{0.6, 1.0}, {0.4, 0.25}};

  ScenarioSpec b = fast_scenario("plain");

  const std::string text = scenario::serialize_scenarios({a, b});
  const auto parsed = scenario::parse_scenarios(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, a.name);
  expect_same_design(parsed[0].design, a.design);
  ASSERT_EQ(parsed[0].schedule.size(), 2u);
  EXPECT_EQ(parsed[0].schedule[0].duration, 0.6);
  EXPECT_EQ(parsed[0].schedule[0].scale, 1.0);
  EXPECT_EQ(parsed[0].schedule[1].duration, 0.4);
  EXPECT_EQ(parsed[0].schedule[1].scale, 0.25);
  EXPECT_EQ(parsed[1].name, b.name);
  expect_same_design(parsed[1].design, b.design);
  EXPECT_TRUE(parsed[1].schedule.empty());

  // A second trip produces the same text: serialization is a fixed point.
  EXPECT_EQ(scenario::serialize_scenarios(parsed), text);
}

TEST(ScenarioSpec, ParserReportsActionableErrors) {
  // Unknown key, with the line number and the known-key list.
  try {
    scenario::parse_scenarios("scenario a\nchip_powerr = 25\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("chip_powerr"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("chip_power"), std::string::npos) << e.what();
  }
  // Value before any scenario header.
  EXPECT_THROW(scenario::parse_scenarios("chip_power = 25\n"), SpecError);
  // Bad number.
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nchip_power = twenty\n"), SpecError);
  // Duplicate and invalid names.
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nscenario a\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenarios("scenario bad name\n"), SpecError);
  // Malformed schedule.
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nschedule = 0.5\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nschedule = -1:0.5\n"), SpecError);
  // Non-finite and overflowing values fail at the parser, not in a solver.
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nt_ambient = nan\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nh_top = inf\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nchip_power = 1e999\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenarios("scenario a\nseed = 99999999999999999999\n"),
               SpecError);
}

TEST(ScenarioSpec, CommentsAndBaseDefaultsApply) {
  core::OnocDesignSpec base = fixtures::coarse_onoc_spec();
  base.chip_power = 19.0;
  const auto parsed = scenario::parse_scenarios(
      "# header comment\n"
      "scenario only  # trailing comment\n"
      "heater_ratio = 0.6\n",
      base);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].design.chip_power, 19.0);        // inherited from base
  EXPECT_EQ(parsed[0].design.heater_ratio, 0.6);       // overridden
  EXPECT_EQ(parsed[0].design.oni_cell_xy, base.oni_cell_xy);
}

TEST(ScenarioSpec, DutyScaleFoldsScheduleIntoChipPower) {
  ScenarioSpec s = fast_scenario("duty");
  s.design.chip_power = 24.0;
  EXPECT_EQ(s.duty_scale(), 1.0);
  s.schedule = {{0.5, 1.0}, {0.5, 0.0}};
  EXPECT_DOUBLE_EQ(s.duty_scale(), 0.5);
  EXPECT_DOUBLE_EQ(s.effective_design().chip_power, 12.0);
  // The nominal design is untouched.
  EXPECT_EQ(s.design.chip_power, 24.0);
}

TEST(ScenarioRegistry, FamiliesExpandToDocumentedCounts) {
  const ScenarioSpec base = fast_scenario("base");
  const auto count = [&base](const std::string& family) {
    FamilySpec request;
    request.family = family;
    request.base = base;
    return scenario::expand_family(request).size();
  };
  EXPECT_EQ(count("traffic"), 4u);
  EXPECT_EQ(count("ambient"), 3u);
  EXPECT_EQ(count("heater_ladder"), 5u);
  EXPECT_EQ(count("duty_ramp"), 4u);
  EXPECT_EQ(count("wdm_ladder"), 3u);

  FamilySpec custom;
  custom.family = "ambient";
  custom.prefix = "amb";
  custom.base = base;
  custom.values = {-40.0, 85.0};
  const auto expanded = scenario::expand_family(custom);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].name, "amb_m40c");
  EXPECT_EQ(expanded[0].design.package.t_ambient, -40.0);
  EXPECT_EQ(expanded[1].name, "amb_85c");

  FamilySpec unknown;
  unknown.family = "nope";
  unknown.base = base;
  EXPECT_THROW(scenario::expand_family(unknown), SpecError);

  // Ladder values that alias in the generated names are rejected up front,
  // keeping every expansion serializable.
  FamilySpec aliasing;
  aliasing.family = "heater_ladder";
  aliasing.base = base;
  aliasing.values = {0.1234561, 0.1234562};
  EXPECT_THROW(scenario::expand_family(aliasing), Error);
}

TEST(ScenarioRegistry, BuiltinSuitesAreWellFormed) {
  for (const std::string& name : scenario::builtin_suite_names()) {
    const auto suite = scenario::builtin_suite(name);
    ASSERT_FALSE(suite.empty()) << name;
    std::vector<std::string> names;
    for (const ScenarioSpec& s : suite) {
      s.effective_design().validate();
      names.push_back(s.name);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
        << "duplicate scenario names in suite " << name;
  }
  EXPECT_EQ(scenario::builtin_suite("smoke").size(), 4u);
  EXPECT_GE(scenario::builtin_suite("corners").size(), 8u);
  EXPECT_THROW(scenario::builtin_suite("nope"), SpecError);
}

TEST(ScenarioBatch, ReportsAreBitIdenticalAcrossThreadCounts) {
  const auto suite = fast_suite();
  const auto run_at = [&suite](std::size_t threads) {
    BatchOptions options;
    options.threads = threads;
    return BatchRunner(options).run(suite);
  };
  const BatchResult serial = run_at(1);
  const BatchResult threaded = run_at(4);
  ASSERT_EQ(serial.reports.size(), suite.size());
  // The full-precision CSV rendering captures every reported number, so
  // string equality is bit equality of the results.
  EXPECT_EQ(scenario::batch_table(suite, serial).to_csv(),
            scenario::batch_table(suite, threaded).to_csv());
}

TEST(ScenarioBatch, CoarseSolveCacheIsBitIdenticalToColdSolves) {
  const auto suite = fast_suite();
  BatchOptions cold_options;
  cold_options.threads = 2;
  cold_options.share_global_solves = false;
  BatchOptions cached_options;
  cached_options.threads = 2;
  const BatchResult cold = BatchRunner(cold_options).run(suite);
  const BatchResult cached = BatchRunner(cached_options).run(suite);

  // Three WDM scenarios share one global scene; the hotspot one is its own.
  EXPECT_EQ(cold.stats.global_solves, suite.size());
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cached.stats.global_solves, 2u);
  EXPECT_EQ(cached.stats.cache_hits, suite.size() - 2u);

  EXPECT_EQ(scenario::batch_table(suite, cold).to_csv(),
            scenario::batch_table(suite, cached).to_csv());
}

TEST(ScenarioBatch, SceneKeySeparatesThermalKnobsFromSnrKnobs) {
  const ScenarioSpec base = fast_scenario("base");
  const core::ThermalAwareDesigner designer(base.design);
  const std::string key = designer.global_scene_key();

  // SNR/local-resolution knobs do not touch the global scene.
  ScenarioSpec snr = base;
  snr.design.wdm_channels = 16;
  snr.design.fanout = 2;
  snr.design.oni_cell_xy = 20e-6;
  EXPECT_EQ(core::ThermalAwareDesigner(snr.design).global_scene_key(), key);

  // Thermal knobs do.
  ScenarioSpec hot = base;
  hot.design.package.t_ambient = 85.0;
  EXPECT_NE(core::ThermalAwareDesigner(hot.design).global_scene_key(), key);
  ScenarioSpec heater = base;
  heater.design.heater_ratio = 0.6;
  EXPECT_NE(core::ThermalAwareDesigner(heater.design).global_scene_key(), key);
}

TEST(ScenarioBatch, WorkerFailuresSurfaceAsErrorsNamingTheScenario) {
  // The poisoned design passes validate() — every knob is positive and
  // finite — but explodes the coarse mesh past its cell budget when the
  // worker runs the designer. The failure must surface as a catchable
  // Error naming the scenario on the calling thread, not terminate the
  // process; both the cached coarse pass and the cold path are covered.
  auto suite = fast_suite();
  ScenarioSpec poisoned = fast_scenario("poisoned");
  poisoned.design.global_cell_xy = 1e-6;
  poisoned.design.oni_cell_xy = 1e-6;
  poisoned.design.validate();  // the poison is invisible to validation
  suite.push_back(std::move(poisoned));

  for (bool share : {true, false}) {
    BatchOptions options;
    options.threads = 4;
    options.share_global_solves = share;
    try {
      BatchRunner(options).run(suite);
      FAIL() << "poisoned scenario must throw (share_global_solves = " << share << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("cell budget"), std::string::npos) << e.what();
    }
  }
}

TEST(ScenarioBatch, InvalidScenarioNamesTheScenarioInTheError) {
  auto suite = fast_suite();
  suite[1].design.oni_cell_xy = -1.0;
  try {
    BatchRunner().run(suite);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(suite[1].name), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("oni_cell_xy"), std::string::npos) << e.what();
  }
  EXPECT_THROW(BatchRunner().run({}), Error);
}

}  // namespace
}  // namespace photherm
