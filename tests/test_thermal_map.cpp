#include "thermal/thermal_map.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "support/fixtures.hpp"
#include "thermal/fvm.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Box3;
using geometry::Scene;

/// A 2x2x1 mesh with hand-set temperatures.
struct Rig {
  std::shared_ptr<const mesh::RectilinearMesh> mesh;
  Rig() {
    const Scene scene = fixtures::uniform_slab(2e-3, 100e-6);
    mesh = fixtures::shared_mesh(scene, fixtures::uniform_mesh_options(1e-3));
  }
};

TEST(ThermalField, PointQueries) {
  Rig rig;
  ASSERT_EQ(rig.mesh->cell_count(), 4u);
  // Cells: (0,0), (1,0), (0,1), (1,1) -> temperatures 10, 20, 30, 40.
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(field.at({0.5e-3, 0.5e-3, 50e-6}), 10.0);
  EXPECT_DOUBLE_EQ(field.at({1.5e-3, 0.5e-3, 50e-6}), 20.0);
  EXPECT_DOUBLE_EQ(field.at({0.5e-3, 1.5e-3, 50e-6}), 30.0);
  EXPECT_DOUBLE_EQ(field.at({1.5e-3, 1.5e-3, 50e-6}), 40.0);
  EXPECT_DOUBLE_EQ(field.global_min(), 10.0);
  EXPECT_DOUBLE_EQ(field.global_max(), 40.0);
}

TEST(ThermalField, VolumeWeightedAverage) {
  Rig rig;
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  // Whole domain: plain mean (equal volumes).
  EXPECT_DOUBLE_EQ(field.average_in(Box3::make({0, 0, 0}, {2e-3, 2e-3, 100e-6})), 25.0);
  // A box covering 100% of cell 0 and 50% of cell 1 (by x-extent).
  const double avg =
      field.average_in(Box3::make({0, 0, 0}, {1.5e-3, 1e-3, 100e-6}));
  EXPECT_NEAR(avg, (10.0 * 1.0 + 20.0 * 0.5) / 1.5, 1e-12);
}

TEST(ThermalField, SpreadQueries) {
  Rig rig;
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  const Box3 all = Box3::make({0, 0, 0}, {2e-3, 2e-3, 100e-6});
  EXPECT_DOUBLE_EQ(field.min_in(all), 10.0);
  EXPECT_DOUBLE_EQ(field.max_in(all), 40.0);
  EXPECT_DOUBLE_EQ(field.spread_in(all), 30.0);
  const Box3 bottom = Box3::make({0, 0, 0}, {2e-3, 1e-3, 100e-6});
  EXPECT_DOUBLE_EQ(field.spread_in(bottom), 10.0);
}

TEST(ThermalField, SpreadOfAverages) {
  Rig rig;
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  const std::vector<Box3> boxes{
      Box3::make({0, 0, 0}, {1e-3, 1e-3, 100e-6}),      // cell 0: 10
      Box3::make({1e-3, 1e-3, 0}, {2e-3, 2e-3, 100e-6}) // cell 3: 40
  };
  EXPECT_DOUBLE_EQ(field.spread_of_averages(boxes), 30.0);
  EXPECT_THROW(field.spread_of_averages({}), Error);
}

TEST(ThermalField, SliceCsv) {
  Rig rig;
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  const std::string csv = field.slice_csv(50e-6);
  EXPECT_NE(csv.find("x,y,temperature"), std::string::npos);
  // 4 cells -> 4 data lines + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(ThermalField, Validation) {
  Rig rig;
  EXPECT_THROW(ThermalField(rig.mesh, {1.0}), Error);
  EXPECT_THROW(ThermalField(nullptr, {}), Error);
  const ThermalField field(rig.mesh, {10, 20, 30, 40});
  EXPECT_THROW(field.average_in(Box3::make({5e-3, 5e-3, 0}, {6e-3, 6e-3, 1e-3})), Error);
}

}  // namespace
}  // namespace photherm::thermal
