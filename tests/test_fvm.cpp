#include "thermal/fvm.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using fixtures::add_heater;
using fixtures::uniform_mesh_options;
using fixtures::uniform_slab;
using geometry::Box3;
using geometry::Scene;

/// Uniform silicon slab, area a x a, thickness t.
Scene slab(double a, double t) { return uniform_slab(a, t); }

TEST(Fvm, MatrixIsSymmetricSpd) {
  Scene scene = slab(1e-3, 200e-6);
  const auto options = uniform_mesh_options(200e-6, 100e-6);
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(1e4, 25.0);
  const auto system = assemble(mesh, bcs);
  EXPECT_TRUE(system.matrix.is_symmetric());
  // Diagonal dominance (M-matrix): diagonal >= sum of |off-diagonals|.
  const auto d = system.matrix.diagonal();
  for (double v : d) {
    EXPECT_GT(v, 0.0);
  }
}

TEST(Fvm, AllAdiabaticRejected) {
  Scene scene = slab(1e-3, 200e-6);
  const auto options = uniform_mesh_options(500e-6);
  const auto mesh = mesh::RectilinearMesh::build(scene, options);
  EXPECT_THROW(assemble(mesh, BoundarySet::adiabatic()), Error);
}

TEST(Fvm, NoPowerGivesAmbientEverywhere) {
  Scene scene = slab(1e-3, 200e-6);
  const auto options = uniform_mesh_options(250e-6);
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(5e3, 42.0);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);
  EXPECT_NEAR(field.global_min(), 42.0, 1e-8);
  EXPECT_NEAR(field.global_max(), 42.0, 1e-8);
}

TEST(Fvm, UniformFluxMatches1dAnalytic) {
  // Uniform volumetric heating of a slab, convection on top, adiabatic
  // elsewhere: surface T = T_inf + q''/h; bottom adds q'' t / (2 k) ... the
  // exact profile is parabolic; check both faces.
  const double a = 1e-3;
  const double t = 200e-6;
  const double power = 0.2;
  Scene scene = slab(a, t);
  add_heater(scene, Box3::make({0, 0, 0}, {a, a, t}), power, "silicon",
             "volumetric");

  const double h = 2e4;
  const double t_inf = 30.0;
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(h, t_inf);

  // 1-D column in xy.
  const auto options = uniform_mesh_options(a, 2e-6);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);

  const double flux = power / (a * a);
  const double k = scene.materials().get("silicon").conductivity;
  const double t_top = t_inf + flux / h;
  const double t_bottom = t_top + flux * t / (2.0 * k);
  EXPECT_NEAR(field.at({a / 2, a / 2, t - 1e-9}), t_top, 0.02 * (t_top - t_inf) + 1e-3);
  EXPECT_NEAR(field.at({a / 2, a / 2, 0.0}), t_bottom, 0.02 * (t_bottom - t_inf) + 1e-3);
}

TEST(Fvm, SeriesLayersMatchResistanceChain) {
  // Two layers (silicon under oxide), heat injected at the bottom face
  // region, convection on top: interface temperatures follow the 1-D
  // resistance chain.
  const double a = 0.5e-3;
  Scene scene;
  geometry::LayerStackBuilder stack(a, a);
  stack.add_layer({"si", "silicon", 100e-6});
  stack.add_layer({"ox", "silicon_dioxide", 20e-6});
  stack.emit(scene);
  add_heater(scene, Box3::make({0, 0, 0}, {a, a, 10e-6}), 0.1, "silicon",
             "source");

  const double h = 1e4;
  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(h, 20.0);
  const auto options = uniform_mesh_options(a, 2e-6);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);

  const double flux = 0.1 / (a * a);
  const double k_ox = scene.materials().get("silicon_dioxide").conductivity;
  // Temperature drop across the oxide: q'' t / k.
  const double drop_ox = flux * 20e-6 / k_ox;
  const double measured_drop =
      field.at({a / 2, a / 2, 100e-6 - 1e-9}) - field.at({a / 2, a / 2, 120e-6 - 1e-9});
  EXPECT_NEAR(measured_drop, drop_ox, 0.05 * drop_ox);
}

TEST(Fvm, EnergyBalance) {
  const double a = 1e-3;
  Scene scene = slab(a, 300e-6);
  add_heater(scene, Box3::make({a / 4, a / 4, 0}, {a / 2, a / 2, 50e-6}), 0.75,
             "silicon", "hotspot");

  BoundarySet bcs;
  bcs[Face::kZMax] = FaceBc::convection(5e3, 25.0);
  bcs[Face::kZMin] = FaceBc::convection(100.0, 25.0);
  bcs[Face::kXMin] = FaceBc::dirichlet(25.0);

  const auto options = uniform_mesh_options(100e-6, 50e-6);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);
  EXPECT_NEAR(boundary_heat_flow(field, bcs), 0.75, 1e-6);
}

TEST(Fvm, DirichletFaceIsRespected) {
  Scene scene = slab(1e-3, 200e-6);
  BoundarySet bcs;
  bcs[Face::kZMin] = FaceBc::dirichlet(77.0);
  const auto options = uniform_mesh_options(250e-6, 20e-6);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);
  // No power: the whole slab relaxes to the wall temperature (up to the
  // iterative-solver tolerance).
  EXPECT_NEAR(field.global_min(), 77.0, 1e-5);
  EXPECT_NEAR(field.global_max(), 77.0, 1e-5);
}

TEST(Fvm, DirichletFieldVariesAlongFace) {
  Scene scene = slab(1e-3, 100e-6);
  BoundarySet bcs;
  bcs[Face::kZMin] = FaceBc::dirichlet_field(
      [](const geometry::Vec3& p) { return 20.0 + 1e4 * p.x; });  // 20..30 degC
  const auto options = uniform_mesh_options(100e-6, 25e-6);
  const auto field =
      solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);
  const double left = field.at({0.05e-3, 0.5e-3, 0.0});
  const double right = field.at({0.95e-3, 0.5e-3, 0.0});
  EXPECT_GT(right, left + 5.0);
  EXPECT_GT(left, 19.0);
  EXPECT_LT(right, 31.0);
}

TEST(Fvm, HotterSourceGivesHotterField) {
  const double a = 1e-3;
  for (double power : {0.1, 0.2}) {
    Scene scene = slab(a, 200e-6);
    add_heater(scene,
               Box3::make({a / 4, a / 4, 0}, {3 * a / 4, 3 * a / 4, 50e-6}),
               power);
    BoundarySet bcs;
    bcs[Face::kZMax] = FaceBc::convection(5e3, 25.0);
    const auto options = uniform_mesh_options(125e-6);
    const auto field =
        solve_steady_state(mesh::RectilinearMesh::build(scene, options), bcs);
    // Linearity: peak rise doubles with power.
    static double first_rise = 0.0;
    if (power == 0.1) {
      first_rise = field.global_max() - 25.0;
    } else {
      EXPECT_NEAR(field.global_max() - 25.0, 2.0 * first_rise, 1e-6);
    }
  }
}

}  // namespace
}  // namespace photherm::thermal
