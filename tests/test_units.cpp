#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm {
namespace {

TEST(Units, LengthScalesCompose) {
  EXPECT_DOUBLE_EQ(1000.0 * units::um, 1.0 * units::mm);
  EXPECT_DOUBLE_EQ(10.0 * units::mm, 1.0 * units::cm);
  EXPECT_DOUBLE_EQ(1e9 * units::nm, 1.0 * units::m);
}

TEST(Units, PowerScalesCompose) {
  EXPECT_DOUBLE_EQ(1000.0 * units::uW, 1.0 * units::mW);
  EXPECT_DOUBLE_EQ(1000.0 * units::mW, 1.0 * units::W);
}

TEST(Units, PhotonEnergyAt1550nm) {
  // 1550 nm photon: ~0.8 eV.
  const double ev = photon_energy(1550e-9) / constants::kElementaryCharge;
  EXPECT_NEAR(ev, 0.80, 0.01);
}

TEST(Units, WattDbmRoundTrip) {
  EXPECT_NEAR(watt_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(watt_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watt(-20.0), 1e-5, 1e-12);
  for (double dbm : {-30.0, -3.0, 0.0, 10.0}) {
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbLinearRoundTrip) {
  EXPECT_NEAR(db_to_linear(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(linear_to_db(0.5), 3.0103, 1e-4);
  EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
}

TEST(Units, RatioDb) {
  EXPECT_NEAR(ratio_db(10.0, 1.0), 10.0, 1e-12);
  EXPECT_NEAR(ratio_db(1.0, 10.0), -10.0, 1e-12);
}

TEST(Units, InvalidInputsThrow) {
  EXPECT_THROW(watt_to_dbm(0.0), Error);
  EXPECT_THROW(watt_to_dbm(-1.0), Error);
  EXPECT_THROW(linear_to_db(0.0), Error);
  EXPECT_THROW(ratio_db(0.0, 1.0), Error);
}

}  // namespace
}  // namespace photherm
