# CTest smoke run of the photherm_cli scenario driver, invoked as
#   cmake -DPHOTHERM_CLI=... -DGOLDEN=... -DWORK_DIR=... -P scenario_smoke.cmake
# Flow: expand the builtin smoke suite to a scenario file, run that file
# twice (serial + cold vs threaded + cached), require the two CSVs to be
# bit-identical, then compare against the checked-in golden CSV within a
# numeric tolerance (absorbs cross-platform floating-point drift while
# still catching real regressions).

foreach(var PHOTHERM_CLI GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "scenario_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

# Like run_cli, but also requires the stable key=value stats line on
# stderr — the machine-readable contract scripts grep for.
function(run_cli_expect_stderr regex)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
  if(NOT err MATCHES "${regex}")
    message(FATAL_ERROR "photherm_cli ${ARGN}: stderr does not match "
                        "`${regex}`; got:\n${err}")
  endif()
endfunction()

run_cli(expand builtin:smoke -o ${WORK_DIR}/suite.scn)
run_cli_expect_stderr(
    "event=batch_run scenarios=[0-9]+ global_solves=[0-9]+ cache_hits=0"
    run ${WORK_DIR}/suite.scn --threads 1 --no-cache -o ${WORK_DIR}/serial.csv)
run_cli_expect_stderr(
    "event=batch_run scenarios=[0-9]+ global_solves=[0-9]+ cache_hits=[0-9]+"
    run ${WORK_DIR}/suite.scn --threads 4 -o ${WORK_DIR}/threaded.csv)

file(READ ${WORK_DIR}/serial.csv serial_csv)
file(READ ${WORK_DIR}/threaded.csv threaded_csv)
if(NOT serial_csv STREQUAL threaded_csv)
  message(FATAL_ERROR "batch output is not bit-identical between "
                      "{1 thread, cache off} and {4 threads, cache on}")
endif()

run_cli(diff ${GOLDEN} ${WORK_DIR}/serial.csv --tol 1e-4)
