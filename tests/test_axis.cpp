#include "mesh/axis.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::mesh {
namespace {

TEST(GenerateTicks, IncludesBoundaries) {
  const auto ticks = generate_ticks(0.0, 10.0, {3.0, 7.0}, 100.0, {});
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.0);
  EXPECT_DOUBLE_EQ(ticks[1], 3.0);
  EXPECT_DOUBLE_EQ(ticks[2], 7.0);
  EXPECT_DOUBLE_EQ(ticks[3], 10.0);
}

TEST(GenerateTicks, SubdividesToMaxSize) {
  const auto ticks = generate_ticks(0.0, 1.0, {}, 0.3, {});
  // 1.0 / 0.3 -> 4 pieces of 0.25.
  ASSERT_EQ(ticks.size(), 5u);
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    EXPECT_LE(ticks[i] - ticks[i - 1], 0.3 + 1e-12);
  }
}

TEST(GenerateTicks, RefinementAppliesLocally) {
  std::vector<AxisRefinement> refinements{{0.4, 0.6, 0.05}};
  const auto ticks = generate_ticks(0.0, 1.0, {}, 1.0, refinements);
  // Outside [0.4, 0.6] cells can be large; inside they are <= 0.05.
  for (std::size_t i = 1; i < ticks.size(); ++i) {
    const double mid = 0.5 * (ticks[i] + ticks[i - 1]);
    if (mid > 0.4 && mid < 0.6) {
      EXPECT_LE(ticks[i] - ticks[i - 1], 0.05 + 1e-12);
    }
  }
  EXPECT_GE(ticks.size(), 5u);
}

TEST(GenerateTicks, MergesNearDuplicates) {
  const auto ticks = generate_ticks(0.0, 1.0, {0.5, 0.5 + 1e-12}, 10.0, {});
  EXPECT_EQ(ticks.size(), 3u);
}

TEST(GenerateTicks, IgnoresOutOfDomainBoundaries) {
  const auto ticks = generate_ticks(0.0, 1.0, {-5.0, 0.5, 7.0}, 10.0, {});
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[1], 0.5);
}

TEST(GenerateTicks, Validation) {
  EXPECT_THROW(generate_ticks(1.0, 0.0, {}, 1.0, {}), Error);
  EXPECT_THROW(generate_ticks(0.0, 1.0, {}, 0.0, {}), Error);
  EXPECT_THROW(generate_ticks(0.0, 1.0, {}, 1.0, {{0.1, 0.2, 0.0}}), Error);
}

TEST(AxisGrid, CellGeometry) {
  const AxisGrid g({0.0, 1.0, 3.0});
  EXPECT_EQ(g.cell_count(), 2u);
  EXPECT_DOUBLE_EQ(g.cell_width(0), 1.0);
  EXPECT_DOUBLE_EQ(g.cell_width(1), 2.0);
  EXPECT_DOUBLE_EQ(g.cell_center(1), 2.0);
  EXPECT_DOUBLE_EQ(g.lo(), 0.0);
  EXPECT_DOUBLE_EQ(g.hi(), 3.0);
}

TEST(AxisGrid, FindCell) {
  const AxisGrid g({0.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(g.find_cell(-1.0), 0u);
  EXPECT_EQ(g.find_cell(0.5), 0u);
  EXPECT_EQ(g.find_cell(1.0), 1u);
  EXPECT_EQ(g.find_cell(3.9), 2u);
  EXPECT_EQ(g.find_cell(99.0), 2u);
}

TEST(AxisGrid, CellRange) {
  const AxisGrid g({0.0, 1.0, 2.0, 3.0, 4.0});
  {
    const auto [first, last] = g.cell_range(1.0, 3.0);
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(last, 3u);
  }
  {
    // Partially overlapping cells are included.
    const auto [first, last] = g.cell_range(0.5, 2.5);
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(last, 3u);
  }
  {
    // Query outside the domain clamps to empty.
    const auto [first, last] = g.cell_range(10.0, 12.0);
    EXPECT_EQ(first, last);
  }
  {
    // Range covering everything.
    const auto [first, last] = g.cell_range(-1.0, 99.0);
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(last, 4u);
  }
}

TEST(AxisGrid, Validation) {
  EXPECT_THROW(AxisGrid({1.0}), Error);
  EXPECT_THROW(AxisGrid({1.0, 1.0}), Error);
  EXPECT_THROW(AxisGrid({2.0, 1.0}), Error);
}

}  // namespace
}  // namespace photherm::mesh
