#include "math/tridiagonal.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "util/error.hpp"

namespace photherm::math {
namespace {

TEST(Tridiagonal, SolvesIdentity) {
  const auto x = solve_tridiagonal({0, 0, 0}, {1, 1, 1}, {0, 0, 0}, {3, 4, 5});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], 5.0);
}

TEST(Tridiagonal, SolvesLaplacianSystem) {
  // A = tridiag(-1, 2, -1), x = [1, 2, 3] -> b = [0, 0, 4]
  const auto x = solve_tridiagonal({0, -1, -1}, {2, 2, 2}, {-1, -1, 0}, {0, 0, 4});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Tridiagonal, SingleUnknown) {
  const auto x = solve_tridiagonal({0}, {4}, {0}, {8});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Tridiagonal, RejectsSizeMismatch) {
  EXPECT_THROW(solve_tridiagonal({0}, {1, 1}, {0, 0}, {1, 1}), Error);
}

TEST(Tridiagonal, RejectsZeroPivot) {
  EXPECT_THROW(solve_tridiagonal({0, 0}, {0, 1}, {0, 0}, {1, 1}), Error);
}

TEST(Tridiagonal, LargeSystemRoundTrip) {
  const std::size_t n = 500;
  std::vector<double> lower(n, -1.0), diag(n, 2.5), upper(n, -1.0);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = std::sin(static_cast<double>(i));
  }
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = diag[i] * x_true[i];
    if (i > 0) {
      rhs[i] += lower[i] * x_true[i - 1];
    }
    if (i + 1 < n) {
      rhs[i] += upper[i] * x_true[i + 1];
    }
  }
  const auto x = solve_tridiagonal(lower, diag, upper, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

}  // namespace
}  // namespace photherm::math
