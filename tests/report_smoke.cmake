# CTest smoke run of the photherm_report analysis tool over real
# photherm_cli artifacts, invoked as
#   cmake -DPHOTHERM_CLI=... -DPHOTHERM_REPORT=... -DRULES=... -DWORK_DIR=...
#         -P report_smoke.cmake
# Flow:
#   1. play the builtin transient suite with --metrics at 1 and 4 threads;
#      `photherm_report diff --gate` across the two runs must exit 0 with
#      zero regressions — the deterministic counters are thread-count
#      invariant (the zero-delta acceptance criterion).
#   2. doctor the candidate (inflate the CG iteration total) — the gate
#      must fire: non-zero exit and a REGRESS verdict.
#   3. record a --convergence --trace run (output must stay byte-identical
#      to the unrecorded run) and rebuild the per-solve residual CSV.
#   4. summarize must render both artifact kinds.

foreach(var PHOTHERM_CLI PHOTHERM_REPORT RULES WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

# Run photherm_report expecting a specific exit code; stdout is returned in
# `out_var` for shape assertions.
function(run_report expect_rv out_var)
  execute_process(COMMAND ${PHOTHERM_REPORT} ${ARGN}
                  RESULT_VARIABLE rv OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rv EQUAL ${expect_rv})
    message(FATAL_ERROR "photherm_report ${ARGN}: expected exit ${expect_rv}, "
                        "got ${rv}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(play_args play builtin:transient --dt 0.2 --periods 5)
run_cli(${play_args} --threads 1 -o ${WORK_DIR}/out1.csv
        --metrics ${WORK_DIR}/metrics1.csv)
run_cli(${play_args} --threads 4 -o ${WORK_DIR}/out4.csv
        --metrics ${WORK_DIR}/metrics4.csv)

# 1. Zero-delta acceptance: same suite at different thread counts gates
# clean — every deterministic counter identical, wall drift at most warned.
run_report(0 clean_out
           diff ${WORK_DIR}/metrics1.csv ${WORK_DIR}/metrics4.csv --gate ${RULES})
if(NOT clean_out MATCHES "0 regressions")
  message(FATAL_ERROR "cross-thread diff should report zero regressions; "
                      "got:\n${clean_out}")
endif()

# 2. Doctored candidate: inflating the CG iteration total must trip the
# exact gate on solver.*.iterations.
file(READ ${WORK_DIR}/metrics4.csv doctored)
string(REGEX REPLACE
       "solver\\.conjugate_gradient\\.iterations,counter,([0-9]+),([0-9]+)"
       "solver.conjugate_gradient.iterations,counter,\\1,9\\2"
       doctored "${doctored}")
file(WRITE ${WORK_DIR}/doctored.csv "${doctored}")
run_report(1 fired_out
           diff ${WORK_DIR}/metrics1.csv ${WORK_DIR}/doctored.csv --gate ${RULES})
if(NOT fired_out MATCHES "REGRESS")
  message(FATAL_ERROR "doctored diff should carry a REGRESS verdict; "
                      "got:\n${fired_out}")
endif()

# 3. Convergence capture: recording reuses the iteration's own stopping
# check, so the physics output stays byte-identical; the report rebuilds
# the per-solve residual series from the trace's counter events.
run_cli(${play_args} --threads 1 --convergence -o ${WORK_DIR}/conv_out.csv
        --trace ${WORK_DIR}/conv_trace.json)
file(READ ${WORK_DIR}/out1.csv plain_csv)
file(READ ${WORK_DIR}/conv_out.csv conv_csv)
if(NOT plain_csv STREQUAL conv_csv)
  message(FATAL_ERROR "--convergence changed the playback output")
endif()
run_report(0 conv_report
           convergence ${WORK_DIR}/conv_trace.json -o ${WORK_DIR}/convergence.csv)
file(READ ${WORK_DIR}/convergence.csv convergence_csv)
if(NOT convergence_csv MATCHES "solver,tid,solve,iteration,residual")
  message(FATAL_ERROR "convergence CSV is missing its header")
endif()
if(NOT convergence_csv MATCHES "solver\\.conjugate_gradient\\.residual,[0-9]+,0,0,1\n")
  message(FATAL_ERROR "convergence CSV should open each track with the "
                      "iteration-0 relative residual of exactly 1")
endif()

# 4. summarize renders both artifact kinds.
run_report(0 sum_metrics summarize ${WORK_DIR}/metrics1.csv)
if(NOT sum_metrics MATCHES "timers by total wall")
  message(FATAL_ERROR "metrics summary is missing the timer table")
endif()
if(NOT sum_metrics MATCHES "iters/solve")
  message(FATAL_ERROR "metrics summary is missing the derived solver economics")
endif()
run_report(0 sum_trace summarize ${WORK_DIR}/conv_trace.json)
if(NOT sum_trace MATCHES "spans by total wall")
  message(FATAL_ERROR "trace summary is missing the span roll-up")
endif()
