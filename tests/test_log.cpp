#include "util/log.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacroFiltersBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Streams below the threshold must not even evaluate their arguments.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return "";
  };
  PH_LOG_INFO << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kTrace);
  PH_LOG_ERROR << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    PH_REQUIRE(1 == 2, "the answer must match");
    FAIL() << "PH_REQUIRE did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the answer must match"), std::string::npos);
    EXPECT_NE(what.find("test_log.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw SpecError("bad spec"), Error);
  EXPECT_THROW(throw SolverError("diverged"), Error);
  EXPECT_THROW(throw Error("generic"), std::runtime_error);
}

}  // namespace
}  // namespace photherm
