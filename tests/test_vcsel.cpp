#include "photonics/vcsel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {
namespace {

TEST(Vcsel, PaperEfficiencyAnchors) {
  // Sec. III-C: wall-plug efficiency drops from ~15 % at 40 degC to ~4 %
  // at 60 degC.
  const Vcsel vcsel{VcselParams{}};
  const double eta40 = vcsel.wall_plug_efficiency(5e-3, 40.0);
  const double eta60 = vcsel.wall_plug_efficiency(5e-3, 60.0);
  EXPECT_NEAR(eta40, 0.15, 0.03);
  EXPECT_NEAR(eta60, 0.04, 0.015);
}

TEST(Vcsel, EfficiencyDecreasesWithTemperature) {
  const Vcsel vcsel{VcselParams{}};
  double previous = 1.0;
  for (double t = 10.0; t <= 70.0; t += 10.0) {
    const double eta = vcsel.wall_plug_efficiency(6e-3, t);
    EXPECT_LT(eta, previous);
    EXPECT_GE(eta, 0.0);
    previous = eta;
  }
}

TEST(Vcsel, ThresholdBehaviour) {
  const Vcsel vcsel{VcselParams{}};
  // Minimal threshold at the optimum temperature, rising on both sides.
  const double t_opt = vcsel.params().t_th_opt;
  EXPECT_LT(vcsel.threshold_current(t_opt), vcsel.threshold_current(t_opt + 40.0));
  EXPECT_LT(vcsel.threshold_current(t_opt), vcsel.threshold_current(t_opt - 40.0));
  // Below threshold: no light, all power dissipated.
  const double i_sub = 0.5 * vcsel.threshold_current(30.0);
  EXPECT_DOUBLE_EQ(vcsel.output_power(i_sub, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(vcsel.dissipated_power(i_sub, 30.0), vcsel.electrical_power(i_sub));
}

TEST(Vcsel, OutputLinearAboveThreshold) {
  const Vcsel vcsel{VcselParams{}};
  const double t = 30.0;
  const double ith = vcsel.threshold_current(t);
  const double p1 = vcsel.output_power(ith + 2e-3, t);
  const double p2 = vcsel.output_power(ith + 4e-3, t);
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(Vcsel, EnergyConservation) {
  const Vcsel vcsel{VcselParams{}};
  for (double i : {1e-3, 5e-3, 10e-3}) {
    for (double t : {20.0, 50.0}) {
      const double elec = vcsel.electrical_power(i);
      const double out = vcsel.output_power(i, t);
      const double diss = vcsel.dissipated_power(i, t);
      EXPECT_NEAR(elec, out + diss, 1e-15);
      EXPECT_GT(diss, 0.0);
      EXPECT_LT(out, elec);
    }
  }
}

TEST(Vcsel, CurrentForDissipatedPowerInverts) {
  const Vcsel vcsel{VcselParams{}};
  for (double p : {0.5e-3, 2e-3, 6e-3}) {
    const double i = vcsel.current_for_dissipated_power(p, 45.0);
    EXPECT_NEAR(vcsel.dissipated_power(i, 45.0), p, 1e-9);
  }
  EXPECT_DOUBLE_EQ(vcsel.current_for_dissipated_power(0.0, 45.0), 0.0);
  EXPECT_THROW(vcsel.current_for_dissipated_power(10.0, 45.0), Error);  // out of range
}

TEST(Vcsel, SelfConsistentJunctionTemperature) {
  const Vcsel vcsel{VcselParams{}};
  const double r_th = 1.8e3;  // K/W
  const double t_j = vcsel.junction_temperature(5e-3, 40.0, r_th);
  EXPECT_GT(t_j, 40.0);
  // Fixed point property.
  EXPECT_NEAR(t_j, 40.0 + r_th * vcsel.dissipated_power(5e-3, t_j), 1e-6);
  // No self-heating with zero resistance.
  EXPECT_DOUBLE_EQ(vcsel.junction_temperature(5e-3, 40.0, 0.0), 40.0);
}

TEST(Vcsel, SelfHeatedOutputRollsOver) {
  // Fig. 8-c shape: at high base temperature the emitted power versus
  // dissipated power bends over (eventually decreasing).
  const Vcsel vcsel{VcselParams{}};
  const double r_th = 1.8e3;
  const double low = vcsel.output_power_for_dissipated(4e-3, 60.0, r_th);
  const double high = vcsel.output_power_for_dissipated(16e-3, 60.0, r_th);
  const double gain_low = low / 4e-3;
  const double gain_high = high / 16e-3;
  EXPECT_LT(gain_high, gain_low);  // diminishing returns
}

TEST(Vcsel, EmissionWavelengthShift) {
  const Vcsel vcsel{VcselParams{}};
  const double l25 = vcsel.emission_wavelength(25.0);
  const double l35 = vcsel.emission_wavelength(35.0);
  EXPECT_DOUBLE_EQ(l25, 1550e-9);
  EXPECT_NEAR(l35 - l25, 1e-9, 1e-15);  // 0.1 nm/degC * 10 degC
}

TEST(Vcsel, ParameterValidation) {
  VcselParams p;
  p.eta_d_max = 1.5;
  EXPECT_THROW(Vcsel{p}, Error);
  p = VcselParams{};
  p.ith0 = -1.0;
  EXPECT_THROW(Vcsel{p}, Error);
  p = VcselParams{};
  p.max_current = 0.1e-3;  // below threshold
  EXPECT_THROW(Vcsel{p}, Error);
  const Vcsel ok{VcselParams{}};
  EXPECT_THROW(ok.output_power(-1e-3, 30.0), Error);
  EXPECT_THROW(ok.voltage(-1.0), Error);
}

TEST(Vcsel, WallPlugNeverExceedsUnity) {
  const Vcsel vcsel{VcselParams{}};
  for (double i = 0.5e-3; i <= 15e-3; i += 0.5e-3) {
    for (double t = 0.0; t <= 80.0; t += 5.0) {
      const double eta = vcsel.wall_plug_efficiency(i, t);
      EXPECT_GE(eta, 0.0);
      EXPECT_LT(eta, 1.0);
    }
  }
}

}  // namespace
}  // namespace photherm::photonics
