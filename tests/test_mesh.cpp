#include "mesh/mesh.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "util/error.hpp"

namespace photherm::mesh {
namespace {

using geometry::Block;
using geometry::BlockKind;
using geometry::Box3;
using geometry::Scene;

Scene two_layer_scene() {
  Scene scene;
  geometry::LayerStackBuilder stack(1e-3, 1e-3);
  stack.add_layer({"si", "silicon", 100e-6});
  stack.add_layer({"ox", "silicon_dioxide", 50e-6});
  stack.emit(scene);
  return scene;
}

TEST(Mesh, MaterialsFollowLayers) {
  Scene scene = two_layer_scene();
  MeshOptions options;
  options.default_max_cell_xy = 250e-6;
  const auto mesh = RectilinearMesh::build(scene, options);
  EXPECT_EQ(mesh.nz(), 2u);  // layer faces only
  const auto si = scene.materials().id_of("silicon");
  const auto ox = scene.materials().id_of("silicon_dioxide");
  EXPECT_EQ(mesh.material(mesh.cell_at({0.5e-3, 0.5e-3, 50e-6})), si);
  EXPECT_EQ(mesh.material(mesh.cell_at({0.5e-3, 0.5e-3, 125e-6})), ox);
}

TEST(Mesh, PowerDepositedByOverlap) {
  Scene scene = two_layer_scene();
  Block heat;
  heat.name = "hotspot";
  heat.box = Box3::make({0.25e-3, 0.25e-3, 0}, {0.75e-3, 0.75e-3, 100e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 2.0;
  scene.add(std::move(heat));

  MeshOptions options;
  options.default_max_cell_xy = 100e-6;
  const auto mesh = RectilinearMesh::build(scene, options);
  EXPECT_NEAR(mesh.total_power(), 2.0, 1e-12);

  // Power density is uniform inside the block and zero outside.
  const std::size_t inside = mesh.cell_at({0.5e-3, 0.5e-3, 50e-6});
  const std::size_t outside = mesh.cell_at({0.05e-3, 0.05e-3, 50e-6});
  EXPECT_GT(mesh.power(inside), 0.0);
  EXPECT_DOUBLE_EQ(mesh.power(outside), 0.0);
}

TEST(Mesh, PowerClippedByDomain) {
  Scene scene = two_layer_scene();
  Block heat;
  heat.name = "hotspot";
  heat.box = Box3::make({0.0, 0.0, 0.0}, {1e-3, 1e-3, 100e-6});
  heat.material = scene.materials().id_of("silicon");
  heat.power = 4.0;
  scene.add(std::move(heat));

  // Mesh only half the domain: exactly half the power must be deposited.
  MeshOptions options;
  options.default_max_cell_xy = 100e-6;
  const Box3 half = Box3::make({0.0, 0.0, 0.0}, {0.5e-3, 1e-3, 150e-6});
  const auto mesh = RectilinearMesh::build(scene, half, options);
  EXPECT_NEAR(mesh.total_power(), 2.0, 1e-9);
}

TEST(Mesh, RefinementBoxesRefineLocally) {
  Scene scene = two_layer_scene();
  MeshOptions options;
  options.default_max_cell_xy = 500e-6;
  RefinementBox refine;
  refine.box = Box3::make({0.4e-3, 0.4e-3, 0.0}, {0.6e-3, 0.6e-3, 150e-6});
  refine.max_cell_xy = 10e-6;
  refine.max_cell_z = 0.0;
  options.refinements.push_back(refine);
  const auto mesh = RectilinearMesh::build(scene, options);
  // 0.2 mm window at 10 um -> at least 20 cells inside plus the coarse rest.
  EXPECT_GE(mesh.nx(), 22u);
  const std::size_t fine = mesh.cell_at({0.5e-3, 0.5e-3, 50e-6});
  const std::size_t ix = fine % mesh.nx();
  EXPECT_LE(mesh.x().cell_width(ix), 10e-6 + 1e-12);
}

TEST(Mesh, MinFeatureSizeSkipsDeviceTicks) {
  Scene scene = two_layer_scene();
  Block dev;
  dev.name = "vcsel";
  dev.box = Box3::make({0.49e-3, 0.49e-3, 100e-6}, {0.505e-3, 0.52e-3, 150e-6});
  dev.material = scene.materials().id_of("inp");
  dev.power = 1e-3;
  scene.add(std::move(dev));

  MeshOptions coarse;
  coarse.default_max_cell_xy = 500e-6;
  coarse.min_feature_size_xy = 100e-6;
  const auto mesh_coarse = RectilinearMesh::build(scene, coarse);

  MeshOptions fine = coarse;
  fine.min_feature_size_xy = 0.0;
  const auto mesh_fine = RectilinearMesh::build(scene, fine);

  EXPECT_LT(mesh_coarse.nx(), mesh_fine.nx());
  // Power still deposited in both.
  EXPECT_NEAR(mesh_coarse.total_power(), 1e-3, 1e-12);
  EXPECT_NEAR(mesh_fine.total_power(), 1e-3, 1e-12);
}

TEST(Mesh, CellsInBox) {
  Scene scene = two_layer_scene();
  MeshOptions options;
  options.default_max_cell_xy = 250e-6;
  const auto mesh = RectilinearMesh::build(scene, options);
  const auto all = mesh.cells_in(scene.bounding_box());
  EXPECT_EQ(all.size(), mesh.cell_count());
  const auto some = mesh.cells_in(Box3::make({0, 0, 0}, {250e-6, 250e-6, 100e-6}));
  EXPECT_EQ(some.size(), 1u);
}

TEST(Mesh, CellBudgetEnforced) {
  Scene scene = two_layer_scene();
  MeshOptions options;
  options.default_max_cell_xy = 1e-6;
  options.max_cells = 1000;
  EXPECT_THROW(RectilinearMesh::build(scene, options), Error);
}

TEST(Mesh, IndexingRoundTrip) {
  Scene scene = two_layer_scene();
  MeshOptions options;
  options.default_max_cell_xy = 250e-6;
  const auto mesh = RectilinearMesh::build(scene, options);
  for (std::size_t iz = 0; iz < mesh.nz(); ++iz) {
    for (std::size_t iy = 0; iy < mesh.ny(); ++iy) {
      for (std::size_t ix = 0; ix < mesh.nx(); ++ix) {
        const auto box = mesh.cell_box(ix, iy, iz);
        EXPECT_EQ(mesh.cell_at(box.center()), mesh.index(ix, iy, iz));
      }
    }
  }
}

}  // namespace
}  // namespace photherm::mesh
