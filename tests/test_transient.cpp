#include "thermal/transient.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Box3;
using geometry::Scene;

struct Rig {
  std::shared_ptr<const mesh::RectilinearMesh> mesh;
  BoundarySet bcs;
};

Rig make_rig(double power) {
  Scene scene = fixtures::uniform_slab(1e-3, 200e-6);
  if (power > 0.0) {
    fixtures::add_heater(
        scene, Box3::make({0.25e-3, 0.25e-3, 0}, {0.75e-3, 0.75e-3, 50e-6}),
        power, "silicon", "source");
  }
  Rig rig;
  rig.mesh =
      fixtures::shared_mesh(scene, fixtures::uniform_mesh_options(125e-6, 50e-6));
  rig.bcs[Face::kZMax] = FaceBc::convection(5e3, 25.0);
  return rig;
}

TEST(Transient, EquilibriumStaysPut) {
  Rig rig = make_rig(0.0);
  TransientOptions options;
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  const auto field = solver.advance(5);
  EXPECT_NEAR(field.global_min(), 25.0, 1e-9);
  EXPECT_NEAR(field.global_max(), 25.0, 1e-9);
}

TEST(Transient, ConvergesToSteadyState) {
  Rig rig = make_rig(0.5);
  const auto steady = solve_steady_state(rig.mesh, rig.bcs);

  TransientOptions options;
  options.time_step = 5e-3;  // a few thermal time constants per step
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  const auto field = solver.advance(400);
  EXPECT_NEAR(field.global_max(), steady.global_max(), 0.01);
  EXPECT_NEAR(field.global_min(), steady.global_min(), 0.01);
}

TEST(Transient, MonotoneHeatingFromCold) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  double previous = 25.0;
  for (int step = 0; step < 10; ++step) {
    const double peak = solver.step().global_max();
    EXPECT_GE(peak, previous - 1e-9);
    previous = peak;
  }
  EXPECT_GT(previous, 25.0 + 1e-3);
  EXPECT_NEAR(solver.time(), 10e-3, 1e-12);
}

TEST(Transient, CoolingAfterPowerOff) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 2e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_state(solve_steady_state(rig.mesh, rig.bcs));
  solver.set_power_scale(0.0);
  const double hot = solver.state().global_max();
  const double after = solver.advance(50).global_max();
  EXPECT_LT(after, hot);
  EXPECT_GE(after, 25.0 - 1e-9);
}

TEST(Transient, PowerScaleHalvesEquilibriumRise) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 10e-3;
  TransientSolver full(rig.mesh, rig.bcs, options);
  full.set_uniform_state(25.0);
  TransientSolver half(rig.mesh, rig.bcs, options);
  half.set_uniform_state(25.0);
  half.set_power_scale(0.5);
  const double rise_full = full.advance(300).global_max() - 25.0;
  const double rise_half = half.advance(300).global_max() - 25.0;
  EXPECT_NEAR(rise_half, rise_full / 2.0, 0.02 * rise_full);
}

TEST(Transient, StateIsAReferenceNotACopy) {
  Rig rig = make_rig(0.5);
  TransientSolver solver(rig.mesh, rig.bcs, {});
  solver.set_uniform_state(25.0);
  // state() hands out the internally maintained field; repeated calls must
  // not allocate fresh copies (the old accessor returned by value).
  const ThermalField& a = solver.state();
  const ThermalField& b = solver.state();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.global_max(), 25.0);
  solver.step();
  EXPECT_EQ(&solver.state(), &a);  // same object, updated in place
  EXPECT_GT(a.global_max(), 25.0);
}

TEST(Transient, StatsTrackStepsAndIterations) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  EXPECT_EQ(solver.stats().steps, 0u);
  EXPECT_EQ(solver.last_solve().iterations, 0u);
  solver.advance(3);
  const TransientStats& stats = solver.stats();
  EXPECT_EQ(stats.steps, 3u);
  EXPECT_GT(stats.total_cg_iterations, 0u);
  EXPECT_GE(stats.total_cg_iterations, stats.max_cg_iterations);
  EXPECT_TRUE(solver.last_solve().converged);
  EXPECT_LE(solver.last_solve().iterations, stats.max_cg_iterations);
}

TEST(Transient, WarmStartCutsIterationsAndAgreesWithColdStart) {
  Rig rig = make_rig(0.5);
  TransientOptions warm_options;
  warm_options.time_step = 2e-3;
  TransientOptions cold_options = warm_options;
  cold_options.warm_start = false;

  TransientSolver warm(rig.mesh, rig.bcs, warm_options);
  warm.set_uniform_state(25.0);
  TransientSolver cold(rig.mesh, rig.bcs, cold_options);
  cold.set_uniform_state(25.0);
  const ThermalField warm_field = warm.advance(20);
  const ThermalField cold_field = cold.advance(20);

  // Seeding CG with the previous state must be cheaper than restarting from
  // zero every step, and the physics must agree to solver tolerance.
  EXPECT_LT(warm.stats().total_cg_iterations, cold.stats().total_cg_iterations);
  EXPECT_NEAR(warm_field.global_max(), cold_field.global_max(), 1e-6);
  EXPECT_NEAR(warm_field.global_min(), cold_field.global_min(), 1e-6);
}

TEST(Transient, SetPowerMatchesPowerScale) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 2e-3;

  TransientSolver scaled(rig.mesh, rig.bcs, options);
  scaled.set_uniform_state(25.0);
  scaled.set_power_scale(0.5);

  TransientSolver replaced(rig.mesh, rig.bcs, options);
  replaced.set_uniform_state(25.0);
  math::Vector halved = replaced.power();
  for (double& p : halved) {
    p *= 0.5;
  }
  replaced.set_power(halved);

  // Same rhs either way, so the trajectories are bit-identical.
  for (int step = 0; step < 5; ++step) {
    const ThermalField& a = scaled.step();
    const ThermalField& b = replaced.step();
    ASSERT_EQ(a.temperatures(), b.temperatures()) << "step " << step;
  }
}

TEST(Transient, SetPowerValidatesTheSize) {
  Rig rig = make_rig(0.5);
  TransientSolver solver(rig.mesh, rig.bcs, {});
  EXPECT_THROW(solver.set_power(math::Vector(3, 0.0)), Error);
}

TEST(Transient, Validation) {
  Rig rig = make_rig(0.1);
  TransientOptions options;
  options.time_step = 0.0;
  EXPECT_THROW(TransientSolver(rig.mesh, rig.bcs, options), Error);
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  EXPECT_THROW(solver.set_power_scale(-1.0), Error);
  EXPECT_THROW(solver.advance(0), Error);
  EXPECT_THROW(solver.set_time_step(0.0), Error);
  EXPECT_THROW(solver.set_time(-1.0), Error);
}

TEST(Transient, SetTimeStepMatchesAFreshSolverOnTheNewGrid) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 2e-3;

  // Step a while on the fine grid, then grow the step 4x mid-flight.
  TransientSolver grown(rig.mesh, rig.bcs, options);
  grown.set_uniform_state(25.0);
  grown.advance(5);
  grown.set_time_step(8e-3);
  EXPECT_EQ(grown.time_step(), 8e-3);
  EXPECT_EQ(grown.stats().reassemblies, 1u);

  // A solver built directly on the coarse grid and seeded with the same
  // state must continue bit-identically: the rebuild via add_capacitance
  // is exactly the construction-time assembly.
  TransientOptions coarse = options;
  coarse.time_step = 8e-3;
  TransientSolver fresh(rig.mesh, rig.bcs, coarse);
  fresh.set_state(grown.state());
  fresh.set_time(grown.time());
  EXPECT_EQ(fresh.stats().reassemblies, 0u);

  for (int step = 0; step < 5; ++step) {
    const ThermalField& a = grown.step();
    const ThermalField& b = fresh.step();
    ASSERT_EQ(a.temperatures(), b.temperatures()) << "step " << step;
    ASSERT_EQ(grown.time(), fresh.time()) << "step " << step;
  }

  // Same-valued set_time_step is a no-op, not a rebuild.
  grown.set_time_step(8e-3);
  EXPECT_EQ(grown.stats().reassemblies, 1u);
}

TEST(Transient, StencilPathMatchesCsrPath) {
  Rig rig = make_rig(0.5);
  TransientOptions csr_options;
  csr_options.time_step = 2e-3;
  TransientSolver csr(rig.mesh, rig.bcs, csr_options);
  csr.set_uniform_state(25.0);

  TransientOptions stencil_options = csr_options;
  stencil_options.operator_kind = OperatorKind::kStencil;
  stencil_options.solver.preconditioner = math::PreconditionerKind::kChebyshev;
  TransientSolver stencil(rig.mesh, rig.bcs, stencil_options);
  stencil.set_uniform_state(25.0);

  // Different operators and preconditioners, same physics: the trajectories
  // agree to solver tolerance, far below any physical signal.
  for (int step = 0; step < 20; ++step) {
    const ThermalField& a = csr.step();
    const ThermalField& b = stencil.step();
    ASSERT_EQ(a.temperatures().size(), b.temperatures().size());
    for (std::size_t i = 0; i < a.temperatures().size(); ++i) {
      ASSERT_NEAR(b.temperatures()[i], a.temperatures()[i], 1e-6)
          << "step " << step << " cell " << i;
    }
  }
  // system() stays the public CSR steady reference even on the stencil path.
  EXPECT_GT(csr.system().matrix.rows(), 0u);
  EXPECT_EQ(stencil.system().matrix.rows(), csr.system().matrix.rows());
}

TEST(Transient, PreconditionerIsCachedAcrossStepsAndRebuiltOnNewDt) {
  Rig rig = make_rig(0.5);
  for (const OperatorKind kind : {OperatorKind::kCsr, OperatorKind::kStencil}) {
    TransientOptions options;
    options.time_step = 2e-3;
    options.operator_kind = kind;
    if (kind == OperatorKind::kStencil) {
      options.solver.preconditioner = math::PreconditionerKind::kChebyshev;
    }
    TransientSolver solver(rig.mesh, rig.bcs, options);
    solver.set_uniform_state(25.0);

    // Stepping reuses the construction-time preconditioner: no rebuilds.
    solver.advance(10);
    EXPECT_EQ(solver.stats().preconditioner_builds, 0u) << to_string(kind);

    // Changing dt changes the stepping operator, so both counters move
    // together; a same-valued set is a no-op for both.
    solver.set_time_step(4e-3);
    EXPECT_EQ(solver.stats().preconditioner_builds, 1u) << to_string(kind);
    EXPECT_EQ(solver.stats().reassemblies, 1u) << to_string(kind);
    solver.set_time_step(4e-3);
    EXPECT_EQ(solver.stats().preconditioner_builds, 1u) << to_string(kind);

    solver.advance(5);
    EXPECT_EQ(solver.stats().preconditioner_builds, 1u) << to_string(kind);
  }
}

}  // namespace
}  // namespace photherm::thermal
