#include "thermal/transient.hpp"

#include <gtest/gtest.h>

#include "geometry/stack.hpp"
#include "support/fixtures.hpp"
#include "util/error.hpp"

namespace photherm::thermal {
namespace {

using geometry::Box3;
using geometry::Scene;

struct Rig {
  std::shared_ptr<const mesh::RectilinearMesh> mesh;
  BoundarySet bcs;
};

Rig make_rig(double power) {
  Scene scene = fixtures::uniform_slab(1e-3, 200e-6);
  if (power > 0.0) {
    fixtures::add_heater(
        scene, Box3::make({0.25e-3, 0.25e-3, 0}, {0.75e-3, 0.75e-3, 50e-6}),
        power, "silicon", "source");
  }
  Rig rig;
  rig.mesh =
      fixtures::shared_mesh(scene, fixtures::uniform_mesh_options(125e-6, 50e-6));
  rig.bcs[Face::kZMax] = FaceBc::convection(5e3, 25.0);
  return rig;
}

TEST(Transient, EquilibriumStaysPut) {
  Rig rig = make_rig(0.0);
  TransientOptions options;
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  const auto field = solver.advance(5);
  EXPECT_NEAR(field.global_min(), 25.0, 1e-9);
  EXPECT_NEAR(field.global_max(), 25.0, 1e-9);
}

TEST(Transient, ConvergesToSteadyState) {
  Rig rig = make_rig(0.5);
  const auto steady = solve_steady_state(rig.mesh, rig.bcs);

  TransientOptions options;
  options.time_step = 5e-3;  // a few thermal time constants per step
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  const auto field = solver.advance(400);
  EXPECT_NEAR(field.global_max(), steady.global_max(), 0.01);
  EXPECT_NEAR(field.global_min(), steady.global_min(), 0.01);
}

TEST(Transient, MonotoneHeatingFromCold) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_uniform_state(25.0);
  double previous = 25.0;
  for (int step = 0; step < 10; ++step) {
    const double peak = solver.step().global_max();
    EXPECT_GE(peak, previous - 1e-9);
    previous = peak;
  }
  EXPECT_GT(previous, 25.0 + 1e-3);
  EXPECT_NEAR(solver.time(), 10e-3, 1e-12);
}

TEST(Transient, CoolingAfterPowerOff) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 2e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  solver.set_state(solve_steady_state(rig.mesh, rig.bcs));
  solver.set_power_scale(0.0);
  const double hot = solver.state().global_max();
  const double after = solver.advance(50).global_max();
  EXPECT_LT(after, hot);
  EXPECT_GE(after, 25.0 - 1e-9);
}

TEST(Transient, PowerScaleHalvesEquilibriumRise) {
  Rig rig = make_rig(0.5);
  TransientOptions options;
  options.time_step = 10e-3;
  TransientSolver full(rig.mesh, rig.bcs, options);
  full.set_uniform_state(25.0);
  TransientSolver half(rig.mesh, rig.bcs, options);
  half.set_uniform_state(25.0);
  half.set_power_scale(0.5);
  const double rise_full = full.advance(300).global_max() - 25.0;
  const double rise_half = half.advance(300).global_max() - 25.0;
  EXPECT_NEAR(rise_half, rise_full / 2.0, 0.02 * rise_full);
}

TEST(Transient, Validation) {
  Rig rig = make_rig(0.1);
  TransientOptions options;
  options.time_step = 0.0;
  EXPECT_THROW(TransientSolver(rig.mesh, rig.bcs, options), Error);
  options.time_step = 1e-3;
  TransientSolver solver(rig.mesh, rig.bcs, options);
  EXPECT_THROW(solver.set_power_scale(-1.0), Error);
  EXPECT_THROW(solver.advance(0), Error);
}

}  // namespace
}  // namespace photherm::thermal
