#include "photonics/photodetector.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {
namespace {

TEST(Photodetector, SensitivityThreshold) {
  // Table 1: -20 dBm = 0.01 mW.
  const Photodetector pd{PhotodetectorParams{}};
  EXPECT_NEAR(pd.sensitivity_watt(), 1e-5, 1e-12);
  EXPECT_TRUE(pd.detects(2e-5));
  EXPECT_TRUE(pd.detects(1e-5));
  EXPECT_FALSE(pd.detects(0.9e-5));
}

TEST(Photodetector, Photocurrent) {
  PhotodetectorParams params;
  params.responsivity = 0.8;
  const Photodetector pd{params};
  EXPECT_DOUBLE_EQ(pd.photocurrent(1e-3), 0.8e-3);
  EXPECT_THROW(pd.photocurrent(-1.0), Error);
}

TEST(Photodetector, LinkClosure) {
  const Photodetector pd{PhotodetectorParams{}};
  EXPECT_TRUE(pd.link_closes(1e-4, 20.0));
  EXPECT_FALSE(pd.link_closes(1e-7, 20.0));  // below sensitivity
  EXPECT_FALSE(pd.link_closes(1e-4, 5.0));   // below SNR requirement
}

TEST(Photodetector, Validation) {
  PhotodetectorParams params;
  params.responsivity = 0.0;
  EXPECT_THROW(Photodetector{params}, Error);
  const Photodetector ok{PhotodetectorParams{}};
  EXPECT_THROW(ok.detects(-1.0), Error);
}

}  // namespace
}  // namespace photherm::photonics
