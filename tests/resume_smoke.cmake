# CTest smoke run of the photherm_cli checkpoint/resume path, invoked as
#   cmake -DPHOTHERM_CLI=... -DGOLDEN=... -DWORK_DIR=... -P resume_smoke.cmake
# Flow: play the builtin transient suite over the fixed smoke horizon, then
# replay it pausing every playback after 7 steps into a checkpoint file and
# resume from that file on a different thread count. The resumed CSV must be
# BYTE-identical to the uninterrupted one (the checkpoint round-trip stores
# every double in its shortest exact spelling), and both must match the
# checked-in golden within the usual cross-platform tolerance.

foreach(var PHOTHERM_CLI GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "resume_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

set(play_args play builtin:transient --dt 0.2 --periods 5)
run_cli(${play_args} --threads 1 -o ${WORK_DIR}/uninterrupted.csv)
run_cli(${play_args} --threads 1 --pause-after 7
        --checkpoint ${WORK_DIR}/checkpoint.txt -o ${WORK_DIR}/paused.csv)
run_cli(${play_args} --threads 4 --resume ${WORK_DIR}/checkpoint.txt
        -o ${WORK_DIR}/resumed.csv)

file(READ ${WORK_DIR}/uninterrupted.csv uninterrupted_csv)
file(READ ${WORK_DIR}/resumed.csv resumed_csv)
if(NOT uninterrupted_csv STREQUAL resumed_csv)
  message(FATAL_ERROR "resumed playback is not byte-identical to the "
                      "uninterrupted run")
endif()

run_cli(diff ${GOLDEN} ${WORK_DIR}/resumed.csv --tol 1e-4)
