# CTest smoke run of the photherm_cli timeline playback, invoked as
#   cmake -DPHOTHERM_CLI=... -DGOLDEN=... -DWORK_DIR=... -P timeline_smoke.cmake
# Flow: play the builtin transient suite over a fixed horizon twice (serial
# vs threaded — the time-series CSVs must be bit-identical, the
# TimelineRunner determinism guarantee), then compare against the checked-in
# golden CSV within a numeric tolerance (absorbs cross-platform
# floating-point drift while still catching real regressions).

foreach(var PHOTHERM_CLI GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "timeline_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

set(play_args play builtin:transient --dt 0.2 --periods 5)
run_cli(${play_args} --threads 1 -o ${WORK_DIR}/serial.csv)
run_cli(${play_args} --threads 4 -o ${WORK_DIR}/threaded.csv)

file(READ ${WORK_DIR}/serial.csv serial_csv)
file(READ ${WORK_DIR}/threaded.csv threaded_csv)
if(NOT serial_csv STREQUAL threaded_csv)
  message(FATAL_ERROR "timeline playback is not bit-identical between "
                      "1 and 4 threads")
endif()

run_cli(diff ${GOLDEN} ${WORK_DIR}/serial.csv --tol 1e-4)
