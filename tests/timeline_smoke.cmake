# CTest smoke run of the photherm_cli timeline playback, invoked as
#   cmake -DPHOTHERM_CLI=... -DGOLDEN=... -DWORK_DIR=... -P timeline_smoke.cmake
# Flow: play the builtin transient suite over a fixed horizon twice (serial
# vs threaded — the time-series CSVs must be bit-identical, the
# TimelineRunner determinism guarantee), then compare against the checked-in
# golden CSV within a numeric tolerance (absorbs cross-platform
# floating-point drift while still catching real regressions).

foreach(var PHOTHERM_CLI GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "timeline_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

# Like run_cli, but also requires the stable key=value stats line on
# stderr — the machine-readable contract scripts grep for.
function(run_cli_expect_stderr regex)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
  if(NOT err MATCHES "${regex}")
    message(FATAL_ERROR "photherm_cli ${ARGN}: stderr does not match "
                        "`${regex}`; got:\n${err}")
  endif()
endfunction()

set(play_stats_regex
    "event=timeline_play scenarios=[0-9]+ steps=[0-9]+ cg_iterations=[0-9]+ settled=[0-9]+ periodic=[0-9]+ paused=[0-9]+")
set(play_args play builtin:transient --dt 0.2 --periods 5)
run_cli_expect_stderr("${play_stats_regex}"
                      ${play_args} --threads 1 -o ${WORK_DIR}/serial.csv)
run_cli_expect_stderr("${play_stats_regex}"
                      ${play_args} --threads 4 -o ${WORK_DIR}/threaded.csv)

file(READ ${WORK_DIR}/serial.csv serial_csv)
file(READ ${WORK_DIR}/threaded.csv threaded_csv)
if(NOT serial_csv STREQUAL threaded_csv)
  message(FATAL_ERROR "timeline playback is not bit-identical between "
                      "1 and 4 threads")
endif()

# Progress heartbeat: --progress N emits the stable key=value line on
# stderr every N steps and must not perturb the physics output.
set(progress_regex
    "event=playback_progress scenario=[^ ]+ step=[0-9]+ time=[0-9.eE+-]+ dt=[0-9.eE+-]+ max_delta=[0-9.eE+-]+")
run_cli_expect_stderr("${progress_regex}"
                      ${play_args} --threads 1 --progress 3
                      -o ${WORK_DIR}/progress.csv)
file(READ ${WORK_DIR}/progress.csv progress_csv)
if(NOT serial_csv STREQUAL progress_csv)
  message(FATAL_ERROR "--progress changed the playback output")
endif()

run_cli(diff ${GOLDEN} ${WORK_DIR}/serial.csv --tol 1e-4)
