/// Network-level SNR scenarios: device-option interplay (FSR aliasing,
/// athermal rings, wavelength-locked lasers, current drive) on assigned
/// ORNoC traffic — complements the per-mechanism tests in test_snr.cpp.
#include <gtest/gtest.h>

#include "core/tech.hpp"
#include "noc/snr.hpp"
#include "util/error.hpp"

namespace photherm::noc {
namespace {

struct Net {
  RingTopology ring = RingTopology::uniform(8, 32.4e-3);
  std::vector<Communication> comms;
  Net() {
    const OrnocAssigner assigner(8, 4, 8);
    comms = assigner.assign(spread_requests(8, 3));
  }
};

std::vector<double> skewed_temps(double base, double spread) {
  std::vector<double> t(8);
  for (std::size_t i = 0; i < 8; ++i) {
    t[i] = base + spread * static_cast<double>(i % 4) / 3.0;
  }
  return t;
}

TEST(SnrNetwork, CurrentDriveMatchesEquivalentPowerDrive) {
  Net net;
  const SnrAnalyzer analyzer(net.ring, core::make_snr_model());
  const auto temps = skewed_temps(55.0, 0.0);

  // Solve the current that dissipates 3.6 mW at the uniform temperature,
  // then drive by that current directly: identical results.
  const photonics::Vcsel vcsel{core::make_snr_model().vcsel};
  const double i_equiv = vcsel.current_for_dissipated_power(3.6e-3, 55.0);

  CommDrive by_power;
  by_power.p_vcsel = 3.6e-3;
  CommDrive by_current;
  by_current.i_vcsel = i_equiv;
  const auto a = analyzer.analyze(net.comms, temps, by_power);
  const auto b = analyzer.analyze(net.comms, temps, by_current);
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    EXPECT_NEAR(a.comms[i].op_vcsel, b.comms[i].op_vcsel, 1e-9);
    EXPECT_NEAR(a.comms[i].snr_db, b.comms[i].snr_db, 1e-6);
  }
}

TEST(SnrNetwork, HigherCurrentRaisesSignal) {
  Net net;
  const SnrAnalyzer analyzer(net.ring, core::make_snr_model());
  const auto temps = skewed_temps(55.0, 2.0);
  CommDrive low;
  low.i_vcsel = 2e-3;
  CommDrive high;
  high.i_vcsel = 6e-3;
  const auto a = analyzer.analyze(net.comms, temps, low);
  const auto b = analyzer.analyze(net.comms, temps, high);
  EXPECT_GT(b.min_signal_power, a.min_signal_power);
}

TEST(SnrNetwork, AthermalRingsWithDriftingLasersBreakTracking) {
  // The paper's design relies on common-mode drift of VCSELs and rings; an
  // athermal ring under a hot (drifted) laser is misaligned by the full
  // absolute shift. At 55 degC (30 degC above reference) that is 3 nm.
  Net net;
  SnrModelConfig drifted = core::make_snr_model();
  drifted.microring.athermal_factor = 0.0;
  const SnrAnalyzer analyzer(net.ring, drifted);
  const auto result =
      analyzer.analyze(net.comms, skewed_temps(55.0, 0.0), CommDrive{3.6e-3});
  // Intended drop at 3 nm detuning: ~6 % -> severe signal loss.
  const SnrAnalyzer baseline(net.ring, core::make_snr_model());
  const auto ref =
      baseline.analyze(net.comms, skewed_temps(55.0, 0.0), CommDrive{3.6e-3});
  EXPECT_LT(result.min_signal_power, 0.2 * ref.min_signal_power);
}

TEST(SnrNetwork, AthermalPlusLockedLasersBeatBaselineUnderGradient) {
  Net net;
  SnrModelConfig fixed = core::make_snr_model();
  fixed.microring.athermal_factor = 0.0;
  fixed.vcsel.dlambda_dt = 0.0;
  const auto temps = skewed_temps(55.0, 4.0);  // strong inter-ONI gradient
  const auto locked =
      SnrAnalyzer(net.ring, fixed).analyze(net.comms, temps, CommDrive{3.6e-3});
  const auto baseline = SnrAnalyzer(net.ring, core::make_snr_model())
                            .analyze(net.comms, temps, CommDrive{3.6e-3});
  EXPECT_GT(locked.worst_snr_db, baseline.worst_snr_db);
}

TEST(SnrNetwork, FsrAliasingAddsCrosstalk) {
  // With an 18 nm FSR, channels ~3 spacings away alias back near a
  // resonance order and couple more strongly than without FSR.
  Net net;
  SnrModelConfig with_fsr = core::make_snr_model();
  with_fsr.microring.fsr = 19.2e-9;  // 3 channel spacings of 6.4 nm
  const auto temps = skewed_temps(55.0, 1.0);
  const auto aliased =
      SnrAnalyzer(net.ring, with_fsr).analyze(net.comms, temps, CommDrive{3.6e-3});
  const auto plain = SnrAnalyzer(net.ring, core::make_snr_model())
                         .analyze(net.comms, temps, CommDrive{3.6e-3});
  EXPECT_GE(aliased.max_crosstalk_power, plain.max_crosstalk_power);
  EXPECT_LE(aliased.worst_snr_db, plain.worst_snr_db + 1e-9);
}

TEST(SnrNetwork, SecondOrderFiltersCutAdjacentChannelCrosstalk) {
  // With wavelength-locked devices (no thermal misalignment), higher-order
  // filters strictly reduce the co-propagation crosstalk floor.
  Net net;
  SnrModelConfig locked = core::make_snr_model();
  locked.microring.athermal_factor = 0.0;
  locked.vcsel.dlambda_dt = 0.0;
  SnrModelConfig second = locked;
  second.microring.filter_order = 2;
  const auto temps = skewed_temps(55.0, 3.0);
  const auto order1 =
      SnrAnalyzer(net.ring, locked).analyze(net.comms, temps, CommDrive{3.6e-3});
  const auto order2 =
      SnrAnalyzer(net.ring, second).analyze(net.comms, temps, CommDrive{3.6e-3});
  EXPECT_LT(order2.max_crosstalk_power, order1.max_crosstalk_power);
  EXPECT_GT(order2.worst_snr_db, order1.worst_snr_db);
}

class LoadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LoadSweep, MoreTrafficNeverImprovesWorstSnr) {
  const std::size_t nodes = 8;
  const RingTopology ring = RingTopology::uniform(nodes, 32.4e-3);
  const OrnocAssigner assigner(nodes, 4, 8);
  const SnrAnalyzer analyzer(ring, core::make_snr_model());
  const auto temps = skewed_temps(55.0, 2.0);

  const auto light = assigner.assign(spread_requests(nodes, 1));
  const auto heavy = assigner.assign(spread_requests(nodes, GetParam()));
  const auto a = analyzer.analyze(light, temps, CommDrive{3.6e-3});
  const auto b = analyzer.analyze(heavy, temps, CommDrive{3.6e-3});
  EXPECT_LE(b.worst_snr_db, a.worst_snr_db + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, LoadSweep, ::testing::Values(2u, 3u, 5u, 7u));

}  // namespace
}  // namespace photherm::noc
