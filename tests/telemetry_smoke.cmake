# CTest smoke run of the telemetry plumbing, invoked as
#   cmake -DPHOTHERM_CLI=... -DWORK_DIR=... -P telemetry_smoke.cmake
# Flow: play the builtin transient suite over a fixed horizon untraced,
# then with --trace/--metrics at 1 and 4 threads — every scenario CSV must
# be byte-identical (telemetry never perturbs physics). The trace must be
# well-formed Chrome trace-event JSON with labeled pool workers; the
# metrics CSV must carry solver-iteration, cache-hit and per-scenario
# wall-time rows. A cached `run` leg checks the cache-hit counters count
# real hits, not just seeded zeros.

foreach(var PHOTHERM_CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "telemetry_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_cli)
  execute_process(COMMAND ${PHOTHERM_CLI} ${ARGN} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "photherm_cli ${ARGN} failed with exit code ${rv}")
  endif()
endfunction()

function(require_match file regex what)
  file(READ ${file} contents)
  if(NOT contents MATCHES "${regex}")
    message(FATAL_ERROR "${file}: expected ${what} (pattern `${regex}`)")
  endif()
endfunction()

set(play_args play builtin:transient --dt 0.2 --periods 5)
run_cli(${play_args} --threads 1 -o ${WORK_DIR}/untraced.csv)
run_cli(${play_args} --threads 1 -o ${WORK_DIR}/traced1.csv
        --trace ${WORK_DIR}/trace1.json --metrics ${WORK_DIR}/metrics1.csv)
run_cli(${play_args} --threads 4 -o ${WORK_DIR}/traced4.csv
        --trace ${WORK_DIR}/trace4.json --metrics ${WORK_DIR}/metrics4.csv)

# The telemetry-never-perturbs-physics invariant, byte-for-byte at both
# thread counts.
file(READ ${WORK_DIR}/untraced.csv untraced_csv)
foreach(threaded traced1 traced4)
  file(READ ${WORK_DIR}/${threaded}.csv traced_csv)
  if(NOT untraced_csv STREQUAL traced_csv)
    message(FATAL_ERROR "${threaded}.csv differs from the untraced playback: "
                        "--trace/--metrics changed the physics output")
  endif()
endforeach()

# Trace shape: Chrome trace-event JSON with complete spans, the process
# label, and (at 4 threads) labeled pool workers carrying scenario spans.
require_match(${WORK_DIR}/trace1.json "\"traceEvents\"" "a traceEvents array")
require_match(${WORK_DIR}/trace1.json "\"ph\":\"M\".*process_name.*photherm"
              "process_name metadata")
require_match(${WORK_DIR}/trace1.json
              "\"ph\":\"X\",\"name\":\"solver\\.conjugate_gradient\"" "CG solver spans")
require_match(${WORK_DIR}/trace4.json "pool-worker-[0-9]+" "labeled pool workers")
require_match(${WORK_DIR}/trace4.json
              "\"ph\":\"X\",\"name\":\"playback\\.scenario\"" "per-scenario spans")

# Both export formats must carry the run manifest: the CSV as a
# `# key=value` comment block, the trace as a top-level "manifest" object.
require_match(${WORK_DIR}/trace1.json "\"manifest\":{" "a trace manifest object")
require_match(${WORK_DIR}/trace1.json "\"build_type\":\"(debug|release)\""
              "the build type in the trace manifest")
require_match(${WORK_DIR}/trace1.json "\"git_sha\":" "the git sha in the trace manifest")
require_match(${WORK_DIR}/trace4.json "\"threads\":\"4\"" "the runtime thread count")

# Metrics shape: the acceptance-criteria rows. Cache-hit rows are seeded
# (play never touches BatchRunner), solver iterations and per-scenario wall
# time must be live non-zero counts. Timers now carry log2-histogram
# percentiles (integer nanosecond bucket bounds).
foreach(metrics metrics1 metrics4)
  require_match(${WORK_DIR}/${metrics}.csv "# photherm-manifest v1"
                "the manifest comment block")
  require_match(${WORK_DIR}/${metrics}.csv "# build_type=(debug|release)"
                "the build type manifest entry")
  require_match(${WORK_DIR}/${metrics}.csv "# suite=builtin:transient"
                "the suite manifest entry")
  require_match(${WORK_DIR}/${metrics}.csv "metric,kind,count,total,min,max,p50,p90,p99"
                "the metrics header")
  require_match(${WORK_DIR}/${metrics}.csv
                "playback\\.scenario\\.wall,timer,[1-9][0-9]*,[1-9][0-9]*,[0-9]+,[0-9]+,[0-9]+,[0-9]+,[0-9]+"
                "timer percentiles")
  require_match(${WORK_DIR}/${metrics}.csv
                "solver\\.conjugate_gradient\\.iterations,counter,[1-9][0-9]*,[1-9][0-9]*"
                "non-zero CG iteration counts")
  require_match(${WORK_DIR}/${metrics}.csv
                "playback\\.scenario\\.wall,timer,[1-9][0-9]*,[1-9][0-9]*"
                "per-scenario wall-time observations")
  require_match(${WORK_DIR}/${metrics}.csv "batch\\.cache\\.hits,counter,"
                "the cache-hit row")
endforeach()

# Cached batch leg: with the coarse-solve cache on, the smoke suite's
# repeated scenes must record real cache hits, and the batch output must
# stay byte-identical to a traced run of the same suite.
run_cli(expand builtin:smoke -o ${WORK_DIR}/suite.scn)
run_cli(run ${WORK_DIR}/suite.scn --threads 2 -o ${WORK_DIR}/batch.csv)
run_cli(run ${WORK_DIR}/suite.scn --threads 2 -o ${WORK_DIR}/batch_traced.csv
        --trace ${WORK_DIR}/batch_trace.json --metrics ${WORK_DIR}/batch_metrics.csv)
file(READ ${WORK_DIR}/batch.csv batch_csv)
file(READ ${WORK_DIR}/batch_traced.csv batch_traced_csv)
if(NOT batch_csv STREQUAL batch_traced_csv)
  message(FATAL_ERROR "batch output differs with --trace/--metrics on")
endif()
require_match(${WORK_DIR}/batch_metrics.csv
              "batch\\.cache\\.hits,counter,[1-9][0-9]*" "live cache hits")
require_match(${WORK_DIR}/batch_metrics.csv
              "batch\\.scenario\\.wall,timer,[1-9][0-9]*" "batch wall-time observations")
require_match(${WORK_DIR}/batch_trace.json
              "\"ph\":\"X\",\"name\":\"batch\\.scenario\"" "batch scenario spans")
