#include "photonics/waveguide.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {
namespace {

TEST(Waveguide, PropagationLossMatchesTable1) {
  // 0.5 dB/cm: 2 cm -> 1 dB -> x0.794.
  const Waveguide wg{WaveguideParams{}};
  EXPECT_NEAR(wg.loss_db(2e-2), 1.0, 1e-12);
  EXPECT_NEAR(wg.transmission(2e-2), 0.7943, 1e-4);
  EXPECT_DOUBLE_EQ(wg.transmission(0.0), 1.0);
}

TEST(Waveguide, PaperRingLengths) {
  // The three Fig. 11 cases: 18, 32.4 and 46.8 mm -> 0.9, 1.62, 2.34 dB.
  const Waveguide wg{WaveguideParams{}};
  EXPECT_NEAR(wg.loss_db(18e-3), 0.9, 1e-9);
  EXPECT_NEAR(wg.loss_db(32.4e-3), 1.62, 1e-9);
  EXPECT_NEAR(wg.loss_db(46.8e-3), 2.34, 1e-9);
}

TEST(Waveguide, PathTransmissionComposesLosses) {
  WaveguideParams params;
  params.propagation_loss_db_per_cm = 1.0;
  params.crossing_loss_db = 0.5;
  params.bend_loss_db = 0.25;
  const Waveguide wg{params};
  // 1 cm + 2 crossings + 4 bends = 1 + 1 + 1 = 3 dB -> x0.5.
  EXPECT_NEAR(wg.path_transmission(1e-2, 2, 4), 0.5012, 1e-3);
}

TEST(Waveguide, MonotoneInLength) {
  const Waveguide wg{WaveguideParams{}};
  double previous = 1.0;
  for (double len = 1e-3; len <= 0.1; len *= 2.0) {
    const double t = wg.transmission(len);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(Waveguide, Validation) {
  WaveguideParams params;
  params.propagation_loss_db_per_cm = -1.0;
  EXPECT_THROW(Waveguide{params}, Error);
  const Waveguide ok{WaveguideParams{}};
  EXPECT_THROW(ok.transmission(-1.0), Error);
  EXPECT_THROW(ok.path_transmission(1.0, -1), Error);
}

TEST(Taper, CouplesSeventyPercent) {
  // Fig. 2: eta_coupling assumed 70 %.
  const Taper taper{TaperParams{}};
  EXPECT_DOUBLE_EQ(taper.coupled_power(1e-3), 0.7e-3);
  EXPECT_THROW(taper.coupled_power(-1.0), Error);
}

TEST(Taper, Validation) {
  TaperParams params;
  params.coupling_efficiency = 0.0;
  EXPECT_THROW(Taper{params}, Error);
  params.coupling_efficiency = 1.2;
  EXPECT_THROW(Taper{params}, Error);
}

}  // namespace
}  // namespace photherm::photonics
