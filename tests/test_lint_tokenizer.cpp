// Unit tests for the photherm_lint tokenizer (tools/lint/source.cpp): the
// single-pass lexer every rule family runs over. The cases pin the lexing
// corners that defeated the PR 7 line-blanker — encoding-prefixed raw
// strings, backslash-spliced literals and comments — plus the invariants
// the cross-line rules depend on: token line mapping, include suppression,
// and inline-allow propagation.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/source.hpp"

namespace lint = photherm::lint;

namespace {

bool has_ident(const lint::SourceFile& file, const std::string& name) {
  return std::any_of(file.tokens.begin(), file.tokens.end(), [&](const lint::Token& t) {
    return t.kind == lint::Token::Kind::kIdentifier && t.text == name;
  });
}

std::vector<std::string> string_tokens(const lint::SourceFile& file) {
  std::vector<std::string> out;
  for (const lint::Token& t : file.tokens) {
    if (t.kind == lint::Token::Kind::kString) {
      out.push_back(t.text);
    }
  }
  return out;
}

lint::SourceFile parse(const std::string& content) {
  return lint::parse_source(content, "test.cpp");
}

}  // namespace

TEST(LintTokenizer, RawStringBodyIsBlankedNotTokenized) {
  const lint::SourceFile file = parse(
      "const char* s = R\"(std::rand() // \" time(nullptr))\";\n"
      "int after = 1;\n");
  // The body never reaches the blanked code line or the identifier stream.
  EXPECT_EQ(file.lines[0].code.find("rand"), std::string::npos);
  EXPECT_FALSE(has_ident(file, "rand"));
  EXPECT_FALSE(has_ident(file, "time"));
  // Lexing resumed after the close: the next statement is tokenized.
  EXPECT_TRUE(has_ident(file, "after"));
  // The body is carried as one string token for the token-based rules.
  const std::vector<std::string> strings = string_tokens(file);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "std::rand() // \" time(nullptr)");
}

TEST(LintTokenizer, EncodingPrefixedRawStringsAreRecognized) {
  // The PR 7 blanker only knew a bare R": every prefixed form leaked its
  // body into the scanned code.
  for (const std::string prefix : {"R", "LR", "uR", "UR", "u8R"}) {
    const lint::SourceFile file =
        parse("const auto* s = " + prefix + "\"x(std::rand() banned)x\";\n");
    EXPECT_EQ(file.lines[0].code.find("rand"), std::string::npos) << prefix;
    EXPECT_FALSE(has_ident(file, "rand")) << prefix;
  }
}

TEST(LintTokenizer, MultiLineRawStringKeepsLineMapping) {
  const lint::SourceFile file = parse(
      "const char* s = R\"(line one\n"
      "line two with \" quote\n"
      "line three)\";\n"
      "int after = 2;\n");
  ASSERT_EQ(file.lines.size(), 4u);
  EXPECT_EQ(file.lines[1].code.find_first_not_of(' '), std::string::npos);
  // The string token is anchored at the line where the literal starts ...
  const auto it = std::find_if(file.tokens.begin(), file.tokens.end(), [](const lint::Token& t) {
    return t.kind == lint::Token::Kind::kString;
  });
  ASSERT_NE(it, file.tokens.end());
  EXPECT_EQ(it->line, 1u);
  EXPECT_EQ(it->text, "line one\nline two with \" quote\nline three");
  // ... and tokens after it map to their own lines.
  const auto after = std::find_if(file.tokens.begin(), file.tokens.end(), [](const lint::Token& t) {
    return t.kind == lint::Token::Kind::kIdentifier && t.text == "after";
  });
  ASSERT_NE(after, file.tokens.end());
  EXPECT_EQ(after->line, 4u);
}

TEST(LintTokenizer, SplicedStringLiteralStaysOneLiteral) {
  const lint::SourceFile file = parse(
      "const char* s = \"std::ra\\\n"
      "nd() spliced\";\n"
      "int after = 3;\n");
  EXPECT_EQ(file.lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(file.lines[1].code.find("rand"), std::string::npos);
  EXPECT_FALSE(has_ident(file, "rand"));
  EXPECT_TRUE(has_ident(file, "after"));
  const std::vector<std::string> strings = string_tokens(file);
  ASSERT_EQ(strings.size(), 1u);
  // The splice removes the newline: the body reads as one run of text.
  EXPECT_EQ(strings[0], "std::rand() spliced");
}

TEST(LintTokenizer, SplicedLineCommentSwallowsContinuation) {
  const lint::SourceFile file = parse(
      "// banned: std::rand() \\\n"
      "and also time(nullptr) on the continued line\n"
      "int after = 4;\n");
  EXPECT_EQ(file.lines[1].code.find_first_not_of(' '), std::string::npos);
  EXPECT_FALSE(has_ident(file, "time"));
  EXPECT_TRUE(has_ident(file, "after"));
}

TEST(LintTokenizer, CommentMarkersInsideStringsDoNotOpenComments) {
  const lint::SourceFile file = parse(
      "const char* a = \"/* not a comment\";\n"
      "int y = 2; // real comment: rand()\n");
  EXPECT_TRUE(has_ident(file, "y"));  // the fake /* did not swallow line 2
  EXPECT_FALSE(has_ident(file, "rand"));
  EXPECT_EQ(file.lines[1].code.find("rand"), std::string::npos);
}

TEST(LintTokenizer, AdjacentLiteralsAreSeparateTokens) {
  const lint::SourceFile file = parse("const char* s = \"ab\" \"cd\";\n");
  EXPECT_EQ(string_tokens(file), (std::vector<std::string>{"ab", "cd"}));
}

TEST(LintTokenizer, CharLiteralsDoNotOpenStrings) {
  const lint::SourceFile file = parse("char q = '\"'; int z = 3;\n");
  EXPECT_TRUE(has_ident(file, "z"));
  EXPECT_TRUE(string_tokens(file).empty());
}

TEST(LintTokenizer, DigitSeparatorsScanAsOneNumber) {
  const lint::SourceFile file = parse("int n = 1'000'000; int m = 2;\n");
  const auto it = std::find_if(file.tokens.begin(), file.tokens.end(), [](const lint::Token& t) {
    return t.kind == lint::Token::Kind::kNumber && t.text == "1'000'000";
  });
  EXPECT_NE(it, file.tokens.end());
  // The ' did not open a char-literal state: the next statement survived.
  EXPECT_TRUE(has_ident(file, "m"));
}

TEST(LintTokenizer, IncludesAreRecordedAndSuppressed) {
  const lint::SourceFile file = parse(
      "#include \"thermal/fvm.hpp\"\n"
      "# include <vector>\n"
      "int x = 0;\n");
  ASSERT_EQ(file.includes.size(), 2u);
  EXPECT_EQ(file.includes[0].path, "thermal/fvm.hpp");
  EXPECT_EQ(file.includes[0].line, 1u);
  EXPECT_FALSE(file.includes[0].angled);
  EXPECT_EQ(file.includes[1].path, "vector");
  EXPECT_TRUE(file.includes[1].angled);
  // Include lines emit no tokens, so paths cannot confuse token matchers.
  EXPECT_FALSE(has_ident(file, "thermal"));
  EXPECT_FALSE(has_ident(file, "include"));
  EXPECT_TRUE(has_ident(file, "x"));
}

TEST(LintTokenizer, InlineAllowAppliesToLineAndPropagatesFromMarkerLine) {
  const lint::SourceFile file = parse(
      "long t = time(nullptr);  // ph-lint: allow(determinism) fixture\n"
      "// ph-lint: allow(errors, ownership) marker-above form\n"
      "throw 42;\n"
      "int unaffected = 0;\n");
  EXPECT_EQ(file.lines[0].inline_allows.count("determinism"), 1u);
  // A marker alone on a line covers the next line, with every listed rule.
  EXPECT_EQ(file.lines[2].inline_allows.count("errors"), 1u);
  EXPECT_EQ(file.lines[2].inline_allows.count("ownership"), 1u);
  EXPECT_TRUE(file.lines[3].inline_allows.empty());
}

TEST(LintTokenizer, MultiCharPunctuatorsLexAsSingleTokens) {
  const lint::SourceFile file = parse("a += b; c <<= d; e->f(); g::h; i >> j;\n");
  const auto has_punct = [&](const std::string& p) {
    return std::any_of(file.tokens.begin(), file.tokens.end(), [&](const lint::Token& t) {
      return t.kind == lint::Token::Kind::kPunct && t.text == p;
    });
  };
  EXPECT_TRUE(has_punct("+="));
  EXPECT_TRUE(has_punct("<<="));
  EXPECT_TRUE(has_punct("->"));
  EXPECT_TRUE(has_punct("::"));
  EXPECT_TRUE(has_punct(">>"));
}
