#include "math/csr_matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::math {
namespace {

CsrMatrix small_matrix() {
  // [ 2 -1  0 ]
  // [-1  2 -1 ]
  // [ 0 -1  2 ]
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(0, 1, -1.0);
  builder.add(1, 0, -1.0);
  builder.add(1, 1, 2.0);
  builder.add(1, 2, -1.0);
  builder.add(2, 1, -1.0);
  builder.add(2, 2, 2.0);
  return builder.build();
}

TEST(CsrBuilder, MergesDuplicates) {
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 0, 2.5);
  builder.add(1, 1, -1.0);
  const CsrMatrix m = builder.build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(CsrBuilder, RejectsOutOfRange) {
  CsrBuilder builder(2, 2);
  EXPECT_THROW(builder.add(2, 0, 1.0), Error);
  EXPECT_THROW(builder.add(0, 2, 1.0), Error);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  const CsrMatrix m = small_matrix();
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.multiply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);   // 2*1 - 2
  EXPECT_DOUBLE_EQ(y[1], 0.0);   // -1 + 4 - 3
  EXPECT_DOUBLE_EQ(y[2], 4.0);   // -2 + 6
}

TEST(CsrMatrix, DiagonalExtraction) {
  const CsrMatrix m = small_matrix();
  const Vector d = m.diagonal();
  EXPECT_EQ(d, (Vector{2.0, 2.0, 2.0}));
}

TEST(CsrMatrix, SymmetryCheck) {
  EXPECT_TRUE(small_matrix().is_symmetric());
  CsrBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 5.0);
  builder.add(1, 1, 1.0);
  EXPECT_FALSE(builder.build().is_symmetric());
}

TEST(CsrMatrix, EmptyRowsAllowed) {
  CsrBuilder builder(3, 3);
  builder.add(0, 0, 1.0);
  builder.add(2, 2, 1.0);
  const CsrMatrix m = builder.build();
  const Vector y = m.multiply({1.0, 1.0, 1.0});
  EXPECT_EQ(y, (Vector{1.0, 0.0, 1.0}));
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  Vector y{1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_EQ(y, (Vector{3.0, 5.0}));
  EXPECT_DOUBLE_EQ(max_abs({-7.0, 3.0}), 7.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  const Vector a{1.0};
  const Vector b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), Error);
  Vector y{1.0};
  EXPECT_THROW(axpy(1.0, b, y), Error);
}

}  // namespace
}  // namespace photherm::math
