#include "noc/topology.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::noc {
namespace {

TEST(RingTopology, UniformGeometry) {
  const auto ring = RingTopology::uniform(4, 18e-3);
  EXPECT_EQ(ring.node_count(), 4u);
  EXPECT_NEAR(ring.perimeter(), 18e-3, 1e-12);
  EXPECT_NEAR(ring.arc_length(0, 1, Direction::kClockwise), 4.5e-3, 1e-12);
  EXPECT_NEAR(ring.arc_length(0, 3, Direction::kClockwise), 13.5e-3, 1e-12);
  EXPECT_NEAR(ring.arc_length(0, 3, Direction::kCounterClockwise), 4.5e-3, 1e-12);
  EXPECT_EQ(ring.hop_count(0, 3, Direction::kClockwise), 3u);
  EXPECT_EQ(ring.hop_count(0, 3, Direction::kCounterClockwise), 1u);
}

TEST(RingTopology, ArcsComplementToPerimeter) {
  const auto ring = RingTopology::uniform(7, 10e-3);
  for (std::size_t s = 0; s < 7; ++s) {
    for (std::size_t d = 0; d < 7; ++d) {
      if (s == d) {
        continue;
      }
      const double cw = ring.arc_length(s, d, Direction::kClockwise);
      const double ccw = ring.arc_length(s, d, Direction::kCounterClockwise);
      EXPECT_NEAR(cw + ccw, ring.perimeter(), 1e-12);
    }
  }
}

TEST(RingTopology, NonUniformSegments) {
  const RingTopology ring({1e-3, 2e-3, 3e-3});
  EXPECT_NEAR(ring.perimeter(), 6e-3, 1e-15);
  EXPECT_NEAR(ring.arc_length(1, 0, Direction::kClockwise), 5e-3, 1e-15);
  EXPECT_NEAR(ring.arc_length(1, 0, Direction::kCounterClockwise), 1e-3, 1e-15);
}

TEST(RingTopology, PathNodes) {
  const auto ring = RingTopology::uniform(5, 1.0);
  const auto cw = ring.path_nodes(1, 4, Direction::kClockwise);
  EXPECT_EQ(cw, (std::vector<std::size_t>{2, 3, 4}));
  const auto ccw = ring.path_nodes(1, 4, Direction::kCounterClockwise);
  EXPECT_EQ(ccw, (std::vector<std::size_t>{0, 4}));
  const auto inter = ring.intermediate_nodes(0, 2, Direction::kClockwise);
  EXPECT_EQ(inter, (std::vector<std::size_t>{1}));
}

TEST(RingTopology, PathSegments) {
  const auto ring = RingTopology::uniform(4, 1.0);
  EXPECT_EQ(ring.path_segments(0, 2, Direction::kClockwise),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(ring.path_segments(0, 2, Direction::kCounterClockwise),
            (std::vector<std::size_t>{3, 2}));
}

TEST(RingTopology, Validation) {
  EXPECT_THROW(RingTopology::uniform(1, 1.0), Error);
  EXPECT_THROW(RingTopology({1e-3}), Error);
  EXPECT_THROW(RingTopology({1e-3, -1e-3}), Error);
  const auto ring = RingTopology::uniform(3, 1.0);
  EXPECT_THROW(ring.arc_length(0, 0, Direction::kClockwise), Error);
  EXPECT_THROW(ring.arc_length(0, 9, Direction::kClockwise), Error);
}

TEST(OrnocAssigner, AssignsConflictFree) {
  const OrnocAssigner assigner(8, 4, 8);
  const auto requests = spread_requests(8, 3);
  const auto comms = assigner.assign(requests);
  EXPECT_EQ(comms.size(), requests.size());
  EXPECT_TRUE(assigner.conflict_free(comms));
}

TEST(OrnocAssigner, ReusesWavelengthsOnDisjointArcs) {
  // Neighbour-to-neighbour communications around a ring all fit on one
  // (waveguide, wavelength) pair — the defining ORNoC property.
  const OrnocAssigner assigner(6, 1, 8);
  std::vector<std::pair<std::size_t, std::size_t>> requests;
  for (std::size_t i = 0; i < 6; ++i) {
    requests.push_back({i, (i + 1) % 6});
  }
  const auto comms = assigner.assign(requests);
  for (const auto& c : comms) {
    EXPECT_EQ(c.channel, comms.front().channel);
    EXPECT_EQ(c.waveguide, 0u);
  }
  EXPECT_TRUE(assigner.conflict_free(comms));
}

TEST(OrnocAssigner, CapacityExhaustionThrows) {
  // 1 waveguide, 1 channel cannot carry two overlapping arcs.
  const OrnocAssigner assigner(4, 1, 1);
  EXPECT_THROW(assigner.assign({{0, 2}, {1, 3}}), Error);
}

TEST(OrnocAssigner, DirectionAlternatesPerWaveguide) {
  EXPECT_EQ(OrnocAssigner::direction_of(0), Direction::kClockwise);
  EXPECT_EQ(OrnocAssigner::direction_of(1), Direction::kCounterClockwise);
  EXPECT_EQ(OrnocAssigner::direction_of(2), Direction::kClockwise);
}

TEST(OrnocAssigner, SpectralSpreadOrder) {
  const auto order = OrnocAssigner::spectral_spread_order(8);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 7u);  // farthest from 0
  // A permutation of 0..7.
  std::vector<bool> seen(8, false);
  for (std::size_t c : order) {
    ASSERT_LT(c, 8u);
    EXPECT_FALSE(seen[c]);
    seen[c] = true;
  }
  // The first half of the order is spread at least 2 apart pairwise.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_GE(std::abs(static_cast<long>(order[i]) - static_cast<long>(order[j])), 2);
    }
  }
}

TEST(OrnocAssigner, RejectsSelfCommunication) {
  const OrnocAssigner assigner(4, 2, 2);
  EXPECT_THROW(assigner.assign({{1, 1}}), Error);
}

TEST(SpreadRequests, CoversAllSourcesWithDistinctDestinations) {
  const auto requests = spread_requests(12, 3);
  EXPECT_EQ(requests.size(), 36u);
  for (const auto& [s, d] : requests) {
    EXPECT_NE(s, d);
    EXPECT_LT(s, 12u);
    EXPECT_LT(d, 12u);
  }
  EXPECT_THROW(spread_requests(4, 4), Error);
  EXPECT_THROW(spread_requests(1, 1), Error);
}

class FanoutSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FanoutSweep, AssignmentsStayConflictFree) {
  const std::size_t nodes = 12;
  const OrnocAssigner assigner(nodes, 4, 8);
  const auto comms = assigner.assign(spread_requests(nodes, GetParam()));
  EXPECT_TRUE(assigner.conflict_free(comms));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep, ::testing::Values(1u, 2u, 3u, 4u, 6u));

}  // namespace
}  // namespace photherm::noc
