/// Timeline engine contracts: schedule compilation, standard probes,
/// transient <-> steady-state equivalence (a constant-schedule playback must
/// settle onto the steady solution), and the TimelineRunner determinism
/// guarantee (traces bit-identical at 1 and 4 threads, the
/// test_parallel_sweep pattern).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/methodology.hpp"
#include "scenario/registry.hpp"
#include "support/fixtures.hpp"
#include "timeline/playback.hpp"
#include "timeline/probe.hpp"
#include "timeline/runner.hpp"
#include "timeline/timeline.hpp"
#include "util/error.hpp"

namespace photherm {
namespace {

using scenario::ScenarioSpec;

/// Small, coarse scenario for stepping tests: the shared coarse spec on the
/// 4-ONI ring, ~1k global cells.
ScenarioSpec coarse_scenario() {
  ScenarioSpec s;
  s.name = "coarse";
  s.design = fixtures::coarse_onoc_spec();
  return s;
}

template <typename T>
void expect_bit_identical(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0) << what;
}

TEST(Timeline, EmptyScheduleCompilesToAlwaysOn) {
  const timeline::PowerTimeline t = timeline::compile_timeline({}, 0.5);
  ASSERT_EQ(t.segments.size(), 1u);
  EXPECT_EQ(t.segments[0].scale, 1.0);
  EXPECT_EQ(t.segments[0].steps, 1u);
  EXPECT_EQ(t.steps_per_period(), 1u);
  EXPECT_EQ(t.period(), 0.5);
  EXPECT_EQ(t.average_scale(), 1.0);
}

TEST(Timeline, ScheduleQuantizesOntoTheStepGrid) {
  const std::vector<power::ActivityPhase> schedule{{0.25, 1.0}, {0.3, 0.5}, {0.01, 0.0}};
  const timeline::PowerTimeline t = timeline::compile_timeline(schedule, 0.05);
  ASSERT_EQ(t.segments.size(), 3u);
  EXPECT_EQ(t.segments[0].steps, 5u);
  EXPECT_EQ(t.segments[1].steps, 6u);
  EXPECT_EQ(t.segments[2].steps, 1u);  // shorter than a step, still played
  EXPECT_EQ(t.steps_per_period(), 12u);
  EXPECT_DOUBLE_EQ(t.period(), 0.6);
  // Scale lookup wraps periodically.
  EXPECT_EQ(t.scale_at_step(0), 1.0);
  EXPECT_EQ(t.scale_at_step(5), 0.5);
  EXPECT_EQ(t.scale_at_step(11), 0.0);
  EXPECT_EQ(t.scale_at_step(12), 1.0);
  // Duty of the *quantized* timeline.
  EXPECT_DOUBLE_EQ(t.average_scale(), (5.0 * 1.0 + 6.0 * 0.5) / 12.0);
}

TEST(Timeline, CompileRejectsBadInput) {
  EXPECT_THROW(timeline::compile_timeline({}, 0.0), Error);
  EXPECT_THROW(timeline::compile_timeline({{-1.0, 0.5}}, 0.1), Error);
  EXPECT_THROW(timeline::compile_timeline({{1.0, -0.5}}, 0.1), Error);
}

TEST(Timeline, StandardProbesCoverChipTilesAndOnis) {
  const core::ThermalAwareDesigner designer(coarse_scenario().design);
  const soc::SccSystem system = designer.build_system();
  const timeline::ProbeSet probes = timeline::ProbeSet::standard(system);

  const std::vector<std::string> names = probes.names();
  ASSERT_EQ(names.size(), 3u + system.onis.size());
  EXPECT_EQ(names[0], "chip_avg");
  EXPECT_EQ(names[1], "tile_hottest");
  EXPECT_EQ(names[2], "die_gradient");
  EXPECT_EQ(names[3], "oni0_mr");

  // Sampling a solved field is ordered, finite and physically sensible:
  // the hottest tile is at least the chip average, the gradient positive.
  const core::CoarseGlobalSolve global = designer.solve_global();
  const std::vector<double> samples = probes.sample(global.field);
  ASSERT_EQ(samples.size(), names.size());
  EXPECT_GE(samples[1], samples[0]);
  EXPECT_GT(samples[2], 0.0);
  for (double s : samples) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(Timeline, ConstantScheduleSettlesToTheSteadyStateField) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{1.0, 1.0}};  // constant full power

  timeline::PlaybackOptions options;
  options.time_step = 2.0;  // L-stable backward Euler: big steps are fine
  options.max_periods = 2000;
  options.settle_tolerance = 0.05;
  options.stop_on_settle = true;
  const timeline::TimelineTrace trace = timeline::play_scenario(s, options);

  EXPECT_TRUE(trace.settled);
  EXPECT_GT(trace.settle_time, 0.0);
  EXPECT_LE(trace.final_delta, options.settle_tolerance);
  EXPECT_EQ(trace.settle_step + 1, trace.step_count());  // stopped at settle

  // Independent cross-check: the last chip-average sample must match the
  // steady-state pipeline's own coarse solve of the same scene.
  const core::ThermalAwareDesigner designer(s.design);
  const core::CoarseGlobalSolve global = designer.solve_global();
  geometry::Box3 heat_layer = global.system.scene.bounding_box();
  heat_layer.lo.z = global.system.z.heat_lo;
  heat_layer.hi.z = global.system.z.heat_hi;
  const double steady_chip_avg = global.field.average_in(heat_layer);
  EXPECT_NEAR(trace.samples.back()[0], steady_chip_avg, options.settle_tolerance);
}

TEST(Timeline, BurstPlaybackTracksTheDutyAveragedSteadyState) {
  // A 50% square-wave burst must converge (up to its ripple) onto the same
  // operating point the steady-state pipeline computes from the duty fold
  // (ScenarioSpec::effective_design halves the chip power).
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{0.5, 1.0}, {0.5, 0.0}};

  timeline::PlaybackOptions options;
  options.time_step = 0.5;
  options.max_periods = 250;  // 250 s — several package time constants
  options.stop_on_settle = false;
  const timeline::TimelineTrace trace = timeline::play_scenario(s, options);
  ASSERT_EQ(trace.step_count(), 500u);

  const core::ThermalAwareDesigner effective(s.effective_design());
  const core::CoarseGlobalSolve global = effective.solve_global();
  geometry::Box3 heat_layer = global.system.scene.bounding_box();
  heat_layer.lo.z = global.system.z.heat_lo;
  heat_layer.hi.z = global.system.z.heat_hi;
  const double duty_steady_chip_avg = global.field.average_in(heat_layer);

  // Cycle-average the last period (one on-step, one off-step) to cancel the
  // ripple, then compare against the duty-averaged steady chip average.
  const std::size_t last = trace.step_count() - 1;
  const double cycle_avg = (trace.samples[last][0] + trace.samples[last - 1][0]) / 2.0;
  EXPECT_NEAR(cycle_avg, duty_steady_chip_avg, 0.5);
  // The ripple never settles below a tight tolerance — the detector must
  // not report a false settle against the duty-averaged field.
  EXPECT_GT(trace.final_delta, 0.0);
}

TEST(Timeline, RunnerTracesAreBitIdenticalAcrossThreadCounts) {
  std::vector<ScenarioSpec> suite;
  for (double scale : {1.0, 0.5, 0.25}) {
    ScenarioSpec s = coarse_scenario();
    s.name = "step_" + std::to_string(scale);
    s.schedule = {{0.4, scale}, {0.2, 0.1}};
    suite.push_back(std::move(s));
  }

  const auto at = [&](std::size_t threads) {
    timeline::TimelineBatchOptions options;
    options.threads = threads;
    options.playback.time_step = 0.2;
    options.playback.max_periods = 3;
    options.playback.stop_on_settle = false;  // fixed horizon: equal shapes
    return timeline::TimelineRunner(options).run(suite);
  };
  const timeline::TimelineBatchResult serial = at(1);
  const timeline::TimelineBatchResult threaded = at(4);

  ASSERT_EQ(serial.traces.size(), suite.size());
  EXPECT_EQ(serial.stats.total_steps, threaded.stats.total_steps);
  EXPECT_EQ(serial.stats.total_cg_iterations, threaded.stats.total_cg_iterations);
  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    const timeline::TimelineTrace& a = serial.traces[i];
    const timeline::TimelineTrace& b = threaded.traces[i];
    EXPECT_EQ(a.scenario, suite[i].name);  // index-ordered collection
    EXPECT_EQ(a.scenario, b.scenario);
    expect_bit_identical(a.times, b.times, "times");
    expect_bit_identical(a.power_scale, b.power_scale, "power_scale");
    expect_bit_identical(a.cg_iterations, b.cg_iterations, "cg_iterations");
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t k = 0; k < a.samples.size(); ++k) {
      expect_bit_identical(a.samples[k], b.samples[k], "samples");
    }
    EXPECT_EQ(a.settled, b.settled);
    EXPECT_EQ(a.settle_time, b.settle_time);
    EXPECT_EQ(a.final_delta, b.final_delta);
  }

  // The rendered CSV payload is therefore bit-identical too.
  EXPECT_EQ(timeline::timeline_table(serial).to_csv(),
            timeline::timeline_table(threaded).to_csv());
}

TEST(Timeline, WarmStartCutsCgIterations) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{1.0, 1.0}};

  timeline::PlaybackOptions options;
  options.time_step = 1.0;
  options.max_periods = 30;
  options.stop_on_settle = false;

  timeline::PlaybackOptions cold = options;
  cold.warm_start = false;
  const timeline::TimelineTrace warm_trace = timeline::play_scenario(s, options);
  const timeline::TimelineTrace cold_trace = timeline::play_scenario(s, cold);

  ASSERT_EQ(warm_trace.step_count(), cold_trace.step_count());
  EXPECT_LT(warm_trace.stats.total_cg_iterations, cold_trace.stats.total_cg_iterations);
  // Same physics either way: the final fields agree to solver tolerance.
  for (std::size_t p = 0; p < warm_trace.probe_names.size(); ++p) {
    EXPECT_NEAR(warm_trace.samples.back()[p], cold_trace.samples.back()[p], 1e-6);
  }
}

TEST(Timeline, TablesRenderTheTraces) {
  std::vector<ScenarioSpec> suite{coarse_scenario()};
  suite[0].schedule = {{0.4, 1.0}};

  timeline::TimelineBatchOptions options;
  options.playback.time_step = 0.2;
  options.playback.max_periods = 2;
  options.playback.stop_on_settle = false;
  const timeline::TimelineBatchResult result = timeline::TimelineRunner(options).run(suite);

  const Table series = timeline::timeline_table(result);
  EXPECT_EQ(series.row_count(), result.stats.total_steps);
  EXPECT_EQ(series.column_count(), 4u + result.traces[0].probe_names.size());

  const Table summary = timeline::timeline_summary_table(result);
  EXPECT_EQ(summary.row_count(), suite.size());
}

TEST(TimelineRegistry, TransientFamiliesAndSuiteAreRegistered) {
  const std::vector<std::string> families = scenario::family_names();
  EXPECT_NE(std::find(families.begin(), families.end(), "transient_step"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "transient_burst"), families.end());

  const std::vector<std::string> suites = scenario::builtin_suite_names();
  EXPECT_NE(std::find(suites.begin(), suites.end(), "transient"), suites.end());

  const std::vector<ScenarioSpec> suite = scenario::builtin_suite("transient");
  ASSERT_EQ(suite.size(), 4u);
  for (const ScenarioSpec& s : suite) {
    EXPECT_FALSE(s.schedule.empty()) << s.name;
  }

  // Families validate their parameters.
  scenario::FamilySpec bad{"transient_burst", "", ScenarioSpec{}, {1.5}};
  EXPECT_THROW(scenario::expand_family(bad), Error);
}

TEST(TimelineRegistry, RunnerRejectsEmptyAndInvalidInput) {
  timeline::TimelineRunner runner;
  EXPECT_THROW(runner.run({}), Error);

  ScenarioSpec broken = coarse_scenario();
  broken.name = "broken";
  broken.design.global_cell_xy = -1.0;
  try {
    runner.run({broken});
    FAIL() << "invalid design must throw";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace photherm
