/// Timeline engine contracts: schedule compilation, standard probes,
/// transient <-> steady-state equivalence (a constant-schedule playback must
/// settle onto the steady solution), and the TimelineRunner determinism
/// guarantee (traces bit-identical at 1 and 4 threads, the
/// test_parallel_sweep pattern).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/methodology.hpp"
#include "scenario/registry.hpp"
#include "support/fixtures.hpp"
#include "timeline/checkpoint.hpp"
#include "timeline/playback.hpp"
#include "timeline/probe.hpp"
#include "timeline/runner.hpp"
#include "timeline/timeline.hpp"
#include "util/error.hpp"

namespace photherm {
namespace {

using scenario::ScenarioSpec;

/// Small, coarse scenario for stepping tests: the shared coarse spec on the
/// 4-ONI ring, ~1k global cells.
ScenarioSpec coarse_scenario() {
  ScenarioSpec s;
  s.name = "coarse";
  s.design = fixtures::coarse_onoc_spec();
  return s;
}

template <typename T>
void expect_bit_identical(const std::vector<T>& a, const std::vector<T>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0) << what;
}

TEST(Timeline, EmptyScheduleCompilesToAlwaysOn) {
  const timeline::PowerTimeline t = timeline::compile_timeline({}, 0.5);
  ASSERT_EQ(t.segments.size(), 1u);
  EXPECT_EQ(t.segments[0].scale, 1.0);
  EXPECT_EQ(t.segments[0].steps, 1u);
  EXPECT_EQ(t.steps_per_period(), 1u);
  EXPECT_EQ(t.period(), 0.5);
  EXPECT_EQ(t.average_scale(), 1.0);
}

TEST(Timeline, ScheduleQuantizesOntoTheStepGrid) {
  const std::vector<power::ActivityPhase> schedule{{0.25, 1.0}, {0.3, 0.5}, {0.01, 0.0}};
  const timeline::PowerTimeline t = timeline::compile_timeline(schedule, 0.05);
  ASSERT_EQ(t.segments.size(), 3u);
  EXPECT_EQ(t.segments[0].steps, 5u);
  EXPECT_EQ(t.segments[1].steps, 6u);
  EXPECT_EQ(t.segments[2].steps, 1u);  // shorter than a step, still played
  EXPECT_EQ(t.steps_per_period(), 12u);
  EXPECT_DOUBLE_EQ(t.period(), 0.6);
  // Scale lookup wraps periodically.
  EXPECT_EQ(t.scale_at_step(0), 1.0);
  EXPECT_EQ(t.scale_at_step(5), 0.5);
  EXPECT_EQ(t.scale_at_step(11), 0.0);
  EXPECT_EQ(t.scale_at_step(12), 1.0);
  // Duty of the *quantized* timeline.
  EXPECT_DOUBLE_EQ(t.average_scale(), (5.0 * 1.0 + 6.0 * 0.5) / 12.0);
}

TEST(Timeline, CompileRejectsBadInput) {
  EXPECT_THROW(timeline::compile_timeline({}, 0.0), Error);
  EXPECT_THROW(timeline::compile_timeline({{-1.0, 0.5}}, 0.1), Error);
  EXPECT_THROW(timeline::compile_timeline({{1.0, -0.5}}, 0.1), Error);
}

TEST(Timeline, StandardProbesCoverChipTilesAndOnis) {
  const core::ThermalAwareDesigner designer(coarse_scenario().design);
  const soc::SccSystem system = designer.build_system();
  const timeline::ProbeSet probes = timeline::ProbeSet::standard(system);

  const std::vector<std::string> names = probes.names();
  ASSERT_EQ(names.size(), 3u + system.onis.size());
  EXPECT_EQ(names[0], "chip_avg");
  EXPECT_EQ(names[1], "tile_hottest");
  EXPECT_EQ(names[2], "die_gradient");
  EXPECT_EQ(names[3], "oni0_mr");

  // Sampling a solved field is ordered, finite and physically sensible:
  // the hottest tile is at least the chip average, the gradient positive.
  const core::CoarseGlobalSolve global = designer.solve_global();
  const std::vector<double> samples = probes.sample(global.field);
  ASSERT_EQ(samples.size(), names.size());
  EXPECT_GE(samples[1], samples[0]);
  EXPECT_GT(samples[2], 0.0);
  for (double s : samples) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(Timeline, ConstantScheduleSettlesToTheSteadyStateField) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{1.0, 1.0}};  // constant full power

  timeline::PlaybackOptions options;
  options.time_step = 2.0;  // L-stable backward Euler: big steps are fine
  options.max_periods = 2000;
  options.settle_tolerance = 0.05;
  options.stop_on_settle = true;
  const timeline::TimelineTrace trace = timeline::play_scenario(s, options);

  EXPECT_TRUE(trace.settled);
  EXPECT_GT(trace.settle_time, 0.0);
  EXPECT_LE(trace.final_delta, options.settle_tolerance);
  EXPECT_EQ(trace.settle_step + 1, trace.step_count());  // stopped at settle

  // Independent cross-check: the last chip-average sample must match the
  // steady-state pipeline's own coarse solve of the same scene.
  const core::ThermalAwareDesigner designer(s.design);
  const core::CoarseGlobalSolve global = designer.solve_global();
  geometry::Box3 heat_layer = global.system.scene.bounding_box();
  heat_layer.lo.z = global.system.z.heat_lo;
  heat_layer.hi.z = global.system.z.heat_hi;
  const double steady_chip_avg = global.field.average_in(heat_layer);
  EXPECT_NEAR(trace.samples.back()[0], steady_chip_avg, options.settle_tolerance);
}

TEST(Timeline, BurstPlaybackTracksTheDutyAveragedSteadyState) {
  // A 50% square-wave burst must converge (up to its ripple) onto the same
  // operating point the steady-state pipeline computes from the duty fold
  // (ScenarioSpec::effective_design halves the chip power).
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{0.5, 1.0}, {0.5, 0.0}};

  timeline::PlaybackOptions options;
  options.time_step = 0.5;
  options.max_periods = 250;  // 250 s — several package time constants
  options.stop_on_settle = false;
  const timeline::TimelineTrace trace = timeline::play_scenario(s, options);
  ASSERT_EQ(trace.step_count(), 500u);

  const core::ThermalAwareDesigner effective(s.effective_design());
  const core::CoarseGlobalSolve global = effective.solve_global();
  geometry::Box3 heat_layer = global.system.scene.bounding_box();
  heat_layer.lo.z = global.system.z.heat_lo;
  heat_layer.hi.z = global.system.z.heat_hi;
  const double duty_steady_chip_avg = global.field.average_in(heat_layer);

  // Cycle-average the last period (one on-step, one off-step) to cancel the
  // ripple, then compare against the duty-averaged steady chip average.
  const std::size_t last = trace.step_count() - 1;
  const double cycle_avg = (trace.samples[last][0] + trace.samples[last - 1][0]) / 2.0;
  EXPECT_NEAR(cycle_avg, duty_steady_chip_avg, 0.5);
  // The ripple never settles below a tight tolerance — the detector must
  // not report a false settle against the duty-averaged field.
  EXPECT_GT(trace.final_delta, 0.0);
}

TEST(Timeline, RunnerTracesAreBitIdenticalAcrossThreadCounts) {
  std::vector<ScenarioSpec> suite;
  for (double scale : {1.0, 0.5, 0.25}) {
    ScenarioSpec s = coarse_scenario();
    s.name = "step_" + std::to_string(scale);
    s.schedule = {{0.4, scale}, {0.2, 0.1}};
    suite.push_back(std::move(s));
  }

  const auto at = [&](std::size_t threads) {
    timeline::TimelineBatchOptions options;
    options.threads = threads;
    options.playback.time_step = 0.2;
    options.playback.max_periods = 3;
    options.playback.stop_on_settle = false;  // fixed horizon: equal shapes
    return timeline::TimelineRunner(options).run(suite);
  };
  const timeline::TimelineBatchResult serial = at(1);
  const timeline::TimelineBatchResult threaded = at(4);

  ASSERT_EQ(serial.traces.size(), suite.size());
  EXPECT_EQ(serial.stats.total_steps, threaded.stats.total_steps);
  EXPECT_EQ(serial.stats.total_cg_iterations, threaded.stats.total_cg_iterations);
  for (std::size_t i = 0; i < serial.traces.size(); ++i) {
    const timeline::TimelineTrace& a = serial.traces[i];
    const timeline::TimelineTrace& b = threaded.traces[i];
    EXPECT_EQ(a.scenario, suite[i].name);  // index-ordered collection
    EXPECT_EQ(a.scenario, b.scenario);
    expect_bit_identical(a.times, b.times, "times");
    expect_bit_identical(a.power_scale, b.power_scale, "power_scale");
    expect_bit_identical(a.cg_iterations, b.cg_iterations, "cg_iterations");
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t k = 0; k < a.samples.size(); ++k) {
      expect_bit_identical(a.samples[k], b.samples[k], "samples");
    }
    EXPECT_EQ(a.settled, b.settled);
    EXPECT_EQ(a.settle_time, b.settle_time);
    EXPECT_EQ(a.final_delta, b.final_delta);
  }

  // The rendered CSV payload is therefore bit-identical too.
  EXPECT_EQ(timeline::timeline_table(serial).to_csv(),
            timeline::timeline_table(threaded).to_csv());
}

TEST(Timeline, WarmStartCutsCgIterations) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{1.0, 1.0}};

  timeline::PlaybackOptions options;
  options.time_step = 1.0;
  options.max_periods = 30;
  options.stop_on_settle = false;

  timeline::PlaybackOptions cold = options;
  cold.warm_start = false;
  const timeline::TimelineTrace warm_trace = timeline::play_scenario(s, options);
  const timeline::TimelineTrace cold_trace = timeline::play_scenario(s, cold);

  ASSERT_EQ(warm_trace.step_count(), cold_trace.step_count());
  EXPECT_LT(warm_trace.stats.total_cg_iterations, cold_trace.stats.total_cg_iterations);
  // Same physics either way: the final fields agree to solver tolerance.
  for (std::size_t p = 0; p < warm_trace.probe_names.size(); ++p) {
    EXPECT_NEAR(warm_trace.samples.back()[p], cold_trace.samples.back()[p], 1e-6);
  }
}

TEST(Timeline, TablesRenderTheTraces) {
  std::vector<ScenarioSpec> suite{coarse_scenario()};
  suite[0].schedule = {{0.4, 1.0}};

  timeline::TimelineBatchOptions options;
  options.playback.time_step = 0.2;
  options.playback.max_periods = 2;
  options.playback.stop_on_settle = false;
  const timeline::TimelineBatchResult result = timeline::TimelineRunner(options).run(suite);

  const Table series = timeline::timeline_table(result);
  EXPECT_EQ(series.row_count(), result.stats.total_steps);
  EXPECT_EQ(series.column_count(), 4u + result.traces[0].probe_names.size());

  const Table summary = timeline::timeline_summary_table(result);
  EXPECT_EQ(summary.row_count(), suite.size());
}

TEST(TimelineRegistry, TransientFamiliesAndSuiteAreRegistered) {
  const std::vector<std::string> families = scenario::family_names();
  EXPECT_NE(std::find(families.begin(), families.end(), "transient_step"), families.end());
  EXPECT_NE(std::find(families.begin(), families.end(), "transient_burst"), families.end());

  const std::vector<std::string> suites = scenario::builtin_suite_names();
  EXPECT_NE(std::find(suites.begin(), suites.end(), "transient"), suites.end());

  const std::vector<ScenarioSpec> suite = scenario::builtin_suite("transient");
  ASSERT_EQ(suite.size(), 4u);
  for (const ScenarioSpec& s : suite) {
    EXPECT_FALSE(s.schedule.empty()) << s.name;
  }

  // Families validate their parameters.
  scenario::FamilySpec bad{"transient_burst", "", ScenarioSpec{}, {1.5}};
  EXPECT_THROW(scenario::expand_family(bad), Error);
}

TEST(Timeline, QuantizationErrorIsTracked) {
  const std::vector<power::ActivityPhase> schedule{{0.25, 1.0}, {0.3, 0.5}, {0.01, 0.0}};
  const timeline::PowerTimeline t = timeline::compile_timeline(schedule, 0.05);
  ASSERT_EQ(t.segments.size(), 3u);
  EXPECT_NEAR(t.requested_period(), 0.56, 1e-12);
  // The first two phases land on the grid; the sub-step third phase is
  // inflated to one full step — the 0.04 s error is tracked, not hidden.
  EXPECT_NEAR(t.segment_error(0), 0.0, 1e-12);
  EXPECT_NEAR(t.segment_error(1), 0.0, 1e-12);
  EXPECT_NEAR(t.segment_error(2), 0.04, 1e-12);
  EXPECT_NEAR(t.quantization_error(), 0.04, 1e-12);
  EXPECT_NEAR(t.relative_period_error(), 0.04 / 0.56, 1e-9);
  EXPECT_THROW(t.segment_error(3), Error);

  // Exact grids carry zero error.
  const timeline::PowerTimeline exact =
      timeline::compile_timeline({{0.4, 1.0}, {0.2, 0.0}}, 0.1);
  EXPECT_NEAR(exact.quantization_error(), 0.0, 1e-12);
  EXPECT_NEAR(exact.relative_period_error(), 0.0, 1e-12);
  // ... and so does the synthetic always-on timeline of an empty schedule.
  EXPECT_EQ(timeline::compile_timeline({}, 0.5).quantization_error(), 0.0);
}

TEST(Timeline, CompileFailsFastWhenTheScheduleDoesNotFitTheGrid) {
  // Both phases are 20x shorter than the step: quantization would play a
  // 0.4 s period instead of 0.02 s. That is a different workload — reject.
  const std::vector<power::ActivityPhase> schedule{{0.01, 1.0}, {0.01, 0.0}};
  EXPECT_THROW(timeline::compile_timeline(schedule, 0.2), SpecError);

  // An explicit (looser) bound admits the grid, and the error stays
  // queryable for the caller to judge.
  const timeline::PowerTimeline t = timeline::compile_timeline(schedule, 0.2, 1e9);
  EXPECT_NEAR(t.relative_period_error(), (0.4 - 0.02) / 0.02, 1e-9);

  // Constant-scale schedules carry no playable period — any grid is exact
  // in what it plays, so the bound must not reject them (a soak phase far
  // longer than the step is the canonical adaptive-dt workload).
  const timeline::PowerTimeline soak = timeline::compile_timeline({{60.0, 1.0}}, 128.0);
  EXPECT_EQ(soak.steps_per_period(), 1u);
}

TEST(TimelineSettle, ReferenceSolveTightensAgainstALooseSolver) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{1.0, 1.0}};

  timeline::PlaybackOptions options;
  options.time_step = 2.0;
  options.max_periods = 1;  // the reference guard runs at construction
  options.stop_on_settle = false;
  options.solver.rel_tolerance = 1e-4;  // loose: noise floor ~1e-2 degC at ~80 degC

  // A settle tolerance far above the noise floor keeps the caller's solver
  // settings untouched.
  options.settle_tolerance = 1.0;
  EXPECT_EQ(timeline::play_scenario(s, options).reference_tolerance, 1e-4);

  // One inside the noise floor forces a tighter reference solve: the
  // detector must never compare against solver noise.
  options.settle_tolerance = 5e-3;
  const timeline::TimelineTrace tightened = timeline::play_scenario(s, options);
  EXPECT_LT(tightened.reference_tolerance, 1e-5);

  // And one below what any solve can resolve is refused outright.
  options.settle_tolerance = 1e-18;
  EXPECT_THROW(timeline::play_scenario(s, options), Error);
}

TEST(TimelineRunner, WorkerFailuresSurfaceAsErrorsNamingTheScenario) {
  // The poisoned design passes validate() — every knob is positive and
  // finite — but explodes the coarse mesh past its cell budget when the
  // playback builds the scene inside a pool worker. The failure must
  // surface as a catchable Error naming the scenario on the calling
  // thread, not terminate the process.
  std::vector<ScenarioSpec> suite;
  for (int i = 0; i < 3; ++i) {
    ScenarioSpec s = coarse_scenario();
    s.name = "good_" + std::to_string(i);
    s.schedule = {{0.4, 1.0}};
    suite.push_back(std::move(s));
  }
  ScenarioSpec poisoned = coarse_scenario();
  poisoned.name = "poisoned";
  poisoned.design.global_cell_xy = 1e-6;
  poisoned.design.oni_cell_xy = 1e-6;
  poisoned.design.validate();  // the poison is invisible to validation
  suite.push_back(std::move(poisoned));

  timeline::TimelineBatchOptions options;
  options.threads = 4;
  options.playback.time_step = 0.2;
  options.playback.max_periods = 1;
  options.playback.stop_on_settle = false;
  try {
    timeline::TimelineRunner(options).run(suite);
    FAIL() << "poisoned scenario must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("poisoned"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("cell budget"), std::string::npos) << e.what();
  }
}

TEST(TimelineAdaptive, ReachesTheFixedDtFieldWithFarFewerSolves) {
  // The settle-bound workload adaptive stepping exists for: one long
  // constant hold, played until the settle detector fires.
  ScenarioSpec s = coarse_scenario();
  s.name = "soak";
  s.schedule = {{60.0, 1.0}};

  timeline::PlaybackOptions fixed;
  fixed.time_step = 0.5;
  fixed.max_periods = 50;
  fixed.settle_tolerance = 0.05;
  fixed.stop_on_settle = true;

  timeline::PlaybackOptions adaptive = fixed;
  adaptive.adaptive = true;

  const timeline::TimelineTrace fixed_trace = timeline::play_scenario(s, fixed);
  const timeline::TimelineTrace adaptive_trace = timeline::play_scenario(s, adaptive);

  ASSERT_TRUE(fixed_trace.settled);
  ASSERT_TRUE(adaptive_trace.settled);
  // Backward Euler is L-stable: the settled field does not depend on the
  // step size, so both playbacks end on the same operating point (both are
  // within settle_tolerance of the same steady reference).
  ASSERT_FALSE(adaptive_trace.samples.empty());
  for (std::size_t p = 0; p < fixed_trace.probe_names.size(); ++p) {
    EXPECT_NEAR(adaptive_trace.samples.back()[p], fixed_trace.samples.back()[p],
                2.0 * fixed.settle_tolerance)
        << fixed_trace.probe_names[p];
  }
  // The step actually grew, the matrix was re-assembled once per growth,
  // and the solve count dropped by at least the acceptance margin (one CG
  // solve per step).
  EXPECT_GE(adaptive_trace.dt_growths, 1u);
  EXPECT_GT(adaptive_trace.final_time_step, fixed.time_step);
  EXPECT_EQ(adaptive_trace.stats.reassemblies, adaptive_trace.dt_growths);
  EXPECT_LE(adaptive_trace.step_count() * 3, fixed_trace.step_count());
  EXPECT_LE(adaptive_trace.stats.total_cg_iterations * 2,
            fixed_trace.stats.total_cg_iterations);
}

TEST(TimelineAdaptive, GrowthRespectsThePeriodBoundOnBurstSchedules) {
  // A bursty schedule can only coarsen while the re-quantized period stays
  // within the bound; with a tight bound the first doubling (exact fit) is
  // admitted and the next (20% period error) is rejected.
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{0.5, 1.0}, {0.5, 0.1}};

  timeline::PlaybackOptions options;
  options.time_step = 0.05;
  options.max_periods = 6;
  options.stop_on_settle = false;
  options.adaptive = true;
  options.adaptive_threshold = 1e9;  // always "crawling": growth every period
  options.max_period_error = 0.05;

  const timeline::TimelineTrace trace = timeline::play_scenario(s, options);
  EXPECT_EQ(trace.dt_growths, 1u);
  EXPECT_EQ(trace.final_time_step, 0.1);
}

TEST(TimelinePeriodic, FiresOnABurstAndNeverOnARamp) {
  // Square wave with a hard off phase: the ripple never falls inside a
  // tight settle tolerance, so only the cycle-over-cycle criterion can end
  // the playback.
  ScenarioSpec burst = coarse_scenario();
  burst.name = "burst";
  burst.schedule = {{0.5, 1.0}, {0.5, 0.0}};

  timeline::PlaybackOptions options;
  options.time_step = 0.5;
  options.max_periods = 3000;
  options.settle_tolerance = 0.02;
  options.stop_on_settle = true;

  const timeline::TimelineTrace trace = timeline::play_scenario(burst, options);
  EXPECT_TRUE(trace.periodic_steady);
  EXPECT_FALSE(trace.settled);
  EXPECT_GT(trace.periodic_steady_time, 0.0);
  EXPECT_GT(trace.cycle_delta, 0.0);
  EXPECT_LE(trace.cycle_delta, options.settle_tolerance);
  // It genuinely terminated the playback, far before the horizon.
  EXPECT_LT(trace.step_count(), 2u * options.max_periods);
  // The playback stopped exactly at the period end that latched the
  // verdict: the held periods (spp == 2) sit at the end of the trace.
  EXPECT_EQ(trace.step_count(),
            trace.periodic_steady_step + options.periodic_hold_periods * 2u);

  // A ramp (constant schedule) that has not converged must never report a
  // repeating cycle — its shrinking per-step delta is slow convergence,
  // not periodicity — and a settled one must not either (the criterion is
  // gated to genuinely oscillating schedules).
  ScenarioSpec ramp = coarse_scenario();
  ramp.name = "ramp";
  ramp.schedule = {{1.0, 1.0}};
  timeline::PlaybackOptions short_run = options;
  short_run.time_step = 0.2;
  short_run.max_periods = 10;  // 2 s: nowhere near settled
  short_run.stop_on_settle = false;
  const timeline::TimelineTrace ramp_trace = timeline::play_scenario(ramp, short_run);
  EXPECT_FALSE(ramp_trace.settled);
  EXPECT_FALSE(ramp_trace.periodic_steady);
  EXPECT_EQ(ramp_trace.cycle_delta, 0.0);
}

TEST(TimelineCheckpoint, TextRoundTripIsExact) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{0.4, 1.0}, {0.2, 0.1}};

  timeline::PlaybackOptions options;
  options.time_step = 0.2;
  options.max_periods = 5;
  options.stop_on_settle = false;

  timeline::Playback playback(s, options);
  ASSERT_EQ(playback.run(4), 4u);  // pause mid-period (spp == 3)
  const timeline::PlaybackCheckpoint ckpt = playback.checkpoint();

  const std::string text = timeline::serialize_checkpoints({ckpt});
  const auto parsed = timeline::parse_checkpoints(text);
  ASSERT_EQ(parsed.size(), 1u);
  const timeline::PlaybackCheckpoint& back = parsed[0];

  EXPECT_EQ(back.scenario, ckpt.scenario);
  EXPECT_EQ(back.base_time_step, ckpt.base_time_step);
  EXPECT_EQ(back.current_time_step, ckpt.current_time_step);
  EXPECT_EQ(back.time, ckpt.time);
  EXPECT_EQ(back.step_in_period, ckpt.step_in_period);
  EXPECT_EQ(back.in_tolerance_run, ckpt.in_tolerance_run);
  EXPECT_EQ(back.cycle_count, ckpt.cycle_count);
  EXPECT_EQ(back.cycle_hold, ckpt.cycle_hold);
  EXPECT_EQ(back.cycle_max_delta, ckpt.cycle_max_delta);
  expect_bit_identical(back.state, ckpt.state, "state");
  ASSERT_EQ(back.cycle_buffer.size(), ckpt.cycle_buffer.size());
  for (std::size_t j = 0; j < back.cycle_buffer.size(); ++j) {
    expect_bit_identical(back.cycle_buffer[j], ckpt.cycle_buffer[j], "cycle slot");
  }
  EXPECT_EQ(back.trace.probe_names, ckpt.trace.probe_names);
  expect_bit_identical(back.trace.times, ckpt.trace.times, "times");
  expect_bit_identical(back.trace.power_scale, ckpt.trace.power_scale, "power_scale");
  expect_bit_identical(back.trace.cg_iterations, ckpt.trace.cg_iterations, "cg");
  ASSERT_EQ(back.trace.samples.size(), ckpt.trace.samples.size());
  for (std::size_t k = 0; k < back.trace.samples.size(); ++k) {
    expect_bit_identical(back.trace.samples[k], ckpt.trace.samples[k], "samples");
  }
  EXPECT_EQ(back.trace.period, ckpt.trace.period);
  EXPECT_EQ(back.trace.stats.total_cg_iterations, ckpt.trace.stats.total_cg_iterations);

  // Malformed input is rejected with context.
  EXPECT_THROW(timeline::parse_checkpoints("state = 1 2 3\n"), SpecError);
  EXPECT_THROW(timeline::parse_checkpoints("playback x\nnope = 1\n"), SpecError);
  EXPECT_THROW(timeline::parse_checkpoints("playback x\nbase_dt = 0.1\n"), SpecError);
}

TEST(TimelineCheckpoint, ResumeContinuesBitIdentically) {
  ScenarioSpec s = coarse_scenario();
  s.schedule = {{0.4, 1.0}, {0.2, 0.1}};

  timeline::PlaybackOptions options;
  options.time_step = 0.2;
  options.max_periods = 5;
  options.stop_on_settle = false;

  const timeline::TimelineTrace uninterrupted = timeline::play_scenario(s, options);

  timeline::Playback first(s, options);
  first.run(4);
  ASSERT_FALSE(first.finished());
  // Round-trip the checkpoint through its text form: the resumed process
  // never sees the in-memory state.
  const auto parsed =
      timeline::parse_checkpoints(timeline::serialize_checkpoints({first.checkpoint()}));
  timeline::Playback resumed(s, options, parsed.at(0));
  resumed.run();
  ASSERT_TRUE(resumed.finished());
  const timeline::TimelineTrace trace = resumed.take_trace();

  expect_bit_identical(trace.times, uninterrupted.times, "times");
  expect_bit_identical(trace.power_scale, uninterrupted.power_scale, "power_scale");
  expect_bit_identical(trace.cg_iterations, uninterrupted.cg_iterations, "cg_iterations");
  ASSERT_EQ(trace.samples.size(), uninterrupted.samples.size());
  for (std::size_t k = 0; k < trace.samples.size(); ++k) {
    expect_bit_identical(trace.samples[k], uninterrupted.samples[k], "samples");
  }
  EXPECT_EQ(trace.settled, uninterrupted.settled);
  EXPECT_EQ(trace.final_delta, uninterrupted.final_delta);
  EXPECT_EQ(trace.stats.steps, uninterrupted.stats.steps);
  EXPECT_EQ(trace.stats.total_cg_iterations, uninterrupted.stats.total_cg_iterations);
  EXPECT_EQ(trace.stats.max_cg_iterations, uninterrupted.stats.max_cg_iterations);

  // Resuming under different options is refused, not silently distorted.
  timeline::PlaybackOptions other = options;
  other.time_step = 0.1;
  EXPECT_THROW(timeline::Playback(s, other, parsed.at(0)), Error);
  ScenarioSpec renamed = s;
  renamed.name = "other";
  EXPECT_THROW(timeline::Playback(renamed, options, parsed.at(0)), Error);
}

TEST(TimelineCheckpoint, ResumeAcrossAdaptiveGrowthIsBitIdentical) {
  ScenarioSpec s = coarse_scenario();
  s.name = "soak";
  s.schedule = {{60.0, 1.0}};

  timeline::PlaybackOptions options;
  options.time_step = 0.5;
  options.max_periods = 50;
  options.settle_tolerance = 0.05;
  options.stop_on_settle = true;
  options.adaptive = true;

  timeline::Playback uninterrupted(s, options);
  uninterrupted.run();
  const timeline::TimelineTrace full = uninterrupted.take_trace();
  ASSERT_TRUE(full.settled);
  ASSERT_GE(full.dt_growths, 1u);

  // Pause after the step size has already grown at least once.
  timeline::Playback first(s, options);
  std::size_t paused_steps = 0;
  while (!first.finished() && first.trace().dt_growths == 0) {
    first.run(1);
    ++paused_steps;
  }
  ASSERT_FALSE(first.finished());
  first.run(2);  // a couple of steps on the grown grid
  const auto parsed =
      timeline::parse_checkpoints(timeline::serialize_checkpoints({first.checkpoint()}));
  EXPECT_GT(parsed.at(0).current_time_step, options.time_step);

  timeline::Playback resumed(s, options, parsed.at(0));
  resumed.run();
  const timeline::TimelineTrace trace = resumed.take_trace();

  expect_bit_identical(trace.times, full.times, "times");
  expect_bit_identical(trace.cg_iterations, full.cg_iterations, "cg_iterations");
  ASSERT_EQ(trace.samples.size(), full.samples.size());
  for (std::size_t k = 0; k < trace.samples.size(); ++k) {
    expect_bit_identical(trace.samples[k], full.samples[k], "samples");
  }
  EXPECT_EQ(trace.dt_growths, full.dt_growths);
  EXPECT_EQ(trace.final_time_step, full.final_time_step);
  EXPECT_EQ(trace.settle_time, full.settle_time);
}

TEST(TimelineCheckpoint, RunnerPauseAndResumeMatchAtAnyThreadCount) {
  std::vector<ScenarioSpec> suite;
  for (double scale : {1.0, 0.5, 0.25}) {
    ScenarioSpec s = coarse_scenario();
    s.name = "step_" + std::to_string(scale);
    s.schedule = {{0.4, scale}, {0.2, 0.1}};
    suite.push_back(std::move(s));
  }

  timeline::TimelineBatchOptions options;
  options.playback.time_step = 0.2;
  options.playback.max_periods = 3;
  options.playback.stop_on_settle = false;
  const timeline::TimelineBatchResult uninterrupted =
      timeline::TimelineRunner(options).run(suite);
  EXPECT_TRUE(uninterrupted.checkpoints.empty());

  const auto paused_then_resumed = [&](std::size_t threads) {
    timeline::TimelineBatchOptions paused_options = options;
    paused_options.threads = threads;
    paused_options.pause_after_steps = 4;
    const timeline::TimelineBatchResult paused =
        timeline::TimelineRunner(paused_options).run(suite);
    EXPECT_EQ(paused.stats.paused_count, suite.size());
    EXPECT_EQ(paused.stats.total_steps, 4 * suite.size());
    // Through the text round-trip, as the CLI does it.
    const auto checkpoints =
        timeline::parse_checkpoints(timeline::serialize_checkpoints(paused.checkpoints));
    timeline::TimelineBatchOptions resume_options = options;
    resume_options.threads = threads;
    return timeline::TimelineRunner(resume_options).resume(suite, checkpoints);
  };

  // The rendered CSV captures every trace number at full precision, so
  // string equality is bit equality — and it must hold at 1 and 4 threads.
  const std::string golden = timeline::timeline_table(uninterrupted).to_csv();
  EXPECT_EQ(timeline::timeline_table(paused_then_resumed(1)).to_csv(), golden);
  EXPECT_EQ(timeline::timeline_table(paused_then_resumed(4)).to_csv(), golden);

  // Mixed pause: a playback that finishes before the pause step carries no
  // checkpoint; resume replays it from the start and continues the paused
  // one — the batch still reproduces the uninterrupted CSV byte for byte.
  std::vector<ScenarioSpec> mixed;
  ScenarioSpec quick = coarse_scenario();
  quick.name = "quick";
  quick.schedule = {{0.2, 1.0}};  // 1 step/period -> finishes in 3 steps
  mixed.push_back(std::move(quick));
  mixed.push_back(suite[0]);  // 3 steps/period -> 9 steps, paused at 4
  const std::string mixed_golden =
      timeline::timeline_table(timeline::TimelineRunner(options).run(mixed)).to_csv();
  timeline::TimelineBatchOptions mixed_pause = options;
  mixed_pause.pause_after_steps = 4;
  const timeline::TimelineBatchResult partially_paused =
      timeline::TimelineRunner(mixed_pause).run(mixed);
  ASSERT_EQ(partially_paused.stats.paused_count, 1u);
  ASSERT_EQ(partially_paused.checkpoints.size(), 1u);
  EXPECT_EQ(partially_paused.checkpoints[0].scenario, mixed[1].name);
  const timeline::TimelineBatchResult mixed_resumed =
      timeline::TimelineRunner(options).resume(mixed, partially_paused.checkpoints);
  EXPECT_EQ(timeline::timeline_table(mixed_resumed).to_csv(), mixed_golden);

  // A checkpoint for a scenario not in the suite is refused.
  auto checkpoints = timeline::TimelineRunner([&] {
                       timeline::TimelineBatchOptions o = options;
                       o.pause_after_steps = 2;
                       return o;
                     }())
                         .run(suite)
                         .checkpoints;
  std::vector<ScenarioSpec> other_suite{suite[0]};
  other_suite[0].name = "unseen";
  EXPECT_THROW(timeline::TimelineRunner(options).resume(other_suite, checkpoints), Error);
}

TEST(TimelineRegistry, SoakFamilyAndSuiteAreRegistered) {
  const std::vector<std::string> families = scenario::family_names();
  EXPECT_NE(std::find(families.begin(), families.end(), "transient_soak"), families.end());
  const std::vector<std::string> suites = scenario::builtin_suite_names();
  EXPECT_NE(std::find(suites.begin(), suites.end(), "soak"), suites.end());

  const std::vector<ScenarioSpec> suite = scenario::builtin_suite("soak");
  ASSERT_EQ(suite.size(), 2u);
  for (const ScenarioSpec& s : suite) {
    ASSERT_EQ(s.schedule.size(), 1u) << s.name;
    EXPECT_EQ(s.schedule[0].duration, 60.0) << s.name;
  }

  scenario::FamilySpec bad{"transient_soak", "", ScenarioSpec{}, {-1.0}};
  EXPECT_THROW(scenario::expand_family(bad), Error);
}

TEST(TimelineRegistry, RunnerRejectsEmptyAndInvalidInput) {
  timeline::TimelineRunner runner;
  EXPECT_THROW(runner.run({}), Error);

  ScenarioSpec broken = coarse_scenario();
  broken.name = "broken";
  broken.design.global_cell_xy = -1.0;
  try {
    runner.run({broken});
    FAIL() << "invalid design must throw";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace photherm
