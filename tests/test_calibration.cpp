#include "noc/calibration.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::noc {
namespace {

TEST(Calibration, TrimUsesCheaperBlueShiftWhenPossible) {
  const CalibrationParams params;
  // Ring red of its channel by 0.3 nm: voltage (blue) tuning at 130 uW/nm.
  const RingTrim blue = trim_for_misalignment(0.3e-9, params);
  EXPECT_FALSE(blue.uses_heater);
  EXPECT_NEAR(blue.power, 130e-6 * 0.3, 1e-12);
  // Ring blue of its channel: only heating red-shifts, 190 uW/nm.
  const RingTrim red = trim_for_misalignment(-0.3e-9, params);
  EXPECT_TRUE(red.uses_heater);
  EXPECT_NEAR(red.power, 190e-6 * 0.3, 1e-12);
}

TEST(Calibration, LargeErrorFallsBackToHeater) {
  const CalibrationParams params;  // blue range 0.4 nm
  const RingTrim trim = trim_for_misalignment(1.0e-9, params);
  EXPECT_TRUE(trim.uses_heater);
  EXPECT_NEAR(trim.power, 190e-6 * 1.0, 1e-12);
}

TEST(Calibration, ZeroErrorCostsNothing) {
  const RingTrim trim = trim_for_misalignment(0.0, CalibrationParams{});
  EXPECT_DOUBLE_EQ(trim.power, 0.0);
}

TEST(Calibration, PerRingPlanSumsPowers) {
  const CalibrationParams params;
  // Errors in degC -> x0.1 nm/degC.
  const auto plan = per_ring_plan({2.0, -1.0, 0.0, 3.5}, params);
  ASSERT_EQ(plan.trims.size(), 4u);
  // 2 degC -> 0.2 nm blue (130), -1 degC -> 0.1 nm red (190),
  // 3.5 degC -> 0.35 nm blue (130).
  EXPECT_NEAR(plan.total_power, 130e-6 * 0.2 + 190e-6 * 0.1 + 130e-6 * 0.35, 1e-12);
  EXPECT_EQ(plan.heater_count, 1u);
  EXPECT_THROW(per_ring_plan({}, params), Error);
}

TEST(Calibration, ClusteringTradesPowerForResidual) {
  const CalibrationParams params;
  // Two clusters of rings with small within-cluster spread.
  const std::vector<double> errors{2.0, 2.2, 1.8, -3.0, -3.1, -2.9};
  const std::vector<std::size_t> clusters{0, 0, 0, 1, 1, 1};
  const auto clustered = clustered_plan(errors, clusters, params);
  const auto per_ring = per_ring_plan(errors, params);

  // One trim per cluster instead of one per ring...
  EXPECT_EQ(clustered.plan.trims.size(), 2u);
  // ...at lower total power...
  EXPECT_LT(clustered.plan.total_power, per_ring.total_power);
  // ...with a bounded residual (0.2 degC spread -> 0.02 nm).
  EXPECT_NEAR(clustered.worst_residual, 0.2 * 0.1e-9, 1e-15);
}

TEST(Calibration, ClusterResidualGrowsWithGradient) {
  // This is why the paper minimises the intra-ONI gradient: a hot laser
  // next to a cool ring makes per-cluster calibration inaccurate.
  const CalibrationParams params;
  const std::vector<std::size_t> clusters{0, 0};
  const auto tight = clustered_plan({1.0, 1.2}, clusters, params);
  const auto loose = clustered_plan({1.0, 6.8}, clusters, params);
  EXPECT_GT(loose.worst_residual, 10.0 * tight.worst_residual);
}

TEST(Calibration, CoronaScaleBudget) {
  // Sec. III-B: ~1.1e6 MRs; at ~1 nm typical misalignment the calibration
  // budget reaches the hundreds-of-watts scale that the paper reports as
  // "more than 50 % of the total network power".
  const double power = network_calibration_power(1'100'000, 1e-9, CalibrationParams{});
  EXPECT_NEAR(power, 1'100'000 * 160e-6, 1.0);  // mean(130, 190) uW each
  EXPECT_GT(power, 100.0);
  EXPECT_THROW(network_calibration_power(0, 1e-9, CalibrationParams{}), Error);
}

}  // namespace
}  // namespace photherm::noc
