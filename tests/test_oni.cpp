#include "soc/oni.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace photherm::soc {
namespace {

using geometry::BlockKind;
using geometry::Scene;
using geometry::Vec3;

OniZRanges z_ranges() { return {0.0, 15e-6, 35e-6, 39e-6}; }

TEST(OniBuilder, FootprintMatchesLayout) {
  const OniBuilder builder{OniLayoutParams{}};
  // 8 slots x 40 um, 4 rows x 40 um.
  EXPECT_NEAR(builder.footprint_x(), 320e-6, 1e-12);
  EXPECT_NEAR(builder.footprint_y(), 160e-6, 1e-12);
}

TEST(OniBuilder, DeviceCountsMatchFig1b) {
  // 4 waveguides x 4 TX and 4 RX: 16 VCSELs, 16 MRs, 16 heaters, 16 PDs.
  Scene scene;
  const OniBuilder builder{OniLayoutParams{}};
  OniPowerConfig power;
  power.p_vcsel = 1e-3;
  power.p_driver = 1e-3;
  power.p_heater = 0.3e-3;
  const auto instance = builder.emit(scene, {0, 0, 0}, 7, z_ranges(), power);
  EXPECT_EQ(instance.index, 7);
  EXPECT_EQ(scene.find(BlockKind::kVcsel, 7).size(), 16u);
  EXPECT_EQ(scene.find(BlockKind::kMicroRing, 7).size(), 16u);
  EXPECT_EQ(scene.find(BlockKind::kHeater, 7).size(), 16u);
  EXPECT_EQ(scene.find(BlockKind::kPhotodetector, 7).size(), 16u);
  EXPECT_EQ(scene.find(BlockKind::kDriver, 7).size(), 16u);
  EXPECT_EQ(scene.find(BlockKind::kTsv, 7).size(), 16u);
}

TEST(OniBuilder, ChessboardAlternation) {
  // Adjacent rows start with opposite device types: slot 0 of row 0 is a
  // transmitter, slot 0 of row 1 is a receiver.
  Scene scene;
  const OniBuilder builder{OniLayoutParams{}};
  builder.emit(scene, {0, 0, 0}, 0, z_ranges(), OniPowerConfig{});
  EXPECT_NO_THROW(scene.by_name("oni0_vcsel_w0_s0"));
  EXPECT_NO_THROW(scene.by_name("oni0_mr_w1_s0"));
  EXPECT_NO_THROW(scene.by_name("oni0_mr_w0_s1"));
  EXPECT_NO_THROW(scene.by_name("oni0_vcsel_w1_s1"));
  EXPECT_THROW(scene.by_name("oni0_vcsel_w1_s0"), Error);
}

TEST(OniBuilder, TotalPowerAccounting) {
  Scene scene;
  const OniBuilder builder{OniLayoutParams{}};
  OniPowerConfig power;
  power.p_vcsel = 2e-3;
  power.p_driver = 2e-3;
  power.p_heater = 0.6e-3;
  power.active_tx_per_waveguide = 2;  // 8 of 16 lasers driven
  builder.emit(scene, {0, 0, 0}, 0, z_ranges(), power);
  // 8 x (2 + 2) mW + 16 x 0.6 mW.
  EXPECT_NEAR(scene.total_power(), 8 * 4e-3 + 16 * 0.6e-3, 1e-12);
}

TEST(OniBuilder, DevicesInsideFootprintAndLayers) {
  Scene scene;
  const OniBuilder builder{OniLayoutParams{}};
  const auto instance = builder.emit(scene, {10e-6, 20e-6, 0}, 0, z_ranges(),
                                     OniPowerConfig{});
  for (const auto& block : scene.blocks()) {
    if (block.kind == BlockKind::kVcsel || block.kind == BlockKind::kMicroRing) {
      EXPECT_GE(block.box.lo.x, instance.footprint.lo.x - 1e-12) << block.name;
      EXPECT_LE(block.box.hi.x, instance.footprint.hi.x + 1e-12) << block.name;
      EXPECT_GE(block.box.lo.z, z_ranges().optical_lo - 1e-12) << block.name;
      EXPECT_LE(block.box.hi.z, z_ranges().optical_hi + 1e-12) << block.name;
    }
    if (block.kind == BlockKind::kDriver) {
      EXPECT_LE(block.box.hi.z, z_ranges().beol_hi + 1e-12) << block.name;
    }
  }
}

TEST(OniBuilder, HeaterSitsOnTopOfRing) {
  Scene scene;
  const OniBuilder builder{OniLayoutParams{}};
  builder.emit(scene, {0, 0, 0}, 0, z_ranges(), OniPowerConfig{});
  const auto& ring = scene.by_name("oni0_mr_w0_s1");
  const auto& heater = scene.by_name("oni0_heater_w0_s1");
  EXPECT_DOUBLE_EQ(heater.box.lo.z, ring.box.hi.z);
  EXPECT_DOUBLE_EQ(heater.box.lo.x, ring.box.lo.x);
  EXPECT_DOUBLE_EQ(heater.box.hi.x, ring.box.hi.x);
}

TEST(OniBuilder, Validation) {
  OniLayoutParams params;
  params.slot_pitch_x = 5e-6;  // smaller than the VCSEL
  EXPECT_THROW(OniBuilder{params}, Error);

  const OniBuilder builder{OniLayoutParams{}};
  Scene scene;
  OniPowerConfig too_many;
  too_many.active_tx_per_waveguide = 9;
  EXPECT_THROW(builder.emit(scene, {0, 0, 0}, 0, z_ranges(), too_many), Error);

  OniZRanges bad = z_ranges();
  bad.optical_hi = bad.optical_lo;
  EXPECT_THROW(builder.emit(scene, {0, 0, 0}, 0, bad, OniPowerConfig{}), Error);
}

}  // namespace
}  // namespace photherm::soc
