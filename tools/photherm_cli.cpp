/// photherm_cli — command-line driver for the scenario engine.
///
///   photherm_cli list
///       Built-in suites (with scenario counts) and scenario families.
///   photherm_cli expand <suite> [-o FILE]
///       Expand a suite to a scenario file (stdout by default). <suite> is
///       either a scenario file path or `builtin:<name>`.
///   photherm_cli run <suite> [--threads N] [--no-cache] [-o FILE]
///                    [--trace FILE] [--metrics FILE]
///       Run the batch and emit one CSV row per scenario. Output is
///       bit-identical across thread counts and with the coarse-solve cache
///       on or off; cache statistics go to stderr.
///   photherm_cli play <suite> [--dt SEC] [--periods N] [--tol DEGC]
///                     [--until-settle] [--adaptive] [--cold-start]
///                     [--summary] [--threads N] [-o FILE]
///                     [--pause-after N --checkpoint FILE] [--resume FILE]
///                     [--trace FILE] [--metrics FILE]
///       Transient playback of every scenario's activity schedule (timeline
///       engine): emit the time-series CSV (one row per step, probe columns)
///       or, with --summary, one settle-report row per scenario. Output is
///       bit-identical across thread counts; stepping statistics go to
///       stderr. --adaptive grows the step while the field crawls;
///       --pause-after/--checkpoint stop every playback after N steps and
///       write their state to FILE; --resume continues from such a file,
///       byte-identical to a run that never paused. A warning is printed
///       when a schedule's quantized duty drifts from its analytic duty by
///       more than the settle tolerance.
///       --trace writes a Chrome trace-event JSON (open in Perfetto or
///       chrome://tracing), --metrics a merged metrics CSV; neither perturbs
///       the scenario CSV, which stays byte-identical to an untraced run
///       (see README.md "Observability").
///   photherm_cli diff <a.csv> <b.csv> [--tol REL]
///       Compare two CSV files cell by cell; numeric cells match within the
///       relative tolerance (default 0 = exact), text cells exactly.
///       Exits 1 on mismatch — the golden-file check of the CTest smoke run.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/batch_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "timeline/checkpoint.hpp"
#include "timeline/runner.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace photherm;

int usage(std::ostream& os, int exit_code) {
  os << "usage: photherm_cli <command> [args]\n"
        "  list                                     built-in suites and families\n"
        "  expand <suite> [-o FILE]                 expand to a scenario file\n"
        "  run <suite> [--threads N] [--no-cache] [-o FILE]\n"
        "              [--trace FILE] [--metrics FILE]\n"
        "                                           run the batch, emit CSV\n"
        "  play <suite> [--dt SEC] [--periods N] [--tol DEGC] [--until-settle]\n"
        "               [--adaptive] [--max-period-error REL] [--cold-start]\n"
        "               [--stencil] [--precond NAME] [--summary] [--threads N]\n"
        "               [--pause-after N --checkpoint FILE] [--resume FILE]\n"
        "               [--progress N] [--convergence]\n"
        "               [--trace FILE] [--metrics FILE] [-o FILE]\n"
        "                                           transient playback, emit\n"
        "                                           time-series CSV\n"
        "  diff <a.csv> <b.csv> [--tol REL]         numeric CSV comparison\n"
        "a <suite> is a scenario file path or builtin:<name> (see `list`).\n"
        "--trace writes a Chrome trace-event JSON (Perfetto/chrome://tracing),\n"
        "--metrics a metrics CSV; neither changes the scenario CSV output.\n"
        "Both embed a run manifest (git sha, build type, suite, threads) that\n"
        "photherm_report reads. --progress N logs a heartbeat stderr line\n"
        "every N steps; --convergence records per-iteration solver residuals\n"
        "(SolverResult histories + trace counter events).\n";
  return exit_code;
}

std::vector<scenario::ScenarioSpec> resolve_suite(const std::string& suite) {
  const std::string prefix = "builtin:";
  if (suite.rfind(prefix, 0) == 0) {
    return scenario::builtin_suite(suite.substr(prefix.size()));
  }
  return scenario::load_scenario_file(suite);
}

void write_output(const std::optional<std::string>& path, const std::string& payload) {
  if (!path) {
    std::cout << payload;
    return;
  }
  std::ofstream out(*path);
  PH_REQUIRE(out.good(), "cannot open output file: " + *path);
  out << payload;
  out.flush();
  PH_REQUIRE(out.good(), "failed while writing output file: " + *path);
}

/// Pop `--flag value` style options shared by expand/run/play.
struct CommonArgs {
  std::string suite;
  std::optional<std::string> out_path;
  std::size_t threads = 0;
};

/// `extra` (optional) consumes command-specific flags: it is offered each
/// option first and returns true when it handled it (advancing `i` past any
/// value it popped).
CommonArgs parse_common(
    const std::vector<std::string>& args, const std::string& command,
    const std::function<bool(const std::string&, std::size_t&)>& extra = {}) {
  CommonArgs parsed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (extra && extra(arg, i)) {
      continue;
    }
    if (arg == "-o" || arg == "--out") {
      PH_REQUIRE(i + 1 < args.size(), arg + " needs a file path");
      parsed.out_path = args[++i];
    } else if (arg == "--threads") {
      PH_REQUIRE(i + 1 < args.size(), "--threads needs a count");
      parsed.threads = static_cast<std::size_t>(parse_uint(args[++i], "--threads"));
    } else if (!arg.empty() && arg[0] == '-') {
      throw SpecError("unknown option `" + arg + "` for " + command);
    } else {
      PH_REQUIRE(parsed.suite.empty(), command + " takes exactly one <suite>");
      parsed.suite = arg;
    }
  }
  PH_REQUIRE(!parsed.suite.empty(), command + " needs a <suite> argument");
  return parsed;
}

/// --trace/--metrics plumbing shared by run and play: the command's `extra`
/// handler parses the flags, telemetry turns on before the first solve, and
/// the collected data is written after the scenario CSV. Telemetry is
/// write-only — the scenario CSV stays byte-identical either way.
struct TelemetryArgs {
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;

  bool handle(const std::vector<std::string>& args, const std::string& arg, std::size_t& i) {
    if (arg == "--trace" || arg == "--metrics") {
      PH_REQUIRE(i + 1 < args.size(), arg + " needs a file path");
      (arg == "--trace" ? trace_path : metrics_path) = args[++i];
      return true;
    }
    return false;
  }

  void enable_if_requested() const {
    if (trace_path || metrics_path) {
      telemetry::set_enabled(true);
    }
  }

  void write_reports() const {
    if (trace_path) {
      telemetry::write_trace_json(*trace_path);
    }
    if (metrics_path) {
      telemetry::write_metrics_csv(*metrics_path);
    }
  }
};

/// Runtime half of the run manifest (the build half — git sha, build type,
/// compiler, sanitizer — is compiled into telemetry.cpp): what was run and
/// how wide, so photherm_report can tell two artifacts apart months later.
void set_run_manifest(const char* command, const CommonArgs& parsed,
                      std::size_t scenario_count) {
  if (!telemetry::enabled()) {
    return;
  }
  telemetry::set_manifest("command", command);
  telemetry::set_manifest("suite", parsed.suite);
  std::ostringstream scenarios;
  scenarios << scenario_count;
  telemetry::set_manifest("scenario_count", scenarios.str());
  std::ostringstream threads;
  threads << (parsed.threads != 0 ? parsed.threads : util::concurrency());
  telemetry::set_manifest("threads", threads.str());
}

int cmd_list() {
  std::cout << "built-in suites (run or expand with builtin:<name>):\n";
  for (const std::string& name : scenario::builtin_suite_names()) {
    std::cout << "  " << name << " (" << scenario::builtin_suite(name).size()
              << " scenarios)\n";
  }
  std::cout << "\nscenario families (building blocks of suites):\n";
  for (const std::string& name : scenario::family_names()) {
    std::cout << "  " << name << ": " << scenario::family_description(name) << "\n";
  }
  std::cout << "\nscenario file keys: " << join(scenario::scenario_keys(), ", ") << "\n";
  return 0;
}

int cmd_expand(const std::vector<std::string>& args) {
  const CommonArgs parsed = parse_common(args, "expand");
  const auto scenarios = resolve_suite(parsed.suite);
  write_output(parsed.out_path, scenario::serialize_scenarios(scenarios));
  std::cerr << "expanded " << scenarios.size() << " scenarios\n";
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  bool no_cache = false;
  TelemetryArgs telemetry_args;
  const CommonArgs parsed =
      parse_common(args, "run", [&](const std::string& arg, std::size_t& i) {
        if (arg == "--no-cache") {
          no_cache = true;
          return true;
        }
        return telemetry_args.handle(args, arg, i);
      });
  telemetry_args.enable_if_requested();
  const auto scenarios = resolve_suite(parsed.suite);
  set_run_manifest("run", parsed, scenarios.size());

  scenario::BatchOptions options;
  options.threads = parsed.threads;
  options.share_global_solves = !no_cache;
  const scenario::BatchResult result = scenario::BatchRunner(options).run(scenarios);

  write_output(parsed.out_path, scenario::batch_table(scenarios, result).to_csv());
  telemetry_args.write_reports();
  PH_LOG_INFO << "event=batch_run scenarios=" << result.stats.scenario_count
              << " global_solves=" << result.stats.global_solves
              << " cache_hits=" << result.stats.cache_hits;
  return 0;
}

int cmd_play(const std::vector<std::string>& args) {
  bool summary = false;
  bool until_settle = false;
  std::optional<std::size_t> periods;
  std::size_t pause_after = 0;
  std::optional<std::string> checkpoint_path;
  std::optional<std::string> resume_path;
  bool explicit_precond = false;
  TelemetryArgs telemetry_args;
  timeline::PlaybackOptions playback;

  const CommonArgs parsed =
      parse_common(args, "play", [&](const std::string& arg, std::size_t& i) {
        if (telemetry_args.handle(args, arg, i)) {
          return true;
        }
        const auto value = [&](const char* what) -> const std::string& {
          PH_REQUIRE(i + 1 < args.size(), std::string(what) + " needs a value");
          return args[++i];
        };
        if (arg == "--stencil") {
          playback.operator_kind = thermal::OperatorKind::kStencil;
        } else if (arg == "--precond") {
          playback.solver.preconditioner =
              math::preconditioner_kind_from_string(value("--precond"));
          explicit_precond = true;
        } else if (arg == "--dt") {
          playback.time_step = parse_double(value("--dt"), "--dt");
        } else if (arg == "--periods") {
          periods = static_cast<std::size_t>(parse_uint(value("--periods"), "--periods"));
        } else if (arg == "--tol") {
          playback.settle_tolerance = parse_double(value("--tol"), "--tol");
        } else if (arg == "--until-settle") {
          until_settle = true;
        } else if (arg == "--adaptive") {
          playback.adaptive = true;
        } else if (arg == "--max-period-error") {
          playback.max_period_error =
              parse_double(value("--max-period-error"), "--max-period-error");
        } else if (arg == "--cold-start") {
          playback.warm_start = false;
        } else if (arg == "--progress") {
          playback.progress_every =
              static_cast<std::size_t>(parse_uint(value("--progress"), "--progress"));
        } else if (arg == "--convergence") {
          playback.solver.record_convergence = true;
        } else if (arg == "--summary") {
          summary = true;
        } else if (arg == "--pause-after") {
          pause_after =
              static_cast<std::size_t>(parse_uint(value("--pause-after"), "--pause-after"));
        } else if (arg == "--checkpoint") {
          checkpoint_path = value("--checkpoint");
        } else if (arg == "--resume") {
          resume_path = value("--resume");
        } else {
          return false;
        }
        return true;
      });
  PH_REQUIRE(pause_after == 0 || checkpoint_path,
             "--pause-after needs --checkpoint FILE to save the paused state");
  PH_REQUIRE(!checkpoint_path || pause_after > 0,
             "--checkpoint needs --pause-after N (when to pause)");
  // The stencil path has no CSR sparsity, so the default ILU(0) cannot
  // apply; pick its natural partner unless the user chose explicitly.
  if (playback.operator_kind == thermal::OperatorKind::kStencil && !explicit_precond) {
    playback.solver.preconditioner = math::PreconditionerKind::kChebyshev;
  }
  telemetry_args.enable_if_requested();

  // Fixed-horizon by default (stop_on_settle off, 40 periods) so the CSV
  // shape is schedule-determined — what the golden smoke test pins down.
  // --until-settle keeps the library's long horizon (PlaybackOptions
  // default) so slow-settling scenarios actually reach their settle time;
  // an explicit --periods overrides either cap.
  playback.stop_on_settle = until_settle;
  if (periods) {
    playback.max_periods = *periods;
  } else if (!until_settle) {
    playback.max_periods = 40;
  }

  const auto scenarios = resolve_suite(parsed.suite);
  set_run_manifest("play", parsed, scenarios.size());

  // Quantization sanity: warn when the duty a schedule actually plays on
  // this grid drifts from the analytic duty by more than the settle
  // tolerance. The comparison is a dimensionless heuristic — the settled
  // field shifts by roughly drift x the modulated temperature swing — but
  // it flags exactly the grids whose playback studies a different duty
  // than the steady-state pipeline's fold. (Schedules that do not fit the
  // grid at all fail fast inside the playback, with the scenario named.)
  for (const auto& s : scenarios) {
    try {
      const timeline::PowerTimeline t =
          timeline::compile_timeline(s.schedule, playback.time_step,
                                     playback.max_period_error);
      const double drift = std::abs(t.average_scale() - s.duty_scale());
      if (drift > playback.settle_tolerance) {
        std::cerr << "warning: scenario `" << s.name << "`: quantized duty "
                  << t.average_scale() << " differs from the analytic duty "
                  << s.duty_scale() << " by " << drift << " (> settle tolerance "
                  << playback.settle_tolerance << "); shrink --dt to play the "
                  << "schedule faithfully\n";
      }
    } catch (const Error&) {
      // play will report it with full context
    }
  }

  timeline::TimelineBatchOptions options;
  options.threads = parsed.threads;
  options.playback = playback;
  options.pause_after_steps = pause_after;
  const timeline::TimelineRunner runner(options);
  std::vector<timeline::PlaybackCheckpoint> resume_from;
  if (resume_path) {
    resume_from = timeline::load_checkpoint_file(*resume_path);
    if (resume_from.empty()) {
      // The valid end state of a pause/resume loop: the previous run
      // finished everything and wrote an empty checkpoint. Play from the
      // start — determinism makes that the same complete result.
      std::cerr << *resume_path << " holds no paused playbacks; playing to completion\n";
    }
  }
  const timeline::TimelineBatchResult result =
      resume_from.empty() ? runner.run(scenarios) : runner.resume(scenarios, resume_from);

  if (checkpoint_path) {
    // An empty checkpoint file is a valid end state of a pause/resume
    // loop: every playback finished before the pause fired, the CSV below
    // is the complete result, and resuming the file reports there is
    // nothing left to continue.
    timeline::save_checkpoint_file(*checkpoint_path, result.checkpoints);
    if (result.checkpoints.empty()) {
      std::cerr << "all playbacks finished before --pause-after " << pause_after
                << "; wrote an empty checkpoint to " << *checkpoint_path << "\n";
    } else {
      std::cerr << "checkpointed " << result.stats.paused_count << " playbacks to "
                << *checkpoint_path << "\n";
    }
  }

  const Table table =
      summary ? timeline::timeline_summary_table(result) : timeline::timeline_table(result);
  write_output(parsed.out_path, table.to_csv());
  telemetry_args.write_reports();
  PH_LOG_INFO << "event=timeline_play scenarios=" << result.stats.scenario_count
              << " steps=" << result.stats.total_steps
              << " cg_iterations=" << result.stats.total_cg_iterations
              << " settled=" << result.stats.settled_count
              << " periodic=" << result.stats.periodic_count
              << " paused=" << result.stats.paused_count;
  return 0;
}

/// True when the whole cell parses as a number.
std::optional<double> as_number(const std::string& cell) {
  const std::string text = trim(cell);
  if (text.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  PH_REQUIRE(in.good(), "cannot open CSV file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    lines.push_back(line);
  }
  return lines;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  double tol = 0.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tol") {
      PH_REQUIRE(i + 1 < args.size(), "--tol needs a value");
      tol = parse_double(args[++i], "--tol");
    } else {
      paths.push_back(args[i]);
    }
  }
  PH_REQUIRE(paths.size() == 2, "diff takes exactly two CSV paths");

  const auto a = read_lines(paths[0]);
  const auto b = read_lines(paths[1]);
  if (a.size() != b.size()) {
    std::cerr << "diff: row count " << a.size() << " vs " << b.size() << "\n";
    return 1;
  }
  for (std::size_t row = 0; row < a.size(); ++row) {
    const auto cells_a = split(a[row], ',');
    const auto cells_b = split(b[row], ',');
    if (cells_a.size() != cells_b.size()) {
      std::cerr << "diff: line " << row + 1 << ": column count " << cells_a.size() << " vs "
                << cells_b.size() << "\n";
      return 1;
    }
    for (std::size_t col = 0; col < cells_a.size(); ++col) {
      const auto na = as_number(cells_a[col]);
      const auto nb = as_number(cells_b[col]);
      bool ok;
      // NaN cells fall through to the text comparison (NaN != NaN would
      // make a file mismatch a byte-identical copy of itself).
      if (na && nb && !std::isnan(*na) && !std::isnan(*nb)) {
        const double scale = std::max({1.0, std::abs(*na), std::abs(*nb)});
        ok = *na == *nb || std::abs(*na - *nb) <= tol * scale;
      } else {
        ok = trim(cells_a[col]) == trim(cells_b[col]);
      }
      if (!ok) {
        std::cerr << "diff: line " << row + 1 << ", column " << col + 1 << ": `"
                  << cells_a[col] << "` vs `" << cells_b[col] << "` (tol " << tol << ")\n";
        return 1;
      }
    }
  }
  std::cerr << "diff: " << a.size() << " rows match\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The run/play stats lines are kInfo (the library default is kWarn so
  // tests stay quiet); the CLI is the interactive surface, so show them.
  photherm::set_log_level(photherm::LogLevel::kInfo);
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "-h" || args[0] == "--help" || args[0] == "help") {
    return usage(args.empty() ? std::cerr : std::cout, args.empty() ? 2 : 0);
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "list") {
      return cmd_list();
    }
    if (command == "expand") {
      return cmd_expand(rest);
    }
    if (command == "run") {
      return cmd_run(rest);
    }
    if (command == "play") {
      return cmd_play(rest);
    }
    if (command == "diff") {
      return cmd_diff(rest);
    }
    std::cerr << "photherm_cli: unknown command `" << command << "`\n";
    return usage(std::cerr, 2);
  } catch (const photherm::Error& e) {
    std::cerr << "photherm_cli: " << e.what() << "\n";
    return 2;
  }
}
