/// \file photherm_lint.cpp
/// \brief Project-invariant static analysis for the photherm tree.
///
/// The repo's headline guarantees — bit-identical results at any thread
/// count, exact text round-trips for scenario files and checkpoints,
/// byte-identical checkpoint resume — are runtime-tested, but the bug
/// classes that break them are mechanically detectable source patterns
/// (PR 6's SSOR preconditioner held a raw `const CsrMatrix*` into a matrix
/// it did not own for five PRs before a review caught it). This tool makes
/// those invariants build-time checks with named, file:line-reporting
/// rules:
///
///   ownership      no raw-pointer/reference *members* to CsrMatrix /
///                  LinearOperator / Preconditioner / mesh / field objects:
///                  a view member outlives nothing, so every holder must own
///                  (copy, unique_ptr, shared_ptr) or be allowlisted with a
///                  written lifetime argument.
///   determinism    no wall-clock or non-deterministic randomness
///                  (std::rand / time() / random_device / system clocks),
///                  and no iteration over unordered_map/unordered_set —
///                  hash order is implementation-defined, so any iteration
///                  that feeds output or accumulation breaks bit-identity.
///   serialization  in files that write persisted text formats (scenario
///                  files, checkpoints, CSV), double→text must go through
///                  util::format_shortest — never std::to_string or
///                  iostream precision — so serialize/parse round-trips are
///                  bit-exact.
///   errors         every `throw` raises photherm::Error or a subclass
///                  (type name ending in `Error`), so callers and the test
///                  suite can assert on failure modes; abort()/exit() are
///                  not error paths in library code.
///
/// The scan is a line-based lexical pass: comments and string/char literal
/// bodies are blanked before the rules run, so prose and messages cannot
/// false-positive. It is intentionally heuristic — a multi-line member
/// declaration can evade the ownership rule — but every invariant bug this
/// repo has actually shipped matches on a single line.
///
/// Allowlisting (both forms require the scan to stay reviewable):
///   * inline, per line:  `// ph-lint: allow(rule[,rule]) <reason>` — on the
///     flagged line, or alone on the line above it
///   * per file, in the config (default `tools/photherm_lint.rules`
///     under --root):      `allow <rule> <path-suffix>`
/// The config also declares which files write persisted formats:
///                         `serialized <path-suffix>`
///
/// Usage:
///   photherm_lint [--root DIR] [--config FILE] [--rule NAME ...]
///                 [--list-rules] PATH...
/// PATHs are files or directories (recursed for *.hpp / *.cpp), resolved
/// against --root. Exit 0 when clean, 2 when violations were found.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

using photherm::Error;

// ---------------------------------------------------------------------------
// Source model: one scanned file, with literals/comments blanked.

struct SourceLine {
  std::string raw;       // the line as written
  std::string code;      // literals and comments replaced by spaces
  std::string literals;  // concatenated bodies of string literals on the line
  std::set<std::string> inline_allows;  // rules allowed by a ph-lint marker
};

struct SourceFile {
  std::string path;  // as reported (relative to --root when possible)
  std::vector<SourceLine> lines;
};

/// Extract `ph-lint: allow(a,b)` rule names from a raw line.
std::set<std::string> parse_inline_allows(const std::string& raw) {
  static const std::regex marker(R"(ph-lint:\s*allow\(([^)]*)\))");
  std::set<std::string> rules;
  std::smatch m;
  if (std::regex_search(raw, m, marker)) {
    std::stringstream list(m[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto begin = rule.find_first_not_of(" \t");
      const auto end = rule.find_last_not_of(" \t");
      if (begin != std::string::npos) {
        rules.insert(rule.substr(begin, end - begin + 1));
      }
    }
  }
  return rules;
}

/// Blank comments and literal bodies so rules only ever match real code.
/// Handles // and /* */ comments, "…" and '…' literals with escapes, and
/// raw strings R"delim(…)delim". Replaced characters become spaces so
/// column positions (and therefore regex anchors) survive.
SourceFile load_source(const fs::path& disk_path, const std::string& report_path) {
  std::ifstream in(disk_path);
  if (!in) {
    throw Error("cannot open " + disk_path.string());
  }
  SourceFile file;
  file.path = report_path;

  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the )delim" terminator

  std::string raw;
  while (std::getline(in, raw)) {
    SourceLine line;
    line.raw = raw;
    line.inline_allows = parse_inline_allows(raw);
    std::string code(raw.size(), ' ');

    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = raw.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!isalnum(static_cast<unsigned char>(raw[i - 1])) &&
                                 raw[i - 1] != '_'))) {
            const std::size_t open = raw.find('(', i + 2);
            if (open != std::string::npos) {
              // Built up in steps: GCC 12's -Wrestrict false-positives on
              // chained std::string operator+ (PR 105651) under -Werror.
              raw_delim = ")";
              raw_delim.append(raw, i + 2, open - i - 2);
              raw_delim += '"';
              state = State::kRawString;
              code[i] = 'R';
              i = open;  // blank from the opening paren onwards
            } else {
              code[i] = c;
            }
          } else if (c == '"') {
            state = State::kString;
            code[i] = '"';
          } else if (c == '\'') {
            state = State::kChar;
            code[i] = '\'';
          } else {
            code[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            if (i + 1 < raw.size()) {
              line.literals += raw.substr(i, 2);
            }
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            code[i] = '"';
            line.literals += '\n';
          } else {
            line.literals += c;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code[i] = '\'';
          }
          break;
        case State::kRawString:
          if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
            state = State::kCode;
            i += raw_delim.size() - 1;
            code[i] = '"';
            line.literals += '\n';
          } else {
            line.literals += c;
          }
          break;
      }
    }
    // A string or char literal cannot span lines (raw strings can).
    if (state == State::kString || state == State::kChar) {
      state = State::kCode;
    }
    line.code = std::move(code);
    file.lines.push_back(std::move(line));
  }
  // A marker on a pure-comment line covers the next line, so long lines can
  // carry `// ph-lint: allow(rule) why` on the line above.
  for (std::size_t i = 0; i + 1 < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (!line.inline_allows.empty() &&
        line.code.find_first_not_of(" \t") == std::string::npos) {
      file.lines[i + 1].inline_allows.insert(line.inline_allows.begin(),
                                             line.inline_allows.end());
    }
  }
  return file;
}

// ---------------------------------------------------------------------------
// Configuration: serialized-format files and per-file allowlists.

struct Config {
  std::vector<std::string> serialized;                     // path suffixes
  std::map<std::string, std::vector<std::string>> allows;  // rule -> suffixes
};

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool suffix_match(const std::string& path, const std::string& suffix) {
  const std::string p = normalize(path);
  if (p.size() < suffix.size()) {
    return false;
  }
  if (p.size() == suffix.size()) {
    return p == suffix;
  }
  // Match on a path-component boundary so `axis.hpp` cannot match
  // `taxis.hpp`.
  return p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         p[p.size() - suffix.size() - 1] == '/';
}

Config load_config(const fs::path& path, const std::set<std::string>& known_rules) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open lint config " + path.string());
  }
  Config config;
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = raw.substr(0, raw.find('#'));
    std::stringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) {
      continue;  // blank or comment-only
    }
    const auto context = [&] {
      return path.string() + ":" + std::to_string(line_number);
    };
    if (kind == "serialized") {
      std::string suffix;
      if (!(fields >> suffix)) {
        throw Error(context() + ": `serialized` needs a path suffix");
      }
      config.serialized.push_back(normalize(suffix));
    } else if (kind == "allow") {
      std::string rule, suffix;
      if (!(fields >> rule >> suffix)) {
        throw Error(context() + ": `allow` needs a rule name and a path suffix");
      }
      if (known_rules.count(rule) == 0) {
        throw Error(context() + ": unknown rule `" + rule + "`");
      }
      config.allows[rule].push_back(normalize(suffix));
    } else {
      throw Error(context() + ": unknown directive `" + kind +
                  "` (expected `serialized` or `allow`)");
    }
  }
  return config;
}

// ---------------------------------------------------------------------------
// Findings.

struct Finding {
  std::string path;
  std::size_t line;  // 1-based
  std::string rule;
  std::string message;
};

class Reporter {
 public:
  Reporter(const Config& config, std::vector<Finding>& out) : config_(config), out_(out) {}

  /// Record a finding unless the line or file is allowlisted for the rule.
  void report(const SourceFile& file, std::size_t index, const std::string& rule,
              const std::string& message) {
    if (file.lines[index].inline_allows.count(rule) != 0) {
      return;
    }
    const auto it = config_.allows.find(rule);
    if (it != config_.allows.end()) {
      for (const std::string& suffix : it->second) {
        if (suffix_match(file.path, suffix)) {
          return;
        }
      }
    }
    out_.push_back({file.path, index + 1, rule, message});
  }

 private:
  const Config& config_;
  std::vector<Finding>& out_;
};

// ---------------------------------------------------------------------------
// Rule: ownership — raw pointer/reference members to guarded types.

// Types whose instances are solver-lifetime resources: a raw view member
// into one of these is exactly the PR 6 SSOR dangling-pointer bug class.
const char* const kGuardedTypes =
    "(?:CsrMatrix|LinearOperator|StencilOperator7|Preconditioner|"
    "RectilinearMesh|ThermalField|Axis)";

void rule_ownership(const SourceFile& file, Reporter& reporter) {
  // An uninitialized `Type* name;` / `Type& name;` declaration is
  // member-style: locals are initialized (references must be) and function
  // parameters are always followed by `,` or `)`, never `;`.
  static const std::regex member(std::string(R"(\b)") + kGuardedTypes +
                                 R"(\b[^;(){}=]*[*&]\s*[A-Za-z_]\w*\s*;)");
  // Members with default initializers follow the trailing-underscore
  // naming convention, which keeps initialized locals (fine) out of scope.
  static const std::regex member_init(std::string(R"(\b)") + kGuardedTypes +
                                      R"(\b[^;(){}=]*[*&]\s*[A-Za-z_]\w*_\s*=[^;]*;)");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (std::regex_search(code, member) || std::regex_search(code, member_init)) {
      reporter.report(file, i, "ownership",
                      "raw pointer/reference member to a solver-lifetime type "
                      "(CsrMatrix/LinearOperator/mesh/...): the holder must own its "
                      "data (copy, unique_ptr, shared_ptr) — a non-owning view member "
                      "is the PR 6 SSOR dangling-pointer bug class; if the lifetime "
                      "is provably managed, allowlist it with the argument written "
                      "down");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: determinism — wall clocks, ambient randomness, unordered iteration.

void rule_determinism(const SourceFile& file, Reporter& reporter) {
  struct Token {
    std::regex re;
    const char* what;
  };
  // `[^\w.>:]` guards reject member calls (`solver_->time()`, `obj.time()`)
  // and qualified names handled by their own std:: pattern.
  static const std::vector<Token> tokens = [] {
    std::vector<Token> t;
    t.push_back({std::regex(R"(\bstd::rand\b|(?:^|[^\w.>:])rand\s*\()"), "rand()"});
    t.push_back({std::regex(R"(\bstd::srand\b|(?:^|[^\w.>:])srand\s*\()"), "srand()"});
    // libc time() always takes an argument; zero-arg `time()` is a member
    // accessor (e.g. TransientSolver::time()), which stays legal.
    t.push_back({std::regex(R"(\bstd::time\b|(?:^|[^\w.>:])time\s*\(\s*[^)\s])"), "time()"});
    t.push_back({std::regex(R"((?:^|[^\w.>:])clock\s*\()"), "clock()"});
    t.push_back({std::regex(R"(\bgettimeofday\b|\blocaltime\b|\bgmtime\b)"), "wall-clock time"});
    t.push_back({std::regex(R"(\brandom_device\b)"), "std::random_device"});
    t.push_back({std::regex(R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b)"),
                 "a std::chrono clock"});
    return t;
  }();

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (const Token& token : tokens) {
      if (std::regex_search(code, token.re)) {
        reporter.report(file, i, "determinism",
                        std::string(token.what) +
                            " is non-deterministic across runs: results must be "
                            "bit-identical at any thread count, so all stochastic "
                            "inputs derive from util::Rng with an explicit seed and "
                            "timing belongs in bench/, not src/");
      }
    }
  }

  // Iterating an unordered container visits elements in hash order, which
  // is implementation-defined: any iteration that feeds output, ordering,
  // or floating-point accumulation silently breaks bit-identity. Collect
  // the names declared with unordered types in this file, then flag
  // range-for loops and begin() walks over them. Keyed lookups stay fine.
  static const std::regex decl(R"(\bunordered_(?:map|set)\s*<.*>\s*[&*]?\s*([A-Za-z_]\w*))");
  std::set<std::string> unordered_names;
  for (const SourceLine& line : file.lines) {
    auto begin = std::sregex_iterator(line.code.begin(), line.code.end(), decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  for (const std::string& name : unordered_names) {
    // `.end()` alone is a find()-sentinel, not iteration: only range-for
    // and begin()-family walks visit hash order.
    const std::regex iteration(R"(for\s*\([^)]*:\s*)" + name + R"(\b|\b)" + name +
                               R"(\s*\.\s*(?:begin|cbegin|rbegin|crbegin)\s*\()");
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      if (std::regex_search(file.lines[i].code, iteration)) {
        reporter.report(file, i, "determinism",
                        "iteration over unordered container `" + name +
                            "` visits hash order, which is implementation-defined: "
                            "anything it feeds (output, accumulation, ordering) loses "
                            "bit-identity — iterate a sorted std::map/std::vector "
                            "instead, or keep the container lookup-only");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: serialization — persisted doubles go through util::format_shortest.

void rule_serialization(const SourceFile& file, const Config& config, Reporter& reporter) {
  bool serialized = false;
  for (const std::string& suffix : config.serialized) {
    if (suffix_match(file.path, suffix)) {
      serialized = true;
      break;
    }
  }
  if (!serialized) {
    return;
  }
  static const std::regex to_string(R"(\bstd::to_string\s*\()");
  static const std::regex precision(R"(\bsetprecision\b|\bstd::scientific\b|\bstd::fixed\b)");
  static const std::regex printf_float(R"(%[-+ #0-9.*]*l?[aefgAEFG])");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (std::regex_search(line.code, to_string)) {
      reporter.report(file, i, "serialization",
                      "std::to_string in a persisted-format writer: doubles must go "
                      "through util::format_shortest so serialize/parse round-trips "
                      "bit-exactly (std::to_string truncates to 6 digits); integral "
                      "arguments round-trip exactly under any formatting — allowlist "
                      "them stating the type");
    }
    if (std::regex_search(line.code, precision)) {
      reporter.report(file, i, "serialization",
                      "iostream precision formatting in a persisted-format writer: "
                      "a fixed digit count either truncates the double or spells it "
                      "unreadably — persisted doubles go through "
                      "util::format_shortest (shortest spelling that parses back "
                      "bit-identically)");
    }
    if (std::regex_search(line.literals, printf_float)) {
      reporter.report(file, i, "serialization",
                      "printf-style float conversion in a persisted-format writer: "
                      "persisted doubles go through util::format_shortest");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: errors — every throw raises photherm::Error (or a subclass).

void rule_errors(const SourceFile& file, Reporter& reporter) {
  static const std::regex throw_site(R"(\bthrow\b)");
  // `throw <qualified-id>(...)`: capture the final identifier of the
  // qualified name. Project error types all end in `Error` and derive from
  // photherm::Error, which is what keeps failure modes assertable.
  static const std::regex throw_expr(R"(\bthrow\s+(?:::)?(?:\w+\s*::\s*)*(\w+))");
  static const std::regex rethrow(R"(\bthrow\s*;)");
  static const std::regex process_exit(R"(\babort\s*\(|\bstd::exit\b|(?:^|[^\w.>:])exit\s*\()");

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (std::regex_search(code, process_exit)) {
      reporter.report(file, i, "errors",
                      "abort()/exit() is not an error path: throw photherm::Error "
                      "(or use PH_REQUIRE) so callers and the test suite can assert "
                      "on the failure mode");
    }
    if (!std::regex_search(code, throw_site) || std::regex_search(code, rethrow)) {
      continue;
    }
    // `throw` at end of line: join the next code lines so the thrown type
    // lands in the same buffer.
    std::string stmt = code;
    for (std::size_t j = i + 1; j < file.lines.size() && j < i + 3; ++j) {
      std::smatch m;
      if (std::regex_search(stmt, m, throw_expr)) {
        break;
      }
      stmt += " " + file.lines[j].code;
    }
    std::smatch m;
    const bool named = std::regex_search(stmt, m, throw_expr);
    const std::string type = named ? m[1].str() : "";
    const bool is_error_type = type.size() >= 5 && type.compare(type.size() - 5, 5, "Error") == 0;
    if (!is_error_type) {
      reporter.report(file, i, "errors",
                      "throw of `" + (type.empty() ? std::string("<unnamed>") : type) +
                          "`: every photherm failure raises photherm::Error or a "
                          "subclass (SpecError, SolverError, ...; via PH_REQUIRE "
                          "where it is a precondition) so failure modes stay "
                          "assertable");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

struct Rule {
  std::string name;
  std::string summary;
};

const std::vector<Rule>& rules() {
  static const std::vector<Rule> r = {
      {"ownership",
       "no raw pointer/reference members to CsrMatrix/LinearOperator/mesh objects — holders own "
       "their data"},
      {"determinism",
       "no wall clocks or ambient randomness; no iteration over unordered containers"},
      {"serialization",
       "persisted doubles go through util::format_shortest (scenario files, checkpoints, CSV)"},
      {"errors", "every throw raises photherm::Error or a subclass; no abort()/exit()"},
  };
  return r;
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

int usage(std::ostream& os, int code) {
  os << "usage: photherm_lint [--root DIR] [--config FILE] [--rule NAME ...]\n"
        "                     [--list-rules] PATH...\n"
        "Scans PATHs (files, or directories recursed for *.hpp/*.cpp, resolved\n"
        "against --root) for photherm invariant violations. Exit 0 when clean,\n"
        "2 when violations were found.\n";
  return code;
}

int run(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path config_path;
  std::set<std::string> enabled;
  std::vector<std::string> inputs;

  std::set<std::string> known_rules;
  for (const Rule& rule : rules()) {
    known_rules.insert(rule.name);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw Error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--rule") {
      const std::string name = value("--rule");
      if (known_rules.count(name) == 0) {
        throw Error("unknown rule `" + name + "`; see --list-rules");
      }
      enabled.insert(name);
    } else if (arg == "--list-rules") {
      for (const Rule& rule : rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "photherm_lint: unknown option `" << arg << "`\n";
      return usage(std::cerr, 1);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "photherm_lint: no paths to scan\n";
    return usage(std::cerr, 1);
  }
  if (enabled.empty()) {
    enabled = known_rules;
  }
  if (config_path.empty()) {
    config_path = root / "tools" / "photherm_lint.rules";
  } else if (config_path.is_relative()) {
    config_path = root / config_path;
  }
  const Config config = load_config(config_path, known_rules);

  // Expand inputs into a sorted, deduplicated file list: report order is
  // part of the tool's own determinism contract.
  std::set<std::string> to_scan;
  for (const std::string& input : inputs) {
    fs::path p = input;
    if (p.is_relative()) {
      p = root / p;
    }
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && scannable(entry.path())) {
          to_scan.insert(entry.path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      to_scan.insert(p.lexically_normal().string());
    } else {
      throw Error("no such file or directory: " + input);
    }
  }

  std::vector<Finding> findings;
  Reporter reporter(config, findings);
  std::size_t scanned = 0;
  for (const std::string& path : to_scan) {
    const std::string report_path =
        normalize(fs::path(path).lexically_proximate(root).generic_string());
    const SourceFile file = load_source(path, report_path);
    ++scanned;
    if (enabled.count("ownership")) {
      rule_ownership(file, reporter);
    }
    if (enabled.count("determinism")) {
      rule_determinism(file, reporter);
    }
    if (enabled.count("serialization")) {
      rule_serialization(file, config, reporter);
    }
    if (enabled.count("errors")) {
      rule_errors(file, reporter);
    }
  }

  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cout << "photherm_lint: " << scanned << " files, " << findings.size() << " violation"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "photherm_lint: " << e.what() << "\n";
    return 1;
  }
}
