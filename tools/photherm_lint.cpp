/// \file photherm_lint.cpp
/// \brief Thin CLI over the tools/lint analysis library.
///
/// photherm_lint enforces the project's cross-cutting invariants — the bug
/// classes the ordinary test suite is structurally bad at catching. The
/// analysis itself lives in tools/lint/ (tokenizer, config, rule families);
/// this file only parses arguments, expands the scan set, runs the enabled
/// rules over the once-lexed tree, and renders findings as plain reports,
/// GitHub workflow annotations (--github), or SARIF (--sarif).
///
/// Contract (unchanged since PR 7): findings print as
///   <path>:<line>: [<rule>] <message>
/// and the exit code is 0 when clean, 2 when violations were found, 1 on
/// usage/config errors. Suppression grammar: inline
/// `// ph-lint: allow(rule) reason` markers and per-file `allow` lines in
/// the config (see tools/photherm_lint.rules).

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/config.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

using photherm::Error;
using photherm::lint::Config;
using photherm::lint::Finding;
using photherm::lint::Reporter;
using photherm::lint::RuleInfo;
using photherm::lint::SourceFile;

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

/// Escape a value for a GitHub workflow command message.
std::string github_escape(const std::string& text, bool property) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += property ? "%3A" : std::string(1, c); break;
      case ',': out += property ? "%2C" : std::string(1, c); break;
      default: out += c; break;
    }
  }
  return out;
}

/// Escape a string for embedding in a JSON document.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

/// Minimal SARIF 2.1.0: one run, the rule registry as reportingDescriptors,
/// one result per finding. Enough for GitHub code scanning upload.
void write_sarif(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot write SARIF report to " + path);
  }
  out << "{\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"runs\": [{\n"
         "    \"tool\": {\"driver\": {\n"
         "      \"name\": \"photherm_lint\",\n"
         "      \"informationUri\": \"README.md\",\n"
         "      \"rules\": [\n";
  const std::vector<RuleInfo>& registry = photherm::lint::rules();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    out << "        {\"id\": \"" << json_escape(registry[i].name)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(registry[i].summary)
        << "\"}}" << (i + 1 < registry.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
         "    }},\n"
         "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
        << json_escape(f.path) << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n"
         "  }]\n"
         "}\n";
}

int usage(std::ostream& os, int code) {
  os << "usage: photherm_lint [--root DIR] [--config FILE] [--rule NAME ...]\n"
        "                     [--list-rules] [--github] [--sarif OUT] [--timings]\n"
        "                     PATH...\n"
        "Scans PATHs (files, or directories recursed for *.hpp/*.cpp, resolved\n"
        "against --root) for photherm invariant violations. Exit 0 when clean,\n"
        "2 when violations were found.\n"
        "  --github      also emit ::error workflow annotations per finding\n"
        "  --sarif OUT   also write a SARIF 2.1.0 report to OUT\n"
        "  --timings     print per-rule wall time after the summary\n";
  return code;
}

int run(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path config_path;
  std::set<std::string> enabled;
  std::vector<std::string> inputs;
  bool github = false;
  bool timings = false;
  std::string sarif_path;

  std::set<std::string> known_rules;
  for (const RuleInfo& rule : photherm::lint::rules()) {
    known_rules.insert(rule.name);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw Error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--rule") {
      const std::string name = value("--rule");
      if (known_rules.count(name) == 0) {
        throw Error("unknown rule `" + name + "`; see --list-rules");
      }
      enabled.insert(name);
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : photherm::lint::rules()) {
        std::cout << rule.name << ": " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--sarif") {
      sarif_path = value("--sarif");
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "photherm_lint: unknown option `" << arg << "`\n";
      return usage(std::cerr, 1);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "photherm_lint: no paths to scan\n";
    return usage(std::cerr, 1);
  }
  if (enabled.empty()) {
    enabled = known_rules;
  }
  if (config_path.empty()) {
    config_path = root / "tools" / "photherm_lint.rules";
  } else if (config_path.is_relative()) {
    config_path = root / config_path;
  }
  const Config config = photherm::lint::load_config(config_path.string(), known_rules);

  // Expand inputs into a sorted, deduplicated file list: report order is
  // part of the tool's own determinism contract.
  std::set<std::string> to_scan;
  for (const std::string& input : inputs) {
    fs::path p = input;
    if (p.is_relative()) {
      p = root / p;
    }
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && scannable(entry.path())) {
          to_scan.insert(entry.path().lexically_normal().string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      to_scan.insert(p.lexically_normal().string());
    } else {
      throw Error("no such file or directory: " + input);
    }
  }

  // Lex every file exactly once; all rule families share the token streams.
  std::vector<SourceFile> files;
  files.reserve(to_scan.size());
  for (const std::string& path : to_scan) {
    const std::string report_path =
        photherm::lint::normalize(fs::path(path).lexically_proximate(root).generic_string());
    files.push_back(photherm::lint::load_source(path, report_path));
  }

  std::vector<Finding> findings;
  Reporter reporter(config, findings);
  std::vector<std::pair<std::string, double>> rule_ms;
  for (const RuleInfo& rule : photherm::lint::rules()) {
    if (enabled.count(rule.name) == 0) {
      continue;
    }
    // ph-lint: allow(determinism) developer-facing wall time, never persisted
    const auto begin = std::chrono::steady_clock::now();
    photherm::lint::run_rule(rule.name, files, config, reporter);
    // ph-lint: allow(determinism) developer-facing wall time, never persisted
    const auto end = std::chrono::steady_clock::now();
    rule_ms.emplace_back(rule.name,
                         std::chrono::duration<double, std::milli>(end - begin).count());
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) {
      return a.path < b.path;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.rule < b.rule;
  });

  for (const Finding& f : findings) {
    std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  if (github) {
    for (const Finding& f : findings) {
      std::cout << "::error file=" << github_escape(f.path, true)
                << ",line=" << f.line << ",title=photherm_lint " << f.rule
                << "::" << github_escape("[" + f.rule + "] " + f.message, false) << "\n";
    }
  }
  if (!sarif_path.empty()) {
    write_sarif(sarif_path, findings);
  }
  std::cout << "photherm_lint: " << files.size() << " files, " << findings.size()
            << " violation" << (findings.size() == 1 ? "" : "s") << "\n";
  if (timings) {
    for (const auto& [name, ms] : rule_ms) {
      std::cout << "photherm_lint:   " << name << " " << ms << " ms\n";
    }
  }
  return findings.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "photherm_lint: " << e.what() << "\n";
    return 1;
  }
}
