/// photherm_report — the analysis half of the observability stack: turns
/// the artifacts photherm_cli and the bench binaries emit (metrics CSV,
/// Chrome trace-event JSON, Google-Benchmark-shaped JSON) into answers.
///
///   photherm_report summarize <metrics.csv|trace.json|bench.json> [--top N]
///       Roll-ups: manifest, non-zero counters with derived iters/solve,
///       timers sorted by total wall with p50/p90/p99, span roll-ups and
///       the top-k scenarios by wall time (traces), benchmark entries by
///       real_time (bench JSON).
///   photherm_report diff <baseline> <candidate> [--gate RULES]
///       Delta table over the two artifacts' scalar values (metric totals
///       for metrics CSVs, per-benchmark numeric fields for bench JSONs).
///       Refuses to compare artifacts whose manifests disagree on
///       build_type (a debug baseline is useless as a perf anchor — exit
///       2). With --gate, the rules file classifies every value:
///       deterministic counters gate exactly, wall times within a relative
///       tolerance; any violation exits 1 (the CI perf-regression gate).
///       Under GitHub Actions (GITHUB_ACTIONS set) violations and warnings
///       are also emitted as ::error::/::warning:: annotations.
///   photherm_report convergence <trace.json> [-o FILE]
///       Rebuild per-solve convergence histories from the solver residual
///       counter events (photherm_cli play --convergence --trace ...) as an
///       exact CSV: solver, tid, solve ordinal, iteration, residual.
///
/// Gate rules file: one rule per line, first match wins, `*` wildcards:
///
///   # deterministic counters: any drift fails the build
///   exact solver.*.iterations
///   fail  */cells 0.0
///   warn  *.wall 0.5        # relative tolerance, violations warn only
///   ignore solver.*.relative_residual
///
/// Values matched by no rule are informational (shown, never gated).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace {

using namespace photherm;

int usage(std::ostream& os, int exit_code) {
  os << "usage: photherm_report <command> [args]\n"
        "  summarize <metrics.csv|trace.json|bench.json> [--top N]\n"
        "                                         roll-ups and slowest spans\n"
        "  diff <baseline> <candidate> [--gate RULES]\n"
        "                                         delta table; --gate exits 1\n"
        "                                         on gated regressions\n"
        "  convergence <trace.json> [-o FILE]     per-solve residual CSV from\n"
        "                                         --convergence counter events\n"
        "Artifacts come from photherm_cli run|play --metrics/--trace and the\n"
        "bench binaries' --benchmark_format=json. diff refuses mismatched\n"
        "build types (regenerate the baseline instead). Exit codes: 0 ok,\n"
        "1 gated regression, 2 usage/error/build-type mismatch.\n";
  return exit_code;
}

// --- minimal JSON ----------------------------------------------------------
// Recursive-descent parser for the two JSON shapes this tool consumes (its
// own trace exports and Google-Benchmark output). Members keep insertion
// order; numbers parse via strtod so format_shortest values round-trip to
// identical doubles.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  double number_or(const std::string& key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string text_or(const std::string& key, const std::string& fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->text : fallback;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string context)
      : text_(text), context_(std::move(context)) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing content after the top-level value");
    return value;
  }

 private:
  void require(bool ok, const std::string& message) const {
    if (!ok) {
      std::ostringstream os;
      os << context_ << ": JSON parse error at byte " << pos_ << ": " << message;
      throw Error(os.str());
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    require(pos_ < text_.size() && text_[pos_] == ch,
            std::string("expected `") + ch + "`");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') {
        return out;
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char hex = text_[pos_++];
            unsigned digit = 0;
            if (hex >= '0' && hex <= '9') {
              digit = static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              digit = static_cast<unsigned>(hex - 'a') + 10;
            } else if (hex >= 'A' && hex <= 'F') {
              digit = static_cast<unsigned>(hex - 'A') + 10;
            } else {
              require(false, "invalid \\u escape digit");
            }
            code = code * 16 + digit;
          }
          // This tool only needs ASCII fidelity (its inputs escape control
          // characters); anything beyond is preserved as a placeholder.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          require(false, "unknown escape character");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    const char ch = peek();
    JsonValue value;
    if (ch == '{') {
      value.kind = JsonValue::Kind::kObject;
      expect('{');
      skip_ws();
      if (peek() == '}') {
        expect('}');
        return value;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        value.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          expect(',');
          continue;
        }
        expect('}');
        return value;
      }
    }
    if (ch == '[') {
      value.kind = JsonValue::Kind::kArray;
      expect('[');
      skip_ws();
      if (peek() == ']') {
        expect(']');
        return value;
      }
      while (true) {
        value.items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          expect(',');
          continue;
        }
        expect(']');
        return value;
      }
    }
    if (ch == '"') {
      value.kind = JsonValue::Kind::kString;
      value.text = parse_string();
      return value;
    }
    if (consume_keyword("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_keyword("false")) {
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (consume_keyword("null")) {
      return value;
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(start, &end);
    require(end != start, "expected a JSON value");
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return value;
  }

  const std::string& text_;
  std::string context_;
  std::size_t pos_ = 0;
};

// --- artifact loading ------------------------------------------------------

enum class ArtifactType { kMetrics, kBench, kTrace };

const char* artifact_type_name(ArtifactType type) {
  switch (type) {
    case ArtifactType::kMetrics:
      return "metrics CSV";
    case ArtifactType::kBench:
      return "bench JSON";
    default:
      return "trace JSON";
  }
}

struct MetricRow {
  std::string kind;
  double count = 0.0;
  double total = 0.0;
  std::string min, max, p50, p90, p99;  ///< raw cells (may be empty)
};

struct Artifact {
  ArtifactType type = ArtifactType::kMetrics;
  std::string path;
  /// Provenance: metrics-CSV `# key=value` comments, bench-JSON context
  /// (with photherm_build_type/library_build_type folded to "build_type"),
  /// trace-JSON "manifest" object.
  std::map<std::string, std::string> manifest;
  /// The scalars `diff` compares: metric name -> total for metrics CSVs,
  /// "<benchmark>/<field>" for every numeric per-benchmark field of a
  /// bench JSON.
  std::map<std::string, double> values;
  std::map<std::string, MetricRow> metrics;  ///< metrics CSVs only
  JsonValue json;                            ///< bench/trace only
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  PH_REQUIRE(in.good(), "cannot open artifact: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  PH_REQUIRE(!in.bad(), "failed while reading artifact: " + path);
  return os.str();
}

double parse_cell_number(const std::string& cell, const std::string& context) {
  const std::string text = trim(cell);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  PH_REQUIRE(!text.empty() && end == text.c_str() + text.size(),
             context + ": expected a number, got `" + cell + "`");
  return value;
}

void load_metrics_csv(Artifact& artifact, const std::string& content) {
  artifact.type = ArtifactType::kMetrics;
  std::map<std::string, std::size_t> columns;
  for (const std::string& raw_line : split(content, '\n')) {
    const std::string line = trim(raw_line);
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // Manifest comment block: `# key=value` (the `# photherm-manifest v1`
      // marker has no `=` and is skipped).
      const std::size_t eq = line.find('=');
      if (eq != std::string::npos) {
        artifact.manifest[trim(line.substr(1, eq - 1))] = trim(line.substr(eq + 1));
      }
      continue;
    }
    const std::vector<std::string> cells = split(line, ',');
    if (columns.empty()) {
      PH_REQUIRE(!cells.empty() && cells[0] == "metric",
                 artifact.path + ": not a photherm metrics CSV (header must start "
                                 "with `metric`)");
      for (std::size_t i = 0; i < cells.size(); ++i) {
        columns[cells[i]] = i;
      }
      continue;
    }
    const auto cell_text = [&](const char* column) -> std::string {
      const auto it = columns.find(column);
      return it != columns.end() && it->second < cells.size() ? cells[it->second]
                                                              : std::string();
    };
    MetricRow row;
    row.kind = cell_text("kind");
    row.count = parse_cell_number(cell_text("count"), artifact.path + ": " + cells[0]);
    row.total = parse_cell_number(cell_text("total"), artifact.path + ": " + cells[0]);
    row.min = cell_text("min");
    row.max = cell_text("max");
    row.p50 = cell_text("p50");
    row.p90 = cell_text("p90");
    row.p99 = cell_text("p99");
    artifact.values[cells[0]] = row.total;
    artifact.metrics[cells[0]] = std::move(row);
  }
  PH_REQUIRE(!columns.empty(), artifact.path + ": no metrics header found");
}

void load_bench_json(Artifact& artifact) {
  artifact.type = ArtifactType::kBench;
  if (const JsonValue* context = artifact.json.find("context")) {
    for (const auto& [key, value] : context->members) {
      if (value.kind == JsonValue::Kind::kString) {
        artifact.manifest[key] = value.text;
      } else if (value.kind == JsonValue::Kind::kNumber) {
        artifact.manifest[key] = format_shortest(value.number);
      } else if (value.kind == JsonValue::Kind::kBool) {
        artifact.manifest[key] = value.boolean ? "true" : "false";
      }
    }
    // Our bench binaries stamp the build type they were compiled at
    // (photherm_build_type); the library_build_type fallback is how a stock
    // google-benchmark reports its *own* build. Fold to one key so diff's
    // build-type refusal sees whichever is most truthful.
    const std::string own = artifact.manifest.count("photherm_build_type")
                                ? artifact.manifest.at("photherm_build_type")
                                : std::string();
    if (!own.empty()) {
      artifact.manifest["build_type"] = own;
    } else if (artifact.manifest.count("library_build_type")) {
      artifact.manifest["build_type"] = artifact.manifest.at("library_build_type");
    }
  }
  const JsonValue* benchmarks = artifact.json.find("benchmarks");
  PH_REQUIRE(benchmarks != nullptr && benchmarks->kind == JsonValue::Kind::kArray,
             artifact.path + ": bench JSON has no `benchmarks` array");
  // Structural gbench fields that describe the run layout rather than a
  // measurement; diffing them would only report that the file format grew.
  const std::vector<std::string> skip = {"family_index", "per_family_instance_index",
                                         "repetitions", "repetition_index", "threads"};
  for (const JsonValue& bench : benchmarks->items) {
    const std::string name = bench.text_or("name", "");
    PH_REQUIRE(!name.empty(), artifact.path + ": benchmark entry without a name");
    for (const auto& [key, value] : bench.members) {
      if (value.kind != JsonValue::Kind::kNumber) {
        continue;
      }
      bool skipped = false;
      for (const std::string& s : skip) {
        skipped = skipped || key == s;
      }
      if (!skipped) {
        artifact.values[name + "/" + key] = value.number;
      }
    }
  }
}

Artifact load_artifact(const std::string& path) {
  Artifact artifact;
  artifact.path = path;
  const std::string content = read_file(path);
  std::size_t first = 0;
  while (first < content.size() &&
         (content[first] == ' ' || content[first] == '\n' || content[first] == '\r' ||
          content[first] == '\t')) {
    ++first;
  }
  if (first < content.size() && content[first] == '{') {
    artifact.json = JsonParser(content, path).parse();
    if (artifact.json.find("traceEvents") != nullptr) {
      artifact.type = ArtifactType::kTrace;
      if (const JsonValue* manifest = artifact.json.find("manifest")) {
        for (const auto& [key, value] : manifest->members) {
          if (value.kind == JsonValue::Kind::kString) {
            artifact.manifest[key] = value.text;
          }
        }
      }
    } else {
      load_bench_json(artifact);
    }
    return artifact;
  }
  load_metrics_csv(artifact, content);
  return artifact;
}

// --- gate rules ------------------------------------------------------------

struct GateRule {
  enum class Action { kExact, kFail, kWarn, kIgnore };
  Action action = Action::kExact;
  std::string glob;
  double tolerance = 0.0;  ///< relative, for kFail/kWarn
};

/// `*`-wildcard match (two-pointer with star backtracking); no other
/// metacharacters.
bool glob_match(const std::string& pattern, const std::string& text) {
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string::npos;
  std::size_t mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p;
      ++p;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      ++mark;
      t = mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::vector<GateRule> load_gate_rules(const std::string& path) {
  std::ifstream in(path);
  PH_REQUIRE(in.good(), "cannot open gate rules file: " + path);
  std::vector<GateRule> rules;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) {
      continue;
    }
    std::istringstream tokens(line);
    std::string action;
    GateRule rule;
    tokens >> action >> rule.glob;
    std::ostringstream context;
    context << path << ":" << line_no;
    PH_REQUIRE(!rule.glob.empty(), context.str() + ": rule needs `<action> <glob>`");
    if (action == "exact") {
      rule.action = GateRule::Action::kExact;
    } else if (action == "fail" || action == "warn") {
      rule.action = action == "fail" ? GateRule::Action::kFail : GateRule::Action::kWarn;
      std::string tol;
      tokens >> tol;
      PH_REQUIRE(!tol.empty(), context.str() + ": `" + action +
                                   "` needs a relative tolerance (e.g. `warn *.wall 0.5`)");
      rule.tolerance = parse_double(tol, context.str());
    } else if (action == "ignore") {
      rule.action = GateRule::Action::kIgnore;
    } else {
      PH_REQUIRE(false, context.str() + ": unknown action `" + action +
                            "` (expected exact|fail|warn|ignore)");
    }
    std::string excess;
    tokens >> excess;
    PH_REQUIRE(excess.empty(), context.str() + ": trailing tokens after the rule");
    rules.push_back(std::move(rule));
  }
  return rules;
}

const GateRule* match_rule(const std::vector<GateRule>& rules, const std::string& key) {
  for (const GateRule& rule : rules) {
    if (glob_match(rule.glob, key)) {
      return &rule;
    }
  }
  return nullptr;
}

// --- diff ------------------------------------------------------------------

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  std::optional<std::string> gate_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--gate") {
      PH_REQUIRE(i + 1 < args.size(), "--gate needs a rules file path");
      gate_path = args[++i];
    } else {
      paths.push_back(args[i]);
    }
  }
  PH_REQUIRE(paths.size() == 2, "diff takes exactly two artifact paths");

  const Artifact base = load_artifact(paths[0]);
  const Artifact cand = load_artifact(paths[1]);
  PH_REQUIRE(base.type != ArtifactType::kTrace && cand.type != ArtifactType::kTrace,
             "diff compares metrics CSVs or bench JSONs; trace spans carry no "
             "stable scalars (use `summarize` on traces)");
  PH_REQUIRE(base.type == cand.type,
             std::string("cannot diff a ") + artifact_type_name(base.type) +
                 " against a " + artifact_type_name(cand.type));

  // A debug-vs-release comparison is never a perf signal — refuse instead
  // of producing a plausible-looking table (exit 2, distinct from the
  // gate's exit 1).
  const auto base_bt = base.manifest.find("build_type");
  const auto cand_bt = cand.manifest.find("build_type");
  if (base_bt != base.manifest.end() && cand_bt != cand.manifest.end() &&
      base_bt->second != cand_bt->second) {
    std::cerr << "photherm_report: refusing to compare a `" << base_bt->second
              << "` baseline (" << base.path << ") against a `" << cand_bt->second
              << "` candidate (" << cand.path
              << "); regenerate the baseline from the same build type\n";
    return 2;
  }

  const std::vector<GateRule> rules =
      gate_path ? load_gate_rules(*gate_path) : std::vector<GateRule>{};

  // Manifest context first: the keys whose values changed between the runs.
  for (const auto& [key, value] : base.manifest) {
    const auto it = cand.manifest.find(key);
    if (it != cand.manifest.end() && it->second != value) {
      std::cout << "manifest: " << key << ": " << value << " -> " << it->second << "\n";
    }
  }

  std::map<std::string, char> keys;
  for (const auto& [key, value] : base.values) {
    keys[key] = 'b';
  }
  for (const auto& [key, value] : cand.values) {
    keys.try_emplace(key, 'c');
  }

  Table table({"value", "baseline", "candidate", "delta", "rel", "verdict"});
  table.set_exact();
  std::size_t compared = 0;
  std::size_t identical = 0;
  std::size_t changed = 0;
  std::size_t regressions = 0;
  std::size_t warnings = 0;
  std::vector<std::string> annotations;
  const bool github = std::getenv("GITHUB_ACTIONS") != nullptr;

  for (const auto& [key, origin] : keys) {
    const GateRule* rule = match_rule(rules, key);
    const GateRule::Action action =
        rule != nullptr ? rule->action : GateRule::Action::kIgnore;
    if (rule != nullptr && action == GateRule::Action::kIgnore) {
      continue;
    }
    const auto base_it = base.values.find(key);
    const auto cand_it = cand.values.find(key);
    if (base_it == base.values.end() || cand_it == cand.values.end()) {
      const bool in_base = base_it != base.values.end();
      const bool gated =
          action == GateRule::Action::kExact || action == GateRule::Action::kFail;
      const char* verdict = rule == nullptr ? "info" : gated ? "REGRESS" : "warn";
      table.add_row({key, in_base ? TableCell(base_it->second) : TableCell(std::string("-")),
                     in_base ? TableCell(std::string("-")) : TableCell(cand_it->second),
                     std::string("-"), std::string("-"), std::string(verdict)});
      if (rule != nullptr && gated) {
        ++regressions;
        std::ostringstream os;
        os << "::error::photherm_report: `" << key << "` present only in the "
           << (in_base ? "baseline" : "candidate");
        annotations.push_back(os.str());
      } else if (rule != nullptr) {
        ++warnings;
      }
      continue;
    }

    ++compared;
    const double b = base_it->second;
    const double c = cand_it->second;
    if (b == c) {
      ++identical;
      continue;
    }
    ++changed;
    const double delta = c - b;
    const bool has_rel = b != 0.0;
    const double rel = has_rel ? delta / std::abs(b) : 0.0;

    const char* verdict = "info";
    if (action == GateRule::Action::kExact) {
      verdict = "REGRESS";
      ++regressions;
      std::ostringstream os;
      os << "::error::photherm_report: `" << key << "` changed exactly-gated value: "
         << format_shortest(b) << " -> " << format_shortest(c);
      annotations.push_back(os.str());
    } else if (action == GateRule::Action::kFail || action == GateRule::Action::kWarn) {
      const bool violated = !has_rel || std::abs(rel) > rule->tolerance;
      if (violated && action == GateRule::Action::kFail) {
        verdict = "REGRESS";
        ++regressions;
        std::ostringstream os;
        os << "::error::photherm_report: `" << key << "` drifted "
           << format_shortest(rel * 100.0) << "% (> " << format_shortest(rule->tolerance * 100.0)
           << "% tolerance): " << format_shortest(b) << " -> " << format_shortest(c);
        annotations.push_back(os.str());
      } else if (violated) {
        verdict = "warn";
        ++warnings;
        std::ostringstream os;
        os << "::warning::photherm_report: `" << key << "` drifted "
           << format_shortest(rel * 100.0) << "% (> " << format_shortest(rule->tolerance * 100.0)
           << "% tolerance): " << format_shortest(b) << " -> " << format_shortest(c);
        annotations.push_back(os.str());
      } else {
        verdict = "ok";
      }
    }
    table.add_row({key, b, c, delta,
                   has_rel ? TableCell(rel) : TableCell(std::string("-")),
                   std::string(verdict)});
  }

  if (table.row_count() > 0) {
    print_table(std::cout, "diff: " + base.path + " -> " + cand.path, table);
  }
  std::cout << "diff: compared " << compared << " values: " << identical << " identical, "
            << changed << " changed, " << warnings << " warnings, " << regressions
            << " regressions\n";
  if (github) {
    for (const std::string& annotation : annotations) {
      std::cout << annotation << "\n";
    }
  }
  return regressions > 0 ? 1 : 0;
}

// --- summarize -------------------------------------------------------------

void print_manifest(const std::map<std::string, std::string>& manifest) {
  if (manifest.empty()) {
    return;
  }
  std::cout << "manifest:\n";
  for (const auto& [key, value] : manifest) {
    std::cout << "  " << key << "=" << value << "\n";
  }
}

void summarize_metrics(const Artifact& artifact, std::size_t top) {
  print_manifest(artifact.manifest);

  Table counters({"counter", "count", "total"});
  counters.set_exact();
  std::size_t zero_counters = 0;
  for (const auto& [name, row] : artifact.metrics) {
    if (row.kind != "counter") {
      continue;
    }
    if (row.total == 0.0) {
      ++zero_counters;
      continue;
    }
    counters.add_row({name, row.count, row.total});
  }
  if (counters.row_count() > 0) {
    print_table(std::cout, "counters (non-zero)", counters);
  }
  if (zero_counters > 0) {
    std::cout << zero_counters << " counters at zero suppressed\n";
  }

  // Derived solver economics: the first question a report answers.
  for (const std::string solver : {"conjugate_gradient", "bicgstab", "gauss_seidel"}) {
    const auto solves = artifact.metrics.find("solver." + solver + ".solves");
    const auto iters = artifact.metrics.find("solver." + solver + ".iterations");
    if (solves != artifact.metrics.end() && iters != artifact.metrics.end() &&
        solves->second.total > 0.0) {
      std::cout << "solver." << solver << ": " << iters->second.total << " iterations / "
                << solves->second.total << " solves = "
                << iters->second.total / solves->second.total << " iters/solve\n";
    }
  }

  // Timers by total wall, slowest first; durations are nanoseconds in the
  // CSV, shown in milliseconds.
  std::vector<std::pair<double, std::string>> by_total;
  for (const auto& [name, row] : artifact.metrics) {
    if (row.kind == "timer" && row.count > 0.0) {
      by_total.emplace_back(row.total, name);
    }
  }
  std::sort(by_total.begin(), by_total.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Table timers({"timer", "count", "total ms", "mean ms", "p50 ns", "p90 ns", "p99 ns"});
  for (std::size_t i = 0; i < by_total.size() && i < top; ++i) {
    const MetricRow& row = artifact.metrics.at(by_total[i].second);
    timers.add_row({by_total[i].second, row.count, row.total / 1e6,
                    row.total / 1e6 / row.count, row.p50, row.p90, row.p99});
  }
  if (timers.row_count() > 0) {
    print_table(std::cout, "timers by total wall", timers);
  }

  Table gauges({"gauge", "count", "mean", "min", "max"});
  for (const auto& [name, row] : artifact.metrics) {
    if (row.kind == "gauge" && row.count > 0.0) {
      gauges.add_row({name, row.count, row.total / row.count, row.min, row.max});
    }
  }
  if (gauges.row_count() > 0) {
    print_table(std::cout, "gauges", gauges);
  }
}

void summarize_trace(const Artifact& artifact, std::size_t top) {
  print_manifest(artifact.manifest);
  const JsonValue* events = artifact.json.find("traceEvents");
  PH_REQUIRE(events != nullptr && events->kind == JsonValue::Kind::kArray,
             artifact.path + ": trace has no traceEvents array");

  struct SpanStats {
    double count = 0.0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, SpanStats> spans;
  std::map<std::string, double> scenarios;  ///< detail -> total us
  std::map<std::string, double> counter_samples;
  std::size_t instants = 0;
  for (const JsonValue& event : events->items) {
    const std::string ph = event.text_or("ph", "");
    const std::string name = event.text_or("name", "");
    if (ph == "X") {
      const double dur = event.number_or("dur", 0.0);
      SpanStats& stats = spans[name];
      stats.count += 1.0;
      stats.total_us += dur;
      stats.max_us = std::max(stats.max_us, dur);
      if (const JsonValue* event_args = event.find("args")) {
        const std::string detail = event_args->text_or("detail", "");
        if (!detail.empty() && name.size() > 9 &&
            name.compare(name.size() - 9, 9, ".scenario") == 0) {
          scenarios[detail] += dur;
        }
      }
    } else if (ph == "C") {
      counter_samples[name] += 1.0;
    } else if (ph == "i") {
      ++instants;
    }
  }

  std::vector<std::pair<double, std::string>> by_total;
  for (const auto& [name, stats] : spans) {
    by_total.emplace_back(stats.total_us, name);
  }
  std::sort(by_total.begin(), by_total.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Table span_table({"span", "count", "total ms", "mean ms", "max ms"});
  for (std::size_t i = 0; i < by_total.size() && i < top; ++i) {
    const SpanStats& stats = spans.at(by_total[i].second);
    span_table.add_row({by_total[i].second, stats.count, stats.total_us / 1e3,
                        stats.total_us / 1e3 / stats.count, stats.max_us / 1e3});
  }
  if (span_table.row_count() > 0) {
    print_table(std::cout, "spans by total wall", span_table);
  }

  std::vector<std::pair<double, std::string>> hot;
  for (const auto& [detail, total] : scenarios) {
    hot.emplace_back(total, detail);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
  Table hot_table({"scenario", "wall ms"});
  for (std::size_t i = 0; i < hot.size() && i < top; ++i) {
    hot_table.add_row({hot[i].second, hot[i].first / 1e3});
  }
  if (hot_table.row_count() > 0) {
    print_table(std::cout, "top scenarios by wall", hot_table);
  }

  for (const auto& [name, samples] : counter_samples) {
    std::cout << "counter track `" << name << "`: " << samples
              << " samples (rebuild per-solve series with `photherm_report convergence`)\n";
  }
  if (instants > 0) {
    std::cout << instants << " instant events\n";
  }
}

void summarize_bench(const Artifact& artifact, std::size_t top) {
  print_manifest(artifact.manifest);
  const JsonValue* benchmarks = artifact.json.find("benchmarks");
  std::vector<std::pair<double, const JsonValue*>> by_time;
  for (const JsonValue& bench : benchmarks->items) {
    by_time.emplace_back(bench.number_or("real_time", 0.0), &bench);
  }
  std::sort(by_time.begin(), by_time.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  Table table({"benchmark", "real_time", "cpu_time", "unit", "label"});
  for (std::size_t i = 0; i < by_time.size() && i < top; ++i) {
    const JsonValue& bench = *by_time[i].second;
    table.add_row({bench.text_or("name", ""), bench.number_or("real_time", 0.0),
                   bench.number_or("cpu_time", 0.0), bench.text_or("time_unit", ""),
                   bench.text_or("label", "")});
  }
  print_table(std::cout, "benchmarks by real_time", table);
  std::cout << benchmarks->items.size() << " benchmark entries\n";
}

int cmd_summarize(const std::vector<std::string>& args) {
  std::optional<std::string> path;
  std::size_t top = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      PH_REQUIRE(i + 1 < args.size(), "--top needs a count");
      top = static_cast<std::size_t>(parse_uint(args[++i], "--top"));
      PH_REQUIRE(top > 0, "--top must be positive");
    } else {
      PH_REQUIRE(!path, "summarize takes exactly one artifact path");
      path = args[i];
    }
  }
  PH_REQUIRE(path, "summarize needs an artifact path");
  const Artifact artifact = load_artifact(*path);
  switch (artifact.type) {
    case ArtifactType::kMetrics:
      summarize_metrics(artifact, top);
      break;
    case ArtifactType::kTrace:
      summarize_trace(artifact, top);
      break;
    case ArtifactType::kBench:
      summarize_bench(artifact, top);
      break;
  }
  return 0;
}

// --- convergence -----------------------------------------------------------

int cmd_convergence(const std::vector<std::string>& args) {
  std::optional<std::string> path;
  std::optional<std::string> out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" || args[i] == "--out") {
      PH_REQUIRE(i + 1 < args.size(), args[i] + " needs a file path");
      out_path = args[++i];
    } else {
      PH_REQUIRE(!path, "convergence takes exactly one trace path");
      path = args[i];
    }
  }
  PH_REQUIRE(path, "convergence needs a trace.json path");
  const Artifact artifact = load_artifact(*path);
  PH_REQUIRE(artifact.type == ArtifactType::kTrace,
             *path + ": convergence needs a trace JSON (photherm_cli play "
                     "--convergence --trace FILE)");
  const JsonValue* events = artifact.json.find("traceEvents");

  // Counter events arrive grouped per thread in chronological order; a new
  // solve starts whenever the iteration ordinal resets on its
  // (solver, thread) track.
  struct TrackState {
    double last_iteration = -1.0;
    double solve = 0.0;
  };
  std::map<std::pair<std::string, double>, TrackState> tracks;
  Table table({"solver", "tid", "solve", "iteration", "residual"});
  table.set_exact();
  for (const JsonValue& event : events->items) {
    if (event.text_or("ph", "") != "C") {
      continue;
    }
    const JsonValue* event_args = event.find("args");
    if (event_args == nullptr) {
      continue;
    }
    const std::string name = event.text_or("name", "");
    const double tid = event.number_or("tid", 0.0);
    const double iteration = event_args->number_or("iteration", 0.0);
    const double residual = event_args->number_or("value", 0.0);
    TrackState& track = tracks[{name, tid}];
    if (iteration <= track.last_iteration) {
      track.solve += 1.0;
    }
    track.last_iteration = iteration;
    table.add_row({name, tid, track.solve, iteration, residual});
  }
  if (table.row_count() == 0) {
    std::cerr << "photherm_report: no counter events in " << *path
              << " (record them with photherm_cli play --convergence --trace FILE)\n";
  }
  if (out_path) {
    table.write_csv(*out_path);
    std::cerr << "wrote " << table.row_count() << " convergence rows to " << *out_path
              << "\n";
  } else {
    std::cout << table.to_csv();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "-h" || args[0] == "--help" || args[0] == "help") {
    return usage(args.empty() ? std::cerr : std::cout, args.empty() ? 2 : 0);
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "summarize") {
      return cmd_summarize(rest);
    }
    if (command == "diff") {
      return cmd_diff(rest);
    }
    if (command == "convergence") {
      return cmd_convergence(rest);
    }
    std::cerr << "photherm_report: unknown command `" << command << "`\n";
    return usage(std::cerr, 2);
  } catch (const photherm::Error& e) {
    std::cerr << "photherm_report: " << e.what() << "\n";
    return 2;
  }
}
