/// \file rules_structural.cpp
/// \brief The cross-line, token-based rule families: layering, concurrency,
/// lifetime, and telemetry. These run over the comment/string-free token
/// stream (plus the recorded include directives), so they see through line
/// breaks, comments, and literals that defeat line-regex matching.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace photherm::lint {

namespace {

// ---------------------------------------------------------------------------
// token-stream helpers

bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == Token::Kind::kIdentifier; }

/// Index of the token matching the opener at `open` (one of `(`/`[`/`{`),
/// or tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& o = tokens[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], o.c_str())) {
      ++depth;
    } else if (is_punct(tokens[i], c.c_str())) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return tokens.size();
}

/// Index of the `[` matching the `]` at `close`, or npos when unbalanced.
std::size_t match_backward(const std::vector<Token>& tokens, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(tokens[i], "]")) {
      ++depth;
    } else if (is_punct(tokens[i], "[")) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// layering

/// The module a scanned file belongs to: an explicit `module` assignment
/// from the config wins; otherwise `src/<m>/...` maps to `m` and
/// `tools/...` to `tools`. Files outside both (tests, bench, examples)
/// have no module and are not layer-checked.
std::string module_of(const SourceFile& file, const Config& config) {
  for (const auto& [layer, suffix] : config.modules) {
    if (suffix_match(file.path, suffix)) {
      return layer;
    }
  }
  const std::string p = normalize(file.path);
  if (p.compare(0, 4, "src/") == 0) {
    const std::size_t slash = p.find('/', 4);
    if (slash != std::string::npos) {
      return p.substr(4, slash - 4);
    }
    return "";
  }
  if (p.compare(0, 6, "tools/") == 0) {
    return "tools";
  }
  return "";
}

// ---------------------------------------------------------------------------
// concurrency

/// Entry points whose inline lambda arguments run concurrently.
bool parallel_entry(const std::string& name) {
  return name == "parallel_for" || name == "parallel_reduce" || name == "submit";
}

/// Statement keywords that can directly precede an identifier without
/// declaring it (`return x;`, `delete p;`, ...).
bool statement_keyword(const std::string& id) {
  static const std::set<std::string> kKeywords = {
      "return", "else",     "throw",     "case",     "goto",  "new",
      "delete", "sizeof",   "operator",  "co_await", "co_return", "co_yield",
  };
  return kKeywords.count(id) != 0;
}

/// Identifiers that can never be a declared variable name.
bool reserved_name(const std::string& id) {
  static const std::set<std::string> kReserved = {
      "if",     "while",  "for",     "do",       "switch",   "return",  "break",
      "else",   "case",   "default", "continue", "goto",     "new",     "delete",
      "sizeof", "throw",  "try",     "catch",    "operator", "this",    "true",
      "false",  "nullptr", "const",  "mutable",  "noexcept", "static",  "auto",
  };
  return kReserved.count(id) != 0;
}

/// One inline lambda found inside a parallel entry-point call.
struct Lambda {
  bool default_by_ref = false;
  std::set<std::string> by_ref;    ///< explicitly &-captured names
  std::set<std::string> by_value;  ///< explicitly value-captured names
  std::size_t body_open = 0;       ///< index of the body `{`
  std::size_t body_close = 0;      ///< index of the matching `}`
  std::set<std::string> locals;    ///< params + body-declared names
};

/// Parse the capture list between `[` at `open` and its matching `]`.
void parse_captures(const std::vector<Token>& tokens, std::size_t open, std::size_t close,
                    Lambda& lambda) {
  // Split on top-level commas; init-capture expressions may nest parens.
  std::size_t item = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i <= close; ++i) {
    if (is_punct(tokens[i], "(") || is_punct(tokens[i], "[") || is_punct(tokens[i], "{")) {
      ++depth;
    } else if (is_punct(tokens[i], ")") || is_punct(tokens[i], "}") ||
               (is_punct(tokens[i], "]") && i != close)) {
      --depth;
    }
    if ((is_punct(tokens[i], ",") && depth == 0) || i == close) {
      if (item < i) {
        const Token& first = tokens[item];
        if (is_punct(first, "&")) {
          if (item + 1 >= i) {
            lambda.default_by_ref = true;  // bare [&]
          } else if (is_ident(tokens[item + 1]) && tokens[item + 1].text != "this") {
            lambda.by_ref.insert(tokens[item + 1].text);
          }
        } else if (is_ident(first) && first.text != "this") {
          // `x`, `x = expr`: either way the lambda owns the binding.
          lambda.by_value.insert(first.text);
        }
        // `this`, `*this`, `=` (default copy): nothing shared by reference.
      }
      item = i + 1;
    }
  }
}

/// Collect parameter names: the last identifier of each comma-separated
/// declarator inside the parens.
void parse_params(const std::vector<Token>& tokens, std::size_t open, std::size_t close,
                  Lambda& lambda) {
  int depth = 0;
  std::string last_ident;
  for (std::size_t i = open + 1; i <= close; ++i) {
    if (is_punct(tokens[i], "(") || is_punct(tokens[i], "<") || is_punct(tokens[i], "{")) {
      ++depth;
    } else if (is_punct(tokens[i], ")") || is_punct(tokens[i], ">") ||
               is_punct(tokens[i], "}")) {
      --depth;
    } else if (is_punct(tokens[i], ">>")) {
      depth -= 2;
    }
    if ((is_punct(tokens[i], ",") && depth == 0) || i == close) {
      if (!last_ident.empty() && !reserved_name(last_ident)) {
        lambda.locals.insert(last_ident);
      }
      last_ident.clear();
    } else if (is_ident(tokens[i]) && depth == 0) {
      last_ident = tokens[i].text;
    }
  }
}

/// Collect names declared inside the body: `Type name` followed by
/// `;`/`=`/`(`/`{`/`:`/`,`, plus structured bindings `auto [a, b]`.
void collect_locals(const std::vector<Token>& tokens, Lambda& lambda) {
  for (std::size_t i = lambda.body_open + 1; i < lambda.body_close; ++i) {
    const Token& t = tokens[i];
    if (!is_ident(t)) {
      continue;
    }
    if (t.text == "auto" && i + 1 < lambda.body_close) {
      // `auto [a, b] = ...` / `auto& [a, b] : ...` structured bindings.
      std::size_t j = i + 1;
      while (j < lambda.body_close &&
             (is_punct(tokens[j], "&") || is_punct(tokens[j], "&&") ||
              (is_ident(tokens[j]) && tokens[j].text == "const"))) {
        ++j;
      }
      if (j < lambda.body_close && is_punct(tokens[j], "[")) {
        const std::size_t end = match_forward(tokens, j);
        for (std::size_t k = j + 1; k < end && k < lambda.body_close; ++k) {
          if (is_ident(tokens[k])) {
            lambda.locals.insert(tokens[k].text);
          }
        }
      }
      continue;
    }
    if (reserved_name(t.text) || i == lambda.body_open + 1 || i + 1 >= lambda.body_close) {
      continue;
    }
    const Token& prev = tokens[i - 1];
    const Token& next = tokens[i + 1];
    const bool declarator_before =
        (is_ident(prev) && !statement_keyword(prev.text)) || is_punct(prev, ">") ||
        is_punct(prev, "&") || is_punct(prev, "&&") || is_punct(prev, "*");
    const bool declarator_after = is_punct(next, ";") || is_punct(next, "=") ||
                                  is_punct(next, "(") || is_punct(next, "{") ||
                                  is_punct(next, ":") || is_punct(next, ",");
    if (declarator_before && declarator_after) {
      lambda.locals.insert(t.text);
    }
  }
}

/// Walk the lvalue postfix chain ending at `j` backwards. Returns the base
/// identifier ("" when the shape is unrecognized) and sets `partitioned`
/// when any subscript along the chain names a lambda-local.
std::string lvalue_base(const std::vector<Token>& tokens, std::size_t j, const Lambda& lambda,
                        bool& partitioned) {
  while (true) {
    if (is_punct(tokens[j], "]")) {
      const std::size_t open = match_backward(tokens, j);
      if (open == std::string::npos || open == 0) {
        return "";
      }
      for (std::size_t k = open + 1; k < j; ++k) {
        if (is_ident(tokens[k]) && lambda.locals.count(tokens[k].text) != 0) {
          partitioned = true;
        }
      }
      j = open - 1;
      continue;
    }
    if (is_ident(tokens[j])) {
      if (j >= 2 && (is_punct(tokens[j - 1], ".") || is_punct(tokens[j - 1], "->"))) {
        j -= 2;
        continue;
      }
      // A base directly after `[` is a capture or subscript head, not a
      // statement lvalue.
      if (j >= 1 && is_punct(tokens[j - 1], "[")) {
        return "";
      }
      return tokens[j].text;
    }
    return "";
  }
}

bool write_op(const Token& t) {
  static const std::set<std::string> kOps = {"=",  "+=", "-=",  "*=",  "/=", "%=",
                                             "&=", "|=", "^=",  "<<=", ">>="};
  return t.kind == Token::Kind::kPunct && kOps.count(t.text) != 0;
}

// ---------------------------------------------------------------------------
// lifetime

bool guarded_type(const std::string& id) {
  static const std::set<std::string> kGuarded = {
      "CsrMatrix",        "LinearOperator", "StencilOperator7", "Preconditioner",
      "RectilinearMesh",  "ThermalField",   "Axis",
  };
  return kGuarded.count(id) != 0;
}

bool container_name(const std::string& id) {
  static const std::set<std::string> kContainers = {
      "vector", "map",   "unordered_map", "set",   "unordered_set", "multimap",
      "multiset", "deque", "list",  "forward_list",  "array", "span",
      "pair",   "tuple", "optional",      "variant", "queue", "stack",
      "initializer_list",
  };
  return kContainers.count(id) != 0;
}

// ---------------------------------------------------------------------------
// telemetry

struct CatalogEntry {
  std::string name;
  const SourceFile* file = nullptr;
  std::size_t line = 0;  ///< 1-based
  bool used = false;
};

struct CallSite {
  std::vector<std::string> fragments;  ///< string literals of the name arg, in order
  bool start_anchored = false;
  bool end_anchored = false;
  const SourceFile* file = nullptr;
  std::size_t line = 0;  ///< 1-based
};

/// Tokens that merely wrap a name expression without contributing to it.
bool name_wrapper(const Token& t) {
  if (t.kind == Token::Kind::kIdentifier) {
    return t.text == "std" || t.text == "string" || t.text == "c_str";
  }
  return is_punct(t, "(") || is_punct(t, ")") || is_punct(t, "::") || is_punct(t, ".");
}

/// Build a CallSite from the first call argument [begin, end).
CallSite make_site(const std::vector<Token>& tokens, std::size_t begin, std::size_t end,
                   const SourceFile& file) {
  CallSite site;
  site.file = &file;
  for (std::size_t i = begin; i < end; ++i) {
    if (tokens[i].kind == Token::Kind::kString) {
      site.fragments.push_back(tokens[i].text);
      if (site.line == 0) {
        site.line = tokens[i].line;
      }
    }
  }
  std::size_t front = begin;
  while (front < end && name_wrapper(tokens[front])) {
    ++front;
  }
  site.start_anchored = front < end && tokens[front].kind == Token::Kind::kString;
  std::size_t back = end;
  while (back > begin && name_wrapper(tokens[back - 1])) {
    --back;
  }
  site.end_anchored = back > begin && tokens[back - 1].kind == Token::Kind::kString;
  return site;
}

/// Does catalog name `name` fit the site's ordered fragments and anchors?
bool site_matches(const CallSite& site, const std::string& name) {
  if (site.fragments.empty()) {
    return false;
  }
  const std::string& first = site.fragments.front();
  if (site.start_anchored && name.compare(0, first.size(), first) != 0) {
    return false;
  }
  const std::string& last = site.fragments.back();
  if (site.end_anchored &&
      (name.size() < last.size() ||
       name.compare(name.size() - last.size(), last.size(), last) != 0)) {
    return false;
  }
  std::size_t pos = 0;
  for (const std::string& fragment : site.fragments) {
    const std::size_t found = name.find(fragment, pos);
    if (found == std::string::npos) {
      return false;
    }
    pos = found + fragment.size();
  }
  return true;
}

/// Human-readable spelling of the site's name pattern for messages.
std::string site_pattern(const CallSite& site) {
  std::string out = site.start_anchored ? "" : "*";
  for (std::size_t i = 0; i < site.fragments.size(); ++i) {
    if (i > 0) {
      out += "*";
    }
    out += site.fragments[i];
  }
  if (!site.end_anchored) {
    out += "*";
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------

void rule_layering(const SourceFile& file, const Config& config, Reporter& reporter) {
  if (config.layers.empty()) {
    return;  // no layer spec in this config: nothing to enforce
  }
  const std::string module = module_of(file, config);
  if (module.empty()) {
    return;  // outside src/ and tools/, and not module-assigned
  }
  const auto layer = config.layers.find(module);
  if (layer == config.layers.end()) {
    reporter.report(file, 0, "layering",
                    "module `" + module +
                        "` has no `layer` declaration in the lint config: every src/ "
                        "module (and tools) must be placed in the layer DAG so its "
                        "dependencies are reviewed, not accidental");
    return;
  }
  const std::set<std::string>& allowed = layer->second;
  if (allowed.count("*") != 0) {
    return;
  }
  for (const IncludeDirective& include : file.includes) {
    if (include.angled) {
      continue;  // system/third-party headers are not layered
    }
    const std::size_t slash = include.path.find('/');
    if (slash == std::string::npos) {
      continue;  // same-directory include
    }
    const std::string target = include.path.substr(0, slash);
    if (config.layers.count(target) == 0) {
      continue;  // not a known module prefix (e.g. tools-local headers)
    }
    if (allowed.count(target) == 0) {
      reporter.report(file, include.line - 1, "layering",
                      "module `" + module + "` includes \"" + include.path +
                          "\" but layer `" + target +
                          "` is not in its declared dependency closure — either the "
                          "include goes, or the `layer " + module +
                          "` line in the lint config gains the dependency (a reviewed, "
                          "deliberate edge)");
    }
  }
}

void rule_concurrency(const SourceFile& file, Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i]) || !parallel_entry(tokens[i].text) ||
        !is_punct(tokens[i + 1], "(")) {
      continue;
    }
    const std::size_t call_close = match_forward(tokens, i + 1);
    if (call_close >= tokens.size()) {
      continue;
    }
    // Find inline lambdas in argument position within the call.
    for (std::size_t j = i + 2; j < call_close; ++j) {
      if (!is_punct(tokens[j], "[") ||
          !(is_punct(tokens[j - 1], "(") || is_punct(tokens[j - 1], ","))) {
        continue;
      }
      const std::size_t cap_close = match_forward(tokens, j);
      if (cap_close >= call_close) {
        continue;
      }
      Lambda lambda;
      parse_captures(tokens, j, cap_close, lambda);
      std::size_t cursor = cap_close + 1;
      if (cursor < call_close && is_punct(tokens[cursor], "(")) {
        const std::size_t param_close = match_forward(tokens, cursor);
        if (param_close >= call_close) {
          continue;
        }
        parse_params(tokens, cursor, param_close, lambda);
        cursor = param_close + 1;
      }
      while (cursor < call_close && !is_punct(tokens[cursor], "{")) {
        ++cursor;  // skip mutable/noexcept/trailing return type
      }
      if (cursor >= call_close) {
        continue;
      }
      lambda.body_open = cursor;
      lambda.body_close = match_forward(tokens, cursor);
      if (lambda.body_close >= tokens.size()) {
        continue;
      }
      collect_locals(tokens, lambda);
      if (!lambda.default_by_ref && lambda.by_ref.empty()) {
        j = lambda.body_close;
        continue;  // nothing is shared by reference
      }
      for (std::size_t k = lambda.body_open + 1; k < lambda.body_close; ++k) {
        const Token& t = tokens[k];
        bool partitioned = false;
        std::string base;
        if (write_op(t) && k > lambda.body_open + 1) {
          base = lvalue_base(tokens, k - 1, lambda, partitioned);
        } else if (is_punct(t, "++") || is_punct(t, "--")) {
          if (is_ident(tokens[k - 1]) || is_punct(tokens[k - 1], "]")) {
            base = lvalue_base(tokens, k - 1, lambda, partitioned);  // postfix
          } else if (k + 1 < lambda.body_close && is_ident(tokens[k + 1])) {
            base = tokens[k + 1].text;  // prefix: ++x or ++x[i]
            std::size_t sub = k + 2;
            if (sub < lambda.body_close && is_punct(tokens[sub], "[")) {
              const std::size_t sub_close = match_forward(tokens, sub);
              for (std::size_t s = sub + 1; s < sub_close && s < lambda.body_close; ++s) {
                if (is_ident(tokens[s]) && lambda.locals.count(tokens[s].text) != 0) {
                  partitioned = true;
                }
              }
            }
          }
        }
        if (base.empty() || partitioned || lambda.locals.count(base) != 0 ||
            lambda.by_value.count(base) != 0) {
          continue;
        }
        const bool shared = lambda.by_ref.count(base) != 0 || lambda.default_by_ref;
        if (!shared) {
          continue;
        }
        reporter.report(file, t.line - 1, "concurrency",
                        "write to `" + base +
                            "` captured by reference inside a parallel_for/pool lambda "
                            "without partitioning by the loop index: concurrent "
                            "iterations race on it — write through an index-partitioned "
                            "slot (out[i] = ...) and combine after the join, or make it "
                            "a lambda-local");
      }
      j = lambda.body_close;
    }
    i = call_close;
  }
}

void rule_lifetime(const SourceFile& file, Reporter& reporter) {
  const std::vector<Token>& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i]) || !container_name(tokens[i].text) ||
        !is_punct(tokens[i + 1], "<")) {
      continue;
    }
    // Walk the balanced template-argument region; abort on statement
    // punctuation (a `<` that was really a comparison).
    std::size_t close = tokens.size();
    int depth = 0;
    for (std::size_t j = i + 1; j < tokens.size() && j < i + 200; ++j) {
      if (is_punct(tokens[j], "<")) {
        ++depth;
      } else if (is_punct(tokens[j], ">")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (is_punct(tokens[j], ">>")) {
        depth -= 2;
        if (depth <= 0) {
          close = j;
          break;
        }
      } else if (is_punct(tokens[j], ";") || is_punct(tokens[j], "{") ||
                 is_punct(tokens[j], "}")) {
        break;
      }
    }
    if (close >= tokens.size()) {
      continue;
    }
    for (std::size_t j = i + 2; j < close; ++j) {
      bool raw_view = false;
      if (is_ident(tokens[j]) && guarded_type(tokens[j].text)) {
        std::size_t after = j + 1;
        if (after < close && is_ident(tokens[after]) && tokens[after].text == "const") {
          ++after;  // `Foo const*`
        }
        raw_view = after <= close &&
                   (is_punct(tokens[after], "*") || is_punct(tokens[after], "&"));
      } else if (is_ident(tokens[j]) && tokens[j].text == "reference_wrapper" &&
                 j + 1 < close && is_punct(tokens[j + 1], "<")) {
        for (std::size_t k = j + 2; k < close; ++k) {
          if (is_ident(tokens[k]) && guarded_type(tokens[k].text)) {
            raw_view = true;
            break;
          }
          if (is_punct(tokens[k], ">") || is_punct(tokens[k], ">>")) {
            break;
          }
        }
      }
      if (raw_view) {
        reporter.report(file, tokens[i].line - 1, "lifetime",
                        "container/alias element holds a raw pointer/reference to "
                        "solver-lifetime type `" + tokens[j].text +
                            "`: the collection outlives no one — elements must own "
                            "(values, unique_ptr/shared_ptr) so reseating or "
                            "destroying the source cannot dangle the collection");
        break;  // one finding per container spelling
      }
    }
    i = close;
  }
}

void rule_telemetry(const std::vector<SourceFile>& files, const Config& config,
                    Reporter& reporter) {
  if (config.telemetry_catalogs.empty()) {
    return;
  }
  // Catalog entries: `{ "name", "kind" }` token quads inside files matched
  // by a `telemetry_catalog` config line.
  std::vector<CatalogEntry> entries;
  bool catalog_in_scan = false;
  for (const SourceFile& file : files) {
    bool is_catalog = false;
    for (const std::string& suffix : config.telemetry_catalogs) {
      if (suffix_match(file.path, suffix)) {
        is_catalog = true;
        break;
      }
    }
    if (!is_catalog) {
      continue;
    }
    catalog_in_scan = true;
    const std::vector<Token>& tokens = file.tokens;
    for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
      if (is_punct(tokens[i], "{") && tokens[i + 1].kind == Token::Kind::kString &&
          is_punct(tokens[i + 2], ",") && tokens[i + 3].kind == Token::Kind::kString &&
          is_punct(tokens[i + 4], "}")) {
        const std::string& kind = tokens[i + 3].text;
        if (kind == "counter" || kind == "gauge" || kind == "timer") {
          entries.push_back({tokens[i + 1].text, &file, tokens[i + 1].line, false});
        }
      }
    }
  }
  if (!catalog_in_scan) {
    return;  // the catalog is outside this scan (partial file list): no join
  }

  // Call sites: telemetry::count/gauge/timer_add/instant plus ScopedTimer
  // construction. telemetry::counter (Chrome-trace-only) and Span carry
  // trace labels, not metric names, and are exempt.
  std::vector<CallSite> sites;
  for (const SourceFile& file : files) {
    const std::vector<Token>& tokens = file.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!is_ident(tokens[i])) {
        continue;
      }
      std::size_t arg_open = 0;
      const std::string& id = tokens[i].text;
      if ((id == "count" || id == "gauge" || id == "timer_add" || id == "instant") &&
          i >= 2 && is_punct(tokens[i - 1], "::") && is_ident(tokens[i - 2]) &&
          tokens[i - 2].text == "telemetry" && i + 1 < tokens.size() &&
          is_punct(tokens[i + 1], "(")) {
        arg_open = i + 1;
      } else if (id == "ScopedTimer" && i + 1 < tokens.size() &&
                 !is_punct(tokens[i + 1], "::")) {
        std::size_t j = i + 1;
        if (j < tokens.size() && is_ident(tokens[j])) {
          ++j;  // skip the variable name
        }
        if (j < tokens.size() && is_punct(tokens[j], "(")) {
          arg_open = j;
        }
      }
      if (arg_open == 0) {
        continue;
      }
      // First argument: up to the first top-level comma or the call close.
      const std::size_t call_close = match_forward(tokens, arg_open);
      std::size_t arg_end = call_close;
      int depth = 0;
      for (std::size_t j = arg_open + 1; j < call_close; ++j) {
        if (is_punct(tokens[j], "(") || is_punct(tokens[j], "[") ||
            is_punct(tokens[j], "{")) {
          ++depth;
        } else if (is_punct(tokens[j], ")") || is_punct(tokens[j], "]") ||
                   is_punct(tokens[j], "}")) {
          --depth;
        } else if (is_punct(tokens[j], ",") && depth == 0) {
          arg_end = j;
          break;
        }
      }
      if (call_close >= tokens.size()) {
        continue;
      }
      CallSite site = make_site(tokens, arg_open + 1, arg_end, file);
      if (!site.fragments.empty()) {
        sites.push_back(site);
      }
    }
  }

  // Join both ways: every site resolves to a catalog entry, every entry has
  // a site.
  for (const CallSite& site : sites) {
    bool resolved = false;
    for (CatalogEntry& entry : entries) {
      if (site_matches(site, entry.name)) {
        entry.used = true;
        resolved = true;
      }
    }
    if (!resolved) {
      reporter.report(*site.file, site.line - 1, "telemetry",
                      "metric name `" + site_pattern(site) +
                          "` at this call site matches no entry in the seeded metric "
                          "catalog: add the `{\"name\", \"kind\"}` entry (catalog-driven "
                          "reports silently drop unknown names) or fix the name drift");
    }
  }
  for (const CatalogEntry& entry : entries) {
    if (!entry.used) {
      reporter.report(*entry.file, entry.line - 1, "telemetry",
                      "catalog metric `" + entry.name +
                          "` has no telemetry call site in the scanned tree: dead "
                          "catalog entries report permanent zeros — remove the entry "
                          "or restore the instrumentation");
    }
  }
}

}  // namespace photherm::lint
