/// \file source.hpp
/// \brief Source model for photherm_lint: one scanned file as blanked lines
/// (comments and literal bodies replaced by spaces, for the line-lexical
/// rules) plus a comment/string-free token stream with line mapping (for
/// the cross-line rules) and the file's include directives.
///
/// The lexer is a single pass shared by every rule family: a file is read
/// and tokenized exactly once, and all rules run over the cached
/// SourceFile. It understands:
///   * `//` and `/* */` comments, including `//` comments continued across
///     lines by a trailing backslash;
///   * string and char literals with escapes, including literals spliced
///     across lines by a trailing backslash;
///   * raw strings `R"delim(...)delim"` with encoding prefixes
///     (`LR`, `uR`, `UR`, `u8R`), whose bodies — comment markers, quotes,
///     rule trigger words and all — are fully blanked and never tokenized;
///   * adjacent literals, digit separators (`1'000`), and multi-line raw
///     strings.
/// `#include` directives are recorded separately (path, line, angled or
/// quoted) and their lines produce no tokens, so include paths can never
/// confuse a token-matching rule.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace photherm::lint {

/// One lexed token. String/char tokens carry the literal *body* (escapes
/// kept as written) and the line where the literal starts.
struct Token {
  enum class Kind { kIdentifier, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based
};

/// A recorded `#include` directive.
struct IncludeDirective {
  std::string path;      ///< as written between the delimiters
  std::size_t line = 0;  ///< 1-based
  bool angled = false;   ///< `<...>` rather than `"..."`
};

struct SourceLine {
  std::string raw;       ///< the line as written
  std::string code;      ///< literals and comments replaced by spaces
  std::string literals;  ///< concatenated bodies of string literals on the line
  std::set<std::string> inline_allows;  ///< rules allowed by a ph-lint marker
};

struct SourceFile {
  std::string path;  ///< as reported (relative to --root when possible)
  std::vector<SourceLine> lines;
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
};

/// Lex `content` into the shared source model. `report_path` is the path
/// findings are reported under.
SourceFile parse_source(const std::string& content, const std::string& report_path);

/// Read `disk_path` and parse it; throws photherm::Error when unreadable.
SourceFile load_source(const std::string& disk_path, const std::string& report_path);

}  // namespace photherm::lint
