/// \file rules_lexical.cpp
/// \brief The PR 7 line-lexical rule families, ported onto the shared
/// source model: ownership, determinism, serialization, errors. These run
/// over the blanked `code` lines (comments and literal bodies are spaces),
/// so prose and messages can never false-positive. Every single-line
/// spelling of these bug classes is caught; the cross-line classes have
/// their own token-based families (rules_structural.cpp).

#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace photherm::lint {

namespace {

// Types whose instances are solver-lifetime resources: a raw view member
// into one of these is exactly the PR 6 SSOR dangling-pointer bug class.
const char* const kGuardedTypes =
    "(?:CsrMatrix|LinearOperator|StencilOperator7|Preconditioner|"
    "RectilinearMesh|ThermalField|Axis)";

}  // namespace

void rule_ownership(const SourceFile& file, Reporter& reporter) {
  // An uninitialized `Type* name;` / `Type& name;` declaration is
  // member-style: locals are initialized (references must be) and function
  // parameters are always followed by `,` or `)`, never `;`.
  static const std::regex member(std::string(R"(\b)") + kGuardedTypes +
                                 R"(\b[^;(){}=]*[*&]\s*[A-Za-z_]\w*\s*;)");
  // Members with default initializers follow the trailing-underscore
  // naming convention, which keeps initialized locals (fine) out of scope.
  static const std::regex member_init(std::string(R"(\b)") + kGuardedTypes +
                                      R"(\b[^;(){}=]*[*&]\s*[A-Za-z_]\w*_\s*=[^;]*;)");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (std::regex_search(code, member) || std::regex_search(code, member_init)) {
      reporter.report(file, i, "ownership",
                      "raw pointer/reference member to a solver-lifetime type "
                      "(CsrMatrix/LinearOperator/mesh/...): the holder must own its "
                      "data (copy, unique_ptr, shared_ptr) — a non-owning view member "
                      "is the PR 6 SSOR dangling-pointer bug class; if the lifetime "
                      "is provably managed, allowlist it with the argument written "
                      "down");
    }
  }
}

void rule_determinism(const SourceFile& file, Reporter& reporter) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  // `[^\w.>:]` guards reject member calls (`solver_->time()`, `obj.time()`)
  // and qualified names handled by their own std:: pattern.
  static const std::vector<Pattern> patterns = [] {
    std::vector<Pattern> t;
    t.push_back({std::regex(R"(\bstd::rand\b|(?:^|[^\w.>:])rand\s*\()"), "rand()"});
    t.push_back({std::regex(R"(\bstd::srand\b|(?:^|[^\w.>:])srand\s*\()"), "srand()"});
    // libc time() always takes an argument; zero-arg `time()` is a member
    // accessor (e.g. TransientSolver::time()), which stays legal.
    t.push_back({std::regex(R"(\bstd::time\b|(?:^|[^\w.>:])time\s*\(\s*[^)\s])"), "time()"});
    t.push_back({std::regex(R"((?:^|[^\w.>:])clock\s*\()"), "clock()"});
    t.push_back({std::regex(R"(\bgettimeofday\b|\blocaltime\b|\bgmtime\b)"), "wall-clock time"});
    t.push_back({std::regex(R"(\brandom_device\b)"), "std::random_device"});
    t.push_back({std::regex(R"(\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b)"),
                 "a std::chrono clock"});
    return t;
  }();

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    for (const Pattern& pattern : patterns) {
      if (std::regex_search(code, pattern.re)) {
        reporter.report(file, i, "determinism",
                        std::string(pattern.what) +
                            " is non-deterministic across runs: results must be "
                            "bit-identical at any thread count, so all stochastic "
                            "inputs derive from util::Rng with an explicit seed and "
                            "timing belongs in bench/, not src/");
      }
    }
  }

  // Iterating an unordered container visits elements in hash order, which
  // is implementation-defined: any iteration that feeds output, ordering,
  // or floating-point accumulation silently breaks bit-identity. Collect
  // the names declared with unordered types in this file, then flag
  // range-for loops and begin() walks over them. Keyed lookups stay fine.
  static const std::regex decl(R"(\bunordered_(?:map|set)\s*<.*>\s*[&*]?\s*([A-Za-z_]\w*))");
  std::set<std::string> unordered_names;
  for (const SourceLine& line : file.lines) {
    auto begin = std::sregex_iterator(line.code.begin(), line.code.end(), decl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_names.insert((*it)[1].str());
    }
  }
  for (const std::string& name : unordered_names) {
    // `.end()` alone is a find()-sentinel, not iteration: only range-for
    // and begin()-family walks visit hash order.
    const std::regex iteration(R"(for\s*\([^)]*:\s*)" + name + R"(\b|\b)" + name +
                               R"(\s*\.\s*(?:begin|cbegin|rbegin|crbegin)\s*\()");
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
      if (std::regex_search(file.lines[i].code, iteration)) {
        reporter.report(file, i, "determinism",
                        "iteration over unordered container `" + name +
                            "` visits hash order, which is implementation-defined: "
                            "anything it feeds (output, accumulation, ordering) loses "
                            "bit-identity — iterate a sorted std::map/std::vector "
                            "instead, or keep the container lookup-only");
      }
    }
  }
}

void rule_serialization(const SourceFile& file, const Config& config, Reporter& reporter) {
  bool serialized = false;
  for (const std::string& suffix : config.serialized) {
    if (suffix_match(file.path, suffix)) {
      serialized = true;
      break;
    }
  }
  if (!serialized) {
    return;
  }
  static const std::regex to_string(R"(\bstd::to_string\s*\()");
  static const std::regex precision(R"(\bsetprecision\b|\bstd::scientific\b|\bstd::fixed\b)");
  static const std::regex printf_float(R"(%[-+ #0-9.*]*l?[aefgAEFG])");
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (std::regex_search(line.code, to_string)) {
      reporter.report(file, i, "serialization",
                      "std::to_string in a persisted-format writer: doubles must go "
                      "through util::format_shortest so serialize/parse round-trips "
                      "bit-exactly (std::to_string truncates to 6 digits); integral "
                      "arguments round-trip exactly under any formatting — allowlist "
                      "them stating the type");
    }
    if (std::regex_search(line.code, precision)) {
      reporter.report(file, i, "serialization",
                      "iostream precision formatting in a persisted-format writer: "
                      "a fixed digit count either truncates the double or spells it "
                      "unreadably — persisted doubles go through "
                      "util::format_shortest (shortest spelling that parses back "
                      "bit-identically)");
    }
    if (std::regex_search(line.literals, printf_float)) {
      reporter.report(file, i, "serialization",
                      "printf-style float conversion in a persisted-format writer: "
                      "persisted doubles go through util::format_shortest");
    }
  }
}

void rule_errors(const SourceFile& file, Reporter& reporter) {
  static const std::regex throw_site(R"(\bthrow\b)");
  // `throw <qualified-id>(...)`: capture the final identifier of the
  // qualified name. Project error types all end in `Error` and derive from
  // photherm::Error, which is what keeps failure modes assertable.
  static const std::regex throw_expr(R"(\bthrow\s+(?:::)?(?:\w+\s*::\s*)*(\w+))");
  static const std::regex rethrow(R"(\bthrow\s*;)");
  static const std::regex process_exit(R"(\babort\s*\(|\bstd::exit\b|(?:^|[^\w.>:])exit\s*\()");

  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& code = file.lines[i].code;
    if (std::regex_search(code, process_exit)) {
      reporter.report(file, i, "errors",
                      "abort()/exit() is not an error path: throw photherm::Error "
                      "(or use PH_REQUIRE) so callers and the test suite can assert "
                      "on the failure mode");
    }
    if (!std::regex_search(code, throw_site) || std::regex_search(code, rethrow)) {
      continue;
    }
    // `throw` at end of line: join the next code lines so the thrown type
    // lands in the same buffer.
    std::string stmt = code;
    for (std::size_t j = i + 1; j < file.lines.size() && j < i + 3; ++j) {
      std::smatch m;
      if (std::regex_search(stmt, m, throw_expr)) {
        break;
      }
      stmt += " " + file.lines[j].code;
    }
    std::smatch m;
    const bool named = std::regex_search(stmt, m, throw_expr);
    const std::string type = named ? m[1].str() : "";
    const bool is_error_type = type.size() >= 5 && type.compare(type.size() - 5, 5, "Error") == 0;
    if (!is_error_type) {
      reporter.report(file, i, "errors",
                      "throw of `" + (type.empty() ? std::string("<unnamed>") : type) +
                          "`: every photherm failure raises photherm::Error or a "
                          "subclass (SpecError, SolverError, ...; via PH_REQUIRE "
                          "where it is a precondition) so failure modes stay "
                          "assertable");
    }
  }
}

}  // namespace photherm::lint
