/// \file rules.cpp
/// \brief Reporter, rule registry, and the by-name dispatcher.

#include "lint/rules.hpp"

#include "util/error.hpp"

namespace photherm::lint {

void Reporter::report(const SourceFile& file, std::size_t index, const std::string& rule,
                      const std::string& message) {
  if (index < file.lines.size() && file.lines[index].inline_allows.count(rule) != 0) {
    return;
  }
  const auto it = config_.allows.find(rule);
  if (it != config_.allows.end()) {
    for (const std::string& suffix : it->second) {
      if (suffix_match(file.path, suffix)) {
        return;
      }
    }
  }
  out_.push_back({file.path, index + 1, rule, message});
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> r = {
      {"ownership",
       "no raw pointer/reference members to CsrMatrix/LinearOperator/mesh objects — holders own "
       "their data",
       false},
      {"determinism",
       "no wall clocks or ambient randomness; no iteration over unordered containers", false},
      {"serialization",
       "persisted doubles go through util::format_shortest (scenario files, checkpoints, CSV)",
       false},
      {"errors", "every throw raises photherm::Error or a subclass; no abort()/exit()", false},
      {"layering",
       "src/ module includes follow the layer DAG declared by `layer` lines in the config",
       false},
      {"concurrency",
       "no un-partitioned writes to by-reference captures inside parallel_for/submitted lambdas",
       false},
      {"lifetime",
       "no containers or aliases holding raw pointers/references to solver-lifetime types",
       false},
      {"telemetry",
       "metric names at telemetry call sites and the seeded catalog stay in sync, both ways",
       true},
  };
  return r;
}

void run_rule(const std::string& name, const std::vector<SourceFile>& files,
              const Config& config, Reporter& reporter) {
  if (name == "telemetry") {
    rule_telemetry(files, config, reporter);
    return;
  }
  for (const SourceFile& file : files) {
    if (name == "ownership") {
      rule_ownership(file, reporter);
    } else if (name == "determinism") {
      rule_determinism(file, reporter);
    } else if (name == "serialization") {
      rule_serialization(file, config, reporter);
    } else if (name == "errors") {
      rule_errors(file, reporter);
    } else if (name == "layering") {
      rule_layering(file, config, reporter);
    } else if (name == "concurrency") {
      rule_concurrency(file, reporter);
    } else if (name == "lifetime") {
      rule_lifetime(file, reporter);
    } else {
      throw Error("run_rule: unknown rule `" + name + "`");
    }
  }
}

}  // namespace photherm::lint
