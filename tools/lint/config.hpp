/// \file config.hpp
/// \brief photherm_lint configuration: serialized-format files, per-file
/// allowlists, the module layer DAG, fixture module assignments, and the
/// telemetry-catalog file list.
///
/// Directive grammar (one per line, `#` comments):
///   serialized <path-suffix>          file writes a persisted text format
///   allow <rule> <path-suffix>        whole-file allowlist entry
///   layer <name> [<dep>... | *]       module <name> may directly include
///                                     the listed modules (its own module is
///                                     always allowed; `*` allows every
///                                     module). Dependencies are expanded
///                                     transitively: anything below you in
///                                     the DAG is fair game.
///   module <layer> <path-suffix>      assign a file outside src/<layer>/ to
///                                     a layer (fixture corpus support)
///   telemetry_catalog <path-suffix>   file holding the seeded metric
///                                     catalog ({"name", "kind"} entries)
///
/// Path suffixes match on path-component boundaries against the scanned
/// file's path relative to --root.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace photherm::lint {

struct Config {
  std::vector<std::string> serialized;                     ///< path suffixes
  std::map<std::string, std::vector<std::string>> allows;  ///< rule -> suffixes
  /// Layer name -> transitively closed set of modules it may include (own
  /// name included). A layer with `*` maps to the special entry {"*"}.
  std::map<std::string, std::set<std::string>> layers;
  std::vector<std::pair<std::string, std::string>> modules;  ///< (layer, suffix)
  std::vector<std::string> telemetry_catalogs;               ///< path suffixes
};

/// Normalize backslashes to forward slashes.
std::string normalize(std::string path);

/// Suffix match on a path-component boundary (`axis.hpp` cannot match
/// `taxis.hpp`).
bool suffix_match(const std::string& path, const std::string& suffix);

/// Parse the config at `path`. `known_rules` validates `allow` lines.
/// Throws photherm::Error with file:line context on any malformed or
/// unknown directive, unknown layer dependency, or dependency cycle.
Config load_config(const std::string& path, const std::set<std::string>& known_rules);

}  // namespace photherm::lint
