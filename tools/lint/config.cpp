/// \file config.cpp
/// \brief Config parsing and the layer-DAG transitive closure.

#include "lint/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace photherm::lint {

namespace {

using photherm::Error;

/// Expand direct layer dependencies into their transitive closure, failing
/// on unknown names and cycles (a layer DAG must be acyclic to mean
/// anything).
std::map<std::string, std::set<std::string>> close_layers(
    const std::map<std::string, std::vector<std::string>>& direct, const std::string& context) {
  std::map<std::string, std::set<std::string>> closed;
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::map<std::string, Mark> marks;

  struct Closer {
    const std::map<std::string, std::vector<std::string>>& direct;
    const std::string& context;
    std::map<std::string, std::set<std::string>>& closed;
    std::map<std::string, Mark>& marks;

    const std::set<std::string>& visit(const std::string& name) {
      if (marks[name] == Mark::kDone) {
        return closed[name];
      }
      if (marks[name] == Mark::kInProgress) {
        throw Error(context + ": layer dependency cycle through `" + name + "`");
      }
      marks[name] = Mark::kInProgress;
      std::set<std::string>& out = closed[name];
      out.insert(name);
      for (const std::string& dep : direct.at(name)) {
        if (dep == "*") {
          out = {"*"};
          break;
        }
        if (direct.find(dep) == direct.end()) {
          throw Error(context + ": layer `" + name + "` depends on undeclared layer `" + dep +
                      "`");
        }
        const std::set<std::string>& sub = visit(dep);
        if (sub.count("*") != 0) {
          out = {"*"};
          break;
        }
        out.insert(sub.begin(), sub.end());
      }
      marks[name] = Mark::kDone;
      return closed[name];
    }
  } closer{direct, context, closed, marks};

  for (const auto& [name, deps] : direct) {
    (void)deps;
    closer.visit(name);
  }
  return closed;
}

}  // namespace

std::string normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool suffix_match(const std::string& path, const std::string& suffix) {
  const std::string p = normalize(path);
  if (p.size() < suffix.size()) {
    return false;
  }
  if (p.size() == suffix.size()) {
    return p == suffix;
  }
  // Match on a path-component boundary so `axis.hpp` cannot match
  // `taxis.hpp`.
  return p.compare(p.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         p[p.size() - suffix.size() - 1] == '/';
}

Config load_config(const std::string& path, const std::set<std::string>& known_rules) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open lint config " + path);
  }
  Config config;
  std::map<std::string, std::vector<std::string>> direct_layers;
  std::string raw;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = raw.substr(0, raw.find('#'));
    std::stringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) {
      continue;  // blank or comment-only
    }
    const auto context = [&] { return path + ":" + std::to_string(line_number); };
    if (kind == "serialized") {
      std::string suffix;
      if (!(fields >> suffix)) {
        throw Error(context() + ": `serialized` needs a path suffix");
      }
      config.serialized.push_back(normalize(suffix));
    } else if (kind == "allow") {
      std::string rule, suffix;
      if (!(fields >> rule >> suffix)) {
        throw Error(context() + ": `allow` needs a rule name and a path suffix");
      }
      if (known_rules.count(rule) == 0) {
        throw Error(context() + ": unknown rule `" + rule + "`");
      }
      config.allows[rule].push_back(normalize(suffix));
    } else if (kind == "layer") {
      std::string name;
      if (!(fields >> name)) {
        throw Error(context() + ": `layer` needs a module name");
      }
      if (direct_layers.count(name) != 0) {
        throw Error(context() + ": layer `" + name + "` declared twice");
      }
      std::vector<std::string>& deps = direct_layers[name];
      std::string dep;
      while (fields >> dep) {
        deps.push_back(dep);
      }
    } else if (kind == "module") {
      std::string layer, suffix;
      if (!(fields >> layer >> suffix)) {
        throw Error(context() + ": `module` needs a layer name and a path suffix");
      }
      config.modules.emplace_back(layer, normalize(suffix));
    } else if (kind == "telemetry_catalog") {
      std::string suffix;
      if (!(fields >> suffix)) {
        throw Error(context() + ": `telemetry_catalog` needs a path suffix");
      }
      config.telemetry_catalogs.push_back(normalize(suffix));
    } else {
      throw Error(context() + ": unknown directive `" + kind +
                  "` (expected `serialized`, `allow`, `layer`, `module`, or "
                  "`telemetry_catalog`)");
    }
  }
  config.layers = close_layers(direct_layers, path);
  // A `module` assignment to an undeclared layer is a config typo.
  for (const auto& [layer, suffix] : config.modules) {
    (void)suffix;
    if (config.layers.count(layer) == 0) {
      throw Error(path + ": `module " + layer + " ...` names an undeclared layer");
    }
  }
  return config;
}

}  // namespace photherm::lint
