/// \file source.cpp
/// \brief Single-pass lexer producing blanked lines + the token stream.

#include "lint/source.hpp"

#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

#include "util/error.hpp"

namespace photherm::lint {

namespace {

using photherm::Error;

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Encoding prefixes that may precede a string or char literal. The raw
/// forms (anything ending in R directly before `"`) were the known
/// false-positive source in the PR 7 blanker, which only recognized a bare
/// `R"`.
bool raw_string_prefix(const std::string& id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}
bool string_prefix(const std::string& id) {
  return id == "L" || id == "u" || id == "U" || id == "u8";
}

/// Multi-character punctuators, longest first so the match is maximal.
/// `>>` stays one token (the cross-line matchers treat it as two closing
/// angles); `::`, `->` and the compound assignments matter to the rules.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

/// Extract `ph-lint: allow(a,b)` rule names from a raw line.
std::set<std::string> parse_inline_allows(const std::string& raw) {
  static const std::regex marker(R"(ph-lint:\s*allow\(([^)]*)\))");
  std::set<std::string> rules;
  std::smatch m;
  if (std::regex_search(raw, m, marker)) {
    std::stringstream list(m[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const auto begin = rule.find_first_not_of(" \t");
      const auto end = rule.find_last_not_of(" \t");
      if (begin != std::string::npos) {
        rules.insert(rule.substr(begin, end - begin + 1));
      }
    }
  }
  return rules;
}

/// `#\s*include\s*["<]path[">]` on the raw line.
const std::regex kIncludeRe(R"(^\s*#\s*include\s*(["<])([^">]+)[">])");

}  // namespace

SourceFile parse_source(const std::string& content, const std::string& report_path) {
  SourceFile file;
  file.path = report_path;

  // Split into raw lines (a trailing newline does not create an empty line).
  std::vector<std::string> raws;
  {
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) {
        if (start < content.size()) {
          raws.push_back(content.substr(start));
        }
        break;
      }
      std::string line = content.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      raws.push_back(std::move(line));
      start = nl + 1;
    }
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;          // for raw strings: the )delim" terminator
  std::string pending;            // body of the literal being lexed
  std::size_t pending_line = 0;   // 1-based line where the literal started
  bool pending_is_char = false;

  for (std::size_t li = 0; li < raws.size(); ++li) {
    const std::string& raw = raws[li];
    const std::size_t line_no = li + 1;
    SourceLine line;
    line.raw = raw;
    line.inline_allows = parse_inline_allows(raw);
    std::string code(raw.size(), ' ');
    bool suppress_tokens = false;

    // A `//` comment continued by a trailing backslash swallows this whole
    // line too (and possibly the next).
    if (state == State::kLineComment) {
      if (raw.empty() || raw.back() != '\\') {
        state = State::kCode;
      }
      line.code = std::move(code);
      file.lines.push_back(std::move(line));
      continue;
    }

    // Include directives are recorded, blanked normally, and emit no
    // tokens, so paths like "thermal/fvm.hpp" never enter the token
    // stream as identifiers.
    if (state == State::kCode) {
      std::smatch m;
      if (std::regex_search(raw, m, kIncludeRe)) {
        file.includes.push_back({m[2].str(), line_no, m[1].str() == "<"});
        suppress_tokens = true;
      }
    }

    const auto emit = [&](Token::Kind kind, std::string text, std::size_t at_line) {
      if (!suppress_tokens) {
        file.tokens.push_back({kind, std::move(text), at_line});
      }
    };

    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode: {
          if (c == '/' && next == '/') {
            if (!raw.empty() && raw.back() == '\\') {
              state = State::kLineComment;  // continued onto the next line
            }
            i = raw.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (ident_start(c)) {
            std::size_t j = i;
            while (j < raw.size() && ident_char(raw[j])) {
              ++j;
            }
            const std::string id = raw.substr(i, j - i);
            for (std::size_t k = i; k < j; ++k) {
              code[k] = raw[k];
            }
            const char after = j < raw.size() ? raw[j] : '\0';
            if (after == '"' && raw_string_prefix(id)) {
              // Raw string: find the opening paren; the delimiter is
              // everything between the quote and it.
              const std::size_t open = raw.find('(', j + 1);
              if (open != std::string::npos) {
                raw_delim = ")";
                raw_delim.append(raw, j + 1, open - j - 1);
                raw_delim += '"';
                state = State::kRawString;
                pending.clear();
                pending_line = line_no;
                pending_is_char = false;
                i = open;  // blanked from the quote through the open paren
                break;     // switch
              }
              // Malformed raw string (no paren on the line): fall through
              // as an identifier; the quote starts an ordinary string.
              emit(Token::Kind::kIdentifier, id, line_no);
              i = j - 1;
            } else if (after == '"' && (string_prefix(id) || raw_string_prefix(id))) {
              state = State::kString;
              pending.clear();
              pending_line = line_no;
              pending_is_char = false;
              code[j] = '"';
              i = j;  // consume through the opening quote
            } else if (after == '\'' && string_prefix(id)) {
              state = State::kChar;
              pending.clear();
              pending_line = line_no;
              pending_is_char = true;
              code[j] = '\'';
              i = j;
            } else {
              emit(Token::Kind::kIdentifier, id, line_no);
              i = j - 1;
            }
          } else if (digit(c) || (c == '.' && digit(next))) {
            // Numbers, including hex, exponents, and digit separators
            // (1'000) — scanned greedily so the `'` can never open a char
            // literal state.
            std::size_t j = i;
            while (j < raw.size()) {
              const char n = raw[j];
              if (ident_char(n) || n == '.') {
                ++j;
              } else if (n == '\'' && j + 1 < raw.size() && ident_char(raw[j + 1])) {
                ++j;
              } else if ((n == '+' || n == '-') && j > i &&
                         (raw[j - 1] == 'e' || raw[j - 1] == 'E' || raw[j - 1] == 'p' ||
                          raw[j - 1] == 'P')) {
                ++j;
              } else {
                break;
              }
            }
            for (std::size_t k = i; k < j; ++k) {
              code[k] = raw[k];
            }
            emit(Token::Kind::kNumber, raw.substr(i, j - i), line_no);
            i = j - 1;
          } else if (c == '"') {
            state = State::kString;
            pending.clear();
            pending_line = line_no;
            pending_is_char = false;
            code[i] = '"';
          } else if (c == '\'') {
            state = State::kChar;
            pending.clear();
            pending_line = line_no;
            pending_is_char = true;
            code[i] = '\'';
          } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            // stays a space in `code`
          } else if (c == '\\') {
            // Preprocessor line splice in code: no token, stays blank.
          } else {
            // Punctuation: longest multi-char match first.
            std::string punct(1, c);
            for (const char* p : kPuncts) {
              const std::size_t len = std::char_traits<char>::length(p);
              if (raw.compare(i, len, p) == 0) {
                punct = p;
                break;
              }
            }
            for (std::size_t k = 0; k < punct.size(); ++k) {
              code[i + k] = raw[i + k];
            }
            emit(Token::Kind::kPunct, punct, line_no);
            i += punct.size() - 1;
          }
          break;
        }
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\') {
            if (i + 1 >= raw.size()) {
              // Backslash-newline: the literal continues on the next line.
              // (Leave the state as is; the splice consumes the newline.)
            } else {
              if (!pending_is_char) {
                line.literals += raw.substr(i, 2);
              }
              pending += raw.substr(i, 2);
              ++i;
            }
          } else if (c == quote) {
            code[i] = quote;
            emit(pending_is_char ? Token::Kind::kChar : Token::Kind::kString, pending,
                 pending_line);
            pending.clear();
            if (!pending_is_char) {
              line.literals += '\n';
            }
            state = State::kCode;
          } else {
            if (!pending_is_char) {
              line.literals += c;
            }
            pending += c;
          }
          break;
        }
        case State::kRawString:
          if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
            state = State::kCode;
            i += raw_delim.size() - 1;
            code[i] = '"';
            emit(Token::Kind::kString, pending, pending_line);
            pending.clear();
            line.literals += '\n';
          } else {
            line.literals += c;
            pending += c;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: handled before the column loop
      }
      if (state == State::kRawString && i >= raw.size()) {
        break;
      }
    }
    // Only raw strings (and backslash-spliced literals) span lines; an
    // unterminated ordinary literal resets so one typo cannot blank the
    // rest of the file.
    if ((state == State::kString || state == State::kChar) &&
        (raw.empty() || raw.back() != '\\')) {
      emit(pending_is_char ? Token::Kind::kChar : Token::Kind::kString, pending, pending_line);
      pending.clear();
      state = State::kCode;
    }
    if (state == State::kRawString) {
      pending += '\n';  // raw-string newlines are part of the body; splices are not
    }
    line.code = std::move(code);
    file.lines.push_back(std::move(line));
  }

  // A marker on a pure-comment line covers the next line, so long lines can
  // carry `// ph-lint: allow(rule) why` on the line above.
  for (std::size_t i = 0; i + 1 < file.lines.size(); ++i) {
    const SourceLine& line = file.lines[i];
    if (!line.inline_allows.empty() &&
        line.code.find_first_not_of(" \t") == std::string::npos) {
      file.lines[i + 1].inline_allows.insert(line.inline_allows.begin(),
                                             line.inline_allows.end());
    }
  }
  return file;
}

SourceFile load_source(const std::string& disk_path, const std::string& report_path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) {
    throw Error("cannot open " + disk_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_source(buffer.str(), report_path);
}

}  // namespace photherm::lint
