/// \file rules.hpp
/// \brief Rule interface for photherm_lint: findings, the allowlist-aware
/// reporter, the rule registry, and the entry points for the eight rule
/// families.
///
/// Two rule shapes exist:
///   * per-file rules see one SourceFile at a time (plus the config);
///   * tree rules see every scanned file at once (the telemetry rule must
///     join catalog entries against call sites across the whole tree).
/// Both report through Reporter, which applies inline `ph-lint: allow(...)`
/// markers and the config's per-file allowlists.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/config.hpp"
#include "lint/source.hpp"

namespace photherm::lint {

struct Finding {
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

class Reporter {
 public:
  Reporter(const Config& config, std::vector<Finding>& out) : config_(config), out_(out) {}

  /// Record a finding unless the line or file is allowlisted for the rule.
  void report(const SourceFile& file, std::size_t index, const std::string& rule,
              const std::string& message);

 private:
  const Config& config_;
  std::vector<Finding>& out_;
};

struct RuleInfo {
  std::string name;
  std::string summary;
  bool tree_wide = false;
};

/// All rule families in registry (and execution) order.
const std::vector<RuleInfo>& rules();

// --- PR 7 lexical families (line-based over the blanked code) --------------
void rule_ownership(const SourceFile& file, Reporter& reporter);
void rule_determinism(const SourceFile& file, Reporter& reporter);
void rule_serialization(const SourceFile& file, const Config& config, Reporter& reporter);
void rule_errors(const SourceFile& file, Reporter& reporter);

// --- cross-line families (token-based) -------------------------------------
void rule_layering(const SourceFile& file, const Config& config, Reporter& reporter);
void rule_concurrency(const SourceFile& file, Reporter& reporter);
void rule_lifetime(const SourceFile& file, Reporter& reporter);
void rule_telemetry(const std::vector<SourceFile>& files, const Config& config,
                    Reporter& reporter);

/// Run one rule by name over the scanned tree (dispatches per-file or
/// tree-wide as appropriate). Unknown names are a programming error and
/// throw photherm::Error.
void run_rule(const std::string& name, const std::vector<SourceFile>& files,
              const Config& config, Reporter& reporter);

}  // namespace photherm::lint
