/// Explore how chip activity patterns shape the ONoC operating point:
/// for each activity, report the ONI temperature spread, the laser output
/// derating and the worst-case SNR on the mid-size ring.
///
/// Usage: activity_explorer [seed] (default 7; affects the random pattern).
#include <cstdlib>
#include <iostream>

#include "core/methodology.hpp"
#include "photonics/vcsel.hpp"
#include "util/string_util.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace photherm;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kRing;
  base.ring_case_id = 2;  // 32.4 mm, 8 ONIs
  base.chip_power = 24.0;
  base.seed = seed;
  base.oni_cell_xy = 10e-6;
  base.global_cell_xy = 2e-3;

  const photonics::Vcsel vcsel{core::make_snr_model(base.tech).vcsel};

  Table table({"activity", "ONI T min-max (degC)", "spread (degC)", "OPVCSEL derating",
               "worst SNR (dB)", "links ok"});
  for (const auto activity :
       {power::ActivityKind::kUniform, power::ActivityKind::kDiagonal,
        power::ActivityKind::kRandom, power::ActivityKind::kHotspot,
        power::ActivityKind::kCheckerboard}) {
    core::OnocDesignSpec spec = base;
    spec.activity = activity;
    const auto report = core::ThermalAwareDesigner(spec).run();

    double t_min = report.thermal.onis.front().average;
    double t_max = t_min;
    for (const auto& oni : report.thermal.onis) {
      t_min = std::min(t_min, oni.average);
      t_max = std::max(t_max, oni.average);
    }
    // Laser derating: emitted power at the hottest ONI vs at 40 degC.
    const double i40 = vcsel.current_for_dissipated_power(spec.p_vcsel, 40.0);
    const double i_hot = vcsel.current_for_dissipated_power(spec.p_vcsel, t_max);
    const double derating =
        vcsel.output_power(i_hot, t_max) / vcsel.output_power(i40, 40.0);

    table.add_row({power::to_string(activity),
                   format_fixed(t_min, 2) + " - " + format_fixed(t_max, 2),
                   t_max - t_min, format_fixed(derating * 100.0, 1) + " %",
                   report.snr ? report.snr->network.worst_snr_db : 0.0,
                   std::string(report.links_ok() ? "yes" : "NO")});
  }
  print_table(std::cout, "Activity exploration on the 32.4 mm ring (8 ONIs)", table);
  std::cout << "Higher ONI temperature spread -> more MR/VCSEL misalignment -> lower SNR.\n";
  return 0;
}
