/// Full design-space exploration on the SCC case study (the paper's Sec. V
/// workflow): sweep the laser power, find the heater ratio minimising the
/// intra-ONI gradient, then verify the chosen point meets the < 1 degC
/// constraint and report its SNR.
///
/// Usage: scc_design_space [chip_power_watts] (default 25).
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/design_space.hpp"
#include "core/methodology.hpp"
#include "util/string_util.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace photherm;
  const double chip_power = argc > 1 ? std::atof(argv[1]) : 25.0;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kAllTiles;  // thermal sweeps
  base.activity = power::ActivityKind::kUniform;
  base.chip_power = chip_power;
  base.oni_cell_xy = 10e-6;  // demo resolution
  base.global_cell_xy = 2e-3;

  std::cout << "SCC thermal-aware design-space exploration (Pchip = " << chip_power
            << " W)\n\n";

  // --- Step 1: laser power sweep at fixed heater ratio. -------------------
  Table laser_sweep({"PVCSEL (mW)", "ONI avg (degC)", "gradient (degC)", "meets <1 degC"});
  for (double pv : {1e-3, 2e-3, 4e-3, 6e-3}) {
    core::OnocDesignSpec spec = base;
    spec.p_vcsel = pv;
    const auto point = core::explore_heater_ratios(spec, {spec.heater_ratio}).front();
    laser_sweep.add_row({pv * 1e3, point.oni_average, point.gradient,
                         std::string(point.gradient < 1.0 ? "yes" : "no")});
  }
  print_table(std::cout, "Step 1: PVCSEL sweep (heater at 0.3x)", laser_sweep);

  // --- Step 2: heater exploration at the paper's drive (3.6 mW). ----------
  core::OnocDesignSpec spec = base;
  spec.p_vcsel = 3.6e-3;
  const auto sweep = core::explore_heater_ratios(spec, {0.0, 0.15, 0.3, 0.45, 0.6});
  Table heater_table({"ratio", "Pheater (mW)", "gradient (degC)", "ONI avg (degC)"});
  for (const auto& p : sweep) {
    heater_table.add_row({p.heater_ratio, p.p_heater * 1e3, p.gradient, p.oni_average});
  }
  print_table(std::cout, "Step 2: MR heater exploration at PVCSEL = 3.6 mW", heater_table);
  const auto& best = core::best_heater_point(sweep);
  std::cout << "selected heater ratio: " << best.heater_ratio << " (Pheater = "
            << format_power(best.p_heater) << ", gradient " << format_fixed(best.gradient, 2)
            << " degC)\n\n";

  // --- Step 3: SNR of the chosen design point on the ring placement. ------
  spec.placement = core::OniPlacementMode::kRing;
  spec.ring_case_id = 2;  // 32.4 mm, 8 ONIs
  spec.heater_ratio = best.heater_ratio;
  const auto report = core::ThermalAwareDesigner(spec).run();
  print_table(std::cout, "Step 3: thermal report of the chosen design point",
              report.thermal.to_table());
  if (report.snr) {
    std::cout << "worst-case SNR: " << format_fixed(report.snr->network.worst_snr_db, 1)
              << " dB over " << report.snr->waveguide_length * 1e3 << " mm\n"
              << "links closing (power + SNR): " << (report.links_ok() ? "all" : "NOT all")
              << "\n";
  }
  return 0;
}
