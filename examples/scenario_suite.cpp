/// Scenario engine walk-through: expand a parameterized family into
/// concrete scenarios, run them as one cached batch on the thread pool and
/// print the per-scenario design verdicts. See also `tools/photherm_cli`
/// for the same flow driven from scenario files on disk.
#include <iostream>

#include "scenario/batch_runner.hpp"
#include "scenario/registry.hpp"

int main() {
  using namespace photherm;

  // 1. A base scenario: the paper's SCC case study on the 18 mm ring,
  //    coarsened so this example runs in seconds.
  scenario::ScenarioSpec base;
  base.design.placement = core::OniPlacementMode::kRing;
  base.design.ring_case_id = 1;
  base.design.chip_power = 25.0;
  base.design.global_cell_xy = 3e-3;
  base.design.oni_cell_xy = 40e-6;
  base.design.oni_cell_z = 2e-6;

  // 2. Expand a family: WDM channel-count corners. These scenarios are
  //    thermally identical, so the batch runner solves the coarse global
  //    field once and shares it.
  scenario::FamilySpec family;
  family.family = "wdm_ladder";
  family.prefix = "wdm";
  family.base = base;
  family.values = {4.0, 8.0, 16.0};
  const auto suite = scenario::expand_family(family);

  // 3. Run the batch (threads = util::concurrency(), cache on).
  const scenario::BatchResult result = scenario::BatchRunner().run(suite);
  std::cout << "ran " << result.stats.scenario_count << " scenarios with "
            << result.stats.global_solves << " coarse global solves ("
            << result.stats.cache_hits << " cache hits)\n\n";

  // 4. Inspect the verdicts.
  Table table = scenario::batch_table(suite, result);
  table.set_precision(6);
  print_table(std::cout, "scenario suite report", table);
  return 0;
}
