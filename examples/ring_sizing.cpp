/// Size a ring interconnect: for rings of increasing perimeter/ONI count,
/// determine the laser drive needed for every photodetector to clear its
/// sensitivity with margin, and the resulting SNR — a designer's view of
/// the bandwidth-reach trade of Sec. V-C.
///
/// Usage: ring_sizing [min_snr_db] (default 10).
#include <cstdlib>
#include <iostream>

#include "core/methodology.hpp"
#include "util/string_util.hpp"
#include "util/units.hpp"

namespace {

/// Smallest PVCSEL (searched over a coarse grid) whose design point meets
/// both the sensitivity and the SNR target; 0 when none does.
double size_laser(photherm::core::OnocDesignSpec spec, double min_snr_db) {
  using namespace photherm;
  for (double pv : {1e-3, 2e-3, 3e-3, 3.6e-3, 4.5e-3, 6e-3}) {
    spec.p_vcsel = pv;
    const auto report = core::ThermalAwareDesigner(spec).run();
    if (!report.snr) {
      continue;
    }
    const bool power_ok = report.snr->network.undetectable_count == 0;
    const bool snr_ok = report.snr->network.worst_snr_db >= min_snr_db;
    if (power_ok && snr_ok) {
      return pv;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace photherm;
  const double min_snr = argc > 1 ? std::atof(argv[1]) : 10.0;

  core::OnocDesignSpec base;
  base.placement = core::OniPlacementMode::kRing;
  base.activity = power::ActivityKind::kUniform;
  base.chip_power = 25.0;
  base.oni_cell_xy = 12e-6;
  base.global_cell_xy = 2.5e-3;

  Table table({"ring case", "length (mm)", "ONIs", "min PVCSEL (mW)", "worst SNR (dB)",
               "total laser power (mW)"});
  for (int rc = 1; rc <= 3; ++rc) {
    core::OnocDesignSpec spec = base;
    spec.ring_case_id = rc;
    const double pv = size_laser(spec, min_snr);
    if (pv == 0.0) {
      table.add_row({static_cast<double>(rc), 0.0, 0.0, std::string("(not closable)"),
                     std::string("-"), std::string("-")});
      continue;
    }
    spec.p_vcsel = pv;
    const auto report = core::ThermalAwareDesigner(spec).run();
    const std::size_t count = report.snr->oni_count;
    // Active lasers per ONI x ONIs x (laser + driver).
    const double total = static_cast<double>(count) * 4.0 *
                         static_cast<double>(spec.active_tx_per_waveguide) * 2.0 * pv;
    table.add_row({static_cast<double>(rc), report.snr->waveguide_length * 1e3,
                   static_cast<double>(count), pv * 1e3,
                   report.snr->network.worst_snr_db, total * 1e3});
  }
  print_table(std::cout,
              "Ring sizing: minimum laser drive for SNR >= " + format_fixed(min_snr, 0) +
                  " dB and -20 dBm sensitivity",
              table);
  std::cout << "Longer rings need more drive (propagation loss + crosstalk), and the\n"
               "extra dissipated power feeds back into laser heating - the core tension\n"
               "the thermal-aware methodology manages.\n";
  return 0;
}
