/// Quickstart: build a small VCSEL-based ONoC design point, run the full
/// thermal-aware methodology (thermal simulation + SNR analysis) and print
/// the report. Start here to learn the public API.
#include <iostream>

#include "core/design_space.hpp"
#include "core/methodology.hpp"
#include "util/units.hpp"

int main() {
  using namespace photherm;

  // 1. Describe the design point. Defaults model the paper's SCC case
  //    study; here we shrink the thermal resolution for a fast first run.
  core::OnocDesignSpec spec;
  spec.placement = core::OniPlacementMode::kRing;
  spec.ring_case_id = 1;                  // 18 mm ring, 4 ONIs (Fig. 11)
  spec.activity = power::ActivityKind::kUniform;
  spec.chip_power = 25.0;                 // watts over the 24 SCC tiles
  spec.p_vcsel = 3.6 * units::mW;         // the paper's Sec. V-C drive
  spec.heater_ratio = 0.30;               // Pheater = 0.3 x PVCSEL (optimum)
  spec.global_cell_xy = 2e-3;             // coarse demo resolution
  spec.oni_cell_xy = 10e-6;

  // 2. Run the methodology: thermal two-level solve + SNR analysis.
  const core::ThermalAwareDesigner designer(spec);
  const core::DesignReport report = designer.run();

  // 3. Inspect the results.
  print_table(std::cout, "Per-ONI thermal report", report.thermal.to_table());
  std::cout << "chip average temperature: " << report.thermal.chip_average << " degC\n"
            << "worst intra-ONI gradient: " << report.thermal.max_gradient << " degC"
            << (report.gradient_ok() ? " (meets the <1 degC constraint)" : " (VIOLATION)")
            << "\n\n";

  if (report.snr) {
    print_table(std::cout, "Per-communication SNR", report.snr->to_table());
    std::cout << "worst-case SNR: " << report.snr->network.worst_snr_db << " dB\n"
              << "all links detectable: " << (report.links_ok() ? "yes" : "no") << "\n";
  }
  return 0;
}
