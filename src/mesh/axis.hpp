/// \file axis.hpp
/// \brief One axis of a tensor-product rectilinear grid: a strictly
/// increasing tick vector. Ticks always include every block boundary so
/// cells never straddle a material interface, then intervals are subdivided
/// to honour per-region maximum cell sizes (5 um inside ONIs, 100 um over
/// the die, 500 um over the package — paper Fig. 4).
#pragma once

#include <vector>

namespace photherm::mesh {

/// Constraint: intervals overlapping [lo, hi] must have width <= max_size.
struct AxisRefinement {
  double lo;
  double hi;
  double max_size;
};

/// Generate the tick vector for one axis.
/// - `domain_lo/hi`: full extent;
/// - `boundaries`: coordinates that must appear as ticks (block faces),
///   values outside the domain are ignored, duplicates within `snap_tol`
///   are merged;
/// - `default_max_size`: cell-size bound where no refinement applies;
/// - `refinements`: finer bounds over sub-ranges.
std::vector<double> generate_ticks(double domain_lo, double domain_hi,
                                   std::vector<double> boundaries, double default_max_size,
                                   const std::vector<AxisRefinement>& refinements,
                                   double snap_tol = 1e-9);

/// Immutable axis grid.
class AxisGrid {
 public:
  AxisGrid() = default;
  explicit AxisGrid(std::vector<double> ticks);

  std::size_t cell_count() const { return ticks_.size() - 1; }
  double lo() const { return ticks_.front(); }
  double hi() const { return ticks_.back(); }

  double tick(std::size_t i) const { return ticks_[i]; }
  const std::vector<double>& ticks() const { return ticks_; }

  double cell_lo(std::size_t cell) const { return ticks_[cell]; }
  double cell_hi(std::size_t cell) const { return ticks_[cell + 1]; }
  double cell_width(std::size_t cell) const { return ticks_[cell + 1] - ticks_[cell]; }
  double cell_center(std::size_t cell) const { return 0.5 * (ticks_[cell] + ticks_[cell + 1]); }

  /// Cell index containing x (clamped to the domain).
  std::size_t find_cell(double x) const;

  /// Index range [first, last) of cells overlapping [lo, hi).
  std::pair<std::size_t, std::size_t> cell_range(double lo, double hi) const;

 private:
  std::vector<double> ticks_;
};

}  // namespace photherm::mesh
