#include "mesh/axis.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/interp.hpp"

namespace photherm::mesh {

std::vector<double> generate_ticks(double domain_lo, double domain_hi,
                                   std::vector<double> boundaries, double default_max_size,
                                   const std::vector<AxisRefinement>& refinements,
                                   double snap_tol) {
  PH_REQUIRE(domain_hi > domain_lo, "axis domain must be non-empty");
  PH_REQUIRE(default_max_size > 0.0, "default max cell size must be positive");
  for (const AxisRefinement& r : refinements) {
    PH_REQUIRE(r.max_size > 0.0, "refinement max cell size must be positive");
    PH_REQUIRE(r.hi > r.lo, "refinement range must be non-empty");
  }

  boundaries.push_back(domain_lo);
  boundaries.push_back(domain_hi);
  for (const AxisRefinement& r : refinements) {
    boundaries.push_back(r.lo);
    boundaries.push_back(r.hi);
  }
  std::sort(boundaries.begin(), boundaries.end());

  // Keep boundaries inside the domain, merging near-duplicates.
  std::vector<double> base;
  for (double b : boundaries) {
    if (b < domain_lo - snap_tol || b > domain_hi + snap_tol) {
      continue;
    }
    const double clamped = std::clamp(b, domain_lo, domain_hi);
    if (base.empty() || clamped - base.back() > snap_tol) {
      base.push_back(clamped);
    }
  }
  PH_REQUIRE(base.size() >= 2, "no usable axis boundaries");
  base.front() = domain_lo;
  base.back() = domain_hi;

  std::vector<double> ticks;
  ticks.push_back(base.front());
  for (std::size_t i = 0; i + 1 < base.size(); ++i) {
    const double lo = base[i];
    const double hi = base[i + 1];
    double max_size = default_max_size;
    const double mid = 0.5 * (lo + hi);
    for (const AxisRefinement& r : refinements) {
      if (mid > r.lo - snap_tol && mid < r.hi + snap_tol) {
        max_size = std::min(max_size, r.max_size);
      }
    }
    const auto pieces =
        static_cast<std::size_t>(std::max(1.0, std::ceil((hi - lo) / max_size - 1e-12)));
    for (std::size_t p = 1; p <= pieces; ++p) {
      ticks.push_back(lo + (hi - lo) * static_cast<double>(p) / static_cast<double>(pieces));
    }
  }
  ticks.back() = domain_hi;
  return ticks;
}

AxisGrid::AxisGrid(std::vector<double> ticks) : ticks_(std::move(ticks)) {
  PH_REQUIRE(ticks_.size() >= 2, "an axis grid needs at least two ticks");
  for (std::size_t i = 1; i < ticks_.size(); ++i) {
    PH_REQUIRE(ticks_[i] > ticks_[i - 1], "axis ticks must be strictly increasing");
  }
}

std::size_t AxisGrid::find_cell(double x) const {
  return find_segment(ticks_, x);
}

std::pair<std::size_t, std::size_t> AxisGrid::cell_range(double lo, double hi) const {
  PH_REQUIRE(hi > lo, "cell_range: empty query range");
  if (hi <= ticks_.front() || lo >= ticks_.back()) {
    return {0, 0};
  }
  std::size_t first = find_cell(std::max(lo, ticks_.front()));
  // Skip cells that only touch the range at their upper face.
  if (cell_hi(first) <= lo) {
    ++first;
  }
  std::size_t last = find_cell(std::min(hi, ticks_.back()));
  if (cell_lo(last) >= hi) {
    // `hi` lands exactly on this cell's lower face: exclusive.
    ;
  } else {
    ++last;
  }
  if (first >= last) {
    return {0, 0};
  }
  return {first, last};
}

}  // namespace photherm::mesh
