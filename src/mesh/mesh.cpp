#include "mesh/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::mesh {

using geometry::Block;
using geometry::Box3;
using geometry::Scene;
using geometry::Vec3;

namespace {

std::vector<double> axis_boundaries(const Scene& scene, int axis, const Box3& domain,
                                    double min_feature_xy) {
  std::vector<double> out;
  for (const Block& b : scene.blocks()) {
    if (!b.box.intersects(domain)) {
      continue;
    }
    if (axis != 2 && min_feature_xy > 0.0 &&
        (b.box.extent(0) < min_feature_xy || b.box.extent(1) < min_feature_xy)) {
      continue;  // micron-scale device: no ticks at coarse resolution
    }
    out.push_back(b.box.lo[axis]);
    out.push_back(b.box.hi[axis]);
  }
  return out;
}

std::vector<AxisRefinement> axis_refinements(const MeshOptions& options, int axis) {
  std::vector<AxisRefinement> out;
  for (const RefinementBox& r : options.refinements) {
    const double max_size = (axis == 2) ? r.max_cell_z : r.max_cell_xy;
    if (max_size > 0.0) {
      out.push_back({r.box.lo[axis], r.box.hi[axis], max_size});
    }
  }
  return out;
}

}  // namespace

RectilinearMesh::RectilinearMesh(AxisGrid x, AxisGrid y, AxisGrid z, geometry::MaterialLibrary lib)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)), materials_lib_(std::move(lib)) {}

RectilinearMesh RectilinearMesh::build(const Scene& scene, const MeshOptions& options) {
  return build(scene, scene.bounding_box(), options);
}

RectilinearMesh RectilinearMesh::build(const Scene& scene, const Box3& domain,
                                       const MeshOptions& options) {
  PH_REQUIRE(scene.size() > 0, "cannot mesh an empty scene");
  // A very large z bound means "layer faces only": every block face already
  // becomes a tick, which is exact for full-area layers.
  const double z_bound = options.default_max_cell_z > 0.0
                             ? options.default_max_cell_z
                             : domain.extent(2);

  const double feat = options.min_feature_size_xy;
  const AxisGrid gx(generate_ticks(domain.lo.x, domain.hi.x,
                                   axis_boundaries(scene, 0, domain, feat),
                                   options.default_max_cell_xy, axis_refinements(options, 0)));
  const AxisGrid gy(generate_ticks(domain.lo.y, domain.hi.y,
                                   axis_boundaries(scene, 1, domain, feat),
                                   options.default_max_cell_xy, axis_refinements(options, 1)));
  const AxisGrid gz(generate_ticks(domain.lo.z, domain.hi.z,
                                   axis_boundaries(scene, 2, domain, feat),
                                   z_bound, axis_refinements(options, 2)));

  RectilinearMesh mesh(gx, gy, gz, scene.materials());
  const std::size_t n = mesh.cell_count();
  PH_REQUIRE(n <= options.max_cells,
             "mesh exceeds the configured cell budget; coarsen the resolution");
  PH_LOG_DEBUG << "mesh: " << mesh.nx() << " x " << mesh.ny() << " x " << mesh.nz() << " = " << n
               << " cells";

  const geometry::MaterialId background = mesh.materials_lib_.id_of(options.background_material);
  mesh.materials_.assign(n, background.index);
  mesh.power_.assign(n, 0.0);

  // Paint materials in block order. Each block only touches the cells it
  // overlaps; since ticks include all block faces, a cell is either fully
  // inside or fully outside a block (up to snapping tolerance), so testing
  // the cell centre is exact.
  for (const Block& b : scene.blocks()) {
    if (!b.box.intersects(domain)) {
      continue;
    }
    const auto [x0, x1] = mesh.x_.cell_range(b.box.lo.x, b.box.hi.x);
    const auto [y0, y1] = mesh.y_.cell_range(b.box.lo.y, b.box.hi.y);
    const auto [z0, z1] = mesh.z_.cell_range(b.box.lo.z, b.box.hi.z);
    for (std::size_t iz = z0; iz < z1; ++iz) {
      for (std::size_t iy = y0; iy < y1; ++iy) {
        for (std::size_t ix = x0; ix < x1; ++ix) {
          const Vec3 c{mesh.x_.cell_center(ix), mesh.y_.cell_center(iy),
                       mesh.z_.cell_center(iz)};
          if (b.box.contains(c)) {
            mesh.materials_[mesh.index(ix, iy, iz)] = b.material.index;
          }
        }
      }
    }
  }

  // Deposit power by overlap volume so sources clipped by the domain edge
  // inject only their contained fraction.
  for (const Block& b : scene.blocks()) {
    if (b.power <= 0.0 || !b.box.intersects(domain)) {
      continue;
    }
    const double density = b.power_density();
    const auto [x0, x1] = mesh.x_.cell_range(b.box.lo.x, b.box.hi.x);
    const auto [y0, y1] = mesh.y_.cell_range(b.box.lo.y, b.box.hi.y);
    const auto [z0, z1] = mesh.z_.cell_range(b.box.lo.z, b.box.hi.z);
    for (std::size_t iz = z0; iz < z1; ++iz) {
      for (std::size_t iy = y0; iy < y1; ++iy) {
        for (std::size_t ix = x0; ix < x1; ++ix) {
          const double overlap = b.box.overlap_volume(mesh.cell_box(ix, iy, iz));
          if (overlap > 0.0) {
            mesh.power_[mesh.index(ix, iy, iz)] += density * overlap;
          }
        }
      }
    }
  }
  return mesh;
}

std::size_t RectilinearMesh::cell_at(const Vec3& p) const {
  return index(x_.find_cell(p.x), y_.find_cell(p.y), z_.find_cell(p.z));
}

Box3 RectilinearMesh::cell_box(std::size_t ix, std::size_t iy, std::size_t iz) const {
  return Box3{{x_.cell_lo(ix), y_.cell_lo(iy), z_.cell_lo(iz)},
              {x_.cell_hi(ix), y_.cell_hi(iy), z_.cell_hi(iz)}};
}

double RectilinearMesh::cell_volume(std::size_t ix, std::size_t iy, std::size_t iz) const {
  return x_.cell_width(ix) * y_.cell_width(iy) * z_.cell_width(iz);
}

double RectilinearMesh::total_power() const {
  double total = 0.0;
  for (double p : power_) {
    total += p;
  }
  return total;
}

std::vector<std::size_t> RectilinearMesh::cells_in(const Box3& box) const {
  std::vector<std::size_t> out;
  const auto [x0, x1] = x_.cell_range(box.lo.x, box.hi.x);
  const auto [y0, y1] = y_.cell_range(box.lo.y, box.hi.y);
  const auto [z0, z1] = z_.cell_range(box.lo.z, box.hi.z);
  for (std::size_t iz = z0; iz < z1; ++iz) {
    for (std::size_t iy = y0; iy < y1; ++iy) {
      for (std::size_t ix = x0; ix < x1; ++ix) {
        out.push_back(index(ix, iy, iz));
      }
    }
  }
  return out;
}

}  // namespace photherm::mesh
