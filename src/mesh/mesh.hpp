/// \file mesh.hpp
/// \brief Tensor-product rectilinear mesh built from a geometry Scene:
/// per-cell material id and injected power. This is the discretisation the
/// finite-volume solver consumes (paper Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/block.hpp"
#include "mesh/axis.hpp"

namespace photherm::mesh {

/// Box-shaped refinement request: cells inside `box` are at most
/// `max_cell` wide on the given axes (0 disables an axis).
struct RefinementBox {
  geometry::Box3 box;
  double max_cell_xy;  ///< bound on x and y cell sizes [m]
  double max_cell_z;   ///< bound on z cell sizes [m]; 0 = no bound
};

struct MeshOptions {
  double default_max_cell_xy = 500e-6;  ///< package-scale resolution
  double default_max_cell_z = 0.0;      ///< 0 = layers only (block faces)
  std::vector<RefinementBox> refinements;
  std::string background_material = "air";
  std::size_t max_cells = 40'000'000;   ///< safety limit

  /// Blocks narrower than this on x/y contribute no x/y mesh ticks (their
  /// power is still deposited by overlap volume). Lets a coarse global
  /// solve skip micron-scale device geometry while a fine local window
  /// (min_feature_size_xy = 0) resolves it — the two-level scheme.
  double min_feature_size_xy = 0.0;
};

/// Immutable mesh. Cell (ix, iy, iz) linearises as
/// index = (iz * ny + iy) * nx + ix.
class RectilinearMesh {
 public:
  /// Mesh the scene's bounding box.
  static RectilinearMesh build(const geometry::Scene& scene, const MeshOptions& options);

  /// Mesh an explicit domain (used by the two-level solver to mesh an ONI
  /// subdomain of a larger scene).
  static RectilinearMesh build(const geometry::Scene& scene, const geometry::Box3& domain,
                               const MeshOptions& options);

  const AxisGrid& x() const { return x_; }
  const AxisGrid& y() const { return y_; }
  const AxisGrid& z() const { return z_; }

  std::size_t nx() const { return x_.cell_count(); }
  std::size_t ny() const { return y_.cell_count(); }
  std::size_t nz() const { return z_.cell_count(); }
  std::size_t cell_count() const { return nx() * ny() * nz(); }

  std::size_t index(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return (iz * ny() + iy) * nx() + ix;
  }

  /// Cell containing a point (clamped to the domain).
  std::size_t cell_at(const geometry::Vec3& p) const;

  geometry::Box3 cell_box(std::size_t ix, std::size_t iy, std::size_t iz) const;
  double cell_volume(std::size_t ix, std::size_t iy, std::size_t iz) const;

  /// Material of a cell.
  geometry::MaterialId material(std::size_t cell) const { return {materials_[cell]}; }

  /// Power injected into a cell [W].
  double power(std::size_t cell) const { return power_[cell]; }

  /// Sum of per-cell powers; equals the scene power clipped to the domain.
  double total_power() const;

  /// Cells overlapping `box` (indices). Used for region averages.
  std::vector<std::size_t> cells_in(const geometry::Box3& box) const;

  const geometry::MaterialLibrary& materials_library() const { return materials_lib_; }

 private:
  RectilinearMesh(AxisGrid x, AxisGrid y, AxisGrid z, geometry::MaterialLibrary lib);

  AxisGrid x_, y_, z_;
  geometry::MaterialLibrary materials_lib_;
  std::vector<std::uint16_t> materials_;
  std::vector<double> power_;
};

}  // namespace photherm::mesh
