#include "core/design_space.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace photherm::core {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  PH_REQUIRE(count >= 2, "linspace needs at least two points");
  PH_REQUIRE(hi > lo, "linspace range must be increasing");
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return out;
}

std::vector<AvgTemperaturePoint> sweep_vcsel_chip_power(const OnocDesignSpec& base,
                                                        const std::vector<double>& p_chip,
                                                        const std::vector<double>& p_vcsel,
                                                        const SweepOptions& sweep) {
  PH_REQUIRE(!p_chip.empty() && !p_vcsel.empty(), "empty sweep axes");
  const std::size_t grid = p_chip.size() * p_vcsel.size();
  std::vector<AvgTemperaturePoint> out(grid);
  // One grid point per task, results written by index so the row-major
  // order (and every value) is independent of the thread count.
  util::parallel_for(
      grid, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const double chip = p_chip[idx / p_vcsel.size()];
          const double vcsel = p_vcsel[idx % p_vcsel.size()];
          OnocDesignSpec spec = base;
          spec.chip_power = chip;
          spec.p_vcsel = vcsel;
          // Representative ONI: reuse the heater-sweep helper's convention
          // (most central interface) by sweeping a single ratio. The solver
          // override rides along; threads stay at the helper's default (the
          // inner region runs inline on this worker anyway).
          SweepOptions inner;
          inner.solver = sweep.solver;
          const auto point = explore_heater_ratios(spec, {spec.heater_ratio}, inner).front();
          AvgTemperaturePoint row;
          row.p_chip = chip;
          row.p_vcsel = vcsel;
          row.average = point.oni_average;
          row.gradient = point.gradient;
          out[idx] = row;
          // Incremental progress (the logger is thread-safe; line order may
          // interleave under concurrency, the returned grid never does).
          PH_LOG_INFO << "Pchip=" << row.p_chip << " W, PVCSEL=" << row.p_vcsel * 1e3
                      << " mW -> avg=" << row.average << " degC, gradient=" << row.gradient;
        }
      },
      sweep.threads);
  return out;
}

std::vector<SnrSweepPoint> sweep_snr(const OnocDesignSpec& base,
                                     const std::vector<int>& ring_cases,
                                     const std::vector<power::ActivityKind>& activities,
                                     const SweepOptions& sweep) {
  PH_REQUIRE(!ring_cases.empty() && !activities.empty(), "empty sweep axes");
  const std::size_t grid = ring_cases.size() * activities.size();
  std::vector<SnrSweepPoint> out(grid);
  util::parallel_for(
      grid, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          const power::ActivityKind activity = activities[idx / ring_cases.size()];
          const int rc = ring_cases[idx % ring_cases.size()];
          OnocDesignSpec spec = base;
          spec.placement = OniPlacementMode::kRing;
          spec.ring_case_id = rc;
          spec.activity = activity;
          ThermalAwareDesigner designer(spec);
          if (sweep.solver) {
            designer.set_steady_options(*sweep.solver);
          }
          const DesignReport report = designer.run();
          PH_REQUIRE(report.snr.has_value(), "ring run must produce an SNR report");

          SnrSweepPoint row;
          row.ring_case = rc;
          row.waveguide_length = report.snr->waveguide_length;
          row.activity = activity;
          row.worst_snr_db = report.snr->network.worst_snr_db;
          const noc::CommResult& worst = report.snr->network.worst_comm();
          row.signal_power = worst.signal_power;
          row.crosstalk_power = worst.crosstalk_power;
          double t_min = report.thermal.onis.front().average;
          double t_max = t_min;
          for (const OniThermalReport& r : report.thermal.onis) {
            t_min = std::min(t_min, r.average);
            t_max = std::max(t_max, r.average);
          }
          row.oni_t_min = t_min;
          row.oni_t_max = t_max;
          out[idx] = row;
          PH_LOG_INFO << "case " << row.ring_case << " (" << power::to_string(row.activity)
                      << "): worst SNR = " << row.worst_snr_db << " dB";
        }
      },
      sweep.threads);
  return out;
}

}  // namespace photherm::core
