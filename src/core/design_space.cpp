#include "core/design_space.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::core {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  PH_REQUIRE(count >= 2, "linspace needs at least two points");
  PH_REQUIRE(hi > lo, "linspace range must be increasing");
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count - 1);
  }
  return out;
}

std::vector<AvgTemperaturePoint> sweep_vcsel_chip_power(const OnocDesignSpec& base,
                                                        const std::vector<double>& p_chip,
                                                        const std::vector<double>& p_vcsel) {
  PH_REQUIRE(!p_chip.empty() && !p_vcsel.empty(), "empty sweep axes");
  std::vector<AvgTemperaturePoint> out;
  out.reserve(p_chip.size() * p_vcsel.size());
  for (double chip : p_chip) {
    for (double vcsel : p_vcsel) {
      OnocDesignSpec spec = base;
      spec.chip_power = chip;
      spec.p_vcsel = vcsel;
      // Representative ONI: reuse the heater-sweep helper's convention
      // (most central interface) by sweeping a single ratio.
      const auto point = explore_heater_ratios(spec, {spec.heater_ratio}).front();
      AvgTemperaturePoint row;
      row.p_chip = chip;
      row.p_vcsel = vcsel;
      row.average = point.oni_average;
      row.gradient = point.gradient;
      out.push_back(row);
      PH_LOG_INFO << "Pchip=" << chip << " W, PVCSEL=" << vcsel * 1e3
                  << " mW -> avg=" << row.average << " degC, gradient=" << row.gradient;
    }
  }
  return out;
}

std::vector<SnrSweepPoint> sweep_snr(const OnocDesignSpec& base,
                                     const std::vector<int>& ring_cases,
                                     const std::vector<power::ActivityKind>& activities) {
  PH_REQUIRE(!ring_cases.empty() && !activities.empty(), "empty sweep axes");
  std::vector<SnrSweepPoint> out;
  for (power::ActivityKind activity : activities) {
    for (int rc : ring_cases) {
      OnocDesignSpec spec = base;
      spec.placement = OniPlacementMode::kRing;
      spec.ring_case_id = rc;
      spec.activity = activity;
      const ThermalAwareDesigner designer(spec);
      const DesignReport report = designer.run();
      PH_REQUIRE(report.snr.has_value(), "ring run must produce an SNR report");

      SnrSweepPoint row;
      row.ring_case = rc;
      row.waveguide_length = report.snr->waveguide_length;
      row.activity = activity;
      row.worst_snr_db = report.snr->network.worst_snr_db;
      const noc::CommResult& worst = report.snr->network.worst_comm();
      row.signal_power = worst.signal_power;
      row.crosstalk_power = worst.crosstalk_power;
      double t_min = report.thermal.onis.front().average;
      double t_max = t_min;
      for (const OniThermalReport& r : report.thermal.onis) {
        t_min = std::min(t_min, r.average);
        t_max = std::max(t_max, r.average);
      }
      row.oni_t_min = t_min;
      row.oni_t_max = t_max;
      out.push_back(row);
      PH_LOG_INFO << "case " << rc << " (" << power::to_string(activity)
                  << "): worst SNR = " << row.worst_snr_db << " dB";
    }
  }
  return out;
}

}  // namespace photherm::core
