#include "core/spec.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm::core {

std::string to_string(OniPlacementMode mode) {
  switch (mode) {
    case OniPlacementMode::kRing:
      return "ring";
    case OniPlacementMode::kAllTiles:
      return "all_tiles";
  }
  return "?";
}

OniPlacementMode placement_from_string(const std::string& name) {
  const std::string wanted = to_lower(trim(name));
  if (wanted == "ring") {
    return OniPlacementMode::kRing;
  }
  if (wanted == "all_tiles") {
    return OniPlacementMode::kAllTiles;
  }
  throw SpecError("unknown ONI placement `" + name + "`; valid placements: ring, all_tiles");
}

void OnocDesignSpec::validate() const {
  std::vector<std::string> problems;
  const auto require = [&problems](bool ok, const std::string& message) {
    if (!ok) {
      problems.push_back(message);
    }
  };
  const auto positive = [&](double value, const char* field, const char* fix) {
    if (!(value > 0.0)) {
      std::ostringstream os;
      os << field << " is " << value << " but must be positive (" << fix << ")";
      problems.push_back(os.str());
    }
  };

  // Non-finite knobs poison the solver far from the cause; reject wholesale.
  const struct {
    double value;
    const char* field;
  } finite_checks[] = {
      {package.die_x, "package.die_x"},       {package.die_y, "package.die_y"},
      {package.h_top, "package.h_top"},       {package.h_bottom, "package.h_bottom"},
      {package.t_ambient, "package.t_ambient"}, {chip_power, "chip_power"},
      {p_vcsel, "p_vcsel"},                   {heater_ratio, "heater_ratio"},
      {global_cell_xy, "global_cell_xy"},     {oni_cell_xy, "oni_cell_xy"},
      {oni_cell_z, "oni_cell_z"},             {window_margin, "window_margin"},
  };
  for (const auto& check : finite_checks) {
    if (!std::isfinite(check.value)) {
      problems.push_back(std::string(check.field) + " is not a finite number");
    }
  }

  // Package / architecture.
  positive(package.die_x, "package.die_x", "die footprint in metres, e.g. 26.5e-3");
  positive(package.die_y, "package.die_y", "die footprint in metres, e.g. 21.4e-3");
  require(package.tiles_x >= 1 && package.tiles_y >= 1,
          "package.tiles_x/tiles_y must be at least 1 (the activity map needs tiles)");
  positive(package.heat_source_thickness, "package.heat_source_thickness",
           "BEOL slice carrying the tile power, e.g. 10e-6");
  require(package.heat_source_thickness <= package.beol,
          "package.heat_source_thickness exceeds the BEOL thickness; the heat-source "
          "slice must fit inside the BEOL layer");
  require(package.h_top >= 0.0 && package.h_bottom >= 0.0,
          "package.h_top/h_bottom must be non-negative film coefficients [W/m^2K]");
  require(package.h_top > 0.0 || package.h_bottom > 0.0,
          "package.h_top and h_bottom are both zero: an all-adiabatic package has no "
          "steady state; give at least one face a positive film coefficient");

  // ONI composition.
  require(oni_layout.waveguide_count >= 1,
          "oni_layout.waveguide_count is 0: an ONI needs at least one waveguide row");
  require(oni_layout.tx_per_waveguide >= 1,
          "oni_layout.tx_per_waveguide is 0: an ONI needs at least one VCSEL per row");
  require(oni_layout.rx_per_waveguide >= 1,
          "oni_layout.rx_per_waveguide is 0: an ONI needs at least one MR/PD site per row");
  require(active_tx_per_waveguide <= oni_layout.tx_per_waveguide,
          "active_tx_per_waveguide exceeds oni_layout.tx_per_waveguide; cannot drive "
          "more lasers than the interface has");

  // Placement.
  if (placement == OniPlacementMode::kRing) {
    require(ring_case_id >= 1 && ring_case_id <= 3,
            "ring_case_id must be 1, 2 or 3 (the paper's Fig. 11 cases)");
  }

  // Power knobs.
  require(chip_power >= 0.0, "chip_power must be non-negative [W]");
  require(p_vcsel >= 0.0, "p_vcsel must be non-negative [W]");
  if (!(heater_ratio >= 0.0 && heater_ratio <= kMaxHeaterRatio)) {
    std::ostringstream os;
    os << "heater_ratio is " << heater_ratio << " but must be in [0, " << kMaxHeaterRatio
       << "] (Pheater = ratio * PVCSEL; the paper's optimum is 0.3)";
    problems.push_back(os.str());
  }

  // Network load.
  require(waveguides >= 1, "waveguides must be at least 1");
  require(wdm_channels >= 1, "wdm_channels must be at least 1");
  require(fanout >= 1, "fanout must be at least 1 destination per ONI");

  // Thermal resolution.
  positive(global_cell_xy, "global_cell_xy", "coarse cell size in metres, e.g. 1e-3");
  positive(oni_cell_xy, "oni_cell_xy", "fine window cell size in metres, e.g. 5e-6");
  positive(oni_cell_z, "oni_cell_z", "fine z cell size in metres, e.g. 1e-6");
  require(window_margin >= 0.0, "window_margin must be non-negative [m]");
  require(!(oni_cell_xy > global_cell_xy),
          "oni_cell_xy is coarser than global_cell_xy; the two-level scheme expects the "
          "ONI window to refine the global mesh");

  if (!problems.empty()) {
    throw SpecError("invalid OnocDesignSpec: " + join(problems, "; "));
  }
}

}  // namespace photherm::core
