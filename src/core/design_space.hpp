/// \file design_space.hpp
/// \brief Sweep helpers for the design-space explorations of Sec. V:
/// PVCSEL x Pchip (Fig. 9-a), Pheater x PVCSEL (Fig. 9-b), heater on/off
/// (Fig. 10) and ring-length x activity (Fig. 12).
#pragma once

#include <functional>
#include <vector>

#include "core/methodology.hpp"

namespace photherm::core {

/// `count` evenly spaced values over [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// One row of the Fig. 9-a sweep.
struct AvgTemperaturePoint {
  double p_chip = 0.0;     ///< [W]
  double p_vcsel = 0.0;    ///< [W]
  double average = 0.0;    ///< representative ONI average T [degC]
  double gradient = 0.0;   ///< representative ONI gradient [degC]
};

/// Sweep PVCSEL x Pchip at fixed heater ratio; evaluates the representative
/// (most central) ONI. Grid points are solved concurrently per
/// `sweep.threads` and returned in row-major (p_chip outer) order,
/// bit-identical across thread counts.
std::vector<AvgTemperaturePoint> sweep_vcsel_chip_power(const OnocDesignSpec& base,
                                                        const std::vector<double>& p_chip,
                                                        const std::vector<double>& p_vcsel,
                                                        const SweepOptions& sweep = {});

/// One row of the Fig. 12 sweep.
struct SnrSweepPoint {
  int ring_case = 0;
  double waveguide_length = 0.0;  ///< [m]
  power::ActivityKind activity = power::ActivityKind::kUniform;
  double worst_snr_db = 0.0;
  double signal_power = 0.0;      ///< worst-case received signal [W]
  double crosstalk_power = 0.0;   ///< crosstalk at the worst receiver [W]
  double oni_t_min = 0.0;
  double oni_t_max = 0.0;
};

/// Sweep the three ring cases across activities (Fig. 12). Scenario solves
/// run concurrently per `sweep.threads`; row order (activity outer, case
/// inner) and values are independent of the thread count.
std::vector<SnrSweepPoint> sweep_snr(const OnocDesignSpec& base,
                                     const std::vector<int>& ring_cases,
                                     const std::vector<power::ActivityKind>& activities,
                                     const SweepOptions& sweep = {});

}  // namespace photherm::core
