/// \file methodology.hpp
/// \brief The paper's contribution: the thermal-aware design methodology
/// (Fig. 3). Pipeline: system specification -> steady-state thermal
/// simulation (two-level FVM) -> per-ONI temperature/gradient extraction ->
/// MR-heater design-space exploration -> SNR analysis -> design report.
#pragma once

#include <optional>
#include <vector>

#include "core/spec.hpp"
#include "noc/snr.hpp"
#include "soc/placement.hpp"
#include "thermal/two_level.hpp"
#include "util/csv.hpp"

namespace photherm::core {

/// Options shared by the design-space sweep engines. Scenario solves of a
/// sweep are independent, so they dispatch onto the shared thread pool
/// (util/thread_pool.hpp) and are collected in index order: results are
/// bit-identical for every thread count, including 1.
struct SweepOptions {
  /// Concurrent scenario solves. 0 = util::concurrency(); 1 = serial.
  std::size_t threads = 0;
};

/// Thermal summary of one ONI.
struct OniThermalReport {
  int oni = 0;
  double average = 0.0;        ///< ONI average temperature [degC]
  /// The paper's "gradient temperature" of an interface: spread between
  /// the per-device average temperatures (hot lasers vs cooler rings).
  double gradient = 0.0;
  double peak_spread = 0.0;    ///< raw max - min over every cell of the ONI
  double vcsel_average = 0.0;  ///< average over the VCSEL volumes
  double mr_average = 0.0;     ///< average over the MR volumes
  double vcsel_to_mr = 0.0;    ///< laser-to-ring average difference
};

struct ThermalReport {
  std::vector<OniThermalReport> onis;
  double chip_average = 0.0;    ///< over the heat-source layer
  double max_gradient = 0.0;    ///< worst intra-ONI gradient
  double oni_average = 0.0;     ///< mean of the ONI averages
  double oni_spread = 0.0;      ///< max - min of the ONI averages

  const OniThermalReport& hottest() const;
  Table to_table() const;
};

struct SnrReport {
  noc::NetworkResult network;
  double waveguide_length = 0.0;  ///< ring perimeter [m]
  std::size_t oni_count = 0;

  Table to_table() const;
};

struct DesignReport {
  OnocDesignSpec spec;
  ThermalReport thermal;
  std::optional<SnrReport> snr;  ///< absent for kAllTiles placement

  /// Design verdict: gradient below 1 degC (paper Sec. IV-C constraint)
  /// and every link closes.
  bool gradient_ok() const;
  bool links_ok() const;
};

/// Orchestrates the methodology for one design point; reusable across
/// sweeps (benches mutate the spec between runs).
class ThermalAwareDesigner {
 public:
  explicit ThermalAwareDesigner(OnocDesignSpec spec);

  const OnocDesignSpec& spec() const { return spec_; }

  /// Build the 3-D system (scene + ONIs) for the current spec.
  soc::SccSystem build_system() const;

  /// Steady-state thermal evaluation: coarse global solve plus a fine
  /// window per ONI. When `only_oni` is set, just that interface is
  /// refined (cuts sweep cost; the paper's Fig. 9 tracks one interface).
  ThermalReport evaluate_thermal(std::optional<int> only_oni = std::nullopt) const;

  /// SNR analysis from ONI temperatures (ring placement only).
  SnrReport analyze_snr(const ThermalReport& thermal) const;

  /// Full pipeline.
  DesignReport run() const;

 private:
  thermal::BoundarySet boundary_conditions() const;
  mesh::MeshOptions global_mesh_options() const;
  thermal::TwoLevelOptions two_level_options() const;

  OnocDesignSpec spec_;
};

/// Explore heater ratios and return (ratio, worst gradient, average) rows —
/// the Fig. 9-b / Fig. 10 experiment in library form. The gradient is
/// evaluated on the representative ONI closest to the die centre.
struct HeaterSweepPoint {
  double heater_ratio = 0.0;
  double p_heater = 0.0;       ///< [W]
  double gradient = 0.0;       ///< [degC]
  double oni_average = 0.0;    ///< [degC]
};

std::vector<HeaterSweepPoint> explore_heater_ratios(const OnocDesignSpec& base,
                                                    const std::vector<double>& ratios,
                                                    const SweepOptions& sweep = {});

/// Pick the sweep point with the smallest gradient.
const HeaterSweepPoint& best_heater_point(const std::vector<HeaterSweepPoint>& sweep);

}  // namespace photherm::core
