/// \file methodology.hpp
/// \brief The paper's contribution: the thermal-aware design methodology
/// (Fig. 3). Pipeline: system specification -> steady-state thermal
/// simulation (two-level FVM) -> per-ONI temperature/gradient extraction ->
/// MR-heater design-space exploration -> SNR analysis -> design report.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "noc/snr.hpp"
#include "soc/placement.hpp"
#include "thermal/two_level.hpp"
#include "util/csv.hpp"

namespace photherm::core {

/// Options shared by the design-space sweep engines. Scenario solves of a
/// sweep are independent, so they dispatch onto the shared thread pool
/// (util/thread_pool.hpp) and are collected in index order: results are
/// bit-identical for every thread count, including 1.
struct SweepOptions {
  /// Concurrent scenario solves. 0 = util::concurrency(); 1 = serial.
  std::size_t threads = 0;
  /// Steady-state solver override applied to every designer the sweep
  /// builds (operator kind, preconditioner, tolerances). Unset keeps the
  /// defaults. Enters the global-scene cache key, so sweeps run with
  /// different solver settings never share cached fields.
  std::optional<thermal::SteadyStateOptions> solver;
};

/// Thermal summary of one ONI.
struct OniThermalReport {
  int oni = 0;
  double average = 0.0;        ///< ONI average temperature [degC]
  /// The paper's "gradient temperature" of an interface: spread between
  /// the per-device average temperatures (hot lasers vs cooler rings).
  double gradient = 0.0;
  double peak_spread = 0.0;    ///< raw max - min over every cell of the ONI
  double vcsel_average = 0.0;  ///< average over the VCSEL volumes
  double mr_average = 0.0;     ///< average over the MR volumes
  double vcsel_to_mr = 0.0;    ///< laser-to-ring average difference
};

struct ThermalReport {
  std::vector<OniThermalReport> onis;
  double chip_average = 0.0;    ///< over the heat-source layer
  double max_gradient = 0.0;    ///< worst intra-ONI gradient
  double oni_average = 0.0;     ///< mean of the ONI averages
  double oni_spread = 0.0;      ///< max - min of the ONI averages

  const OniThermalReport& hottest() const;
  Table to_table() const;
};

struct SnrReport {
  noc::NetworkResult network;
  double waveguide_length = 0.0;  ///< ring perimeter [m]
  std::size_t oni_count = 0;

  Table to_table() const;
};

struct DesignReport {
  OnocDesignSpec spec;
  ThermalReport thermal;
  std::optional<SnrReport> snr;  ///< absent for kAllTiles placement

  /// Design verdict: gradient below 1 degC (paper Sec. IV-C constraint)
  /// and every link closes.
  bool gradient_ok() const;
  bool links_ok() const;
};

/// Reusable product of the coarse global pass of the two-level scheme: the
/// built system plus the coarse package-scale ThermalField, tagged with the
/// scene key it was solved for. Immutable after construction and safe to
/// share read-only across threads — the batch runner
/// (scenario/batch_runner.hpp) caches one per distinct global scene and
/// fans the per-ONI local-window solves of many scenarios out over it.
struct CoarseGlobalSolve {
  soc::SccSystem system;
  std::string key;  ///< global_scene_key() of the producing spec
  thermal::ThermalField field;
};

/// Orchestrates the methodology for one design point; reusable across
/// sweeps (benches mutate the spec between runs).
class ThermalAwareDesigner {
 public:
  /// Validates the spec (OnocDesignSpec::validate) before any meshing.
  explicit ThermalAwareDesigner(OnocDesignSpec spec);

  const OnocDesignSpec& spec() const { return spec_; }

  /// Override the steady-state solver options used by every solve this
  /// designer runs (global pass and local windows). The override enters
  /// global_scene_key(), so cached coarse solves are never shared across
  /// different solver settings.
  void set_steady_options(const thermal::SteadyStateOptions& options) {
    steady_override_ = options;
  }

  /// Build the 3-D system (scene + ONIs) for the current spec.
  soc::SccSystem build_system() const;

  /// Package boundary conditions for the current spec. Public so the
  /// timeline engine (timeline/playback.hpp) can assemble the transient
  /// stepping problem on the same scene the steady-state pipeline solves.
  thermal::BoundarySet boundary_conditions() const;

  /// Mesh options of the coarse package-scale pass (what solve_global()
  /// meshes with). Public for the same reason as boundary_conditions().
  mesh::MeshOptions global_mesh_options() const;

  /// Deterministic serialization of everything the coarse global solve
  /// depends on: scene blocks with material properties, boundary
  /// conditions, global mesh options and solver options. Two specs with
  /// equal keys produce bit-identical global fields (and identical
  /// systems), so the key is safe to use as a solve-cache key. Local-only
  /// knobs (oni_cell_*, window_margin) and SNR knobs (fanout, waveguides,
  /// wdm_channels, tech) deliberately do not enter the key.
  std::string global_scene_key() const;

  /// Run the coarse global pass: build the system and solve the
  /// package-scale steady state.
  CoarseGlobalSolve solve_global() const;

  /// Steady-state thermal evaluation: coarse global solve plus a fine
  /// window per ONI. When `only_oni` is set, just that interface is
  /// refined (cuts sweep cost; the paper's Fig. 9 tracks one interface).
  /// The per-ONI local-window solves are independent and run on the shared
  /// pool (`threads` as in SweepOptions: 0 = util::concurrency(), 1 =
  /// serial) with index-ordered collection — results are bit-identical for
  /// every thread count.
  ThermalReport evaluate_thermal(std::optional<int> only_oni = std::nullopt,
                                 std::size_t threads = 0) const;

  /// Same, reusing a coarse global solve produced by `solve_global()` of a
  /// spec with an equal `global_scene_key()` (e.g. this one). Bit-identical
  /// to the self-solving overload.
  ThermalReport evaluate_thermal(const CoarseGlobalSolve& global,
                                 std::optional<int> only_oni = std::nullopt,
                                 std::size_t threads = 0) const;

  /// SNR analysis from ONI temperatures (ring placement only).
  SnrReport analyze_snr(const ThermalReport& thermal) const;

  /// Full pipeline.
  DesignReport run() const;

  /// Full pipeline on a shared coarse global solve (see evaluate_thermal).
  DesignReport run(const CoarseGlobalSolve& global) const;

 private:
  thermal::TwoLevelOptions two_level_options() const;
  std::string make_global_key(const soc::SccSystem& system) const;
  OniThermalReport evaluate_oni_window(const soc::SccSystem& system,
                                       const thermal::BoundarySet& bcs,
                                       const thermal::TwoLevelOptions& options,
                                       const soc::OniInstance& oni,
                                       const thermal::ThermalField& global_field) const;

  OnocDesignSpec spec_;
  std::optional<thermal::SteadyStateOptions> steady_override_;
};

/// Explore heater ratios and return (ratio, worst gradient, average) rows —
/// the Fig. 9-b / Fig. 10 experiment in library form. The gradient is
/// evaluated on the representative ONI closest to the die centre.
struct HeaterSweepPoint {
  double heater_ratio = 0.0;
  double p_heater = 0.0;       ///< [W]
  double gradient = 0.0;       ///< [degC]
  double oni_average = 0.0;    ///< [degC]
};

std::vector<HeaterSweepPoint> explore_heater_ratios(const OnocDesignSpec& base,
                                                    const std::vector<double>& ratios,
                                                    const SweepOptions& sweep = {});

/// Pick the sweep point with the smallest gradient.
const HeaterSweepPoint& best_heater_point(const std::vector<HeaterSweepPoint>& sweep);

}  // namespace photherm::core
