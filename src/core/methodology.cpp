#include "core/methodology.hpp"

#include <algorithm>
#include <cmath>
#include <ios>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace photherm::core {

using geometry::BlockKind;
using geometry::Box3;
using geometry::Vec3;

const OniThermalReport& ThermalReport::hottest() const {
  PH_REQUIRE(!onis.empty(), "thermal report has no ONIs");
  const OniThermalReport* hottest = &onis.front();
  for (const OniThermalReport& r : onis) {
    if (r.average > hottest->average) {
      hottest = &r;
    }
  }
  return *hottest;
}

Table ThermalReport::to_table() const {
  Table table({"ONI", "avg T (degC)", "gradient (degC)", "VCSEL avg", "MR avg", "VCSEL-MR"});
  for (const OniThermalReport& r : onis) {
    table.add_row({static_cast<double>(r.oni), r.average, r.gradient, r.vcsel_average,
                   r.mr_average, r.vcsel_to_mr});
  }
  return table;
}

Table SnrReport::to_table() const {
  Table table({"src", "dst", "wg", "ch", "OPnet (mW)", "signal (mW)", "crosstalk (mW)",
               "SNR (dB)", "detectable"});
  for (const noc::CommResult& c : network.comms) {
    table.add_row({static_cast<double>(c.comm.src), static_cast<double>(c.comm.dst),
                   static_cast<double>(c.comm.waveguide), static_cast<double>(c.comm.channel),
                   c.op_net * 1e3, c.signal_power * 1e3, c.crosstalk_power * 1e3, c.snr_db,
                   std::string(c.detectable ? "yes" : "NO")});
  }
  return table;
}

bool DesignReport::gradient_ok() const { return thermal.max_gradient < 1.0; }

bool DesignReport::links_ok() const {
  return !snr || snr->network.undetectable_count == 0;
}

ThermalAwareDesigner::ThermalAwareDesigner(OnocDesignSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

soc::SccSystem ThermalAwareDesigner::build_system() const {
  soc::SccBuilder builder(spec_.package, spec_.oni_layout);
  builder.set_activity(spec_.activity, spec_.chip_power).set_seed(spec_.seed);

  soc::OniPowerConfig power;
  power.p_vcsel = spec_.p_vcsel;
  power.p_driver = spec_.p_driver();
  power.p_heater = spec_.p_heater();
  power.active_tx_per_waveguide = spec_.active_tx_per_waveguide;
  builder.set_oni_power(power);

  if (spec_.placement == OniPlacementMode::kRing) {
    const soc::RingCase rc =
        soc::ring_case(spec_.ring_case_id, spec_.package.die_x, spec_.package.die_y);
    for (const soc::RingSite& site : rc.sites) {
      builder.add_oni(site.center.x, site.center.y);
    }
  } else {
    for (std::size_t j = 0; j < spec_.package.tiles_y; ++j) {
      for (std::size_t i = 0; i < spec_.package.tiles_x; ++i) {
        builder.add_oni_on_tile(i, j);
      }
    }
  }
  return builder.build();
}

thermal::BoundarySet ThermalAwareDesigner::boundary_conditions() const {
  return thermal::BoundarySet::package(spec_.package.h_top, spec_.package.h_bottom,
                                       spec_.package.t_ambient);
}

mesh::MeshOptions ThermalAwareDesigner::global_mesh_options() const {
  mesh::MeshOptions options;
  options.default_max_cell_xy = spec_.global_cell_xy;
  options.min_feature_size_xy = 200e-6;  // skip device geometry at chip scale
  return options;
}

thermal::TwoLevelOptions ThermalAwareDesigner::two_level_options() const {
  thermal::TwoLevelOptions options;
  options.global_mesh = global_mesh_options();
  options.local_mesh.default_max_cell_xy = 25e-6;
  options.local_mesh.min_feature_size_xy = 0.0;
  options.window_margin = spec_.window_margin;
  if (steady_override_) {
    options.solver = *steady_override_;
  }
  return options;
}

namespace {

/// Average temperature over a set of device blocks (volume-weighted by
/// block; blocks of one ONI have equal volumes per kind).
double average_over_blocks(const thermal::ThermalField& field,
                           const std::vector<const geometry::Block*>& blocks) {
  PH_REQUIRE(!blocks.empty(), "no device blocks to average over");
  double acc = 0.0;
  for (const geometry::Block* b : blocks) {
    acc += field.average_in(b->box);
  }
  return acc / static_cast<double>(blocks.size());
}

/// Spread between the per-device average temperatures of the lasers and
/// rings of one ONI — the paper's intra-interface "gradient temperature"
/// (the quantity the MR heaters must keep below 1 degC so that a single
/// run-time calibration covers the whole interface).
double device_gradient(const thermal::ThermalField& field,
                       const std::vector<const geometry::Block*>& vcsels,
                       const std::vector<const geometry::Block*>& rings) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto* list : {&vcsels, &rings}) {
    for (const geometry::Block* b : *list) {
      const double t = field.average_in(b->box);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  PH_REQUIRE(lo <= hi, "no devices found for the gradient evaluation");
  return hi - lo;
}

/// Stable spelling of a double for the scene key: hexfloat is exact, so two
/// scenes serialize identically iff every number is bit-identical.
void key_number(std::ostream& os, double value) { os << std::hexfloat << value << '|'; }

}  // namespace

std::string ThermalAwareDesigner::make_global_key(const soc::SccSystem& system) const {
  std::ostringstream os;
  const auto num = [&os](double v) { key_number(os, v); };

  const thermal::BoundarySet bcs = boundary_conditions();
  os << "bcs:";
  for (const thermal::FaceBc& bc : bcs.faces) {
    os << static_cast<int>(bc.kind) << '|';
    num(bc.h);
    num(bc.t_ambient);
    num(bc.t_wall);
  }

  const thermal::TwoLevelOptions options = two_level_options();
  os << "mesh:" << options.global_mesh.background_material << '|'
     << options.global_mesh.max_cells << '|';
  num(options.global_mesh.default_max_cell_xy);
  num(options.global_mesh.default_max_cell_z);
  num(options.global_mesh.min_feature_size_xy);

  // `threads` is deliberately excluded: results are bit-identical for every
  // thread count (thread_pool.hpp contract).
  const math::SolverOptions& solver = options.solver.solver;
  os << "solver:" << solver.max_iterations << '|' << static_cast<int>(solver.preconditioner)
     << '|' << static_cast<int>(options.solver.operator_kind) << '|'
     << solver.chebyshev.degree << '|';
  num(solver.chebyshev.eig_ratio);
  num(solver.rel_tolerance);
  num(solver.convergence_slack);

  os << "scene:";
  const geometry::MaterialLibrary& materials = system.scene.materials();
  for (const geometry::Block& block : system.scene.blocks()) {
    const geometry::Material& mat = materials.get(block.material);
    os << block.name << '|' << static_cast<int>(block.kind) << '|' << block.group << '|'
       << mat.name << '|';
    num(block.box.lo.x);
    num(block.box.lo.y);
    num(block.box.lo.z);
    num(block.box.hi.x);
    num(block.box.hi.y);
    num(block.box.hi.z);
    num(block.power);
    num(mat.conductivity);
    num(mat.density);
    num(mat.specific_heat);
    num(mat.conductivity_exponent);
    num(mat.reference_temperature);
  }

  os << "onis:";
  for (const soc::OniInstance& oni : system.onis) {
    os << oni.index << '|';
    num(oni.footprint.lo.x);
    num(oni.footprint.lo.y);
    num(oni.footprint.lo.z);
    num(oni.footprint.hi.x);
    num(oni.footprint.hi.y);
    num(oni.footprint.hi.z);
  }
  return os.str();
}

std::string ThermalAwareDesigner::global_scene_key() const {
  return make_global_key(build_system());
}

CoarseGlobalSolve ThermalAwareDesigner::solve_global() const {
  soc::SccSystem system = build_system();
  std::string key = make_global_key(system);
  const thermal::TwoLevelOptions options = two_level_options();
  auto global_mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(system.scene, options.global_mesh));
  thermal::ThermalField field =
      thermal::solve_steady_state(std::move(global_mesh), boundary_conditions(), options.solver);
  return CoarseGlobalSolve{std::move(system), std::move(key), std::move(field)};
}

OniThermalReport ThermalAwareDesigner::evaluate_oni_window(
    const soc::SccSystem& system, const thermal::BoundarySet& bcs,
    const thermal::TwoLevelOptions& options, const soc::OniInstance& oni,
    const thermal::ThermalField& global_field) const {
  // Fine window around this interface; refinement box = the footprint.
  thermal::TwoLevelOptions local_options = options;
  mesh::RefinementBox refine;
  refine.box =
      Box3::make({oni.footprint.lo.x, oni.footprint.lo.y, system.z.beol_lo},
                 {oni.footprint.hi.x, oni.footprint.hi.y, system.z.optical_hi + 5e-6});
  refine.max_cell_xy = spec_.oni_cell_xy;
  refine.max_cell_z = spec_.oni_cell_z;
  local_options.local_mesh.refinements.push_back(refine);

  const Box3 domain = system.scene.bounding_box();
  const Box3 window = Box3::make({oni.footprint.lo.x, oni.footprint.lo.y, domain.lo.z},
                                 {oni.footprint.hi.x, oni.footprint.hi.y, domain.hi.z});
  const thermal::ThermalField local_field =
      thermal::solve_local_window(system.scene, bcs, global_field, window, local_options);

  const auto vcsels = system.scene.find(BlockKind::kVcsel, oni.index);
  const auto rings = system.scene.find(BlockKind::kMicroRing, oni.index);
  OniThermalReport r;
  r.oni = oni.index;
  r.average = local_field.average_in(oni.footprint);
  r.gradient = device_gradient(local_field, vcsels, rings);
  r.peak_spread = local_field.spread_in(oni.footprint);
  r.vcsel_average = average_over_blocks(local_field, vcsels);
  r.mr_average = average_over_blocks(local_field, rings);
  r.vcsel_to_mr = r.vcsel_average - r.mr_average;
  return r;
}

ThermalReport ThermalAwareDesigner::evaluate_thermal(std::optional<int> only_oni,
                                                     std::size_t threads) const {
  return evaluate_thermal(solve_global(), only_oni, threads);
}

ThermalReport ThermalAwareDesigner::evaluate_thermal(const CoarseGlobalSolve& global,
                                                     std::optional<int> only_oni,
                                                     std::size_t threads) const {
  const soc::SccSystem& system = global.system;
  const thermal::BoundarySet bcs = boundary_conditions();
  const thermal::TwoLevelOptions options = two_level_options();

  ThermalReport report;
  const Box3 heat_box = Box3::make({0.0, 0.0, system.z.heat_lo},
                                   {spec_.package.die_x, spec_.package.die_y, system.z.heat_hi});
  report.chip_average = global.field.average_in(heat_box);

  std::vector<const soc::OniInstance*> selected;
  for (const soc::OniInstance& oni : system.onis) {
    if (!only_oni || oni.index == *only_oni) {
      selected.push_back(&oni);
    }
  }
  PH_REQUIRE(!selected.empty(), "no ONI was evaluated (bad only_oni index?)");

  // Each window is an independent local solve; results land at the ONI's
  // slot in `selected` order, so values and order match the serial loop at
  // every thread count. Nested regions (the solver kernels inside each
  // window) run inline on the worker (thread_pool.hpp).
  report.onis.resize(selected.size());
  util::parallel_for(
      selected.size(), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          report.onis[idx] = evaluate_oni_window(system, bcs, options, *selected[idx],
                                                 global.field);
        }
      },
      threads);

  std::vector<double> averages;
  report.max_gradient = 0.0;
  for (const OniThermalReport& r : report.onis) {
    averages.push_back(r.average);
    report.max_gradient = std::max(report.max_gradient, r.gradient);
  }
  report.oni_average = mean(averages);
  report.oni_spread = spread(averages);
  return report;
}

SnrReport ThermalAwareDesigner::analyze_snr(const ThermalReport& thermal) const {
  PH_REQUIRE(spec_.placement == OniPlacementMode::kRing,
             "SNR analysis requires a ring placement");
  const soc::RingCase rc =
      soc::ring_case(spec_.ring_case_id, spec_.package.die_x, spec_.package.die_y);
  PH_REQUIRE(thermal.onis.size() == rc.oni_count,
             "thermal report does not cover every ring ONI");

  noc::SnrModelConfig model = make_snr_model(spec_.tech);
  model.channels.channel_count = spec_.wdm_channels;

  // Lasers run hotter than the interface average; use the measured
  // laser-to-ring offset as the self-heating term.
  std::vector<double> offsets;
  std::vector<double> temps(rc.oni_count, 0.0);
  for (const OniThermalReport& r : thermal.onis) {
    PH_REQUIRE(static_cast<std::size_t>(r.oni) < rc.oni_count, "ONI index out of range");
    temps[static_cast<std::size_t>(r.oni)] = r.average;
    offsets.push_back(r.vcsel_average - r.average);
  }
  model.vcsel_self_heating = mean(offsets);

  const noc::RingTopology topology = noc::RingTopology::uniform(rc.oni_count, rc.perimeter);
  const std::size_t fanout = std::min(spec_.fanout, rc.oni_count - 1);
  const auto requests = noc::spread_requests(rc.oni_count, fanout);
  const noc::OrnocAssigner assigner(rc.oni_count, spec_.waveguides, spec_.wdm_channels);
  const auto comms = assigner.assign(requests);

  const noc::SnrAnalyzer analyzer(topology, model);
  SnrReport report;
  report.network = analyzer.analyze(comms, temps, noc::CommDrive{spec_.p_vcsel});
  report.waveguide_length = rc.perimeter;
  report.oni_count = rc.oni_count;
  return report;
}

DesignReport ThermalAwareDesigner::run() const { return run(solve_global()); }

DesignReport ThermalAwareDesigner::run(const CoarseGlobalSolve& global) const {
  DesignReport report;
  report.spec = spec_;
  report.thermal = evaluate_thermal(global);
  if (spec_.placement == OniPlacementMode::kRing) {
    report.snr = analyze_snr(report.thermal);
  }
  return report;
}

std::vector<HeaterSweepPoint> explore_heater_ratios(const OnocDesignSpec& base,
                                                    const std::vector<double>& ratios,
                                                    const SweepOptions& sweep_options) {
  PH_REQUIRE(!ratios.empty(), "no heater ratios to explore");
  std::vector<HeaterSweepPoint> sweep(ratios.size());

  // Representative interface: the one closest to the die centre.
  const ThermalAwareDesigner probe(base);
  const soc::SccSystem system = probe.build_system();
  PH_REQUIRE(!system.onis.empty(), "no ONI in the system");
  const Vec3 center{base.package.die_x / 2.0, base.package.die_y / 2.0, 0.0};
  int representative = system.onis.front().index;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const soc::OniInstance& oni : system.onis) {
    Vec3 c = oni.footprint.center();
    c.z = 0.0;
    const double d = geometry::distance(c, center);
    if (d < best_distance) {
      best_distance = d;
      representative = oni.index;
    }
  }

  // Each ratio is an independent steady-state solve; results land at their
  // ratio's index, so order and values do not depend on the thread count.
  util::parallel_for(
      ratios.size(), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t idx = begin; idx < end; ++idx) {
          OnocDesignSpec spec = base;
          spec.heater_ratio = ratios[idx];
          ThermalAwareDesigner designer(spec);
          if (sweep_options.solver) {
            designer.set_steady_options(*sweep_options.solver);
          }
          const ThermalReport thermal = designer.evaluate_thermal(representative);
          HeaterSweepPoint point;
          point.heater_ratio = ratios[idx];
          point.p_heater = spec.p_heater();
          point.gradient = thermal.onis.front().gradient;
          point.oni_average = thermal.onis.front().average;
          sweep[idx] = point;
          PH_LOG_DEBUG << "heater ratio " << point.heater_ratio << ": gradient " << point.gradient
                       << " degC";
        }
      },
      sweep_options.threads);
  return sweep;
}

const HeaterSweepPoint& best_heater_point(const std::vector<HeaterSweepPoint>& sweep) {
  PH_REQUIRE(!sweep.empty(), "empty heater sweep");
  const HeaterSweepPoint* best = &sweep.front();
  for (const HeaterSweepPoint& p : sweep) {
    if (p.gradient < best->gradient) {
      best = &p;
    }
  }
  return *best;
}

}  // namespace photherm::core
