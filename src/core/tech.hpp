/// \file tech.hpp
/// \brief Technological parameters of the paper's Table 1 and the derived
/// default device configuration used across benches and examples.
#pragma once

#include "noc/snr.hpp"
#include "util/csv.hpp"

namespace photherm::core {

/// Table 1 of the paper.
struct TechnologyParameters {
  double wavelength = 1550e-9;          ///< wavelength range centre [m]
  double bandwidth_3db = 1.55e-9;       ///< MR BW3dB [m]
  double pd_sensitivity_dbm = -20.0;    ///< photodetector sensitivity
  double thermal_sensitivity = 0.1e-9;  ///< [m/degC]
  double propagation_loss_db_cm = 0.5;  ///< [dB/cm], ref [3]
  double taper_coupling = 0.70;         ///< Fig. 2 assumption
};

/// Device-model configuration consistent with `tech` (VCSEL, MR,
/// waveguide, taper, photodetector and the WDM channel plan).
noc::SnrModelConfig make_snr_model(const TechnologyParameters& tech = {});

/// Printable version of Table 1.
Table technology_table(const TechnologyParameters& tech = {});

}  // namespace photherm::core
