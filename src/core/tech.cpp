#include "core/tech.hpp"

namespace photherm::core {

noc::SnrModelConfig make_snr_model(const TechnologyParameters& tech) {
  noc::SnrModelConfig config;
  config.vcsel.wavelength = tech.wavelength;
  config.vcsel.dlambda_dt = tech.thermal_sensitivity;
  config.microring.resonance = tech.wavelength;
  config.microring.bandwidth_3db = tech.bandwidth_3db;
  config.microring.dlambda_dt = tech.thermal_sensitivity;
  config.waveguide.propagation_loss_db_per_cm = tech.propagation_loss_db_cm;
  config.taper.coupling_efficiency = tech.taper_coupling;
  config.photodetector.sensitivity_dbm = tech.pd_sensitivity_dbm;
  config.channels.center = tech.wavelength;
  return config;
}

Table technology_table(const TechnologyParameters& tech) {
  Table table({"Parameter", "Value"});
  table.add_row({std::string("Wavelength range"), std::string("1550 nm")});
  table.add_row({std::string("BW3-dB"), tech.bandwidth_3db * 1e9});
  table.add_row({std::string("Photodetector sensitivity (dBm)"), tech.pd_sensitivity_dbm});
  table.add_row({std::string("Thermal sensitivity (nm/degC)"), tech.thermal_sensitivity * 1e9});
  table.add_row({std::string("Propagation loss (dB/cm)"), tech.propagation_loss_db_cm});
  table.add_row({std::string("Taper coupling efficiency"), tech.taper_coupling});
  return table;
}

}  // namespace photherm::core
