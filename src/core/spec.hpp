/// \file spec.hpp
/// \brief Complete specification of a thermal-aware ONoC design point —
/// the "system specification" inputs of the methodology (Fig. 3):
/// packaging, architecture, ONI composition, VCSEL drive, heater power and
/// chip activity.
#pragma once

#include <cstdint>
#include <string>

#include "core/tech.hpp"
#include "mesh/mesh.hpp"
#include "power/activity.hpp"
#include "soc/scc.hpp"

namespace photherm::core {

/// Where the ONIs sit on the optical layer.
enum class OniPlacementMode {
  kRing,     ///< evenly spaced along a ring waveguide (Fig. 11 cases)
  kAllTiles, ///< one ONI per tile (the thermal sweeps of Fig. 9/10)
};

std::string to_string(OniPlacementMode mode);

/// Inverse of to_string ("ring" / "all_tiles", case-insensitive); throws
/// SpecError on an unknown name.
OniPlacementMode placement_from_string(const std::string& name);

struct OnocDesignSpec {
  // Architecture / packaging.
  soc::SccPackageConfig package;
  soc::OniLayoutParams oni_layout;

  // Activity (Fig. 3 "MPSoC activity").
  power::ActivityKind activity = power::ActivityKind::kUniform;
  double chip_power = 25.0;        ///< [W]
  std::uint64_t seed = 1;          ///< random-activity seed

  // ONI placement.
  OniPlacementMode placement = OniPlacementMode::kRing;
  int ring_case_id = 1;            ///< Fig. 11 case (1, 2 or 3)

  // Design knobs (Fig. 3 "VCSEL current", "MR heater").
  double p_vcsel = 3.6e-3;         ///< dissipated power per active VCSEL [W]
  double heater_ratio = 0.30;      ///< Pheater = ratio * PVCSEL (paper optimum)
  std::size_t active_tx_per_waveguide = 4;  ///< paper worst case: all lasers on
  bool p_driver_equals_p_vcsel = true;  ///< worst case assumed in Sec. V-B

  // Devices.
  TechnologyParameters tech;

  // Network load for the SNR analysis.
  std::size_t fanout = 3;          ///< destinations per ONI
  std::size_t waveguides = 4;
  std::size_t wdm_channels = 8;

  // Thermal resolution (two-level scheme).
  double global_cell_xy = 1e-3;    ///< coarse full-package cells
  double oni_cell_xy = 5e-6;       ///< fine cells inside the ONI window
  double oni_cell_z = 1e-6;        ///< fine z cells inside the optical layer
  double window_margin = 150e-6;   ///< local window growth around the ONI

  /// Heater power for the current knobs [W].
  double p_heater() const { return heater_ratio * p_vcsel; }

  /// Driver power per active laser [W].
  double p_driver() const { return p_driver_equals_p_vcsel ? p_vcsel : 0.0; }

  /// Largest heater ratio validate() accepts; the paper explores <= 0.6 and
  /// anything past this bound is a typo, not a design point.
  static constexpr double kMaxHeaterRatio = 10.0;

  /// Check the spec before it reaches the mesh/solver stack and throw
  /// SpecError listing *every* problem found (non-positive cell sizes,
  /// empty ONI device lists, out-of-range heater ratios, ...) — malformed
  /// specs should fail here with actionable messages, not as deep solver or
  /// meshing errors. ThermalAwareDesigner calls this on construction.
  void validate() const;
};

}  // namespace photherm::core
