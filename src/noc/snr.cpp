#include "noc/snr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::noc {

using photonics::ChannelPlan;
using photonics::MicroRing;
using photonics::Photodetector;
using photonics::Taper;
using photonics::Vcsel;
using photonics::Waveguide;

const CommResult& NetworkResult::worst_comm() const {
  PH_REQUIRE(!comms.empty(), "no communications analysed");
  const CommResult* worst = &comms.front();
  for (const CommResult& c : comms) {
    if (c.snr_db < worst->snr_db) {
      worst = &c;
    }
  }
  return *worst;
}

SnrAnalyzer::SnrAnalyzer(RingTopology topology, SnrModelConfig config)
    : topology_(std::move(topology)), config_(std::move(config)) {}

NetworkResult SnrAnalyzer::analyze(const std::vector<Communication>& comms,
                                   const std::vector<double>& node_temperatures,
                                   const std::vector<CommDrive>& drives) const {
  const std::size_t n = topology_.node_count();
  PH_REQUIRE(node_temperatures.size() == n, "one temperature per ONI required");
  PH_REQUIRE(!comms.empty(), "no communications to analyse");
  PH_REQUIRE(drives.size() == 1 || drives.size() == comms.size(),
             "drives: provide one shared entry or one per communication");

  const Vcsel vcsel(config_.vcsel);
  const MicroRing ring_model(config_.microring);
  const Waveguide waveguide(config_.waveguide);
  const Taper taper(config_.taper);
  const Photodetector pd(config_.photodetector);
  const ChannelPlan plan(config_.channels);

  for (const Communication& c : comms) {
    PH_REQUIRE(c.src < n && c.dst < n, "communication endpoint out of range");
    PH_REQUIRE(c.channel < plan.size(), "communication channel out of range");
  }

  // Receiver lookup: for (node, waveguide) the list of comm indices whose
  // destination MR sits there.
  std::vector<std::vector<std::size_t>> receivers_at(n);
  for (std::size_t i = 0; i < comms.size(); ++i) {
    receivers_at[comms[i].dst].push_back(i);
  }

  std::vector<CommResult> results(comms.size());
  std::vector<double> crosstalk(comms.size(), 0.0);

  // Emission pass: walk each communication along the ring, dropping power
  // at every receiver MR it passes (paper Sec. IV-C loss recursion).
  for (std::size_t i = 0; i < comms.size(); ++i) {
    const Communication& c = comms[i];
    const CommDrive& drive = drives.size() == 1 ? drives.front() : drives[i];
    CommResult& r = results[i];
    r.comm = c;

    const double t_src_oni = node_temperatures[c.src];
    const double t_junction = t_src_oni + config_.vcsel_self_heating;
    const double i_drive =
        drive.i_vcsel > 0.0 ? drive.i_vcsel
                            : vcsel.current_for_dissipated_power(drive.p_vcsel, t_junction);
    r.op_vcsel = vcsel.output_power(i_drive, t_junction);
    r.op_net = taper.coupled_power(r.op_vcsel);

    // Emitted wavelength: channel design value shifted by the source
    // temperature (VCSEL cavity drifts like the rings: ~0.1 nm/degC).
    const double lambda_emit = plan.wavelength(c.channel) +
                               config_.vcsel.dlambda_dt * (t_junction - config_.vcsel.t_ref);

    const Direction dir = OrnocAssigner::direction_of(c.waveguide);
    double p = r.op_net;
    std::size_t node = c.src;
    // Walk the FULL ring, not just to the destination: the intended MR
    // drops most but not all of the power (thermal misalignment leaves a
    // leak), and the remainder keeps circulating, polluting downstream
    // same-wavelength receivers — the paper's wrap-around recursion
    // (Delta-lambda_k0 = Delta-lambda_kN in Sec. IV-C).
    do {
      // Traverse the segment leaving `node`.
      const double seg_len = topology_.arc_length(
          node, dir == Direction::kClockwise ? (node + 1) % n : (node + n - 1) % n, dir);
      p *= waveguide.transmission(seg_len);
      node = dir == Direction::kClockwise ? (node + 1) % n : (node + n - 1) % n;
      if (node == c.src) {
        break;  // back at the source: the injection point terminates the loop
      }

      // Interact with every receiver MR on this waveguide at `node`.
      for (std::size_t rx : receivers_at[node]) {
        const Communication& owner = comms[rx];
        if (owner.waveguide != c.waveguide) {
          continue;
        }
        const double t_node = node_temperatures[node];
        // Ring resonance drift, including the athermal-cladding factor
        // (same expression as MicroRing::resonance_at, re-anchored to the
        // ring's design channel).
        const double lambda_mr =
            plan.wavelength(owner.channel) +
            config_.microring.athermal_factor * config_.microring.dlambda_dt *
                (t_node - config_.microring.t_ref);
        const double drop = ring_model.drop_fraction_detuned(lambda_emit - lambda_mr);
        const double dropped = p * drop * db_to_linear(config_.microring.drop_loss_db);
        if (node == c.dst && rx == i) {
          r.signal_power = dropped;
        } else {
          crosstalk[rx] += dropped;
        }
        p *= (1.0 - drop) * db_to_linear(config_.microring.through_loss_db);
      }
    } while (node != c.src);
  }

  NetworkResult net;
  net.comms = std::move(results);
  net.worst_snr_db = std::numeric_limits<double>::infinity();
  net.min_signal_power = std::numeric_limits<double>::infinity();
  net.max_crosstalk_power = 0.0;
  for (std::size_t i = 0; i < net.comms.size(); ++i) {
    CommResult& r = net.comms[i];
    r.crosstalk_power = crosstalk[i];
    const double noise = std::max(crosstalk[i], config_.noise_floor);
    r.snr_db = ratio_db(std::max(r.signal_power, 1e-30), noise);
    r.detectable = pd.detects(r.signal_power);
    if (!r.detectable) {
      ++net.undetectable_count;
    }
    net.worst_snr_db = std::min(net.worst_snr_db, r.snr_db);
    net.min_signal_power = std::min(net.min_signal_power, r.signal_power);
    net.max_crosstalk_power = std::max(net.max_crosstalk_power, r.crosstalk_power);
  }
  return net;
}

NetworkResult SnrAnalyzer::analyze(const std::vector<Communication>& comms,
                                   const std::vector<double>& node_temperatures,
                                   const CommDrive& drive) const {
  return analyze(comms, node_temperatures, std::vector<CommDrive>{drive});
}

}  // namespace photherm::noc
