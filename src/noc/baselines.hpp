/// \file baselines.hpp
/// \brief Insertion-loss models of the wavelength-routed crossbars ORNoC is
/// compared against in Sec. II / ref [20]: Matrix [18], lambda-router [1]
/// and Snake [4]. Each topology is reduced to per-path counts of MR
/// pass-bys, MR drops, waveguide crossings and path length; the paper's
/// claim is that ORNoC (crossing-free ring) cuts worst-case insertion loss
/// by ~42.5 % and average loss by ~38 % at 4x4 scale.
#pragma once

#include <string>
#include <vector>

namespace photherm::noc {

enum class CrossbarTopology { kOrnoc, kMatrix, kLambdaRouter, kSnake };

std::string to_string(CrossbarTopology topology);

/// Loss coefficients shared by all topologies.
struct CrossbarLossParams {
  double drop_loss_db = 0.5;       ///< MR drop at the destination
  double through_loss_db = 0.02;   ///< per MR passed in the through state
  double crossing_loss_db = 0.04;  ///< per waveguide crossing
  double propagation_db_per_cm = 0.5;
  double node_pitch = 2e-3;        ///< physical spacing between adjacent ONIs [m]
  /// Receiver rings per waveguide per ONI that an ORNoC signal passes at
  /// every intermediate node (Fig. 1-b layout: 4).
  int ornoc_rx_per_node = 4;
};

/// Abstract per-path cost.
struct PathModel {
  int throughs = 0;
  int drops = 1;
  int crossings = 0;
  double length = 0.0;  ///< [m]
};

/// Path model of the communication src -> dst in an N-node instance of
/// `topology`. Models follow the structural analyses of ref [20].
PathModel path_model(CrossbarTopology topology, std::size_t n, std::size_t src, std::size_t dst,
                     const CrossbarLossParams& params);

/// Insertion loss of a path [dB].
double insertion_loss_db(const PathModel& path, const CrossbarLossParams& params);

/// Worst-case insertion loss over all src != dst pairs [dB].
double worst_case_loss_db(CrossbarTopology topology, std::size_t n,
                          const CrossbarLossParams& params);

/// Average insertion loss over all src != dst pairs [dB].
double average_loss_db(CrossbarTopology topology, std::size_t n,
                       const CrossbarLossParams& params);

}  // namespace photherm::noc
