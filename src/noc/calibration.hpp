/// \file calibration.hpp
/// \brief Run-time MR calibration power model (paper Sec. III-B).
///
/// Device-level calibration re-aligns each microring to its channel by
/// voltage tuning (blue shift, 130 uW/nm) or heat tuning (red shift,
/// 190 uW/nm) [17]. For Corona-scale networks (~1.1e6 MRs) the paper notes
/// this budget exceeds 50 % of total network power, which motivates the
/// design-time gradient minimisation: with a < 1 degC intra-ONI gradient a
/// single trim per ONI cluster suffices instead of one per ring.
#pragma once

#include <cstddef>
#include <vector>

namespace photherm::noc {

struct CalibrationParams {
  double blue_shift_uw_per_nm = 130.0;  ///< voltage tuning [17]
  double red_shift_uw_per_nm = 190.0;   ///< heat tuning [17]
  double thermal_sensitivity = 0.1e-9;  ///< ring drift [m/degC]
  /// Largest misalignment correctable by voltage (blue) tuning before the
  /// controller must fall back to heating [m].
  double blue_shift_range = 0.4e-9;
};

/// Trim decision for one ring (or one ring cluster).
struct RingTrim {
  double misalignment = 0.0;  ///< signed resonance error [m]; >0 = red-shifted
  double power = 0.0;         ///< electrical tuning power [W]
  bool uses_heater = false;   ///< red shift (heating) vs blue shift (voltage)
};

/// Per-ring trim for a given resonance misalignment (signed, metres;
/// positive = ring is red of its channel and must be blue-shifted).
RingTrim trim_for_misalignment(double misalignment, const CalibrationParams& params);

/// Calibration plan for a set of rings given their temperature errors
/// relative to the reference each should sit at.
struct CalibrationPlan {
  std::vector<RingTrim> trims;
  double total_power = 0.0;      ///< [W]
  std::size_t heater_count = 0;  ///< rings needing red (heat) tuning
};

/// Per-ring calibration: each ring gets its own trim. Rings are trimmed
/// independently, so network-scale plans (Corona: ~1.1e6 MRs) are computed
/// on the shared thread pool; `threads == 0` means `util::concurrency()`,
/// and the plan (order, powers, totals) is bit-identical for every thread
/// count.
CalibrationPlan per_ring_plan(const std::vector<double>& ring_temperature_errors,
                              const CalibrationParams& params, std::size_t threads = 0);

/// Clustered calibration: rings are grouped (e.g. one cluster per ONI) and
/// each cluster is trimmed by its *mean* error; the residual within-cluster
/// misalignment is reported so the caller can check it against the MR
/// bandwidth budget. `cluster_of[i]` maps ring i to its cluster id.
struct ClusteredPlan {
  CalibrationPlan plan;             ///< one trim per cluster
  double worst_residual = 0.0;      ///< largest |error - cluster mean| [m]
};

/// Deterministically parallel like `per_ring_plan` (the residual scan is a
/// max-reduction, which is order-independent).
ClusteredPlan clustered_plan(const std::vector<double>& ring_temperature_errors,
                             const std::vector<std::size_t>& cluster_of,
                             const CalibrationParams& params, std::size_t threads = 0);

/// The Sec. III-B headline: estimated calibration power for `ring_count`
/// rings with a typical absolute misalignment `typical_misalignment` [m]
/// (e.g. Corona: 1.1e6 rings, ~1 nm -> watts-scale budget).
double network_calibration_power(std::size_t ring_count, double typical_misalignment,
                                 const CalibrationParams& params);

}  // namespace photherm::noc
