#include "noc/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace photherm::noc {

RingTopology RingTopology::uniform(std::size_t count, double perimeter) {
  PH_REQUIRE(count >= 2, "a ring needs at least two nodes");
  PH_REQUIRE(perimeter > 0.0, "perimeter must be positive");
  return RingTopology(
      std::vector<double>(count, perimeter / static_cast<double>(count)));
}

RingTopology::RingTopology(std::vector<double> segment_lengths)
    : segments_(std::move(segment_lengths)) {
  PH_REQUIRE(segments_.size() >= 2, "a ring needs at least two segments");
  for (double s : segments_) {
    PH_REQUIRE(s > 0.0, "segment lengths must be positive");
  }
}

double RingTopology::perimeter() const {
  double total = 0.0;
  for (double s : segments_) {
    total += s;
  }
  return total;
}

namespace {
std::size_t next_node(std::size_t node, std::size_t n, Direction dir) {
  return dir == Direction::kClockwise ? (node + 1) % n : (node + n - 1) % n;
}
}  // namespace

double RingTopology::arc_length(std::size_t src, std::size_t dst, Direction dir) const {
  const std::size_t n = node_count();
  PH_REQUIRE(src < n && dst < n, "node index out of range");
  PH_REQUIRE(src != dst, "arc between a node and itself");
  double total = 0.0;
  std::size_t node = src;
  while (node != dst) {
    // Clockwise segment i joins node i and node i+1; counter-clockwise from
    // `node` we traverse segment (node-1) mod n.
    const std::size_t seg = dir == Direction::kClockwise ? node : (node + n - 1) % n;
    total += segments_[seg];
    node = next_node(node, n, dir);
  }
  return total;
}

std::size_t RingTopology::hop_count(std::size_t src, std::size_t dst, Direction dir) const {
  const std::size_t n = node_count();
  PH_REQUIRE(src < n && dst < n, "node index out of range");
  PH_REQUIRE(src != dst, "hop count between a node and itself");
  return dir == Direction::kClockwise ? (dst + n - src) % n : (src + n - dst) % n;
}

std::vector<std::size_t> RingTopology::intermediate_nodes(std::size_t src, std::size_t dst,
                                                          Direction dir) const {
  std::vector<std::size_t> out;
  const std::size_t n = node_count();
  std::size_t node = next_node(src, n, dir);
  while (node != dst) {
    out.push_back(node);
    node = next_node(node, n, dir);
  }
  return out;
}

std::vector<std::size_t> RingTopology::path_nodes(std::size_t src, std::size_t dst,
                                                  Direction dir) const {
  std::vector<std::size_t> out = intermediate_nodes(src, dst, dir);
  out.push_back(dst);
  return out;
}

std::vector<std::size_t> RingTopology::path_segments(std::size_t src, std::size_t dst,
                                                     Direction dir) const {
  const std::size_t n = node_count();
  std::vector<std::size_t> out;
  std::size_t node = src;
  while (node != dst) {
    out.push_back(dir == Direction::kClockwise ? node : (node + n - 1) % n);
    node = next_node(node, n, dir);
  }
  return out;
}

OrnocAssigner::OrnocAssigner(std::size_t node_count, std::size_t waveguide_count,
                             std::size_t channel_count)
    : nodes_(node_count), waveguides_(waveguide_count), channels_(channel_count) {
  PH_REQUIRE(node_count >= 2, "assigner needs at least two nodes");
  PH_REQUIRE(waveguide_count >= 1 && channel_count >= 1,
             "assigner needs waveguides and channels");
}

std::vector<bool> OrnocAssigner::arc_mask(std::size_t src, std::size_t dst,
                                          std::size_t waveguide) const {
  const Direction dir = direction_of(waveguide);
  std::vector<bool> mask(nodes_, false);
  std::size_t node = src;
  while (node != dst) {
    const std::size_t seg =
        dir == Direction::kClockwise ? node : (node + nodes_ - 1) % nodes_;
    mask[seg] = true;
    node = dir == Direction::kClockwise ? (node + 1) % nodes_ : (node + nodes_ - 1) % nodes_;
  }
  return mask;
}

std::vector<std::size_t> OrnocAssigner::spectral_spread_order(std::size_t channel_count) {
  PH_REQUIRE(channel_count >= 1, "need at least one channel");
  std::vector<std::size_t> order;
  order.reserve(channel_count);
  std::vector<bool> used(channel_count, false);
  order.push_back(0);
  used[0] = true;
  while (order.size() < channel_count) {
    std::size_t best = 0;
    long best_distance = -1;
    for (std::size_t c = 0; c < channel_count; ++c) {
      if (used[c]) {
        continue;
      }
      long min_distance = static_cast<long>(channel_count);
      for (std::size_t chosen : order) {
        min_distance = std::min(
            min_distance, std::abs(static_cast<long>(c) - static_cast<long>(chosen)));
      }
      if (min_distance > best_distance) {
        best_distance = min_distance;
        best = c;
      }
    }
    order.push_back(best);
    used[best] = true;
  }
  return order;
}

std::vector<Communication> OrnocAssigner::assign(
    const std::vector<std::pair<std::size_t, std::size_t>>& requests) const {
  // occupancy[w][c] = segment usage mask; load[w] = occupied segment count.
  std::vector<std::vector<std::vector<bool>>> occupancy(
      waveguides_, std::vector<std::vector<bool>>(channels_, std::vector<bool>(nodes_, false)));
  std::vector<std::size_t> load(waveguides_, 0);
  const std::vector<std::size_t> channel_order = spectral_spread_order(channels_);

  std::vector<Communication> out;
  out.reserve(requests.size());
  for (const auto& [src, dst] : requests) {
    PH_REQUIRE(src < nodes_ && dst < nodes_, "request node out of range");
    PH_REQUIRE(src != dst, "self communication requested");

    // Waveguide preference: shorter-arc direction first, then lighter load
    // (spreads traffic so fewer communications co-propagate).
    std::vector<std::size_t> waveguide_order(waveguides_);
    for (std::size_t w = 0; w < waveguides_; ++w) {
      waveguide_order[w] = w;
    }
    const std::size_t cw_hops = (dst + nodes_ - src) % nodes_;
    const bool prefer_ccw = cw_hops > nodes_ - cw_hops;
    std::stable_sort(waveguide_order.begin(), waveguide_order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const bool a_pref =
                           (direction_of(a) == Direction::kCounterClockwise) == prefer_ccw;
                       const bool b_pref =
                           (direction_of(b) == Direction::kCounterClockwise) == prefer_ccw;
                       if (a_pref != b_pref) {
                         return a_pref;
                       }
                       return load[a] < load[b];
                     });

    // Channel-major search in spectral-spread order: reuse the earliest
    // channels on disjoint arcs, and push overlapping communications far
    // apart on the WDM grid.
    bool placed = false;
    for (std::size_t ci = 0; ci < channels_ && !placed; ++ci) {
      const std::size_t c = channel_order[ci];
      for (std::size_t wi = 0; wi < waveguides_ && !placed; ++wi) {
        const std::size_t w = waveguide_order[wi];
        const std::vector<bool> mask = arc_mask(src, dst, w);
        bool conflict = false;
        for (std::size_t s = 0; s < nodes_; ++s) {
          if (mask[s] && occupancy[w][c][s]) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          for (std::size_t s = 0; s < nodes_; ++s) {
            if (mask[s]) {
              occupancy[w][c][s] = true;
              ++load[w];
            }
          }
          out.push_back({src, dst, w, c});
          placed = true;
        }
      }
    }
    PH_REQUIRE(placed, "ORNoC capacity exhausted: add waveguides or channels");
  }
  return out;
}

bool OrnocAssigner::conflict_free(const std::vector<Communication>& comms) const {
  for (std::size_t i = 0; i < comms.size(); ++i) {
    for (std::size_t j = i + 1; j < comms.size(); ++j) {
      const Communication& a = comms[i];
      const Communication& b = comms[j];
      if (a.waveguide != b.waveguide || a.channel != b.channel) {
        continue;
      }
      const auto ma = arc_mask(a.src, a.dst, a.waveguide);
      const auto mb = arc_mask(b.src, b.dst, b.waveguide);
      for (std::size_t s = 0; s < nodes_; ++s) {
        if (ma[s] && mb[s]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> spread_requests(std::size_t node_count,
                                                                 std::size_t fanout) {
  PH_REQUIRE(node_count >= 2, "spread_requests needs at least two nodes");
  PH_REQUIRE(fanout >= 1 && fanout < node_count, "fanout must be in [1, node_count)");
  std::vector<std::pair<std::size_t, std::size_t>> requests;
  requests.reserve(node_count * fanout);
  for (std::size_t src = 0; src < node_count; ++src) {
    for (std::size_t f = 0; f < fanout; ++f) {
      // Destinations spread around the ring: offsets ~ (f+1) * N / (fanout+1)
      // rounded, at least 1, distinct by construction for fanout < N.
      std::size_t offset =
          ((f + 1) * node_count + (fanout + 1) / 2) / (fanout + 1);
      offset = std::max<std::size_t>(1, std::min(offset, node_count - 1));
      requests.push_back({src, (src + offset) % node_count});
    }
  }
  // Remove accidental duplicates caused by rounding.
  std::sort(requests.begin(), requests.end());
  requests.erase(std::unique(requests.begin(), requests.end()), requests.end());
  return requests;
}

}  // namespace photherm::noc
