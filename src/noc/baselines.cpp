#include "noc/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace photherm::noc {

std::string to_string(CrossbarTopology topology) {
  switch (topology) {
    case CrossbarTopology::kOrnoc:
      return "ORNoC";
    case CrossbarTopology::kMatrix:
      return "Matrix";
    case CrossbarTopology::kLambdaRouter:
      return "lambda-router";
    case CrossbarTopology::kSnake:
      return "Snake";
  }
  return "?";
}

PathModel path_model(CrossbarTopology topology, std::size_t n, std::size_t src, std::size_t dst,
                     const CrossbarLossParams& params) {
  PH_REQUIRE(n >= 2, "crossbar needs at least two nodes");
  PH_REQUIRE(src < n && dst < n && src != dst, "invalid path endpoints");
  PathModel path;
  const double pitch = params.node_pitch;
  const auto ni = static_cast<long>(n);
  const long s = static_cast<long>(src);
  const long d = static_cast<long>(dst);

  switch (topology) {
    case CrossbarTopology::kOrnoc: {
      // Bidirectional ring: take the shorter arc. Crossing-free; one MR
      // pass-by per intermediate node (the co-located receiver of the same
      // wavelength group), drop at the destination.
      const long cw = (d - s + ni) % ni;
      const long ccw = ni - cw;
      const long hops = std::min(cw, ccw);
      path.throughs =
          static_cast<int>(std::max(0L, hops - 1)) * params.ornoc_rx_per_node;
      path.crossings = 0;
      path.length = static_cast<double>(hops) * pitch;
      break;
    }
    case CrossbarTopology::kMatrix: {
      // Row/column crossbar: travel the source row past `dst` columns
      // (each with an MR and a crossing), drop, then down the destination
      // column crossing the remaining rows.
      const long row_hops = d + 1;
      const long col_hops = ni - s;
      path.throughs = static_cast<int>(d);
      path.crossings = static_cast<int>(d + (ni - 1 - s));
      path.length = static_cast<double>(row_hops + col_hops) * pitch;
      break;
    }
    case CrossbarTopology::kLambdaRouter: {
      // Staged switch fabric: every path traverses all N stages (balanced
      // by construction), passing one add/drop MR pair per stage and about
      // half the stage boundaries as crossings.
      path.throughs = static_cast<int>(n - 1);
      path.crossings = static_cast<int>(n / 2);
      path.length = static_cast<double>(n) * pitch;
      break;
    }
    case CrossbarTopology::kSnake: {
      // Serpentine waveguide visiting nodes in order; a path covers the
      // index distance with two MR pass-bys per intermediate node and a
      // crossing every other hop (turnarounds).
      const long hops = std::labs(d - s);
      path.throughs = static_cast<int>(std::max(0L, 2 * (hops - 1)));
      path.crossings = static_cast<int>(hops / 2);
      path.length = 1.2 * static_cast<double>(hops) * pitch;
      break;
    }
  }
  return path;
}

double insertion_loss_db(const PathModel& path, const CrossbarLossParams& params) {
  return params.drop_loss_db * path.drops + params.through_loss_db * path.throughs +
         params.crossing_loss_db * path.crossings +
         params.propagation_db_per_cm * (path.length / 1e-2);
}

namespace {
template <typename Reduce>
double reduce_over_pairs(CrossbarTopology topology, std::size_t n,
                         const CrossbarLossParams& params, Reduce&& reduce, double init) {
  double acc = init;
  std::size_t count = 0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      acc = reduce(acc, insertion_loss_db(path_model(topology, n, s, d, params), params));
      ++count;
    }
  }
  PH_REQUIRE(count > 0, "no src/dst pairs");
  return acc;
}
}  // namespace

double worst_case_loss_db(CrossbarTopology topology, std::size_t n,
                          const CrossbarLossParams& params) {
  return reduce_over_pairs(
      topology, n, params, [](double acc, double loss) { return std::max(acc, loss); }, 0.0);
}

double average_loss_db(CrossbarTopology topology, std::size_t n,
                       const CrossbarLossParams& params) {
  const double total = reduce_over_pairs(
      topology, n, params, [](double acc, double loss) { return acc + loss; }, 0.0);
  return total / static_cast<double>(n * (n - 1));
}

}  // namespace photherm::noc
