#include "noc/calibration.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace photherm::noc {

RingTrim trim_for_misalignment(double misalignment, const CalibrationParams& params) {
  PH_REQUIRE(params.blue_shift_uw_per_nm > 0.0 && params.red_shift_uw_per_nm > 0.0,
             "tuning efficiencies must be positive");
  RingTrim trim;
  trim.misalignment = misalignment;
  const double magnitude_nm = std::abs(misalignment) * 1e9;
  if (misalignment == 0.0) {
    return trim;  // perfectly aligned: no actuation at all
  }
  if (misalignment > 0.0 && std::abs(misalignment) <= params.blue_shift_range) {
    // Ring sits red of the channel and within the voltage-tuning range:
    // blue-shift electrically (cheaper per nm).
    trim.uses_heater = false;
    trim.power = params.blue_shift_uw_per_nm * 1e-6 * magnitude_nm;
  } else {
    // Either the ring is blue of the channel (only heating can red-shift
    // it) or the error exceeds the voltage range.
    trim.uses_heater = true;
    trim.power = params.red_shift_uw_per_nm * 1e-6 * magnitude_nm;
  }
  return trim;
}

namespace {
CalibrationPlan plan_from_misalignments(const std::vector<double>& misalignments,
                                        const CalibrationParams& params) {
  CalibrationPlan plan;
  plan.trims.reserve(misalignments.size());
  for (double m : misalignments) {
    plan.trims.push_back(trim_for_misalignment(m, params));
    plan.total_power += plan.trims.back().power;
    if (plan.trims.back().uses_heater) {
      ++plan.heater_count;
    }
  }
  return plan;
}
}  // namespace

CalibrationPlan per_ring_plan(const std::vector<double>& ring_temperature_errors,
                              const CalibrationParams& params) {
  PH_REQUIRE(!ring_temperature_errors.empty(), "no rings to calibrate");
  std::vector<double> misalignments;
  misalignments.reserve(ring_temperature_errors.size());
  for (double dt : ring_temperature_errors) {
    misalignments.push_back(dt * params.thermal_sensitivity);
  }
  return plan_from_misalignments(misalignments, params);
}

ClusteredPlan clustered_plan(const std::vector<double>& ring_temperature_errors,
                             const std::vector<std::size_t>& cluster_of,
                             const CalibrationParams& params) {
  PH_REQUIRE(ring_temperature_errors.size() == cluster_of.size(),
             "one cluster id per ring required");
  PH_REQUIRE(!ring_temperature_errors.empty(), "no rings to calibrate");

  std::map<std::size_t, std::pair<double, std::size_t>> accumulator;  // sum, count
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    auto& [sum, count] = accumulator[cluster_of[i]];
    sum += ring_temperature_errors[i];
    ++count;
  }

  std::vector<double> cluster_misalignments;
  cluster_misalignments.reserve(accumulator.size());
  std::map<std::size_t, double> cluster_mean;
  for (const auto& [cluster, acc] : accumulator) {
    const double mean = acc.first / static_cast<double>(acc.second);
    cluster_mean[cluster] = mean;
    cluster_misalignments.push_back(mean * params.thermal_sensitivity);
  }

  ClusteredPlan result;
  result.plan = plan_from_misalignments(cluster_misalignments, params);
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    const double residual_dt =
        std::abs(ring_temperature_errors[i] - cluster_mean[cluster_of[i]]);
    result.worst_residual =
        std::max(result.worst_residual, residual_dt * params.thermal_sensitivity);
  }
  return result;
}

double network_calibration_power(std::size_t ring_count, double typical_misalignment,
                                 const CalibrationParams& params) {
  PH_REQUIRE(ring_count > 0, "network needs at least one ring");
  PH_REQUIRE(typical_misalignment >= 0.0, "misalignment magnitude must be non-negative");
  // Half the rings land red of their channel (blue-tunable), half blue
  // (must be heated): the expected per-ring cost is the mean of the two
  // tuning efficiencies.
  const double mean_uw_per_nm =
      0.5 * (params.blue_shift_uw_per_nm + params.red_shift_uw_per_nm);
  return static_cast<double>(ring_count) * mean_uw_per_nm * 1e-6 *
         (typical_misalignment * 1e9);
}

}  // namespace photherm::noc
