#include "noc/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace photherm::noc {

RingTrim trim_for_misalignment(double misalignment, const CalibrationParams& params) {
  PH_REQUIRE(params.blue_shift_uw_per_nm > 0.0 && params.red_shift_uw_per_nm > 0.0,
             "tuning efficiencies must be positive");
  RingTrim trim;
  trim.misalignment = misalignment;
  const double magnitude_nm = std::abs(misalignment) * 1e9;
  if (misalignment == 0.0) {
    return trim;  // perfectly aligned: no actuation at all
  }
  if (misalignment > 0.0 && std::abs(misalignment) <= params.blue_shift_range) {
    // Ring sits red of the channel and within the voltage-tuning range:
    // blue-shift electrically (cheaper per nm).
    trim.uses_heater = false;
    trim.power = params.blue_shift_uw_per_nm * 1e-6 * magnitude_nm;
  } else {
    // Either the ring is blue of the channel (only heating can red-shift
    // it) or the error exceeds the voltage range.
    trim.uses_heater = true;
    trim.power = params.red_shift_uw_per_nm * 1e-6 * magnitude_nm;
  }
  return trim;
}

namespace {
CalibrationPlan plan_from_misalignments(const std::vector<double>& misalignments,
                                        const CalibrationParams& params,
                                        std::size_t threads) {
  const std::size_t n = misalignments.size();
  CalibrationPlan plan;
  plan.trims.resize(n);
  // Trims are independent; the power/heater totals come out of the
  // chunk-ordered reduction, so the plan is bit-identical for every thread
  // count.
  using Totals = std::pair<double, std::size_t>;
  const auto [total_power, heater_count] = util::parallel_reduce(
      n, util::kKernelGrain, Totals{0.0, 0},
      [&](std::size_t begin, std::size_t end) {
        Totals t{0.0, 0};
        for (std::size_t i = begin; i < end; ++i) {
          plan.trims[i] = trim_for_misalignment(misalignments[i], params);
          t.first += plan.trims[i].power;
          t.second += plan.trims[i].uses_heater ? 1 : 0;
        }
        return t;
      },
      [](Totals acc, const Totals& t) {
        acc.first += t.first;
        acc.second += t.second;
        return acc;
      },
      threads);
  plan.total_power = total_power;
  plan.heater_count = heater_count;
  return plan;
}
}  // namespace

CalibrationPlan per_ring_plan(const std::vector<double>& ring_temperature_errors,
                              const CalibrationParams& params, std::size_t threads) {
  PH_REQUIRE(!ring_temperature_errors.empty(), "no rings to calibrate");
  std::vector<double> misalignments(ring_temperature_errors.size());
  util::parallel_for(
      ring_temperature_errors.size(), util::kKernelGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          misalignments[i] = ring_temperature_errors[i] * params.thermal_sensitivity;
        }
      },
      threads);
  return plan_from_misalignments(misalignments, params, threads);
}

ClusteredPlan clustered_plan(const std::vector<double>& ring_temperature_errors,
                             const std::vector<std::size_t>& cluster_of,
                             const CalibrationParams& params, std::size_t threads) {
  PH_REQUIRE(ring_temperature_errors.size() == cluster_of.size(),
             "one cluster id per ring required");
  PH_REQUIRE(!ring_temperature_errors.empty(), "no rings to calibrate");

  std::map<std::size_t, std::pair<double, std::size_t>> accumulator;  // sum, count
  for (std::size_t i = 0; i < cluster_of.size(); ++i) {
    auto& [sum, count] = accumulator[cluster_of[i]];
    sum += ring_temperature_errors[i];
    ++count;
  }

  std::vector<double> cluster_misalignments;
  cluster_misalignments.reserve(accumulator.size());
  std::map<std::size_t, double> cluster_mean;
  for (const auto& [cluster, acc] : accumulator) {
    const double mean = acc.first / static_cast<double>(acc.second);
    cluster_mean[cluster] = mean;
    cluster_misalignments.push_back(mean * params.thermal_sensitivity);
  }

  ClusteredPlan result;
  result.plan = plan_from_misalignments(cluster_misalignments, params, threads);
  result.worst_residual = util::parallel_reduce(
      cluster_of.size(), util::kKernelGrain, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double worst = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const double residual_dt =
              std::abs(ring_temperature_errors[i] - cluster_mean.at(cluster_of[i]));
          worst = std::max(worst, residual_dt * params.thermal_sensitivity);
        }
        return worst;
      },
      [](double acc, double w) { return std::max(acc, w); }, threads);
  return result;
}

double network_calibration_power(std::size_t ring_count, double typical_misalignment,
                                 const CalibrationParams& params) {
  PH_REQUIRE(ring_count > 0, "network needs at least one ring");
  PH_REQUIRE(typical_misalignment >= 0.0, "misalignment magnitude must be non-negative");
  // Half the rings land red of their channel (blue-tunable), half blue
  // (must be heated): the expected per-ring cost is the mean of the two
  // tuning efficiencies.
  const double mean_uw_per_nm =
      0.5 * (params.blue_shift_uw_per_nm + params.red_shift_uw_per_nm);
  return static_cast<double>(ring_count) * mean_uw_per_nm * 1e-6 *
         (typical_misalignment * 1e9);
}

}  // namespace photherm::noc
