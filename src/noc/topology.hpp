/// \file topology.hpp
/// \brief ORNoC ring topology and channel assignment (paper Sec. III-A,
/// ref [2]). ORNoC is a ring: a communication from ONI s to ONI d occupies
/// one wavelength on one waveguide along the arc s -> d; the same
/// wavelength can be *reused* on non-overlapping arcs of the same
/// waveguide, which is what makes the network arbitration-free.
#pragma once

#include <string>
#include <vector>

#include "geometry/vec.hpp"

namespace photherm::noc {

/// Traversal direction of a waveguide around the ring.
enum class Direction { kClockwise, kCounterClockwise };

/// Ring of N ONIs. Segment i is the waveguide arc from node i to node
/// (i+1) % N in clockwise orientation.
class RingTopology {
 public:
  /// Uniform ring: `count` nodes, `perimeter` total length.
  static RingTopology uniform(std::size_t count, double perimeter);

  /// Explicit segment lengths (size = node count).
  explicit RingTopology(std::vector<double> segment_lengths);

  std::size_t node_count() const { return segments_.size(); }
  double perimeter() const;

  /// Arc length from `src` to `dst` travelling in `dir`.
  double arc_length(std::size_t src, std::size_t dst, Direction dir) const;

  /// Number of hops (segments traversed) from `src` to `dst` in `dir`.
  std::size_t hop_count(std::size_t src, std::size_t dst, Direction dir) const;

  /// Ordered list of intermediate nodes strictly between src and dst in
  /// `dir` (excluding both endpoints).
  std::vector<std::size_t> intermediate_nodes(std::size_t src, std::size_t dst,
                                              Direction dir) const;

  /// Nodes visited from src to dst in `dir`, excluding src, including dst.
  std::vector<std::size_t> path_nodes(std::size_t src, std::size_t dst, Direction dir) const;

  /// Segment indices traversed from src to dst in `dir` (clockwise segment
  /// ids regardless of direction).
  std::vector<std::size_t> path_segments(std::size_t src, std::size_t dst, Direction dir) const;

 private:
  std::vector<double> segments_;
};

/// One point-to-point communication Csd with its channel assignment.
struct Communication {
  std::size_t src = 0;
  std::size_t dst = 0;
  std::size_t waveguide = 0;
  std::size_t channel = 0;  ///< index into the ChannelPlan
};

/// ORNoC channel assignment: greedy first-fit of (waveguide, wavelength)
/// pairs such that arcs sharing a waveguide and wavelength never overlap.
/// Waveguides alternate direction (even = clockwise, odd = counter-clockwise)
/// as in the Fig. 1-b layout.
class OrnocAssigner {
 public:
  OrnocAssigner(std::size_t node_count, std::size_t waveguide_count, std::size_t channel_count);

  static Direction direction_of(std::size_t waveguide) {
    return waveguide % 2 == 0 ? Direction::kClockwise : Direction::kCounterClockwise;
  }

  /// Assign every (src, dst) request; throws SpecError when capacity is
  /// exhausted. Returns the communications with waveguide/channel set.
  std::vector<Communication> assign(const std::vector<std::pair<std::size_t, std::size_t>>& requests) const;

  /// Verify an assignment is conflict-free (used by tests and as a
  /// post-condition).
  bool conflict_free(const std::vector<Communication>& comms) const;

  /// Channel iteration order that maximises spectral distance between the
  /// first channels handed out (greedy farthest-point on the index line),
  /// so overlapping communications land far apart on the WDM grid.
  static std::vector<std::size_t> spectral_spread_order(std::size_t channel_count);

 private:
  /// Segments covered by the arc src->dst on `waveguide` (clockwise ids).
  std::vector<bool> arc_mask(std::size_t src, std::size_t dst, std::size_t waveguide) const;

  std::size_t nodes_;
  std::size_t waveguides_;
  std::size_t channels_;
};

/// All-to-all-lite request pattern used by the case study: every node sends
/// to `fanout` destinations spread around the ring (next node, quarter,
/// half, three-quarter for fanout=4).
std::vector<std::pair<std::size_t, std::size_t>> spread_requests(std::size_t node_count,
                                                                 std::size_t fanout);

}  // namespace photherm::noc
