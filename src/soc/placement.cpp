#include "soc/placement.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::soc {

using geometry::Vec3;

namespace {

/// Point at arc-length `s` along the rectangle perimeter (counter-clockwise
/// from the middle of the bottom edge). Rectangle spans [x0,x1] x [y0,y1].
Vec3 point_on_rectangle(double x0, double y0, double x1, double y1, double s) {
  const double w = x1 - x0;
  const double h = y1 - y0;
  const double perimeter = 2.0 * (w + h);
  s = std::fmod(s, perimeter);
  if (s < 0) {
    s += perimeter;
  }
  // Start at bottom-middle, heading towards +x.
  double pos = s + w / 2.0;  // distance from the bottom-left corner going ccw
  pos = std::fmod(pos, perimeter);
  if (pos < w) {
    return {x0 + pos, y0, 0.0};
  }
  pos -= w;
  if (pos < h) {
    return {x1, y0 + pos, 0.0};
  }
  pos -= h;
  if (pos < w) {
    return {x1 - pos, y1, 0.0};
  }
  pos -= w;
  return {x0, y1 - pos, 0.0};
}

}  // namespace

std::vector<RingSite> ring_placement(const Vec3& center, double width, double height,
                                     std::size_t count) {
  PH_REQUIRE(width > 0.0 && height > 0.0, "ring rectangle must be non-degenerate");
  PH_REQUIRE(count >= 2, "a ring needs at least two ONIs");
  const double x0 = center.x - width / 2.0;
  const double x1 = center.x + width / 2.0;
  const double y0 = center.y - height / 2.0;
  const double y1 = center.y + height / 2.0;
  const double perimeter = 2.0 * (width + height);
  const double step = perimeter / static_cast<double>(count);

  std::vector<RingSite> sites;
  sites.reserve(count);
  // Half-step phase: keeps sites away from the edge midpoints, so they
  // sample the die quadrants asymmetrically (otherwise a 4-ONI ring is
  // mirror-symmetric under the diagonal activity and all ONIs see the same
  // temperature).
  const double phase = step / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    RingSite site;
    site.center = point_on_rectangle(x0, y0, x1, y1, phase + step * static_cast<double>(i));
    site.arc_to_next = step;
    sites.push_back(site);
  }
  return sites;
}

RingCase ring_case(int id, double die_x, double die_y) {
  PH_REQUIRE(id >= 1 && id <= 3, "ring case id must be 1, 2 or 3");
  const double perimeters[3] = {18e-3, 32.4e-3, 46.8e-3};
  const std::size_t counts[3] = {4, 8, 12};
  const double perimeter = perimeters[id - 1];
  const std::size_t count = counts[id - 1];

  // 3:2 aspect: perimeter = 2 (w + h), w = 1.5 h -> h = perimeter / 5.
  const double h = perimeter / 5.0;
  const double w = 1.5 * h;
  PH_REQUIRE(w < die_x && h < die_y, "ring rectangle exceeds the die footprint");

  RingCase rc;
  rc.id = id;
  rc.perimeter = perimeter;
  rc.oni_count = count;
  rc.sites = ring_placement({die_x / 2.0, die_y / 2.0, 0.0}, w, h, count);
  return rc;
}

std::vector<RingCase> all_ring_cases(double die_x, double die_y) {
  return {ring_case(1, die_x, die_y), ring_case(2, die_x, die_y), ring_case(3, die_x, die_y)};
}

}  // namespace photherm::soc
