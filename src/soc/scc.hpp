/// \file scc.hpp
/// \brief 3-D model of the Intel Single-Chip Cloud Computer (SCC) with the
/// stacked optical layer — the paper's case study (Sec. V-A, Fig. 7).
///
/// The vertical stack (bottom-up): steel back plate, motherboard, substrate,
/// C4/underfill, silicon interposer, then the "optical SoC": thinned
/// electrical silicon, BEOL metal (with the tile heat sources), bonding
/// layer, optical device layer, epoxy fill, silicon cap; finally TIM and the
/// copper lid. The heat sink + fan are lumped into an effective convection
/// coefficient on the lid's top face.
#pragma once

#include <optional>
#include <vector>

#include "geometry/block.hpp"
#include "power/activity.hpp"
#include "soc/oni.hpp"

namespace photherm::soc {

struct SccPackageConfig {
  // Die footprint and tiling (SCC: 6 x 4 tiles, 48 cores).
  double die_x = 26.5e-3;
  double die_y = 21.4e-3;
  std::size_t tiles_x = 6;
  std::size_t tiles_y = 4;

  // Layer thicknesses, bottom-up (Fig. 7).
  double back_plate = 2e-3;        ///< steel
  double motherboard = 1.6e-3;     ///< FR4
  double substrate = 1e-3;
  double c4 = 80e-6;               ///< underfill + bumps (homogenised)
  double interposer = 200e-6;
  double si_bulk = 50e-6;          ///< electrical die silicon
  double beol = 15e-6;             ///< metal layers; sources in bottom 10 um
  double bonding = 20e-6;
  double optical = 4e-6;           ///< VCSELs / MRs / waveguides
  double epoxy = 80e-6;
  double si_cap = 50e-6;
  double tim = 75e-6;
  double lid = 2e-3;               ///< copper

  double heat_source_thickness = 10e-6;  ///< BEOL slice carrying tile power

  // Boundary conditions. h_top lumps the finned sink + fan; calibrated so
  // the junction-to-ambient resistance is ~0.5 K/W (Fig. 9-a slope:
  // +3.3 degC per +6.25 W of chip power).
  double h_top = 4800.0;     ///< effective sink+fan film coefficient [W/m^2K]
  double h_bottom = 40.0;    ///< board-side natural convection
  double t_ambient = 37.0;   ///< [degC]
};

/// Vertical coordinates of the interesting layers after stacking.
struct SccZMap {
  double beol_lo = 0.0, beol_hi = 0.0;
  double heat_lo = 0.0, heat_hi = 0.0;
  double optical_lo = 0.0, optical_hi = 0.0;
  double stack_top = 0.0;

  OniZRanges oni_ranges() const { return {beol_lo, beol_hi, optical_lo, optical_hi}; }
};

/// A built system: geometry plus the bookkeeping needed by the thermal
/// post-processing and the SNR analysis.
struct SccSystem {
  geometry::Scene scene;
  SccZMap z;
  power::TileGrid tiles;
  std::vector<OniInstance> onis;
  SccPackageConfig config;
};

/// Builder: configure activity and ONI placement, then build().
class SccBuilder {
 public:
  explicit SccBuilder(SccPackageConfig config = {},
                      OniLayoutParams oni_layout = {});

  /// Total chip power distributed by `kind` over the tiles.
  SccBuilder& set_activity(power::ActivityKind kind, double total_power);

  /// Explicit per-tile powers (size = tiles_x * tiles_y).
  SccBuilder& set_tile_powers(std::vector<double> tile_powers);

  /// Seed for the random activity.
  SccBuilder& set_seed(std::uint64_t seed);

  /// Place one ONI centred at (x, y) on the optical layer.
  SccBuilder& add_oni(double x, double y);

  /// Place one ONI centred on tile (i, j).
  SccBuilder& add_oni_on_tile(std::size_t i, std::size_t j);

  /// Uniform power configuration applied to every ONI.
  SccBuilder& set_oni_power(const OniPowerConfig& power);

  SccSystem build() const;

 private:
  SccPackageConfig config_;
  OniLayoutParams oni_layout_;
  std::optional<power::ActivityKind> activity_;
  double total_power_ = 0.0;
  std::vector<double> explicit_tile_powers_;
  std::uint64_t seed_ = 1;
  std::vector<geometry::Vec3> oni_centers_;
  OniPowerConfig oni_power_;
};

}  // namespace photherm::soc
