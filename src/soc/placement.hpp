/// \file placement.hpp
/// \brief ONI placement helpers for the case study (Fig. 11): ONIs evenly
/// spaced along a rectangular ring waveguide of a prescribed perimeter, and
/// the grid placement (one ONI per tile) used by the thermal sweeps.
#pragma once

#include <vector>

#include "geometry/vec.hpp"

namespace photherm::soc {

/// One placed ONI on a ring: centre position and the waveguide arc length
/// from this ONI to the next (following the ring direction).
struct RingSite {
  geometry::Vec3 center;
  double arc_to_next;  ///< [m]
};

/// Evenly distribute `count` sites along the perimeter of the rectangle
/// centred at `center` with lateral size `width` x `height`. Traversal is
/// counter-clockwise starting at the middle of the bottom edge. The sum of
/// arc lengths equals the rectangle perimeter.
std::vector<RingSite> ring_placement(const geometry::Vec3& center, double width, double height,
                                     std::size_t count);

/// The paper's three ring cases (Fig. 11) on a given die footprint:
/// case 1 = 18 mm perimeter with 4 ONIs, case 2 = 32.4 mm with 8,
/// case 3 = 46.8 mm with 12. Rectangles use a 3:2 aspect ratio centred on
/// the die.
struct RingCase {
  int id;
  double perimeter;       ///< [m]
  std::size_t oni_count;
  std::vector<RingSite> sites;
};

RingCase ring_case(int id, double die_x, double die_y);

/// All three cases.
std::vector<RingCase> all_ring_cases(double die_x, double die_y);

}  // namespace photherm::soc
