#include "soc/oni.hpp"

#include <string>

#include "util/error.hpp"

namespace photherm::soc {

using geometry::Block;
using geometry::BlockKind;
using geometry::Box3;
using geometry::Scene;
using geometry::Vec3;

OniBuilder::OniBuilder(const OniLayoutParams& params) : params_(params) {
  PH_REQUIRE(params.waveguide_count >= 1, "an ONI needs at least one waveguide");
  PH_REQUIRE(params.tx_per_waveguide >= 1 && params.rx_per_waveguide >= 1,
             "an ONI needs transmitters and receivers");
  PH_REQUIRE(params.slot_pitch_x >= params.vcsel_x && params.slot_pitch_x >= params.mr_diameter,
             "slot pitch too small for the devices");
  PH_REQUIRE(params.row_pitch_y >= params.vcsel_y,
             "row pitch too small for the VCSEL footprint");
}

double OniBuilder::footprint_x() const {
  return static_cast<double>(params_.tx_per_waveguide + params_.rx_per_waveguide) *
         params_.slot_pitch_x;
}

double OniBuilder::footprint_y() const {
  return static_cast<double>(params_.waveguide_count) * params_.row_pitch_y;
}

OniInstance OniBuilder::emit(Scene& scene, const Vec3& origin, int oni_index,
                             const OniZRanges& z, const OniPowerConfig& power) const {
  PH_REQUIRE(z.beol_hi > z.beol_lo && z.optical_hi > z.optical_lo,
             "ONI z ranges must be non-empty");
  PH_REQUIRE(z.optical_hi - z.optical_lo > params_.heater_thickness,
             "optical layer too thin for the heater film");
  PH_REQUIRE(power.active_tx_per_waveguide <= params_.tx_per_waveguide,
             "more active lasers than transmitter sites");

  const auto& lib = scene.materials();
  // The VCSEL mesa is mostly InP (k ~ 68 W/mK); the thin InGaAsP active
  // region is not resolved separately at 5 um cells.
  const auto mat_iiiv = lib.id_of("inp");
  const auto mat_si = lib.id_of("silicon");
  const auto mat_cu = lib.id_of("copper");

  const std::string tag = "oni" + std::to_string(oni_index);
  const std::size_t slots = params_.tx_per_waveguide + params_.rx_per_waveguide;

  for (std::size_t row = 0; row < params_.waveguide_count; ++row) {
    const double row_y = origin.y + static_cast<double>(row) * params_.row_pitch_y;
    const double row_cy = row_y + 0.5 * params_.row_pitch_y;
    std::size_t tx_seen = 0;
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const double slot_x = origin.x + static_cast<double>(slot) * params_.slot_pitch_x;
      const double slot_cx = slot_x + 0.5 * params_.slot_pitch_x;
      // Chessboard: odd rows start with a receiver instead of a transmitter.
      const bool is_tx = ((slot + row) % 2 == 0);
      const std::string suffix = "_w" + std::to_string(row) + "_s" + std::to_string(slot);

      if (is_tx) {
        const bool active = (tx_seen < power.active_tx_per_waveguide);
        ++tx_seen;
        // VCSEL: III-V mesa through the optical layer.
        Block vcsel;
        vcsel.name = tag + "_vcsel" + suffix;
        vcsel.box = Box3::make({slot_cx - params_.vcsel_x / 2, row_cy - params_.vcsel_y / 2,
                                z.optical_lo},
                               {slot_cx + params_.vcsel_x / 2, row_cy + params_.vcsel_y / 2,
                                z.optical_hi});
        vcsel.material = mat_iiiv;
        vcsel.power = active ? power.p_vcsel : 0.0;
        vcsel.kind = BlockKind::kVcsel;
        vcsel.group = oni_index;
        scene.add(std::move(vcsel));

        // TSV feeding the mesa from the CMOS layer. Skipped quietly when the
        // bonded interfaces are coincident (degenerate gap).
        if (z.optical_lo > z.beol_hi) {
          Block tsv;
          tsv.name = tag + "_tsv" + suffix;
          tsv.box = Box3::make(
              {slot_cx - params_.tsv_diameter / 2, row_cy - params_.tsv_diameter / 2, z.beol_hi},
              {slot_cx + params_.tsv_diameter / 2, row_cy + params_.tsv_diameter / 2,
               z.optical_lo});
          tsv.material = mat_cu;
          tsv.kind = BlockKind::kTsv;
          tsv.group = oni_index;
          scene.add(std::move(tsv));
        }

        // CMOS driver in the BEOL below the laser.
        Block driver;
        driver.name = tag + "_driver" + suffix;
        driver.box = Box3::make(
            {slot_cx - params_.driver_x / 2, row_cy - params_.driver_y / 2, z.beol_lo},
            {slot_cx + params_.driver_x / 2, row_cy + params_.driver_y / 2, z.beol_hi});
        driver.material = mat_cu;
        driver.power = active ? power.p_driver : 0.0;
        driver.kind = BlockKind::kDriver;
        driver.group = oni_index;
        scene.add(std::move(driver));
      } else {
        // Microring in the silicon photonic film (lower part of the layer).
        const double ring_top = z.optical_hi - params_.heater_thickness;
        Block ring;
        ring.name = tag + "_mr" + suffix;
        ring.box = Box3::make(
            {slot_cx - params_.mr_diameter / 2, row_cy - params_.mr_diameter / 2, z.optical_lo},
            {slot_cx + params_.mr_diameter / 2, row_cy + params_.mr_diameter / 2, ring_top});
        ring.material = mat_si;
        ring.kind = BlockKind::kMicroRing;
        ring.group = oni_index;
        scene.add(std::move(ring));

        // Heater film on top of the ring.
        Block heater;
        heater.name = tag + "_heater" + suffix;
        heater.box = Box3::make(
            {slot_cx - params_.mr_diameter / 2, row_cy - params_.mr_diameter / 2, ring_top},
            {slot_cx + params_.mr_diameter / 2, row_cy + params_.mr_diameter / 2, z.optical_hi});
        heater.material = mat_cu;
        heater.power = power.p_heater;
        heater.kind = BlockKind::kHeater;
        heater.group = oni_index;
        scene.add(std::move(heater));

        // Photodetector beside the ring.
        Block pd;
        pd.name = tag + "_pd" + suffix;
        const double pd_cx = slot_cx + params_.mr_diameter / 2 + params_.pd_x;
        pd.box = Box3::make({pd_cx - params_.pd_x / 2, row_cy - params_.pd_y / 2, z.optical_lo},
                            {pd_cx + params_.pd_x / 2, row_cy + params_.pd_y / 2, ring_top});
        pd.material = mat_si;
        pd.kind = BlockKind::kPhotodetector;
        pd.group = oni_index;
        scene.add(std::move(pd));
      }
    }

    if (params_.emit_waveguide_strips) {
      Block wg;
      wg.name = tag + "_wg" + std::to_string(row);
      wg.box = Box3::make({origin.x, row_cy - params_.waveguide_width / 2, z.optical_lo},
                          {origin.x + footprint_x(), row_cy + params_.waveguide_width / 2,
                           z.optical_lo + 0.3e-6});
      wg.material = mat_si;
      wg.kind = BlockKind::kWaveguide;
      wg.group = oni_index;
      scene.add(std::move(wg));
    }
  }

  OniInstance instance;
  instance.index = oni_index;
  instance.footprint = Box3::make({origin.x, origin.y, z.optical_lo},
                                  {origin.x + footprint_x(), origin.y + footprint_y(),
                                   z.optical_hi});
  return instance;
}

}  // namespace photherm::soc
