#include "soc/scc.hpp"

#include "geometry/stack.hpp"
#include "util/error.hpp"

namespace photherm::soc {

using geometry::Box3;
using geometry::Scene;
using geometry::Vec3;

SccBuilder::SccBuilder(SccPackageConfig config, OniLayoutParams oni_layout)
    : config_(config), oni_layout_(oni_layout) {
  PH_REQUIRE(config_.die_x > 0.0 && config_.die_y > 0.0, "die footprint must be positive");
  PH_REQUIRE(config_.tiles_x >= 1 && config_.tiles_y >= 1, "tile grid must be non-empty");
  PH_REQUIRE(config_.heat_source_thickness <= config_.beol,
             "heat source slice must fit in the BEOL");
}

SccBuilder& SccBuilder::set_activity(power::ActivityKind kind, double total_power) {
  PH_REQUIRE(total_power >= 0.0, "chip power must be non-negative");
  activity_ = kind;
  total_power_ = total_power;
  explicit_tile_powers_.clear();
  return *this;
}

SccBuilder& SccBuilder::set_tile_powers(std::vector<double> tile_powers) {
  PH_REQUIRE(tile_powers.size() == config_.tiles_x * config_.tiles_y,
             "tile power vector must match the tile grid");
  explicit_tile_powers_ = std::move(tile_powers);
  activity_.reset();
  return *this;
}

SccBuilder& SccBuilder::set_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

SccBuilder& SccBuilder::add_oni(double x, double y) {
  PH_REQUIRE(x >= 0.0 && x <= config_.die_x && y >= 0.0 && y <= config_.die_y,
             "ONI centre must lie on the die");
  oni_centers_.push_back({x, y, 0.0});
  return *this;
}

SccBuilder& SccBuilder::add_oni_on_tile(std::size_t i, std::size_t j) {
  PH_REQUIRE(i < config_.tiles_x && j < config_.tiles_y, "tile index out of range");
  const double pitch_x = config_.die_x / static_cast<double>(config_.tiles_x);
  const double pitch_y = config_.die_y / static_cast<double>(config_.tiles_y);
  oni_centers_.push_back(
      {(static_cast<double>(i) + 0.5) * pitch_x, (static_cast<double>(j) + 0.5) * pitch_y, 0.0});
  return *this;
}

SccBuilder& SccBuilder::set_oni_power(const OniPowerConfig& power) {
  oni_power_ = power;
  return *this;
}

SccSystem SccBuilder::build() const {
  Scene scene;

  // --- Vertical stack (Fig. 7), bottom-up. -------------------------------
  geometry::LayerStackBuilder stack(config_.die_x, config_.die_y);
  SccZMap z;
  stack.add_layer({"back_plate", "steel", config_.back_plate, geometry::BlockKind::kPackage});
  stack.add_layer({"motherboard", "fr4", config_.motherboard, geometry::BlockKind::kPackage});
  stack.add_layer({"substrate", "fr4", config_.substrate, geometry::BlockKind::kPackage});
  stack.add_layer({"c4", "underfill", config_.c4, geometry::BlockKind::kPackage});
  stack.add_layer(
      {"interposer", "silicon_interposer", config_.interposer, geometry::BlockKind::kPackage});
  stack.add_layer({"si_bulk", "silicon", config_.si_bulk});
  z.beol_lo = stack.top();
  stack.add_layer({"beol", "beol", config_.beol});
  z.beol_hi = stack.top();
  stack.add_layer({"bonding", "bonding", config_.bonding});
  z.optical_lo = stack.top();
  stack.add_layer({"optical", "optical_matrix", config_.optical});
  z.optical_hi = stack.top();
  stack.add_layer({"epoxy", "epoxy", config_.epoxy});
  stack.add_layer({"si_cap", "silicon", config_.si_cap});
  stack.add_layer({"tim", "tim", config_.tim, geometry::BlockKind::kPackage});
  stack.add_layer({"lid", "copper", config_.lid, geometry::BlockKind::kPackage});
  z.stack_top = stack.top();
  stack.emit(scene);

  // Heat sources occupy the bottom slice of the BEOL (Sec. IV-B: "the heat
  // sources ... are represented as rectangular blocks ... in the BEOL").
  z.heat_lo = z.beol_lo;
  z.heat_hi = z.beol_lo + config_.heat_source_thickness;

  // --- Tile activity. ------------------------------------------------------
  const power::TileGrid tiles(Box3::make({0, 0, z.heat_lo}, {config_.die_x, config_.die_y, z.heat_hi}),
                              config_.tiles_x, config_.tiles_y);
  std::vector<double> tile_powers;
  if (!explicit_tile_powers_.empty()) {
    tile_powers = explicit_tile_powers_;
  } else if (activity_) {
    Rng rng(seed_);
    tile_powers = power::generate_activity(tiles, *activity_, total_power_, rng);
  } else {
    tile_powers.assign(tiles.tile_count(), 0.0);
  }
  power::add_heat_sources(scene, tiles, tile_powers, z.heat_lo, z.heat_hi, "beol");

  // --- ONIs on the optical layer. -----------------------------------------
  const OniBuilder oni_builder(oni_layout_);
  std::vector<OniInstance> onis;
  for (std::size_t k = 0; k < oni_centers_.size(); ++k) {
    const Vec3& c = oni_centers_[k];
    const Vec3 origin{c.x - oni_builder.footprint_x() / 2, c.y - oni_builder.footprint_y() / 2,
                      0.0};
    PH_REQUIRE(origin.x >= 0.0 && origin.y >= 0.0 &&
                   origin.x + oni_builder.footprint_x() <= config_.die_x &&
                   origin.y + oni_builder.footprint_y() <= config_.die_y,
               "ONI footprint exceeds the die");
    onis.push_back(
        oni_builder.emit(scene, origin, static_cast<int>(k), z.oni_ranges(), oni_power_));
  }

  return SccSystem{std::move(scene), z, tiles, std::move(onis), config_};
}

}  // namespace photherm::soc
