/// \file oni.hpp
/// \brief Optical Network Interface (ONI) layout generator — the
/// chessboard arrangement of Fig. 1-b: 4 waveguides, each with 4
/// transmitters (VCSELs) and 4 receivers (MR + heater + photodetector)
/// alternating, so that laser heat is spread as evenly as possible across
/// the interface.
#pragma once

#include <vector>

#include "geometry/block.hpp"

namespace photherm::soc {

struct OniLayoutParams {
  std::size_t waveguide_count = 4;      ///< rows (Fig. 1-b)
  std::size_t tx_per_waveguide = 4;     ///< VCSELs per row
  std::size_t rx_per_waveguide = 4;     ///< MR/PD sites per row
  double slot_pitch_x = 40e-6;          ///< horizontal device pitch
  double row_pitch_y = 40e-6;           ///< waveguide row pitch

  // Device footprints (Fig. 1-c).
  double vcsel_x = 15e-6, vcsel_y = 30e-6;
  double mr_diameter = 10e-6;
  double pd_x = 1.5e-6, pd_y = 15e-6;
  double heater_thickness = 0.5e-6;     ///< metal film above the MR
  /// Effective metal plug under each VCSEL: the two 5 um TSVs plus the
  /// bottom contact metallisation, homogenised into one square via.
  double tsv_diameter = 10e-6;
  double driver_x = 10e-6, driver_y = 10e-6;

  bool emit_waveguide_strips = false;   ///< geometric detail, thermally inert
  double waveguide_width = 2e-6;
};

/// Per-device electrical/thermal power assignment for one ONI.
struct OniPowerConfig {
  double p_vcsel = 0.0;        ///< dissipated per active VCSEL [W]
  double p_driver = 0.0;       ///< dissipated per active CMOS driver [W]
  double p_heater = 0.0;       ///< per MR heater [W]
  std::size_t active_tx_per_waveguide = 4;  ///< lasers driven per row
};

/// Vertical extents the ONI devices are emitted into.
struct OniZRanges {
  double beol_lo, beol_hi;        ///< CMOS driver layer
  double optical_lo, optical_hi;  ///< optical device layer
};

/// Generated ONI: footprint plus the block-index bookkeeping needed by the
/// thermal post-processing (device regions are recovered from the Scene via
/// BlockKind + group id).
struct OniInstance {
  int index = 0;
  geometry::Box3 footprint;  ///< optical-layer region of the interface
};

class OniBuilder {
 public:
  explicit OniBuilder(const OniLayoutParams& params);

  const OniLayoutParams& params() const { return params_; }

  /// Lateral size of the interface (x: slots, y: rows).
  double footprint_x() const;
  double footprint_y() const;

  /// Emit all device blocks of one ONI into `scene`. `origin` is the
  /// lower-left corner of the interface on the optical layer. All blocks
  /// are tagged group = oni_index. Returns the instance descriptor.
  OniInstance emit(geometry::Scene& scene, const geometry::Vec3& origin, int oni_index,
                   const OniZRanges& z, const OniPowerConfig& power) const;

 private:
  OniLayoutParams params_;
};

}  // namespace photherm::soc
