/// \file batch_runner.hpp
/// \brief Cached batch execution of scenario lists. Scenarios are
/// independent design-point evaluations, so they dispatch onto the shared
/// thread pool (util/thread_pool.hpp) and are collected in index order —
/// results are bit-identical for every thread count. A keyed cache shares
/// the coarse global ThermalField across scenarios whose global scene is
/// identical (core::ThermalAwareDesigner::global_scene_key), e.g. scenarios
/// that differ only in SNR knobs or local window resolution; cache hits are
/// bit-identical to cold solves because the solver itself is deterministic.
#pragma once

#include <vector>

#include "core/methodology.hpp"
#include "scenario/scenario.hpp"

namespace photherm::scenario {

struct BatchOptions {
  /// Concurrent scenario evaluations. 0 = util::concurrency(); 1 = serial.
  std::size_t threads = 0;
  /// Coarse-solve cache: share the global ThermalField across scenarios
  /// with equal scene keys. Off solves every scenario cold; the reports are
  /// bit-identical either way.
  bool share_global_solves = true;
};

struct BatchStats {
  std::size_t scenario_count = 0;
  std::size_t global_solves = 0;  ///< coarse global solves actually performed
  std::size_t cache_hits = 0;     ///< scenarios served from a shared coarse field
};

struct BatchResult {
  /// Index-aligned with the input scenario list.
  std::vector<core::DesignReport> reports;
  BatchStats stats;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  /// Evaluate every scenario (full methodology pipeline on its
  /// effective_design). Throws on an empty list or an invalid spec.
  BatchResult run(const std::vector<ScenarioSpec>& scenarios) const;

 private:
  BatchOptions options_;
};

/// Per-scenario summary rows — the CLI's CSV payload. Numeric cells carry
/// full precision, so the rendered CSV is bit-identical whenever the
/// reports are. SNR columns are empty for kAllTiles scenarios.
Table batch_table(const std::vector<ScenarioSpec>& scenarios, const BatchResult& result);

}  // namespace photherm::scenario
