/// \file scenario.hpp
/// \brief Declarative workload scenarios: a named design point
/// (OnocDesignSpec overrides), an activity schedule (power/activity duty
/// phases) and ambient/heater corners, with a text round-trip so scenario
/// suites live in files. The batch runner (batch_runner.hpp) executes lists
/// of these; the registry (registry.hpp) expands parameterized families
/// into them.
///
/// File format — line oriented, `#` starts a comment:
///
///     scenario hotspot_85c
///     activity = hotspot
///     chip_power = 25
///     t_ambient = 85
///     heater_ratio = 0.3
///     schedule = 0.6:1, 0.4:0.25
///
/// A `scenario <name>` line opens a scenario; `key = value` lines override
/// fields until the next one. Unlisted fields keep the values of the base
/// design passed to the parser (package geometry, ONI layout and technology
/// parameters are only reachable through that base). Serialization writes
/// every covered key at full precision, so parse(serialize(x)) reproduces x
/// bit for bit.
#pragma once

#include <string>
#include <vector>

#include "core/spec.hpp"

namespace photherm::scenario {

/// One named workload scenario.
struct ScenarioSpec {
  std::string name;
  core::OnocDesignSpec design;
  /// Optional activity schedule. Steady-state evaluation folds it into the
  /// chip power through the time-weighted average scale (duty factor); the
  /// laser/heater powers are run-time constants and are not scaled.
  std::vector<power::ActivityPhase> schedule;

  /// Time-weighted mean scale of the schedule; 1.0 when it is empty.
  double duty_scale() const;

  /// The design point actually evaluated: `design` with the schedule folded
  /// into the chip power.
  core::OnocDesignSpec effective_design() const;
};

/// Keys understood by the parser/serializer, in serialization order.
const std::vector<std::string>& scenario_keys();

/// Parse a scenario file. `base` supplies every field the format does not
/// cover. Throws SpecError (with the line number) on unknown keys, bad
/// values, duplicate or invalid names.
std::vector<ScenarioSpec> parse_scenarios(const std::string& text,
                                          const core::OnocDesignSpec& base = {});

/// Serialize scenarios to the file format at full precision.
std::string serialize_scenarios(const std::vector<ScenarioSpec>& scenarios);

/// Read + parse a scenario file; throws photherm::Error on I/O failure.
std::vector<ScenarioSpec> load_scenario_file(const std::string& path,
                                             const core::OnocDesignSpec& base = {});

/// Serialize + write a scenario file; throws photherm::Error on I/O failure.
void save_scenario_file(const std::string& path, const std::vector<ScenarioSpec>& scenarios);

}  // namespace photherm::scenario
