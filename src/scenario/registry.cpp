#include "scenario/registry.hpp"

#include <cmath>
#include <functional>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm::scenario {

namespace {

/// Numeric suffix usable inside a scenario name: "-" becomes "m", "." "p"
/// (25.5 -> "25p5", -40 -> "m40").
std::string name_suffix(double value) {
  std::ostringstream os;
  os.precision(6);
  os << value;
  std::string s = os.str();
  for (char& ch : s) {
    if (ch == '-') {
      ch = 'm';
    } else if (ch == '.') {
      ch = 'p';
    } else if (ch == '+') {
      ch = 'x';
    }
  }
  return s;
}

std::vector<ScenarioSpec> expand_traffic(const FamilySpec& request) {
  std::vector<ScenarioSpec> out;
  for (power::ActivityKind kind : power::all_activity_kinds()) {
    if (kind == power::ActivityKind::kRandom) {
      continue;  // needs a seed ladder, not a single scenario
    }
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_" + power::to_string(kind);
    s.design.activity = kind;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_ambient(const FamilySpec& request) {
  const std::vector<double> temps =
      request.values.empty() ? std::vector<double>{-40.0, 25.0, 85.0} : request.values;
  std::vector<ScenarioSpec> out;
  for (double t : temps) {
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_" + name_suffix(t) + "c";
    s.design.package.t_ambient = t;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_heater_ladder(const FamilySpec& request) {
  const std::vector<double> ratios =
      request.values.empty() ? std::vector<double>{0.0, 0.15, 0.3, 0.45, 0.6} : request.values;
  std::vector<ScenarioSpec> out;
  for (double ratio : ratios) {
    PH_REQUIRE(ratio >= 0.0 && ratio <= core::OnocDesignSpec::kMaxHeaterRatio,
               "heater_ladder ratio out of range [0, 10]");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_r" + name_suffix(ratio);
    s.design.heater_ratio = ratio;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_duty_ramp(const FamilySpec& request) {
  const std::vector<double> duties =
      request.values.empty() ? std::vector<double>{0.25, 0.5, 0.75, 1.0} : request.values;
  std::vector<ScenarioSpec> out;
  for (double duty : duties) {
    PH_REQUIRE(duty > 0.0 && duty <= 1.0, "duty_ramp duty factor must be in (0, 1]");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_d" + name_suffix(duty);
    // One activity period: on for `duty`, idle for the rest.
    if (duty >= 1.0) {
      s.schedule = {{1.0, 1.0}};
    } else {
      s.schedule = {{duty, 1.0}, {1.0 - duty, 0.0}};
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_transient_step(const FamilySpec& request) {
  const std::vector<double> scales =
      request.values.empty() ? std::vector<double>{0.25, 0.5, 1.0} : request.values;
  std::vector<ScenarioSpec> out;
  for (double scale : scales) {
    PH_REQUIRE(scale >= 0.0, "transient_step scale must be non-negative");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_s" + name_suffix(scale);
    // Constant schedule: power steps to `scale` at t = 0 and holds — the
    // timeline engine reports the settle time from a cold (ambient) start.
    s.schedule = {{1.0, scale}};
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_transient_burst(const FamilySpec& request) {
  const std::vector<double> duties =
      request.values.empty() ? std::vector<double>{0.25, 0.5, 0.75} : request.values;
  std::vector<ScenarioSpec> out;
  for (double duty : duties) {
    PH_REQUIRE(duty > 0.0 && duty < 1.0, "transient_burst duty must be in (0, 1)");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_d" + name_suffix(duty);
    // Square-wave traffic burst over a 1 s period: full power for `duty`,
    // then a 10% idle floor (clock/leakage) for the rest.
    s.schedule = {{duty, 1.0}, {1.0 - duty, 0.1}};
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_transient_soak(const FamilySpec& request) {
  const std::vector<double> scales =
      request.values.empty() ? std::vector<double>{1.0, 0.5} : request.values;
  std::vector<ScenarioSpec> out;
  for (double scale : scales) {
    PH_REQUIRE(scale >= 0.0, "transient_soak scale must be non-negative");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_s" + name_suffix(scale);
    // One long constant hold (a full minute — several package time
    // constants): the settle-bound workload the adaptive-dt playback is
    // built for. Fixed-grid playback pays horizon/dt solves here; adaptive
    // playback finishes orders of magnitude sooner.
    s.schedule = {{60.0, scale}};
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ScenarioSpec> expand_wdm_ladder(const FamilySpec& request) {
  const std::vector<double> channels =
      request.values.empty() ? std::vector<double>{4.0, 8.0, 16.0} : request.values;
  std::vector<ScenarioSpec> out;
  for (double c : channels) {
    PH_REQUIRE(c >= 1.0 && c == std::floor(c), "wdm_ladder channel count must be an integer >= 1");
    ScenarioSpec s = request.base;
    s.name = request.prefix + "_ch" + name_suffix(c);
    s.design.wdm_channels = static_cast<std::size_t>(c);
    out.push_back(std::move(s));
  }
  return out;
}

struct Family {
  const char* name;
  const char* description;
  std::function<std::vector<ScenarioSpec>(const FamilySpec&)> expand;
};

const std::vector<Family>& families() {
  static const std::vector<Family> table{
      {"traffic", "deterministic traffic/activity patterns (uniform, diagonal, hotspot, "
                  "checkerboard)",
       expand_traffic},
      {"ambient", "ambient-temperature corners; default ladder -40/25/85 degC",
       expand_ambient},
      {"heater_ladder", "MR-heater power ratios; default ladder 0/0.15/0.3/0.45/0.6",
       expand_heater_ladder},
      {"duty_ramp", "activity duty-cycle schedules; default ladder 0.25/0.5/0.75/1.0",
       expand_duty_ramp},
      {"wdm_ladder", "WDM channel counts (thermally identical, so the batch runner shares "
                     "one coarse solve); default ladder 4/8/16",
       expand_wdm_ladder},
      {"transient_step", "power-step settle studies for the timeline engine (constant "
                         "schedule at each scale); default ladder 0.25/0.5/1",
       expand_transient_step},
      {"transient_burst", "square-wave traffic bursts (1 s period, 10% idle floor) for "
                          "the timeline engine; default duty ladder 0.25/0.5/0.75",
       expand_transient_burst},
      {"transient_soak", "long-horizon constant holds (60 s) — settle-bound workloads "
                         "for adaptive-dt playback; default scale ladder 1/0.5",
       expand_transient_soak},
  };
  return table;
}

const Family& find_family(const std::string& name) {
  for (const Family& f : families()) {
    if (name == f.name) {
      return f;
    }
  }
  throw SpecError("unknown scenario family `" + name + "`; known families: " +
                  join(family_names(), ", "));
}

/// Base scenario of the built-in suites: the paper's SCC case study on the
/// 18 mm ring (4 ONIs), coarsened for batch throughput.
ScenarioSpec suite_base(double global_cell_xy, double oni_cell_xy) {
  ScenarioSpec s;
  s.name = "base";
  s.design.placement = core::OniPlacementMode::kRing;
  s.design.ring_case_id = 1;
  s.design.chip_power = 25.0;
  s.design.global_cell_xy = global_cell_xy;
  s.design.oni_cell_xy = oni_cell_xy;
  s.design.oni_cell_z = 2e-6;
  return s;
}

std::vector<ScenarioSpec> append(std::vector<ScenarioSpec> into,
                                 std::vector<ScenarioSpec> more) {
  for (ScenarioSpec& s : more) {
    into.push_back(std::move(s));
  }
  return into;
}

}  // namespace

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const Family& f : families()) {
    names.emplace_back(f.name);
  }
  return names;
}

std::string family_description(const std::string& family) {
  return find_family(family).description;
}

std::vector<ScenarioSpec> expand_family(const FamilySpec& request) {
  FamilySpec normalized = request;
  if (normalized.prefix.empty()) {
    normalized.prefix = normalized.family;
  }
  std::vector<ScenarioSpec> expanded = find_family(normalized.family).expand(normalized);
  // Ladder values closer than the name precision would alias; fail here so
  // the expansion stays serializable (parse rejects duplicate names).
  std::set<std::string> seen;
  for (const ScenarioSpec& s : expanded) {
    PH_REQUIRE(seen.insert(s.name).second,
               "family `" + normalized.family + "` expanded to a duplicate scenario name `" +
                   s.name + "`; ladder values are too close together");
  }
  return expanded;
}

std::vector<std::string> builtin_suite_names() {
  return {"smoke", "corners", "transient", "soak"};
}

std::vector<ScenarioSpec> builtin_suite(const std::string& name) {
  if (name == "smoke") {
    FamilySpec traffic;
    traffic.family = "traffic";
    traffic.base = suite_base(3e-3, 40e-6);
    return expand_family(traffic);
  }
  if (name == "corners") {
    const ScenarioSpec base = suite_base(2e-3, 20e-6);
    FamilySpec traffic{"traffic", "", base, {}};
    FamilySpec ambient{"ambient", "", base, {}};
    FamilySpec wdm{"wdm_ladder", "", base, {}};
    return append(append(expand_family(traffic), expand_family(ambient)),
                  expand_family(wdm));
  }
  if (name == "transient") {
    const ScenarioSpec base = suite_base(3e-3, 40e-6);
    FamilySpec step{"transient_step", "", base, {1.0, 0.5}};
    FamilySpec burst{"transient_burst", "", base, {0.5, 0.25}};
    return append(expand_family(step), expand_family(burst));
  }
  if (name == "soak") {
    FamilySpec soak{"transient_soak", "", suite_base(3e-3, 40e-6), {}};
    return expand_family(soak);
  }
  throw SpecError("unknown built-in suite `" + name + "`; known suites: " +
                  join(builtin_suite_names(), ", "));
}

}  // namespace photherm::scenario
