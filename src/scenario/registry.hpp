/// \file registry.hpp
/// \brief Built-in scenario families and suites. A family is a
/// parameterized generator (traffic patterns, ambient corners, heater
/// ladders, duty ramps, WDM ladders, transient steps/bursts) that expands
/// into a concrete scenario list from a base scenario; a suite is a named,
/// ready-to-run combination of families (what `photherm_cli expand
/// builtin:<name>` emits).
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace photherm::scenario {

/// A family expansion request.
struct FamilySpec {
  /// Registry key; one of family_names().
  std::string family;
  /// Name prefix of the generated scenarios (defaults to the family name).
  std::string prefix;
  /// Template every generated scenario starts from.
  ScenarioSpec base;
  /// Ladder parameters for the numeric families (ambient temperatures,
  /// heater ratios, duty factors, channel counts); empty uses the family's
  /// default ladder. Ignored by "traffic".
  std::vector<double> values;
};

/// Registered family names.
std::vector<std::string> family_names();

/// One-line description of a family; throws SpecError on an unknown name.
std::string family_description(const std::string& family);

/// Expand a family into concrete scenarios (deterministic: same request,
/// same list). Throws SpecError on an unknown family or bad parameters.
std::vector<ScenarioSpec> expand_family(const FamilySpec& request);

/// Built-in suite names ("smoke", "corners", "transient").
std::vector<std::string> builtin_suite_names();

/// Expand a built-in suite; throws SpecError on an unknown name.
/// - "smoke":   4 traffic-pattern scenarios at smoke-test resolution.
/// - "corners": 10 scenarios — traffic patterns, ambient corners
///   (-40/25/85 degC) and a WDM-channel ladder; the ladder scenarios share
///   one global thermal scene, so the batch runner's coarse-solve cache
///   gets hits on this suite.
/// - "transient": 4 schedule-driven scenarios (power steps and traffic
///   bursts) for the timeline engine's playback (`photherm_cli play`).
std::vector<ScenarioSpec> builtin_suite(const std::string& name);

}  // namespace photherm::scenario
