#include "scenario/scenario.hpp"

#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm::scenario {

namespace {

/// Shortest round-trip spelling (util::format_shortest): serialize/parse is
/// bit-identical while common values stay readable ("0.3", not
/// "0.29999999999999999").
std::string fmt(double value) { return format_shortest(value); }

std::string fmt_schedule(const std::vector<power::ActivityPhase>& schedule) {
  std::vector<std::string> parts;
  parts.reserve(schedule.size());
  for (const power::ActivityPhase& p : schedule) {
    parts.push_back(fmt(p.duration) + ":" + fmt(p.scale));
  }
  return join(parts, ", ");
}

std::vector<power::ActivityPhase> parse_schedule(const std::string& value) {
  std::vector<power::ActivityPhase> schedule;
  for (const std::string& part : split(value, ',')) {
    const std::vector<std::string> pair = split(part, ':');
    if (pair.size() != 2) {
      throw SpecError("schedule phase `" + trim(part) +
                      "` is not of the form duration:scale");
    }
    power::ActivityPhase phase;
    phase.duration = parse_double(pair[0], "schedule phase duration");
    phase.scale = parse_double(pair[1], "schedule phase scale");
    schedule.push_back(phase);
  }
  // Delegate range checks (positive durations, non-negative scales).
  const power::ActivityTrace checked(schedule);
  (void)checked;
  return schedule;
}

/// One field of the scenario format: its key plus how to read it from and
/// write it into a ScenarioSpec.
struct FieldIo {
  const char* key;
  std::function<std::string(const ScenarioSpec&)> get;
  std::function<void(ScenarioSpec&, const std::string&)> set;
};

const std::vector<FieldIo>& field_table() {
  using power::activity_kind_from_string;
  static const std::vector<FieldIo> fields{
      {"activity", [](const ScenarioSpec& s) { return power::to_string(s.design.activity); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.activity = activity_kind_from_string(v);
       }},
      {"chip_power", [](const ScenarioSpec& s) { return fmt(s.design.chip_power); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.chip_power = parse_double(v, "chip_power");
       }},
      // ph-lint: allow(serialization) integral field; integers round-trip exactly
      {"seed", [](const ScenarioSpec& s) { return std::to_string(s.design.seed); },
       [](ScenarioSpec& s, const std::string& v) { s.design.seed = parse_uint(v, "seed"); }},
      {"placement", [](const ScenarioSpec& s) { return core::to_string(s.design.placement); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.placement = core::placement_from_string(v);
       }},
      // ph-lint: allow(serialization) integral field; integers round-trip exactly
      {"ring_case", [](const ScenarioSpec& s) { return std::to_string(s.design.ring_case_id); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.ring_case_id = static_cast<int>(parse_uint(v, "ring_case"));
       }},
      {"p_vcsel", [](const ScenarioSpec& s) { return fmt(s.design.p_vcsel); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.p_vcsel = parse_double(v, "p_vcsel");
       }},
      {"heater_ratio", [](const ScenarioSpec& s) { return fmt(s.design.heater_ratio); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.heater_ratio = parse_double(v, "heater_ratio");
       }},
      {"active_tx",
       // ph-lint: allow(serialization) integral field; integers round-trip exactly
       [](const ScenarioSpec& s) { return std::to_string(s.design.active_tx_per_waveguide); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.active_tx_per_waveguide = parse_uint(v, "active_tx");
       }},
      {"driver_equals_vcsel",
       [](const ScenarioSpec& s) {
         return std::string(s.design.p_driver_equals_p_vcsel ? "true" : "false");
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.p_driver_equals_p_vcsel = parse_bool(v, "driver_equals_vcsel");
       }},
      {"t_ambient", [](const ScenarioSpec& s) { return fmt(s.design.package.t_ambient); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.package.t_ambient = parse_double(v, "t_ambient");
       }},
      {"h_top", [](const ScenarioSpec& s) { return fmt(s.design.package.h_top); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.package.h_top = parse_double(v, "h_top");
       }},
      {"h_bottom", [](const ScenarioSpec& s) { return fmt(s.design.package.h_bottom); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.package.h_bottom = parse_double(v, "h_bottom");
       }},
      // ph-lint: allow(serialization) integral field; integers round-trip exactly
      {"fanout", [](const ScenarioSpec& s) { return std::to_string(s.design.fanout); },
       [](ScenarioSpec& s, const std::string& v) { s.design.fanout = parse_uint(v, "fanout"); }},
      // ph-lint: allow(serialization) integral field; integers round-trip exactly
      {"waveguides", [](const ScenarioSpec& s) { return std::to_string(s.design.waveguides); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.waveguides = parse_uint(v, "waveguides");
       }},
      {"wdm_channels",
       // ph-lint: allow(serialization) integral field; integers round-trip exactly
       [](const ScenarioSpec& s) { return std::to_string(s.design.wdm_channels); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.wdm_channels = parse_uint(v, "wdm_channels");
       }},
      {"global_cell_xy", [](const ScenarioSpec& s) { return fmt(s.design.global_cell_xy); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.global_cell_xy = parse_double(v, "global_cell_xy");
       }},
      {"oni_cell_xy", [](const ScenarioSpec& s) { return fmt(s.design.oni_cell_xy); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.oni_cell_xy = parse_double(v, "oni_cell_xy");
       }},
      {"oni_cell_z", [](const ScenarioSpec& s) { return fmt(s.design.oni_cell_z); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.oni_cell_z = parse_double(v, "oni_cell_z");
       }},
      {"window_margin", [](const ScenarioSpec& s) { return fmt(s.design.window_margin); },
       [](ScenarioSpec& s, const std::string& v) {
         s.design.window_margin = parse_double(v, "window_margin");
       }},
      {"schedule", [](const ScenarioSpec& s) { return fmt_schedule(s.schedule); },
       [](ScenarioSpec& s, const std::string& v) { s.schedule = parse_schedule(v); }},
  };
  return fields;
}

const FieldIo* find_field(const std::string& key) {
  for (const FieldIo& field : field_table()) {
    if (key == field.key) {
      return &field;
    }
  }
  return nullptr;
}

bool valid_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == '-' || ch == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& message) {
  // ph-lint: allow(serialization) integral line number in an error message, not persisted output
  throw SpecError("scenario file, line " + std::to_string(line_number) + ": " + message);
}

}  // namespace

double ScenarioSpec::duty_scale() const {
  if (schedule.empty()) {
    return 1.0;
  }
  return power::ActivityTrace(schedule).average_scale();
}

core::OnocDesignSpec ScenarioSpec::effective_design() const {
  core::OnocDesignSpec d = design;
  d.chip_power *= duty_scale();
  return d;
}

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> k;
    for (const FieldIo& field : field_table()) {
      k.emplace_back(field.key);
    }
    return k;
  }();
  return keys;
}

std::vector<ScenarioSpec> parse_scenarios(const std::string& text,
                                          const core::OnocDesignSpec& base) {
  std::vector<ScenarioSpec> scenarios;
  std::set<std::string> seen_names;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_number = 0;

  while (std::getline(stream, raw)) {
    ++line_number;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) {
      raw.resize(comment);
    }
    const std::string line = trim(raw);
    if (line.empty()) {
      continue;
    }

    if (line.rfind("scenario", 0) == 0 &&
        (line.size() == 8 || line[8] == ' ' || line[8] == '\t')) {
      const std::string name = trim(line.substr(8));
      if (!valid_name(name)) {
        parse_fail(line_number, "scenario name `" + name +
                                    "` is empty or contains characters outside [A-Za-z0-9_.-]");
      }
      if (!seen_names.insert(name).second) {
        parse_fail(line_number, "duplicate scenario name `" + name + "`");
      }
      ScenarioSpec spec;
      spec.name = name;
      spec.design = base;
      scenarios.push_back(std::move(spec));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      parse_fail(line_number, "expected `scenario <name>` or `key = value`, got `" + line + "`");
    }
    if (scenarios.empty()) {
      parse_fail(line_number, "`key = value` before any `scenario <name>` line");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const FieldIo* field = find_field(key);
    if (field == nullptr) {
      parse_fail(line_number, "unknown key `" + key + "`; known keys: " +
                                  join(scenario_keys(), ", "));
    }
    try {
      field->set(scenarios.back(), value);
    } catch (const Error& e) {
      parse_fail(line_number, e.what());
    }
  }
  return scenarios;
}

std::string serialize_scenarios(const std::vector<ScenarioSpec>& scenarios) {
  std::ostringstream os;
  os << "# photherm scenario suite (" << scenarios.size() << " scenarios)\n";
  for (const ScenarioSpec& s : scenarios) {
    PH_REQUIRE(valid_name(s.name), "scenario name `" + s.name +
                                       "` is empty or contains characters outside "
                                       "[A-Za-z0-9_.-]; cannot serialize");
    os << "\nscenario " << s.name << "\n";
    for (const FieldIo& field : field_table()) {
      const std::string value = field.get(s);
      if (value.empty()) {
        continue;  // empty schedule: key absent means "always on"
      }
      os << field.key << " = " << value << "\n";
    }
  }
  return os.str();
}

std::vector<ScenarioSpec> load_scenario_file(const std::string& path,
                                             const core::OnocDesignSpec& base) {
  std::ifstream in(path);
  PH_REQUIRE(in.good(), "cannot open scenario file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  PH_REQUIRE(!in.bad(), "failed while reading scenario file: " + path);
  return parse_scenarios(text.str(), base);
}

void save_scenario_file(const std::string& path, const std::vector<ScenarioSpec>& scenarios) {
  std::ofstream out(path);
  PH_REQUIRE(out.good(), "cannot open scenario output file: " + path);
  out << serialize_scenarios(scenarios);
  out.flush();
  PH_REQUIRE(out.good(), "failed while writing scenario file: " + path);
}

}  // namespace photherm::scenario
