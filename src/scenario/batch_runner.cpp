#include "scenario/batch_runner.hpp"

#include <exception>
#include <optional>
#include <unordered_map>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace photherm::scenario {

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

BatchResult BatchRunner::run(const std::vector<ScenarioSpec>& scenarios) const {
  PH_REQUIRE(!scenarios.empty(), "batch has no scenarios");
  const std::size_t n = scenarios.size();

  // Validates every spec up front, before any solve starts.
  std::vector<core::ThermalAwareDesigner> designers;
  designers.reserve(n);
  for (const ScenarioSpec& s : scenarios) {
    try {
      designers.emplace_back(s.effective_design());
    } catch (const Error& e) {
      throw SpecError("scenario `" + s.name + "`: " + e.what());
    }
  }

  BatchResult result;
  result.stats.scenario_count = n;
  result.reports.resize(n);
  telemetry::count("batch.scenarios", n);

  if (!options_.share_global_solves) {
    // Cold path: every scenario performs its own coarse solve. Reports land
    // at their scenario's index, so order and values are thread-count
    // independent.
    util::parallel_for(
        n, 1,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            telemetry::Span span("batch.scenario", scenarios[i].name.c_str());
            telemetry::ScopedTimer wall("batch.scenario.wall");
            with_error_context("scenario `" + scenarios[i].name + "`",
                               [&] { result.reports[i] = designers[i].run(); });
          }
        },
        options_.threads);
    result.stats.global_solves = n;
    telemetry::count("batch.cache.misses", n);
    return result;
  }

  // Group scenarios by global scene key. Keys serialize the full scene (and
  // everything else the coarse solve reads), so equal keys guarantee the
  // shared field is bit-identical to the one a cold solve would produce.
  std::vector<std::size_t> group_of(n);
  std::vector<std::size_t> representative;  // first scenario index per group
  {
    std::unordered_map<std::string, std::size_t> group_index;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, fresh] =
          group_index.try_emplace(designers[i].global_scene_key(), representative.size());
      if (fresh) {
        representative.push_back(i);
      }
      group_of[i] = it->second;
    }
  }
  PH_LOG_DEBUG << "scenario batch: " << n << " scenarios over " << representative.size()
               << " distinct global scenes";

  // Coarse pass: one global solve per distinct scene, in parallel.
  std::vector<std::optional<core::CoarseGlobalSolve>> globals(representative.size());
  util::parallel_for(
      representative.size(), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t g = begin; g < end; ++g) {
          telemetry::Span span("batch.global_solve",
                               scenarios[representative[g]].name.c_str());
          with_error_context("scenario `" + scenarios[representative[g]].name + "`",
                             [&] { globals[g] = designers[representative[g]].solve_global(); });
        }
      },
      options_.threads);

  // Fine pass: every scenario refines its ONI windows on its group's
  // shared coarse field (read-only, safe to share across workers).
  util::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          telemetry::Span span("batch.scenario", scenarios[i].name.c_str());
          telemetry::ScopedTimer wall("batch.scenario.wall");
          with_error_context(
              "scenario `" + scenarios[i].name + "`",
              [&] { result.reports[i] = designers[i].run(*globals[group_of[i]]); });
        }
      },
      options_.threads);

  result.stats.global_solves = representative.size();
  result.stats.cache_hits = n - representative.size();
  telemetry::count("batch.cache.misses", representative.size());
  telemetry::count("batch.cache.hits", result.stats.cache_hits);
  return result;
}

Table batch_table(const std::vector<ScenarioSpec>& scenarios, const BatchResult& result) {
  PH_REQUIRE(scenarios.size() == result.reports.size(),
             "scenario list and batch result are not index-aligned");
  Table table({"scenario", "activity", "placement", "t_ambient_c", "chip_power_w", "duty",
               "p_vcsel_w", "heater_ratio", "waveguides", "wdm_channels", "fanout",
               "chip_avg_c", "oni_avg_c", "oni_spread_c", "max_gradient_c", "gradient_ok",
               "worst_snr_db", "undetectable", "links_ok"});
  table.set_exact();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioSpec& s = scenarios[i];
    const core::DesignReport& report = result.reports[i];
    const core::OnocDesignSpec& spec = report.spec;  // effective design
    std::vector<TableCell> row{
        s.name,
        power::to_string(spec.activity),
        core::to_string(spec.placement),
        spec.package.t_ambient,
        spec.chip_power,
        s.duty_scale(),
        spec.p_vcsel,
        spec.heater_ratio,
        static_cast<double>(spec.waveguides),
        static_cast<double>(spec.wdm_channels),
        static_cast<double>(spec.fanout),
        report.thermal.chip_average,
        report.thermal.oni_average,
        report.thermal.oni_spread,
        report.thermal.max_gradient,
        std::string(report.gradient_ok() ? "yes" : "no"),
    };
    if (report.snr) {
      row.emplace_back(report.snr->network.worst_snr_db);
      row.emplace_back(static_cast<double>(report.snr->network.undetectable_count));
    } else {
      row.emplace_back(std::string());
      row.emplace_back(std::string());
    }
    row.emplace_back(std::string(report.links_ok() ? "yes" : "no"));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace photherm::scenario
