#include "power/activity.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm::power {

using geometry::Box3;
using geometry::Vec3;

TileGrid::TileGrid(Box3 area, std::size_t nx, std::size_t ny) : area_(area), nx_(nx), ny_(ny) {
  PH_REQUIRE(nx >= 1 && ny >= 1, "tile grid must have at least one tile");
}

Box3 TileGrid::tile_box(std::size_t i, std::size_t j) const {
  PH_REQUIRE(i < nx_ && j < ny_, "tile index out of range");
  const double w = area_.extent(0) / static_cast<double>(nx_);
  const double d = area_.extent(1) / static_cast<double>(ny_);
  return Box3::make({area_.lo.x + w * static_cast<double>(i), area_.lo.y + d * static_cast<double>(j), area_.lo.z},
                    {area_.lo.x + w * static_cast<double>(i + 1),
                     area_.lo.y + d * static_cast<double>(j + 1), area_.hi.z});
}

std::string to_string(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kUniform:
      return "uniform";
    case ActivityKind::kDiagonal:
      return "diagonal";
    case ActivityKind::kRandom:
      return "random";
    case ActivityKind::kHotspot:
      return "hotspot";
    case ActivityKind::kCheckerboard:
      return "checkerboard";
  }
  return "?";
}

const std::vector<ActivityKind>& all_activity_kinds() {
  static const std::vector<ActivityKind> kinds{
      ActivityKind::kUniform, ActivityKind::kDiagonal, ActivityKind::kRandom,
      ActivityKind::kHotspot, ActivityKind::kCheckerboard};
  return kinds;
}

ActivityKind activity_kind_from_string(const std::string& name) {
  const std::string wanted = to_lower(trim(name));
  for (ActivityKind kind : all_activity_kinds()) {
    if (wanted == to_string(kind)) {
      return kind;
    }
  }
  std::vector<std::string> known;
  for (ActivityKind kind : all_activity_kinds()) {
    known.push_back(to_string(kind));
  }
  throw SpecError("unknown activity kind `" + name + "`; valid kinds: " + join(known, ", "));
}

std::vector<double> generate_activity(const TileGrid& grid, ActivityKind kind,
                                      double total_power, Rng& rng) {
  PH_REQUIRE(total_power >= 0.0, "total power must be non-negative");
  const std::size_t n = grid.tile_count();
  std::vector<double> weights(n, 1.0);

  switch (kind) {
    case ActivityKind::kUniform:
      break;
    case ActivityKind::kDiagonal: {
      // Paper Sec. V-C: upper-left and bottom-right parts dissipate 8 W
      // each, upper-right and bottom-left 4 W each -> 2:1 quadrant weights.
      for (std::size_t j = 0; j < grid.ny(); ++j) {
        for (std::size_t i = 0; i < grid.nx(); ++i) {
          const bool right = i >= grid.nx() / 2;
          const bool top = j >= grid.ny() / 2;
          const bool heavy = (top && !right) || (!top && right);
          weights[grid.tile_index(i, j)] = heavy ? 2.0 : 1.0;
        }
      }
      break;
    }
    case ActivityKind::kRandom: {
      for (double& w : weights) {
        w = rng.uniform(0.1, 1.0);
      }
      break;
    }
    case ActivityKind::kHotspot: {
      const Vec3 c = grid.area().center();
      const double sigma = 0.2 * std::max(grid.area().extent(0), grid.area().extent(1));
      for (std::size_t j = 0; j < grid.ny(); ++j) {
        for (std::size_t i = 0; i < grid.nx(); ++i) {
          const Vec3 tc = grid.tile_box(i, j).center();
          const double dx = tc.x - c.x;
          const double dy = tc.y - c.y;
          weights[grid.tile_index(i, j)] =
              0.15 + std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
        }
      }
      break;
    }
    case ActivityKind::kCheckerboard: {
      for (std::size_t j = 0; j < grid.ny(); ++j) {
        for (std::size_t i = 0; i < grid.nx(); ++i) {
          weights[grid.tile_index(i, j)] = ((i + j) % 2 == 0) ? 2.0 : 1.0;
        }
      }
      break;
    }
  }

  double sum = 0.0;
  for (double w : weights) {
    sum += w;
  }
  std::vector<double> powers(n);
  for (std::size_t i = 0; i < n; ++i) {
    powers[i] = total_power * weights[i] / sum;
  }
  return powers;
}

std::vector<double> generate_activity(const TileGrid& grid, ActivityKind kind,
                                      double total_power) {
  PH_REQUIRE(kind != ActivityKind::kRandom,
             "random activity needs an Rng; use the three-argument overload");
  Rng dummy;
  return generate_activity(grid, kind, total_power, dummy);
}

void add_heat_sources(geometry::Scene& scene, const TileGrid& grid,
                      const std::vector<double>& tile_power, double z_lo, double z_hi,
                      const std::string& material, const std::string& prefix) {
  PH_REQUIRE(tile_power.size() == grid.tile_count(), "tile power vector size mismatch");
  PH_REQUIRE(z_hi > z_lo, "heat source z range must be non-empty");
  const geometry::MaterialId mat = scene.materials().id_of(material);
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      const Box3 fp = grid.tile_box(i, j);
      geometry::Block block;
      block.name = prefix + "_" + std::to_string(i) + "_" + std::to_string(j);
      block.box = Box3::make({fp.lo.x, fp.lo.y, z_lo}, {fp.hi.x, fp.hi.y, z_hi});
      block.material = mat;
      block.power = tile_power[grid.tile_index(i, j)];
      block.kind = geometry::BlockKind::kHeatSource;
      block.group = static_cast<int>(grid.tile_index(i, j));
      scene.add(std::move(block));
    }
  }
}

ActivityTrace::ActivityTrace(std::vector<ActivityPhase> phases) : phases_(std::move(phases)) {
  PH_REQUIRE(!phases_.empty(), "an activity trace needs at least one phase");
  for (const ActivityPhase& p : phases_) {
    PH_REQUIRE(p.duration > 0.0, "phase duration must be positive");
    PH_REQUIRE(p.scale >= 0.0, "phase scale must be non-negative");
  }
}

double ActivityTrace::scale_at(double t) const {
  double elapsed = 0.0;
  for (const ActivityPhase& p : phases_) {
    elapsed += p.duration;
    if (t < elapsed) {
      return p.scale;
    }
  }
  return phases_.back().scale;
}

double ActivityTrace::average_scale() const {
  double weighted = 0.0;
  for (const ActivityPhase& p : phases_) {
    weighted += p.duration * p.scale;
  }
  return weighted / total_duration();
}

double ActivityTrace::total_duration() const {
  double total = 0.0;
  for (const ActivityPhase& p : phases_) {
    total += p.duration;
  }
  return total;
}

}  // namespace photherm::power
