/// \file activity.hpp
/// \brief Chip activity scenarios (paper Sec. IV-A "MPSoC activity":
/// uniform, diagonal, random, benchmark). An activity distributes a total
/// chip power over a grid of tiles; the tiles become heat-source blocks in
/// the BEOL layer of the thermal model.
#pragma once

#include <string>
#include <vector>

#include "geometry/block.hpp"
#include "util/rng.hpp"

namespace photherm::power {

/// Rectangular grid of processor tiles over the die footprint.
class TileGrid {
 public:
  /// `area` is the 2-D die footprint (z range ignored); nx * ny tiles.
  TileGrid(geometry::Box3 area, std::size_t nx, std::size_t ny);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t tile_count() const { return nx_ * ny_; }

  /// Tile (i, j) footprint; i in [0, nx), j in [0, ny). j = 0 is the
  /// bottom row (minimum y).
  geometry::Box3 tile_box(std::size_t i, std::size_t j) const;

  std::size_t tile_index(std::size_t i, std::size_t j) const { return j * nx_ + i; }

  const geometry::Box3& area() const { return area_; }

 private:
  geometry::Box3 area_;
  std::size_t nx_;
  std::size_t ny_;
};

enum class ActivityKind {
  kUniform,       ///< every tile dissipates the same power
  kDiagonal,      ///< paper Sec. V-C: UL+BR quadrants 2x the UR+BL ones
  kRandom,        ///< random per-tile weights (seeded)
  kHotspot,       ///< Gaussian bump centred on the die
  kCheckerboard,  ///< alternating high/low tiles
};

std::string to_string(ActivityKind kind);

/// Inverse of to_string (case-insensitive); throws SpecError on an unknown
/// name, listing the valid ones.
ActivityKind activity_kind_from_string(const std::string& name);

/// Every kind in declaration order (for registries and CLIs).
const std::vector<ActivityKind>& all_activity_kinds();

/// Per-tile power [W] for a scenario; sums to `total_power`.
/// `rng` is only used by kRandom.
std::vector<double> generate_activity(const TileGrid& grid, ActivityKind kind,
                                      double total_power, Rng& rng);

/// Deterministic overload for scenarios that need no randomness; throws
/// SpecError for kRandom.
std::vector<double> generate_activity(const TileGrid& grid, ActivityKind kind,
                                      double total_power);

/// Emit the tiles as heat-source blocks spanning [z_lo, z_hi] into `scene`.
/// Blocks are named "<prefix>_i_j", kind kHeatSource, material `material`.
void add_heat_sources(geometry::Scene& scene, const TileGrid& grid,
                      const std::vector<double>& tile_power, double z_lo, double z_hi,
                      const std::string& material, const std::string& prefix = "tile");

/// A step-wise power schedule for transient studies: scale factors applied
/// to a base activity over time.
struct ActivityPhase {
  double duration;  ///< [s]
  double scale;     ///< multiplier on the base power map
};

class ActivityTrace {
 public:
  explicit ActivityTrace(std::vector<ActivityPhase> phases);

  /// Power scale at absolute time `t` (clamps to the last phase).
  double scale_at(double t) const;

  /// Time-weighted mean scale over one period of the trace — the
  /// steady-state equivalent duty factor of the schedule.
  double average_scale() const;

  double total_duration() const;
  const std::vector<ActivityPhase>& phases() const { return phases_; }

 private:
  std::vector<ActivityPhase> phases_;
};

}  // namespace photherm::power
