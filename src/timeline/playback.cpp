#include "timeline/playback.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/methodology.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::timeline {

namespace {

/// Max |a - b| over two equally sized vectors.
double max_abs_delta(const math::Vector& a, const math::Vector& b) {
  double delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    delta = std::max(delta, std::abs(a[i] - b[i]));
  }
  return delta;
}

}  // namespace

TimelineTrace play_scenario(const scenario::ScenarioSpec& spec,
                            const PlaybackOptions& options) {
  PH_REQUIRE(options.max_periods >= 1, "playback needs at least one period");
  PH_REQUIRE(options.settle_tolerance > 0.0, "settle tolerance must be positive");

  // Validate + build the scene exactly as the steady-state coarse pass does.
  core::ThermalAwareDesigner designer(spec.design);
  const soc::SccSystem system = designer.build_system();
  const thermal::BoundarySet bcs = designer.boundary_conditions();
  const mesh::MeshOptions mesh_options = designer.global_mesh_options();
  auto mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(system.scene, mesh_options));

  // Split the injected power into the schedule-modulated part (the tile heat
  // sources fed by chip_power) and the constant part (ONI devices). A
  // chip_power = 0 variant of the same design produces the identical block
  // list and therefore the identical grid; the per-cell difference is
  // exactly the tile contribution.
  core::OnocDesignSpec idle_design = spec.design;
  idle_design.chip_power = 0.0;
  const core::ThermalAwareDesigner idle_designer(idle_design);
  const mesh::RectilinearMesh idle_mesh =
      mesh::RectilinearMesh::build(idle_designer.build_system().scene, mesh_options);
  const std::size_t n = mesh->cell_count();
  PH_REQUIRE(idle_mesh.cell_count() == n,
             "chip_power = 0 variant meshed differently; cannot split the power");
  math::Vector base_power(n);
  math::Vector modulated_power(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_power[i] = idle_mesh.power(i);
    modulated_power[i] = mesh->power(i) - idle_mesh.power(i);
  }

  const PowerTimeline timeline = compile_timeline(spec.schedule, options.time_step);

  thermal::TransientOptions transient_options;
  transient_options.time_step = options.time_step;
  transient_options.warm_start = options.warm_start;
  transient_options.solver = options.solver;
  thermal::TransientSolver solver(mesh, bcs, transient_options);
  solver.set_uniform_state(spec.design.package.t_ambient);

  // Steady reference at the timeline's duty: the settle detector's target.
  // Reuses the solver's own assembly (same mesh, so the comparison is
  // cell-for-cell). Uses the timeline's (quantized) average scale, not the
  // analytic duty_scale(), so a quantized schedule settles against the
  // power it actually plays.
  const double duty = timeline.average_scale();
  math::Vector steady_reference;
  {
    const thermal::DiscreteSystem& assembled = solver.system();
    math::Vector rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = assembled.rhs[i] - mesh->power(i) + base_power[i] + duty * modulated_power[i];
    }
    math::conjugate_gradient(assembled.matrix, rhs, steady_reference, options.solver);
  }

  // Probe geometry is fixed for the whole playback; bind it to the mesh
  // once so per-step sampling is a few weighted sums, not a mesh search.
  const BoundProbeSet probes(ProbeSet::standard(system), *mesh);
  TimelineTrace trace;
  trace.scenario = spec.name;
  trace.probe_names = probes.names();
  trace.period = timeline.period();

  // Precompute one power vector per segment: phase changes then cost a
  // vector swap in the solver's rhs, never a matrix reassembly.
  std::vector<math::Vector> segment_power;
  segment_power.reserve(timeline.segments.size());
  for (const TimelineSegment& segment : timeline.segments) {
    math::Vector power(n);
    for (std::size_t i = 0; i < n; ++i) {
      power[i] = base_power[i] + segment.scale * modulated_power[i];
    }
    segment_power.push_back(std::move(power));
  }

  bool stop = false;
  std::size_t in_tolerance_run = 0;  // consecutive steps within the criterion
  for (std::size_t period = 0; period < options.max_periods && !stop; ++period) {
    for (std::size_t s = 0; s < timeline.segments.size() && !stop; ++s) {
      solver.set_power(segment_power[s]);
      for (std::size_t k = 0; k < timeline.segments[s].steps && !stop; ++k) {
        const thermal::ThermalField& field = solver.step();
        trace.times.push_back(solver.time());
        trace.power_scale.push_back(timeline.segments[s].scale);
        trace.cg_iterations.push_back(solver.last_solve().iterations);
        trace.samples.push_back(probes.sample(field));

        const double delta = max_abs_delta(field.temperatures(), steady_reference);
        trace.final_delta = delta;
        // Settled = the criterion holds for one full period, not just one
        // sample: an oscillating schedule whose field merely crosses the
        // steady reference must not latch a false settle. For constant
        // schedules (one-step period) this degenerates to the plain test.
        in_tolerance_run = delta <= options.settle_tolerance ? in_tolerance_run + 1 : 0;
        if (!trace.settled && in_tolerance_run >= timeline.steps_per_period()) {
          trace.settled = true;
          trace.settle_step = trace.times.size() - in_tolerance_run;  // run entry
          trace.settle_time = trace.times[trace.settle_step];
        }
        if (trace.settled && options.stop_on_settle) {
          stop = true;
        }
      }
    }
  }
  trace.stats = solver.stats();
  PH_LOG_DEBUG << "timeline `" << trace.scenario << "`: " << trace.step_count() << " steps, "
               << trace.stats.total_cg_iterations << " CG iterations, "
               << (trace.settled ? "settled" : "not settled");
  return trace;
}

}  // namespace photherm::timeline
