#include "timeline/playback.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/methodology.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace photherm::timeline {

namespace {

/// The steady settle reference must be resolvably tighter than the settle
/// tolerance: its solver-noise floor (rel_tolerance * field scale) has to
/// sit at least this factor below the tolerance, else the settle detector
/// compares against noise.
constexpr double kSettleNoiseMargin = 10.0;

/// No CG solve resolves a tighter relative tolerance than this; a
/// settle_tolerance that would require one is rejected outright.
constexpr double kMinReferenceTolerance = 1e-15;

/// Auto cap on adaptive growth when PlaybackOptions::max_time_step is 0.
constexpr double kDefaultMaxGrowthFactor = 64.0;

/// Adaptive growth targets at least this per-step contraction of the
/// distance to the steady reference: the step grows whenever one step
/// moves the field by less than this fraction of the remaining distance.
/// Backward Euler is L-stable, so the resulting dt >~ tau steps stay
/// stable and the distance shrinks geometrically — settle in O(log)
/// steps instead of O(horizon / dt).
constexpr double kAdaptiveContraction = 0.5;

/// Periodic detection buffers one full period of fields. Above this many
/// doubles (32 MB) the buffer is not worth the trade and detection is
/// disabled (logged); the bound depends only on the problem, never on
/// thread counts, so determinism is preserved.
constexpr std::size_t kPeriodicBufferCap = std::size_t{1} << 22;

/// Max |a - b| over two vectors; the sizes must match (a settle or cycle
/// comparison across different meshes/grids would be meaningless).
double max_abs_delta(const math::Vector& a, const math::Vector& b) {
  PH_REQUIRE(a.size() == b.size(), "max_abs_delta: size mismatch");
  double delta = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    delta = std::max(delta, std::abs(a[i] - b[i]));
  }
  return delta;
}

void validate_options(const PlaybackOptions& options) {
  PH_REQUIRE(options.max_periods >= 1, "playback needs at least one period");
  PH_REQUIRE(options.settle_tolerance > 0.0, "settle tolerance must be positive");
  PH_REQUIRE(options.adaptive_growth > 1.0, "adaptive growth factor must exceed 1");
  PH_REQUIRE(options.periodic_hold_periods >= 1,
             "periodic detection needs at least one held period");
}

}  // namespace

Playback::Playback(const scenario::ScenarioSpec& spec, const PlaybackOptions& options)
    : options_(options), schedule_(spec.schedule) {
  validate_options(options_);
  build_scene(spec);

  PowerTimeline base =
      compile_timeline(schedule_, options_.time_step, options_.max_period_error);
  constant_scale_ = constant_scale(schedule_);
  dt_ = options_.time_step;
  horizon_time_ = static_cast<double>(options_.max_periods) * base.period();

  thermal::TransientOptions transient_options;
  transient_options.time_step = dt_;
  transient_options.warm_start = options_.warm_start;
  transient_options.solver = options_.solver;
  transient_options.operator_kind = options_.operator_kind;
  solver_.emplace(mesh_, boundary_set_, transient_options);
  solver_->set_uniform_state(spec.design.package.t_ambient);

  trace_.scenario = spec.name;
  trace_.probe_names = probes_->names();
  trace_.period = base.period();
  trace_.final_time_step = dt_;

  solve_steady_reference(base);
  adopt_timeline(std::move(base));
}

Playback::Playback(const scenario::ScenarioSpec& spec, const PlaybackOptions& options,
                   const PlaybackCheckpoint& checkpoint)
    : options_(options), schedule_(spec.schedule) {
  validate_options(options_);
  PH_REQUIRE(checkpoint.scenario == spec.name,
             "checkpoint is for scenario `" + checkpoint.scenario +
                 "`, not `" + spec.name + "`");
  PH_REQUIRE(checkpoint.base_time_step == options_.time_step,
             "checkpoint was taken at a different base time step; resume with the "
             "options the playback started with");
  build_scene(spec);

  const std::size_t n = mesh_->cell_count();
  PH_REQUIRE(checkpoint.state.size() == n,
             "checkpoint field does not match the scenario's mesh");
  PH_REQUIRE(checkpoint.trace.probe_names == probes_->names(),
             "checkpoint probe set does not match the scenario");

  // The base grid fixes the horizon and the duty of the settle reference;
  // both must reproduce the original construction exactly.
  PowerTimeline base =
      compile_timeline(schedule_, options_.time_step, options_.max_period_error);
  constant_scale_ = constant_scale(schedule_);
  PH_REQUIRE(checkpoint.trace.period == base.period(),
             "checkpoint period does not match the compiled schedule");
  horizon_time_ = static_cast<double>(options_.max_periods) * base.period();
  dt_ = checkpoint.current_time_step;
  PH_REQUIRE(dt_ > 0.0, "checkpoint carries a non-positive time step");

  thermal::TransientOptions transient_options;
  transient_options.time_step = dt_;
  transient_options.warm_start = options_.warm_start;
  transient_options.solver = options_.solver;
  transient_options.operator_kind = options_.operator_kind;
  solver_.emplace(mesh_, boundary_set_, transient_options);
  solver_->set_state(thermal::ThermalField(mesh_, checkpoint.state));
  solver_->set_time(checkpoint.time);

  trace_ = checkpoint.trace;
  stats_offset_ = checkpoint.trace.stats;
  telemetry::instant("checkpoint.resumes");
  solve_steady_reference(base);

  // Recreate the grid in effect at the pause: the base grid, or the one
  // adaptive growth had reached (a constant-scale schedule regrows to a
  // single one-step segment; a multi-scale one re-quantizes the schedule).
  if (dt_ == options_.time_step) {
    adopt_timeline(std::move(base));
  } else if (constant_scale_) {
    PowerTimeline grown;
    grown.time_step = dt_;
    grown.segments.push_back({base.segments.front().scale, 1, dt_});
    adopt_timeline(std::move(grown));
  } else {
    PowerTimeline grown =
        compile_timeline(schedule_, dt_, std::numeric_limits<double>::infinity());
    PH_REQUIRE(grown.relative_period_error() <= options_.max_period_error,
               "checkpoint time step violates the period-error bound");
    adopt_timeline(std::move(grown));
  }

  // adopt_timeline resets the detectors; restore the paused detector state
  // on top of the freshly derived grid.
  PH_REQUIRE(checkpoint.step_in_period < timeline_.steps_per_period(),
             "checkpoint step offset is outside the period");
  step_in_period_ = checkpoint.step_in_period;
  in_tolerance_run_ = checkpoint.in_tolerance_run;
  last_step_delta_ = checkpoint.last_step_delta;
  trace_.final_time_step = dt_;
  if (periodic_enabled_) {
    const std::size_t spp = timeline_.steps_per_period();
    const std::size_t filled = std::min(checkpoint.cycle_count, spp);
    PH_REQUIRE(checkpoint.cycle_buffer.size() == filled,
               "checkpoint cycle buffer does not match its step counter");
    for (std::size_t j = 0; j < filled; ++j) {
      PH_REQUIRE(checkpoint.cycle_buffer[j].size() == n,
                 "checkpoint cycle buffer does not match the mesh");
      cycle_buffer_[j] = checkpoint.cycle_buffer[j];
    }
    cycle_count_ = checkpoint.cycle_count;
    cycle_hold_ = checkpoint.cycle_hold;
    cycle_max_delta_ = checkpoint.cycle_max_delta;
  }
}

void Playback::build_scene(const scenario::ScenarioSpec& spec) {
  // Validate + build the scene exactly as the steady-state coarse pass does.
  core::ThermalAwareDesigner designer(spec.design);
  const soc::SccSystem system = designer.build_system();
  boundary_set_ = designer.boundary_conditions();
  const mesh::MeshOptions mesh_options = designer.global_mesh_options();
  mesh_ = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(system.scene, mesh_options));

  // Split the injected power into the schedule-modulated part (the tile heat
  // sources fed by chip_power) and the constant part (ONI devices). A
  // chip_power = 0 variant of the same design produces the identical block
  // list and therefore the identical grid; the per-cell difference is
  // exactly the tile contribution.
  core::OnocDesignSpec idle_design = spec.design;
  idle_design.chip_power = 0.0;
  const core::ThermalAwareDesigner idle_designer(idle_design);
  const mesh::RectilinearMesh idle_mesh =
      mesh::RectilinearMesh::build(idle_designer.build_system().scene, mesh_options);
  const std::size_t n = mesh_->cell_count();
  PH_REQUIRE(idle_mesh.cell_count() == n,
             "chip_power = 0 variant meshed differently; cannot split the power");
  base_power_.resize(n);
  modulated_power_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_power_[i] = idle_mesh.power(i);
    modulated_power_[i] = mesh_->power(i) - idle_mesh.power(i);
  }

  // Probe geometry is fixed for the whole playback; bind it to the mesh
  // once so per-step sampling is a few weighted sums, not a mesh search.
  probes_.emplace(ProbeSet::standard(system), *mesh_);
}

void Playback::solve_steady_reference(const PowerTimeline& base_timeline) {
  telemetry::Span span("playback.steady_reference", trace_.scenario.c_str());
  // Steady reference at the timeline's duty: the settle detector's target.
  // Reuses the solver's own assembly (same mesh, so the comparison is
  // cell-for-cell). Uses the timeline's (quantized) average scale, not the
  // analytic duty_scale(), so a quantized schedule settles against the
  // power it actually plays.
  const double duty = base_timeline.average_scale();
  const std::size_t n = mesh_->cell_count();
  const thermal::DiscreteSystem& assembled = solver_->system();
  math::Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = assembled.rhs[i] - mesh_->power(i) + base_power_[i] + duty * modulated_power_[i];
  }
  math::SolverOptions reference_options = options_.solver;
  // One preconditioner serves both reference solves: the matrix does not
  // change between the first pass and the tightened re-solve, so rebuilding
  // it there was pure waste.
  const auto reference_precond = math::make_preconditioner(
      reference_options.preconditioner, assembled.matrix, reference_options.chebyshev);
  math::conjugate_gradient(assembled.matrix, rhs, steady_reference_, *reference_precond,
                           reference_options);

  // Settle/CG tolerance guard: the reference's noise floor — its relative
  // tolerance times the field scale — must sit well below the settle
  // tolerance, else the detector latches on solver noise. Tighten and
  // re-solve (warm-started from the first pass) when it does not; refuse
  // outright when no solve could resolve the requested tolerance.
  double scale = 1.0;
  for (double t : steady_reference_) {
    scale = std::max(scale, std::abs(t));
  }
  const double noise = reference_options.rel_tolerance * scale;
  if (options_.settle_tolerance < kSettleNoiseMargin * noise) {
    const double tightened = options_.settle_tolerance / (kSettleNoiseMargin * scale);
    PH_REQUIRE(tightened >= kMinReferenceTolerance,
               "settle_tolerance is below what any steady reference solve can resolve; "
               "loosen it");
    PH_LOG_WARN << "timeline `" << trace_.scenario << "`: settle_tolerance "
                << options_.settle_tolerance << " degC is within the steady reference's "
                << "solver noise; tightening the reference solve from rel_tolerance "
                << reference_options.rel_tolerance << " to " << tightened;
    reference_options.rel_tolerance = tightened;
    math::conjugate_gradient(assembled.matrix, rhs, steady_reference_, *reference_precond,
                             reference_options);
  }
  trace_.reference_tolerance = reference_options.rel_tolerance;
}

void Playback::adopt_timeline(PowerTimeline timeline) {
  timeline_ = std::move(timeline);
  const std::size_t spp = timeline_.steps_per_period();
  PH_REQUIRE(spp >= 1, "timeline has no steps");

  step_segment_.assign(spp, 0);
  std::size_t step = 0;
  for (std::size_t s = 0; s < timeline_.segments.size(); ++s) {
    for (std::size_t k = 0; k < timeline_.segments[s].steps; ++k) {
      step_segment_[step++] = s;
    }
  }

  // Precompute one power vector per segment: phase changes then cost a
  // vector swap in the solver's rhs, never a matrix reassembly.
  const std::size_t n = mesh_->cell_count();
  segment_power_.clear();
  segment_power_.reserve(timeline_.segments.size());
  for (const TimelineSegment& segment : timeline_.segments) {
    math::Vector power(n);
    for (std::size_t i = 0; i < n; ++i) {
      power[i] = base_power_[i] + segment.scale * modulated_power_[i];
    }
    segment_power_.push_back(std::move(power));
  }
  current_segment_ = static_cast<std::size_t>(-1);  // force set_power next step

  // A new grid resets the detectors: the settle hold and the
  // cycle-over-cycle comparison are both defined per period of one grid.
  step_in_period_ = 0;
  in_tolerance_run_ = 0;
  cycle_count_ = 0;
  cycle_hold_ = 0;
  cycle_max_delta_ = 0.0;

  // The grid derives from the schedule, so the oscillation gate is exactly
  // the constant-scale predicate both ctors already evaluated.
  const bool multi_scale = !constant_scale_;
  const bool fits = spp * n <= kPeriodicBufferCap;
  periodic_enabled_ = options_.detect_periodic_steady && multi_scale && spp >= 2 && fits;
  if (options_.detect_periodic_steady && multi_scale && spp >= 2 && !fits) {
    PH_LOG_DEBUG << "timeline `" << trace_.scenario << "`: periodic-steady detection "
                 << "disabled; one period of fields (" << spp << " x " << n
                 << " cells) exceeds the buffer cap";
  }
  cycle_buffer_.assign(periodic_enabled_ ? spp : 0, math::Vector());
}

void Playback::maybe_grow_dt() {
  if (!options_.adaptive || trace_.step_count() == 0 || finished_) {
    return;
  }
  // Crawling = the last step moved the field by less than the floor (an
  // absolute rate that matters near settle) or by less than a fraction of
  // the distance still to cover (which keeps the contraction geometric
  // while the field is far away).
  const double floor_threshold = options_.adaptive_threshold > 0.0
                                     ? options_.adaptive_threshold
                                     : 0.25 * options_.settle_tolerance;
  const double threshold =
      std::max(floor_threshold, kAdaptiveContraction * trace_.final_delta);
  if (last_step_delta_ > threshold) {
    return;
  }
  const double cap = options_.max_time_step > 0.0
                         ? options_.max_time_step
                         : kDefaultMaxGrowthFactor * options_.time_step;
  const double next = std::min(dt_ * options_.adaptive_growth, cap);
  if (!(next > dt_)) {
    return;
  }
  PowerTimeline grown;
  if (constant_scale_) {
    // No period constraint: the power never changes, so the grid is free.
    grown.time_step = next;
    grown.segments.push_back({timeline_.segments.front().scale, 1, next});
  } else {
    // Re-quantize the remaining (periodic) schedule on the coarser grid;
    // stay on the current grid when the schedule no longer fits it.
    grown = compile_timeline(schedule_, next, std::numeric_limits<double>::infinity());
    if (grown.relative_period_error() > options_.max_period_error) {
      return;
    }
  }
  PH_LOG_DEBUG << "timeline `" << trace_.scenario << "`: growing dt " << dt_ << " -> "
               << next << " s at t = " << solver_->time() << " s (step delta "
               << last_step_delta_ << " degC)";
  dt_ = next;
  solver_->set_time_step(dt_);
  adopt_timeline(std::move(grown));
  trace_.dt_growths += 1;
  telemetry::count("playback.dt_growths");
  trace_.final_time_step = dt_;
}

void Playback::update_periodic(const math::Vector& temperatures) {
  if (!periodic_enabled_) {
    return;
  }
  const std::size_t spp = timeline_.steps_per_period();
  const std::size_t slot = cycle_count_ % spp;
  if (cycle_count_ >= spp) {
    cycle_max_delta_ =
        std::max(cycle_max_delta_, max_abs_delta(temperatures, cycle_buffer_[slot]));
  }
  cycle_buffer_[slot] = temperatures;
  cycle_count_ += 1;
  if (cycle_count_ % spp != 0 || cycle_count_ < 2 * spp) {
    return;
  }
  // A full period has been compared against its predecessor.
  trace_.cycle_delta = cycle_max_delta_;
  cycle_hold_ = cycle_max_delta_ <= options_.settle_tolerance ? cycle_hold_ + 1 : 0;
  cycle_max_delta_ = 0.0;
  if (!trace_.periodic_steady && cycle_hold_ >= options_.periodic_hold_periods) {
    trace_.periodic_steady = true;
    trace_.periodic_steady_step =
        trace_.step_count() - options_.periodic_hold_periods * spp;
    trace_.periodic_steady_time = trace_.times[trace_.periodic_steady_step];
  }
}

void Playback::step_once() {
  const std::size_t spp = timeline_.steps_per_period();
  const std::size_t segment = step_segment_[step_in_period_];
  if (segment != current_segment_) {
    solver_->set_power(segment_power_[segment]);
    current_segment_ = segment;
  }
  if (options_.adaptive) {
    previous_state_ = solver_->state().temperatures();
  }

  const thermal::ThermalField& field = solver_->step();
  telemetry::count("playback.steps");
  trace_.times.push_back(solver_->time());
  trace_.power_scale.push_back(timeline_.segments[segment].scale);
  trace_.cg_iterations.push_back(solver_->last_solve().iterations);
  trace_.samples.push_back(probes_->sample(field));
  trace_.stats = stats_offset_ + solver_->stats();

  const double delta = max_abs_delta(field.temperatures(), steady_reference_);
  trace_.final_delta = delta;
  // Settled = the criterion holds for one full period, not just one
  // sample: an oscillating schedule whose field merely crosses the
  // steady reference must not latch a false settle. For constant
  // schedules (one-step period) this degenerates to the plain test.
  in_tolerance_run_ = delta <= options_.settle_tolerance ? in_tolerance_run_ + 1 : 0;
  if (!trace_.settled && in_tolerance_run_ >= spp) {
    trace_.settled = true;
    trace_.settle_step = trace_.times.size() - in_tolerance_run_;  // run entry
    trace_.settle_time = trace_.times[trace_.settle_step];
  }
  if (options_.adaptive) {
    last_step_delta_ = max_abs_delta(field.temperatures(), previous_state_);
  }
  update_periodic(field.temperatures());

  // Soak heartbeat: a stable key=value stderr line every N steps (see
  // PlaybackOptions::progress_every). Logging only — never the trace, never
  // the physics.
  if (options_.progress_every != 0 && trace_.step_count() % options_.progress_every == 0) {
    PH_LOG_INFO << "event=playback_progress scenario=" << trace_.scenario
                << " step=" << trace_.step_count() << " time=" << solver_->time()
                << " dt=" << dt_ << " max_delta=" << trace_.final_delta;
  }

  step_in_period_ += 1;
  if (step_in_period_ == spp) {
    step_in_period_ = 0;
  }
  if ((trace_.settled || trace_.periodic_steady) && options_.stop_on_settle) {
    finished_ = true;
  }
  // Horizon in simulated time, not steps: max_periods periods of the
  // initial grid, whatever grid the adaptive scheme reached. The half-step
  // slack absorbs the accumulated-sum vs product rounding of the clock.
  if (solver_->time() >= horizon_time_ - 0.5 * dt_) {
    finished_ = true;
  }
}

std::size_t Playback::run(std::size_t max_steps) {
  std::size_t taken = 0;
  while (!finished_ && taken < max_steps) {
    // Growth points: period boundaries, where re-quantizing the remaining
    // schedule keeps phase alignment. A constant-scale schedule has no
    // physical period, so it may grow before any step.
    if (step_in_period_ == 0 || constant_scale_) {
      maybe_grow_dt();
    }
    step_once();
    taken += 1;
  }
  return taken;
}

PlaybackCheckpoint Playback::checkpoint() const {
  PlaybackCheckpoint ckpt;
  ckpt.scenario = trace_.scenario;
  ckpt.base_time_step = options_.time_step;
  ckpt.current_time_step = dt_;
  ckpt.time = solver_->time();
  ckpt.step_in_period = step_in_period_;
  ckpt.last_step_delta = last_step_delta_;
  ckpt.in_tolerance_run = in_tolerance_run_;
  ckpt.cycle_count = cycle_count_;
  ckpt.cycle_hold = cycle_hold_;
  ckpt.cycle_max_delta = cycle_max_delta_;
  ckpt.state = solver_->state().temperatures();
  if (periodic_enabled_) {
    const std::size_t filled = std::min(cycle_count_, timeline_.steps_per_period());
    ckpt.cycle_buffer.assign(cycle_buffer_.begin(),
                             cycle_buffer_.begin() + static_cast<std::ptrdiff_t>(filled));
  }
  ckpt.trace = trace_;
  return ckpt;
}

TimelineTrace play_scenario(const scenario::ScenarioSpec& spec,
                            const PlaybackOptions& options) {
  Playback playback(spec, options);
  playback.run();
  TimelineTrace trace = playback.take_trace();
  PH_LOG_DEBUG << "timeline `" << trace.scenario << "`: " << trace.step_count() << " steps, "
               << trace.stats.total_cg_iterations << " CG iterations, "
               << (trace.settled ? "settled"
                                 : trace.periodic_steady ? "periodic steady" : "not settled");
  return trace;
}

}  // namespace photherm::timeline
