/// \file playback.hpp
/// \brief Transient playback of one scenario: compile its schedule into a
/// PowerTimeline, build the package-scale scene (the same one the
/// steady-state pipeline's coarse pass solves) and step the backward-Euler
/// TransientSolver through it with warm-started CG. Every step samples a
/// ProbeSet into a TimelineTrace; a settle detector compares the evolving
/// field against the duty-averaged steady-state solution so time-to-steady
/// (the calibration latency of Sec. II) is a first-class output.
///
/// Power handling: the scenario's schedule modulates only the chip activity
/// (the tile heat sources), exactly like the steady-state duty fold in
/// ScenarioSpec::effective_design — the ONI device powers (VCSELs, drivers,
/// MR heaters) are run-time constants. The per-cell split is derived by
/// meshing the scene twice (once as specified, once with chip_power = 0 —
/// identical grids, power differs only by the tile contribution), and phase
/// changes swap rhs power vectors without reassembling the stepping matrix.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "thermal/transient.hpp"
#include "timeline/probe.hpp"
#include "timeline/timeline.hpp"

namespace photherm::timeline {

struct PlaybackOptions {
  double time_step = 0.05;  ///< [s]
  /// Horizon cap: the timeline repeats at most this many periods. With
  /// stop_on_settle the playback usually ends earlier; without it the
  /// horizon is exact, so the trace shape is schedule-determined (what the
  /// golden-CSV smoke test relies on).
  std::size_t max_periods = 400;
  /// Settle criterion: max |T - T_steady| over all cells below this [degC]
  /// for one full timeline period, where T_steady is the steady solution at
  /// the timeline's duty-averaged power on the same mesh. The full-period
  /// hold keeps an oscillating schedule that merely crosses the reference
  /// from latching a false settle.
  double settle_tolerance = 0.02;
  /// Stop stepping once settled (after recording the settling step).
  bool stop_on_settle = true;
  /// Warm-start each step's CG from the previous state (TransientOptions).
  bool warm_start = true;
  /// Solver knobs for both the per-step solves and the steady reference.
  /// Defaults to TransientOptions' tolerances.
  math::SolverOptions solver = thermal::TransientOptions{}.solver;
};

/// Time series of one playback, index-aligned across its vectors: entry k
/// describes step k (sampled at the *end* of the step, time (k+1) * dt).
struct TimelineTrace {
  std::string scenario;
  std::vector<std::string> probe_names;

  std::vector<double> times;                 ///< [s], end-of-step
  std::vector<double> power_scale;           ///< schedule scale during the step
  std::vector<std::size_t> cg_iterations;    ///< per-step CG cost
  std::vector<std::vector<double>> samples;  ///< [step][probe]

  /// Settle detection against the duty-averaged steady state.
  bool settled = false;
  /// [s]; start of the first full period over which the criterion held.
  double settle_time = -1.0;
  std::size_t settle_step = 0;    ///< step index of settle_time
  double final_delta = 0.0;       ///< max |T - T_steady| at the last step

  double period = 0.0;            ///< compiled timeline period [s]
  thermal::TransientStats stats;  ///< cumulative stepping cost

  std::size_t step_count() const { return times.size(); }
};

/// Play one scenario. Deterministic: the trace depends only on the scenario
/// and the options, never on thread counts (the solver kernels are
/// bit-identical at any concurrency — thread_pool.hpp contract). Throws
/// SpecError on an invalid scenario design.
TimelineTrace play_scenario(const scenario::ScenarioSpec& spec,
                            const PlaybackOptions& options = {});

}  // namespace photherm::timeline
