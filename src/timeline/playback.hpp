/// \file playback.hpp
/// \brief Transient playback of one scenario: compile its schedule into a
/// PowerTimeline, build the package-scale scene (the same one the
/// steady-state pipeline's coarse pass solves) and step the backward-Euler
/// TransientSolver through it with warm-started CG. Every step samples a
/// ProbeSet into a TimelineTrace; a settle detector compares the evolving
/// field against the duty-averaged steady-state solution so time-to-steady
/// (the calibration latency of Sec. II) is a first-class output.
///
/// Power handling: the scenario's schedule modulates only the chip activity
/// (the tile heat sources), exactly like the steady-state duty fold in
/// ScenarioSpec::effective_design — the ONI device powers (VCSELs, drivers,
/// MR heaters) are run-time constants. The per-cell split is derived by
/// meshing the scene twice (once as specified, once with chip_power = 0 —
/// identical grids, power differs only by the tile contribution), and phase
/// changes swap rhs power vectors without reassembling the stepping matrix.
///
/// Beyond the plain fixed-grid playback (play_scenario), the Playback class
/// exposes three mechanisms for long horizons:
///
///  - **Adaptive time stepping** (PlaybackOptions::adaptive): when the
///    field is crawling — the per-step state change has fallen below a
///    threshold — the step size grows geometrically, re-assembling the
///    stepping matrix only on each change and re-quantizing the remaining
///    schedule on the new grid (bounded by max_period_error; a
///    constant-scale schedule is free to grow without a period
///    constraint). Backward Euler is L-stable, so the settled field is
///    independent of the step size — growth trades time resolution while
///    crawling for orders of magnitude fewer linear solves.
///  - **Periodic-steady-state detection**: for genuinely oscillating
///    schedules (two or more distinct scales) the field is compared
///    cycle-over-cycle — max delta between corresponding steps of
///    consecutive periods — so a bursty playback terminates when its cycle
///    repeats, even though its ripple never matches the duty-averaged
///    steady reference. Constant schedules (ramps) are exempt: their
///    per-step delta shrinking is not evidence of a repeating cycle.
///  - **Checkpoint/restore**: checkpoint() captures the complete playback
///    state (solver field and clock, trace prefix, settle/periodic/adaptive
///    detector state); resuming from it continues bit-identically to an
///    uninterrupted run (timeline/checkpoint.hpp serializes the state to a
///    round-trippable text file for the CLI).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "thermal/transient.hpp"
#include "timeline/probe.hpp"
#include "timeline/timeline.hpp"

namespace photherm::timeline {

struct PlaybackOptions {
  double time_step = 0.05;  ///< [s]
  /// Horizon cap: the playback covers at most this many periods of the
  /// initially compiled timeline (adaptive growth shortens the step count,
  /// never the simulated horizon). With stop_on_settle the playback usually
  /// ends earlier; without it the horizon is exact, so the trace shape is
  /// schedule-determined (what the golden-CSV smoke test relies on).
  std::size_t max_periods = 400;
  /// Settle criterion: max |T - T_steady| over all cells below this [degC]
  /// for one full timeline period, where T_steady is the steady solution at
  /// the timeline's duty-averaged power on the same mesh. The full-period
  /// hold keeps an oscillating schedule that merely crosses the reference
  /// from latching a false settle. Must sit well above the steady
  /// reference's own solver noise; play_scenario tightens the reference
  /// solve when it does not (and refuses tolerances no solve can resolve).
  double settle_tolerance = 0.02;
  /// Stop stepping once steady (after recording the detection step) — via
  /// the settle criterion above or, for oscillating schedules, the
  /// cycle-over-cycle periodic-steady criterion.
  bool stop_on_settle = true;
  /// Warm-start each step's CG from the previous state (TransientOptions).
  bool warm_start = true;
  /// Solver knobs for both the per-step solves and the steady reference.
  /// Defaults to TransientOptions' tolerances.
  math::SolverOptions solver = thermal::TransientOptions{}.solver;
  /// Operator representation for the stepping solves (see TransientOptions).
  thermal::OperatorKind operator_kind = thermal::OperatorKind::kCsr;

  /// Grow the time step while the field crawls (see file comment). Off by
  /// default: the fixed grid is what golden traces and time-resolution
  /// studies want.
  bool adaptive = false;
  /// Floor on the per-step state change [degC] below which the step may
  /// grow; 0 picks settle_tolerance / 4 (crawling relative to what
  /// "settled" means). Independent of the floor, the step also grows
  /// whenever one step covers less than half the remaining distance to
  /// the steady reference, which keeps the approach geometric.
  double adaptive_threshold = 0.0;
  /// Step multiplier per growth (> 1); growth is attempted at period
  /// boundaries only, so the matrix reassembly cost stays O(log) in the
  /// total growth factor.
  double adaptive_growth = 2.0;
  /// Largest step the adaptive scheme may reach [s]; 0 picks
  /// 64 * time_step.
  double max_time_step = 0.0;

  /// Track the cycle-over-cycle delta and report periodic steady state for
  /// oscillating schedules. Detection never changes the trace values; with
  /// stop_on_settle it additionally ends the playback.
  bool detect_periodic_steady = true;
  /// Consecutive periods the cycle-over-cycle delta must stay below
  /// settle_tolerance before periodic steady state latches.
  std::size_t periodic_hold_periods = 2;

  /// Relative period-error bound handed to compile_timeline, and the bound
  /// adaptive growth must respect when re-quantizing a multi-scale
  /// schedule onto a coarser grid.
  double max_period_error = kDefaultMaxPeriodError;

  /// Heartbeat for long soaks: every N steps, log one stable
  /// `event=playback_progress` key=value line (scenario, step, sim time,
  /// dt, max delta vs the steady reference) at info level via util::log.
  /// 0 (the default) disables the heartbeat; it never touches the trace or
  /// the physics (`photherm_cli play --progress N`).
  std::size_t progress_every = 0;
};

/// Time series of one playback, index-aligned across its vectors: entry k
/// describes step k (sampled at the *end* of the step, time (k+1) * dt).
struct TimelineTrace {
  std::string scenario;
  std::vector<std::string> probe_names;

  std::vector<double> times;                 ///< [s], end-of-step
  std::vector<double> power_scale;           ///< schedule scale during the step
  std::vector<std::size_t> cg_iterations;    ///< per-step CG cost
  std::vector<std::vector<double>> samples;  ///< [step][probe]

  /// Settle detection against the duty-averaged steady state.
  bool settled = false;
  /// [s]; start of the first full period over which the criterion held.
  double settle_time = -1.0;
  std::size_t settle_step = 0;    ///< step index of settle_time
  double final_delta = 0.0;       ///< max |T - T_steady| at the last step

  /// Periodic-steady detection (oscillating schedules): the field repeats
  /// cycle over cycle within settle_tolerance for periodic_hold_periods.
  bool periodic_steady = false;
  double periodic_steady_time = -1.0;  ///< [s]; start of the first held period
  std::size_t periodic_steady_step = 0;
  /// Most recent completed cycle-over-cycle delta [degC] (0 until a full
  /// period pair has been compared, or when detection is inactive).
  double cycle_delta = 0.0;

  double period = 0.0;            ///< compiled timeline period [s] (initial grid)
  double final_time_step = 0.0;   ///< step size at the end (adaptive growth)
  std::size_t dt_growths = 0;     ///< adaptive step-size changes
  /// Relative CG tolerance the steady settle reference was solved at —
  /// options.solver's unless the settle/solver tolerance guard tightened it.
  double reference_tolerance = 0.0;
  thermal::TransientStats stats;  ///< cumulative stepping cost

  std::size_t step_count() const { return times.size(); }
};

/// Complete state of a paused playback. Everything a Playback needs to
/// continue bit-identically: the solver field and clock, the position on
/// the (possibly regrown) step grid, the settle/periodic/adaptive detector
/// state and the trace recorded so far. Serialized to a round-trippable
/// text format by timeline/checkpoint.hpp.
struct PlaybackCheckpoint {
  std::string scenario;
  double base_time_step = 0.0;     ///< PlaybackOptions::time_step echo
  double current_time_step = 0.0;  ///< step size at the pause (adaptive)
  double time = 0.0;               ///< solver clock [s]
  std::size_t step_in_period = 0;  ///< next step's offset in the current period
  double last_step_delta = 0.0;    ///< adaptive criterion input at the pause
  std::size_t in_tolerance_run = 0;
  std::size_t cycle_count = 0;     ///< steps since the last periodic reset
  std::size_t cycle_hold = 0;      ///< consecutive steady periods so far
  double cycle_max_delta = 0.0;    ///< running max within the open period
  math::Vector state;              ///< solver field at the pause
  /// Rolling previous-period fields (slot order); min(cycle_count,
  /// steps-per-period) slots are filled.
  std::vector<math::Vector> cycle_buffer;
  TimelineTrace trace;             ///< trace prefix, including stats
};

/// One resumable playback. play_scenario is the one-shot wrapper; this
/// class exists so a long playback can pause (checkpoint) and continue in a
/// later process bit-identically.
class Playback {
 public:
  static constexpr std::size_t kRunToCompletion = static_cast<std::size_t>(-1);

  /// Start a fresh playback. Throws SpecError on an invalid design or a
  /// schedule that does not fit the step grid.
  Playback(const scenario::ScenarioSpec& spec, const PlaybackOptions& options);

  /// Resume from a checkpoint. `spec` and `options` must be the ones the
  /// checkpoint was taken under (validated: scenario name, base step,
  /// field/probe shapes); the continuation is bit-identical to a run that
  /// never paused.
  Playback(const scenario::ScenarioSpec& spec, const PlaybackOptions& options,
           const PlaybackCheckpoint& checkpoint);

  /// Advance at most `max_steps` further steps (default: until a stop
  /// condition). Returns the number of steps actually taken.
  std::size_t run(std::size_t max_steps = kRunToCompletion);

  /// True once a stop condition latched: steady (settle or periodic, with
  /// stop_on_settle) or the horizon is exhausted.
  bool finished() const { return finished_; }

  /// Capture the complete current state (callable at any point).
  PlaybackCheckpoint checkpoint() const;

  const TimelineTrace& trace() const { return trace_; }
  TimelineTrace take_trace() { return std::move(trace_); }

 private:
  void build_scene(const scenario::ScenarioSpec& spec);
  void solve_steady_reference(const PowerTimeline& base_timeline);
  void adopt_timeline(PowerTimeline timeline);
  void maybe_grow_dt();
  void step_once();
  void update_periodic(const math::Vector& temperatures);

  PlaybackOptions options_;
  std::vector<power::ActivityPhase> schedule_;
  bool constant_scale_ = false;  ///< every phase plays the same scale

  std::shared_ptr<const mesh::RectilinearMesh> mesh_;
  thermal::BoundarySet boundary_set_;
  std::optional<thermal::TransientSolver> solver_;
  std::optional<BoundProbeSet> probes_;
  math::Vector base_power_;       ///< constant (ONI device) injection
  math::Vector modulated_power_;  ///< schedule-scaled (tile) injection
  math::Vector steady_reference_;

  PowerTimeline timeline_;                  ///< current grid
  std::vector<std::size_t> step_segment_;   ///< step-in-period -> segment
  std::vector<math::Vector> segment_power_; ///< per-segment rhs power
  std::size_t current_segment_ = static_cast<std::size_t>(-1);
  double dt_ = 0.0;
  double horizon_time_ = 0.0;  ///< max_periods * initial period [s]

  std::size_t step_in_period_ = 0;
  std::size_t in_tolerance_run_ = 0;
  double last_step_delta_ = 0.0;
  math::Vector previous_state_;  ///< adaptive-criterion scratch

  bool periodic_enabled_ = false;
  std::vector<math::Vector> cycle_buffer_;
  std::size_t cycle_count_ = 0;
  std::size_t cycle_hold_ = 0;
  double cycle_max_delta_ = 0.0;

  thermal::TransientStats stats_offset_;  ///< pre-resume cost
  bool finished_ = false;
  TimelineTrace trace_;
};

/// Play one scenario to completion. Deterministic: the trace depends only
/// on the scenario and the options, never on thread counts (the solver
/// kernels are bit-identical at any concurrency — thread_pool.hpp
/// contract). Throws SpecError on an invalid scenario design.
TimelineTrace play_scenario(const scenario::ScenarioSpec& spec,
                            const PlaybackOptions& options = {});

}  // namespace photherm::timeline
