#include "timeline/probe.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace photherm::timeline {

double Probe::sample(const thermal::ThermalField& field) const {
  PH_REQUIRE(!boxes.empty(), "probe `" + name + "` has no boxes");
  double acc = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const geometry::Box3& box : boxes) {
    const double t = field.average_in(box);
    acc += t;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  switch (reduction) {
    case Reduction::kMeanOfAverages:
      return acc / static_cast<double>(boxes.size());
    case Reduction::kMaxOfAverages:
      return hi;
    case Reduction::kSpreadOfAverages:
      return hi - lo;
  }
  PH_REQUIRE(false, "unknown probe reduction");
  return 0.0;
}

void ProbeSet::add(Probe probe) {
  PH_REQUIRE(!probe.name.empty(), "probe needs a name");
  for (const Probe& existing : probes_) {
    PH_REQUIRE(existing.name != probe.name, "duplicate probe name `" + probe.name + "`");
  }
  probes_.push_back(std::move(probe));
}

std::vector<std::string> ProbeSet::names() const {
  std::vector<std::string> names;
  names.reserve(probes_.size());
  for (const Probe& p : probes_) {
    names.push_back(p.name);
  }
  return names;
}

std::vector<double> ProbeSet::sample(const thermal::ThermalField& field) const {
  std::vector<double> samples;
  samples.reserve(probes_.size());
  for (const Probe& p : probes_) {
    samples.push_back(p.sample(field));
  }
  return samples;
}

BoundProbeSet::BoundProbeSet(const ProbeSet& probes, const mesh::RectilinearMesh& mesh)
    : cell_count_(mesh.cell_count()), names_(probes.names()) {
  const std::size_t nx = mesh.nx();
  const std::size_t ny = mesh.ny();
  for (const Probe& probe : probes.probes()) {
    BoundProbe bound;
    bound.reduction = probe.reduction;
    for (const geometry::Box3& box : probe.boxes) {
      BoundBox bb;
      // Same cell order and overlap weighting as ThermalField::average_in,
      // so replaying the accumulation gives bit-identical averages.
      const auto cells = mesh.cells_in(box);
      PH_REQUIRE(!cells.empty(), "probe box does not overlap the mesh");
      for (std::size_t cell : cells) {
        const std::size_t ix = cell % nx;
        const std::size_t iy = (cell / nx) % ny;
        const std::size_t iz = cell / (nx * ny);
        const double w = box.overlap_volume(mesh.cell_box(ix, iy, iz));
        bb.cell_weights.emplace_back(cell, w);
        bb.total_weight += w;
      }
      PH_REQUIRE(bb.total_weight > 0.0, "probe box has zero overlap volume");
      bound.boxes.push_back(std::move(bb));
    }
    probes_.push_back(std::move(bound));
  }
}

std::vector<double> BoundProbeSet::sample(const thermal::ThermalField& field) const {
  const std::vector<double>& t = field.temperatures();
  PH_REQUIRE(t.size() == cell_count_, "field does not live on the bound mesh");
  std::vector<double> samples;
  samples.reserve(probes_.size());
  for (const BoundProbe& probe : probes_) {
    double acc = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const BoundBox& box : probe.boxes) {
      double num = 0.0;
      for (const auto& [cell, w] : box.cell_weights) {
        num += t[cell] * w;
      }
      const double avg = num / box.total_weight;
      acc += avg;
      lo = std::min(lo, avg);
      hi = std::max(hi, avg);
    }
    switch (probe.reduction) {
      case Probe::Reduction::kMeanOfAverages:
        samples.push_back(acc / static_cast<double>(probe.boxes.size()));
        break;
      case Probe::Reduction::kMaxOfAverages:
        samples.push_back(hi);
        break;
      case Probe::Reduction::kSpreadOfAverages:
        samples.push_back(hi - lo);
        break;
    }
  }
  return samples;
}

ProbeSet ProbeSet::standard(const soc::SccSystem& system) {
  ProbeSet set;

  // Per-tile boxes over the heat-source slice of the BEOL layer.
  std::vector<geometry::Box3> tile_boxes;
  for (std::size_t j = 0; j < system.tiles.ny(); ++j) {
    for (std::size_t i = 0; i < system.tiles.nx(); ++i) {
      geometry::Box3 box = system.tiles.tile_box(i, j);
      box.lo.z = system.z.heat_lo;
      box.hi.z = system.z.heat_hi;
      tile_boxes.push_back(box);
    }
  }

  geometry::Box3 heat_layer = system.scene.bounding_box();
  heat_layer.lo.z = system.z.heat_lo;
  heat_layer.hi.z = system.z.heat_hi;
  set.add({"chip_avg", Probe::Reduction::kMeanOfAverages, {heat_layer}});
  set.add({"tile_hottest", Probe::Reduction::kMaxOfAverages, tile_boxes});
  set.add({"die_gradient", Probe::Reduction::kSpreadOfAverages, tile_boxes});

  for (const soc::OniInstance& oni : system.onis) {
    Probe probe;
    probe.name = "oni" + std::to_string(oni.index) + "_mr";
    probe.reduction = Probe::Reduction::kMeanOfAverages;
    for (const geometry::Block* ring :
         system.scene.find(geometry::BlockKind::kMicroRing, oni.index)) {
      probe.boxes.push_back(ring->box);
    }
    PH_REQUIRE(!probe.boxes.empty(),
               "ONI " + std::to_string(oni.index) + " has no micro-ring blocks to probe");
    set.add(std::move(probe));
  }
  return set;
}

}  // namespace photherm::timeline
