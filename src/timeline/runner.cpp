#include "timeline/runner.hpp"

#include <exception>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace photherm::timeline {

TimelineRunner::TimelineRunner(TimelineBatchOptions options) : options_(options) {}

TimelineBatchResult TimelineRunner::run(
    const std::vector<scenario::ScenarioSpec>& scenarios) const {
  return play(scenarios, std::vector<const PlaybackCheckpoint*>(scenarios.size(), nullptr));
}

TimelineBatchResult TimelineRunner::resume(
    const std::vector<scenario::ScenarioSpec>& scenarios,
    const std::vector<PlaybackCheckpoint>& checkpoints) const {
  PH_REQUIRE(!checkpoints.empty(), "no checkpoints to resume from");
  // Scenarios without a checkpoint simply play from the start (they
  // finished before the pause fired); a checkpoint matching no scenario is
  // a wrong-suite mistake and is refused.
  std::vector<const PlaybackCheckpoint*> resume_from(scenarios.size(), nullptr);
  std::vector<char> used(checkpoints.size(), 0);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (std::size_t j = 0; j < checkpoints.size(); ++j) {
      if (checkpoints[j].scenario == scenarios[i].name) {
        resume_from[i] = &checkpoints[j];
        used[j] = 1;
        break;
      }
    }
  }
  for (std::size_t j = 0; j < checkpoints.size(); ++j) {
    PH_REQUIRE(used[j], "checkpoint for `" + checkpoints[j].scenario +
                            "` matches no scenario; resume with the suite the "
                            "checkpoint file was written from");
  }
  return play(scenarios, resume_from);
}

TimelineBatchResult TimelineRunner::play(
    const std::vector<scenario::ScenarioSpec>& scenarios,
    const std::vector<const PlaybackCheckpoint*>& resume_from) const {
  PH_REQUIRE(!scenarios.empty(), "timeline batch has no scenarios");
  const std::size_t n = scenarios.size();

  // Validate every design up front, before any stepping starts.
  for (const scenario::ScenarioSpec& s : scenarios) {
    try {
      s.design.validate();
    } catch (const Error& e) {
      throw SpecError("scenario `" + s.name + "`: " + e.what());
    }
  }

  const std::size_t pause = options_.pause_after_steps > 0 ? options_.pause_after_steps
                                                           : Playback::kRunToCompletion;
  TimelineBatchResult result;
  result.traces.resize(n);
  std::vector<PlaybackCheckpoint> checkpoints(n);
  std::vector<char> paused(n, 0);
  // Playbacks are independent; traces land at their scenario's index, so
  // order and values do not depend on the thread count. Nested regions (the
  // CG kernels inside each playback) run inline on the worker.
  util::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          telemetry::Span span("playback.scenario", scenarios[i].name.c_str());
          telemetry::ScopedTimer wall("playback.scenario.wall");
          telemetry::count("playback.scenarios");
          with_error_context("scenario `" + scenarios[i].name + "`", [&] {
            Playback playback = resume_from[i] != nullptr
                                    ? Playback(scenarios[i], options_.playback, *resume_from[i])
                                    : Playback(scenarios[i], options_.playback);
            playback.run(pause);
            if (!playback.finished()) {
              checkpoints[i] = playback.checkpoint();
              paused[i] = 1;
              telemetry::instant("checkpoint.pauses");
            }
            result.traces[i] = playback.take_trace();
          });
        }
      },
      options_.threads);

  result.stats.scenario_count = n;
  for (std::size_t i = 0; i < n; ++i) {
    const TimelineTrace& trace = result.traces[i];
    result.stats.total_steps += trace.step_count();
    result.stats.total_cg_iterations += trace.stats.total_cg_iterations;
    result.stats.settled_count += trace.settled ? 1 : 0;
    result.stats.periodic_count += trace.periodic_steady ? 1 : 0;
    if (paused[i]) {
      result.stats.paused_count += 1;
      result.checkpoints.push_back(std::move(checkpoints[i]));
    }
  }
  PH_LOG_DEBUG << "timeline batch: " << n << " scenarios, " << result.stats.total_steps
               << " steps, " << result.stats.settled_count << " settled, "
               << result.stats.periodic_count << " periodic, "
               << result.stats.paused_count << " paused";
  return result;
}

Table timeline_table(const TimelineBatchResult& result) {
  PH_REQUIRE(!result.traces.empty(), "no traces to tabulate");
  const std::vector<std::string>& probe_names = result.traces.front().probe_names;
  for (const TimelineTrace& trace : result.traces) {
    PH_REQUIRE(trace.probe_names == probe_names,
               "trace `" + trace.scenario +
                   "` has a different probe set; play suites built from one base, or "
                   "tabulate them separately");
  }

  // Per-step CG iteration counts are deliberately absent: they are
  // deterministic on one machine but can flip by one across
  // platforms/toolchains, which would break the golden-CSV smoke diff. They
  // live in the trace itself and in the summary table.
  std::vector<std::string> header{"scenario", "step", "time_s", "power_scale"};
  for (const std::string& name : probe_names) {
    header.push_back(name + "_c");
  }
  Table table(std::move(header));
  table.set_exact();
  for (const TimelineTrace& trace : result.traces) {
    for (std::size_t k = 0; k < trace.step_count(); ++k) {
      std::vector<TableCell> row{trace.scenario, static_cast<double>(k), trace.times[k],
                                 trace.power_scale[k]};
      for (double sample : trace.samples[k]) {
        row.emplace_back(sample);
      }
      table.add_row(std::move(row));
    }
  }
  return table;
}

Table timeline_summary_table(const TimelineBatchResult& result) {
  Table table({"scenario", "steps", "period_s", "settled", "settle_time_s", "final_delta_c",
               "periodic", "periodic_time_s", "cycle_delta_c", "final_dt_s", "dt_growths",
               "cg_iterations", "max_step_cg"});
  table.set_exact();
  for (const TimelineTrace& trace : result.traces) {
    table.add_row({trace.scenario, static_cast<double>(trace.step_count()), trace.period,
                   std::string(trace.settled ? "yes" : "no"), trace.settle_time,
                   trace.final_delta, std::string(trace.periodic_steady ? "yes" : "no"),
                   trace.periodic_steady_time, trace.cycle_delta, trace.final_time_step,
                   static_cast<double>(trace.dt_growths),
                   static_cast<double>(trace.stats.total_cg_iterations),
                   static_cast<double>(trace.stats.max_cg_iterations)});
  }
  return table;
}

}  // namespace photherm::timeline
