#include "timeline/runner.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace photherm::timeline {

TimelineRunner::TimelineRunner(TimelineBatchOptions options) : options_(options) {}

TimelineBatchResult TimelineRunner::run(
    const std::vector<scenario::ScenarioSpec>& scenarios) const {
  PH_REQUIRE(!scenarios.empty(), "timeline batch has no scenarios");
  const std::size_t n = scenarios.size();

  // Validate every design up front, before any stepping starts.
  for (const scenario::ScenarioSpec& s : scenarios) {
    try {
      s.design.validate();
    } catch (const Error& e) {
      throw SpecError("scenario `" + s.name + "`: " + e.what());
    }
  }

  TimelineBatchResult result;
  result.traces.resize(n);
  // Playbacks are independent; traces land at their scenario's index, so
  // order and values do not depend on the thread count. Nested regions (the
  // CG kernels inside each playback) run inline on the worker.
  util::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          result.traces[i] = play_scenario(scenarios[i], options_.playback);
        }
      },
      options_.threads);

  result.stats.scenario_count = n;
  for (const TimelineTrace& trace : result.traces) {
    result.stats.total_steps += trace.step_count();
    result.stats.total_cg_iterations += trace.stats.total_cg_iterations;
    result.stats.settled_count += trace.settled ? 1 : 0;
  }
  PH_LOG_DEBUG << "timeline batch: " << n << " scenarios, " << result.stats.total_steps
               << " steps, " << result.stats.settled_count << " settled";
  return result;
}

Table timeline_table(const TimelineBatchResult& result) {
  PH_REQUIRE(!result.traces.empty(), "no traces to tabulate");
  const std::vector<std::string>& probe_names = result.traces.front().probe_names;
  for (const TimelineTrace& trace : result.traces) {
    PH_REQUIRE(trace.probe_names == probe_names,
               "trace `" + trace.scenario +
                   "` has a different probe set; play suites built from one base, or "
                   "tabulate them separately");
  }

  // Per-step CG iteration counts are deliberately absent: they are
  // deterministic on one machine but can flip by one across
  // platforms/toolchains, which would break the golden-CSV smoke diff. They
  // live in the trace itself and in the summary table.
  std::vector<std::string> header{"scenario", "step", "time_s", "power_scale"};
  for (const std::string& name : probe_names) {
    header.push_back(name + "_c");
  }
  Table table(std::move(header));
  table.set_precision(17);
  for (const TimelineTrace& trace : result.traces) {
    for (std::size_t k = 0; k < trace.step_count(); ++k) {
      std::vector<TableCell> row{trace.scenario, static_cast<double>(k), trace.times[k],
                                 trace.power_scale[k]};
      for (double sample : trace.samples[k]) {
        row.emplace_back(sample);
      }
      table.add_row(std::move(row));
    }
  }
  return table;
}

Table timeline_summary_table(const TimelineBatchResult& result) {
  Table table({"scenario", "steps", "period_s", "settled", "settle_time_s", "final_delta_c",
               "cg_iterations", "max_step_cg"});
  table.set_precision(17);
  for (const TimelineTrace& trace : result.traces) {
    table.add_row({trace.scenario, static_cast<double>(trace.step_count()), trace.period,
                   std::string(trace.settled ? "yes" : "no"), trace.settle_time,
                   trace.final_delta, static_cast<double>(trace.stats.total_cg_iterations),
                   static_cast<double>(trace.stats.max_cg_iterations)});
  }
  return table;
}

}  // namespace photherm::timeline
