#include "timeline/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm::timeline {

namespace {

std::string fmt(double value) { return format_shortest(value); }

std::string fmt_vector(const math::Vector& v) {
  std::ostringstream os;
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i ? " " : "") << fmt(v[i]);
  }
  return os.str();
}

math::Vector parse_vector(const std::string& value, const std::string& what) {
  math::Vector v;
  std::istringstream is(value);
  std::string token;
  while (is >> token) {
    v.push_back(parse_double(token, what));
  }
  return v;
}

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& message) {
  // ph-lint: allow(serialization) integral line number in an error message, not persisted output
  throw SpecError("checkpoint file, line " + std::to_string(line_number) + ": " + message);
}

}  // namespace

std::string serialize_checkpoints(const std::vector<PlaybackCheckpoint>& checkpoints) {
  std::ostringstream os;
  os << "# photherm timeline checkpoint (" << checkpoints.size() << " playbacks)\n";
  for (const PlaybackCheckpoint& c : checkpoints) {
    PH_REQUIRE(!c.scenario.empty(), "checkpoint without a scenario name; cannot serialize");
    const TimelineTrace& t = c.trace;
    const std::size_t steps = t.step_count();
    PH_REQUIRE(t.power_scale.size() == steps && t.cg_iterations.size() == steps &&
                   t.samples.size() == steps,
               "trace of `" + c.scenario + "` is not index-aligned; cannot serialize");
    os << "\nplayback " << c.scenario << "\n";
    os << "base_dt = " << fmt(c.base_time_step) << "\n";
    os << "current_dt = " << fmt(c.current_time_step) << "\n";
    os << "time = " << fmt(c.time) << "\n";
    os << "step_in_period = " << c.step_in_period << "\n";
    os << "last_step_delta = " << fmt(c.last_step_delta) << "\n";
    os << "in_tolerance_run = " << c.in_tolerance_run << "\n";
    os << "cycle_count = " << c.cycle_count << "\n";
    os << "cycle_hold = " << c.cycle_hold << "\n";
    os << "cycle_max_delta = " << fmt(c.cycle_max_delta) << "\n";
    os << "state = " << fmt_vector(c.state) << "\n";
    for (const math::Vector& slot : c.cycle_buffer) {
      os << "cycle = " << fmt_vector(slot) << "\n";
    }
    os << "period = " << fmt(t.period) << "\n";
    os << "final_dt = " << fmt(t.final_time_step) << "\n";
    os << "dt_growths = " << t.dt_growths << "\n";
    os << "reference_tolerance = " << fmt(t.reference_tolerance) << "\n";
    os << "settled = " << (t.settled ? "true" : "false") << "\n";
    os << "settle_time = " << fmt(t.settle_time) << "\n";
    os << "settle_step = " << t.settle_step << "\n";
    os << "final_delta = " << fmt(t.final_delta) << "\n";
    os << "periodic = " << (t.periodic_steady ? "true" : "false") << "\n";
    os << "periodic_time = " << fmt(t.periodic_steady_time) << "\n";
    os << "periodic_step = " << t.periodic_steady_step << "\n";
    os << "cycle_delta = " << fmt(t.cycle_delta) << "\n";
    os << "stats = " << t.stats.steps << " " << t.stats.total_cg_iterations << " "
       << t.stats.max_cg_iterations << " " << t.stats.reassemblies << " "
       << t.stats.preconditioner_builds << "\n";
    os << "probes = " << join(t.probe_names, " ") << "\n";
    for (std::size_t k = 0; k < steps; ++k) {
      os << "row = " << fmt(t.times[k]) << " " << fmt(t.power_scale[k]) << " "
         << t.cg_iterations[k];
      for (double sample : t.samples[k]) {
        os << " " << fmt(sample);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::vector<PlaybackCheckpoint> parse_checkpoints(const std::string& text) {
  std::vector<PlaybackCheckpoint> checkpoints;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_number = 0;

  const auto current = [&]() -> PlaybackCheckpoint& {
    if (checkpoints.empty()) {
      parse_fail(line_number, "`key = value` before any `playback <name>` line");
    }
    return checkpoints.back();
  };

  while (std::getline(stream, raw)) {
    ++line_number;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) {
      raw.resize(comment);
    }
    const std::string line = trim(raw);
    if (line.empty()) {
      continue;
    }

    if (line.rfind("playback", 0) == 0 &&
        (line.size() == 8 || line[8] == ' ' || line[8] == '\t')) {
      const std::string name = trim(line.substr(8));
      if (name.empty()) {
        parse_fail(line_number, "playback line without a scenario name");
      }
      PlaybackCheckpoint ckpt;
      ckpt.scenario = name;
      checkpoints.push_back(std::move(ckpt));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      parse_fail(line_number,
                 "expected `playback <name>` or `key = value`, got `" + line + "`");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    PlaybackCheckpoint& c = current();
    TimelineTrace& t = c.trace;
    try {
      if (key == "base_dt") {
        c.base_time_step = parse_double(value, key);
      } else if (key == "current_dt") {
        c.current_time_step = parse_double(value, key);
      } else if (key == "time") {
        c.time = parse_double(value, key);
      } else if (key == "step_in_period") {
        c.step_in_period = parse_uint(value, key);
      } else if (key == "last_step_delta") {
        c.last_step_delta = parse_double(value, key);
      } else if (key == "in_tolerance_run") {
        c.in_tolerance_run = parse_uint(value, key);
      } else if (key == "cycle_count") {
        c.cycle_count = parse_uint(value, key);
      } else if (key == "cycle_hold") {
        c.cycle_hold = parse_uint(value, key);
      } else if (key == "cycle_max_delta") {
        c.cycle_max_delta = parse_double(value, key);
      } else if (key == "state") {
        c.state = parse_vector(value, key);
      } else if (key == "cycle") {
        c.cycle_buffer.push_back(parse_vector(value, key));
      } else if (key == "period") {
        t.period = parse_double(value, key);
      } else if (key == "final_dt") {
        t.final_time_step = parse_double(value, key);
      } else if (key == "dt_growths") {
        t.dt_growths = parse_uint(value, key);
      } else if (key == "reference_tolerance") {
        t.reference_tolerance = parse_double(value, key);
      } else if (key == "settled") {
        t.settled = parse_bool(value, key);
      } else if (key == "settle_time") {
        t.settle_time = parse_double(value, key);
      } else if (key == "settle_step") {
        t.settle_step = parse_uint(value, key);
      } else if (key == "final_delta") {
        t.final_delta = parse_double(value, key);
      } else if (key == "periodic") {
        t.periodic_steady = parse_bool(value, key);
      } else if (key == "periodic_time") {
        t.periodic_steady_time = parse_double(value, key);
      } else if (key == "periodic_step") {
        t.periodic_steady_step = parse_uint(value, key);
      } else if (key == "cycle_delta") {
        t.cycle_delta = parse_double(value, key);
      } else if (key == "stats") {
        const math::Vector parts = parse_vector(value, key);
        // 4-counter form: checkpoints written before preconditioner_builds
        // existed; they resume with the new counter at zero.
        if (parts.size() != 4 && parts.size() != 5) {
          parse_fail(line_number, "stats expects 4 or 5 counters");
        }
        t.stats.steps = static_cast<std::size_t>(parts[0]);
        t.stats.total_cg_iterations = static_cast<std::size_t>(parts[1]);
        t.stats.max_cg_iterations = static_cast<std::size_t>(parts[2]);
        t.stats.reassemblies = static_cast<std::size_t>(parts[3]);
        t.stats.preconditioner_builds = parts.size() == 5 ? static_cast<std::size_t>(parts[4]) : 0;
      } else if (key == "probes") {
        t.probe_names.clear();
        std::istringstream names(value);
        std::string name;
        while (names >> name) {
          t.probe_names.push_back(name);
        }
      } else if (key == "row") {
        const math::Vector row = parse_vector(value, key);
        if (row.size() < 3) {
          parse_fail(line_number, "row expects time, power scale, CG iterations, samples");
        }
        t.times.push_back(row[0]);
        t.power_scale.push_back(row[1]);
        t.cg_iterations.push_back(static_cast<std::size_t>(row[2]));
        t.samples.emplace_back(row.begin() + 3, row.end());
      } else {
        parse_fail(line_number, "unknown key `" + key + "`");
      }
    } catch (const SpecError&) {
      throw;
    } catch (const Error& e) {
      parse_fail(line_number, e.what());
    }
  }

  for (PlaybackCheckpoint& c : checkpoints) {
    if (c.base_time_step <= 0.0 || c.current_time_step <= 0.0 || c.state.empty()) {
      throw SpecError("checkpoint `" + c.scenario +
                      "` is incomplete: base_dt, current_dt and state are mandatory");
    }
    c.trace.scenario = c.scenario;
  }
  return checkpoints;
}

std::vector<PlaybackCheckpoint> load_checkpoint_file(const std::string& path) {
  std::ifstream in(path);
  PH_REQUIRE(in.good(), "cannot open checkpoint file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  PH_REQUIRE(!in.bad(), "failed while reading checkpoint file: " + path);
  return parse_checkpoints(text.str());
}

void save_checkpoint_file(const std::string& path,
                          const std::vector<PlaybackCheckpoint>& checkpoints) {
  std::ofstream out(path);
  PH_REQUIRE(out.good(), "cannot open checkpoint output file: " + path);
  out << serialize_checkpoints(checkpoints);
  out.flush();
  PH_REQUIRE(out.good(), "failed while writing checkpoint file: " + path);
}

}  // namespace photherm::timeline
