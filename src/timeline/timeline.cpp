#include "timeline/timeline.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::timeline {

std::size_t PowerTimeline::steps_per_period() const {
  std::size_t steps = 0;
  for (const TimelineSegment& segment : segments) {
    steps += segment.steps;
  }
  return steps;
}

double PowerTimeline::period() const {
  return static_cast<double>(steps_per_period()) * time_step;
}

double PowerTimeline::scale_at_step(std::size_t step) const {
  PH_REQUIRE(!segments.empty(), "empty timeline");
  std::size_t offset = step % steps_per_period();
  for (const TimelineSegment& segment : segments) {
    if (offset < segment.steps) {
      return segment.scale;
    }
    offset -= segment.steps;
  }
  return segments.back().scale;  // unreachable: offset < steps_per_period()
}

double PowerTimeline::average_scale() const {
  PH_REQUIRE(!segments.empty(), "empty timeline");
  double weighted = 0.0;
  for (const TimelineSegment& segment : segments) {
    weighted += segment.scale * static_cast<double>(segment.steps);
  }
  return weighted / static_cast<double>(steps_per_period());
}

PowerTimeline compile_timeline(const std::vector<power::ActivityPhase>& schedule,
                               double time_step) {
  PH_REQUIRE(time_step > 0.0, "timeline time step must be positive");
  PowerTimeline timeline;
  timeline.time_step = time_step;
  if (schedule.empty()) {
    timeline.segments.push_back({1.0, 1});
    return timeline;
  }
  // Range checks (positive durations, non-negative scales) live in the
  // ActivityTrace constructor; reuse them so the timeline and the
  // steady-state duty fold accept exactly the same schedules.
  const power::ActivityTrace checked(schedule);
  (void)checked;
  for (const power::ActivityPhase& phase : schedule) {
    TimelineSegment segment;
    segment.scale = phase.scale;
    segment.steps = static_cast<std::size_t>(
        std::max<long long>(1, std::llround(phase.duration / time_step)));
    timeline.segments.push_back(segment);
  }
  return timeline;
}

}  // namespace photherm::timeline
