#include "timeline/timeline.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace photherm::timeline {

std::size_t PowerTimeline::steps_per_period() const {
  std::size_t steps = 0;
  for (const TimelineSegment& segment : segments) {
    steps += segment.steps;
  }
  return steps;
}

double PowerTimeline::period() const {
  return static_cast<double>(steps_per_period()) * time_step;
}

double PowerTimeline::requested_period() const {
  double total = 0.0;
  for (const TimelineSegment& segment : segments) {
    total += segment.duration;
  }
  return total;
}

double PowerTimeline::segment_error(std::size_t i) const {
  PH_REQUIRE(i < segments.size(), "segment index out of range");
  return static_cast<double>(segments[i].steps) * time_step - segments[i].duration;
}

double PowerTimeline::quantization_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    worst = std::max(worst, std::abs(segment_error(i)));
  }
  return worst;
}

double PowerTimeline::relative_period_error() const {
  const double requested = requested_period();
  if (!(requested > 0.0)) {
    return 0.0;  // synthetic timelines (empty schedule) have no analytic period
  }
  return std::abs(period() - requested) / requested;
}

double PowerTimeline::scale_at_step(std::size_t step) const {
  PH_REQUIRE(!segments.empty(), "empty timeline");
  std::size_t offset = step % steps_per_period();
  for (const TimelineSegment& segment : segments) {
    if (offset < segment.steps) {
      return segment.scale;
    }
    offset -= segment.steps;
  }
  return segments.back().scale;  // unreachable: offset < steps_per_period()
}

double PowerTimeline::average_scale() const {
  PH_REQUIRE(!segments.empty(), "empty timeline");
  double weighted = 0.0;
  for (const TimelineSegment& segment : segments) {
    weighted += segment.scale * static_cast<double>(segment.steps);
  }
  return weighted / static_cast<double>(steps_per_period());
}

bool constant_scale(const std::vector<power::ActivityPhase>& schedule) {
  for (const power::ActivityPhase& phase : schedule) {
    if (phase.scale != schedule.front().scale) {
      return false;
    }
  }
  return true;
}

PowerTimeline compile_timeline(const std::vector<power::ActivityPhase>& schedule,
                               double time_step, double max_period_error) {
  PH_REQUIRE(time_step > 0.0, "timeline time step must be positive");
  PH_REQUIRE(max_period_error >= 0.0, "max_period_error must be non-negative");
  PowerTimeline timeline;
  timeline.time_step = time_step;
  if (schedule.empty()) {
    // Always-on, one step per period: the step grid *is* the period, so
    // there is nothing to quantize (duration = time_step keeps the error
    // accounting at exactly zero).
    timeline.segments.push_back({1.0, 1, time_step});
    return timeline;
  }
  // Range checks (positive durations, non-negative scales) live in the
  // ActivityTrace constructor; reuse them so the timeline and the
  // steady-state duty fold accept exactly the same schedules.
  const power::ActivityTrace checked(schedule);
  (void)checked;
  for (const power::ActivityPhase& phase : schedule) {
    TimelineSegment segment;
    segment.scale = phase.scale;
    segment.steps = static_cast<std::size_t>(
        std::max<long long>(1, std::llround(phase.duration / time_step)));
    segment.duration = phase.duration;
    timeline.segments.push_back(segment);
  }
  // Fail fast on a grid too coarse for the schedule: llround changes the
  // played period and sub-step phases inflate to one full step, so a
  // playback on this grid would study a different workload than the
  // schedule describes. Constant-scale schedules are exempt — their power
  // never changes, so the "period" carries no physics and any grid plays
  // them faithfully (the error stays queryable either way).
  const double period_error = timeline.relative_period_error();
  if (!constant_scale(schedule) && period_error > max_period_error) {
    std::ostringstream os;
    os << "schedule does not fit the step grid: quantizing onto time_step = " << time_step
       << " s plays a period of " << timeline.period() << " s instead of the requested "
       << timeline.requested_period() << " s (relative error " << period_error
       << " > bound " << max_period_error
       << "); shrink the time step or raise the bound";
    throw SpecError(os.str());
  }
  return timeline;
}

}  // namespace photherm::timeline
