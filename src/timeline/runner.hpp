/// \file runner.hpp
/// \brief Batch transient playback: N scenarios dispatched onto the shared
/// thread pool (util/thread_pool.hpp), traces collected in index order —
/// results are bit-identical for every thread count, matching the
/// BatchRunner guarantee of the steady-state scenario engine. The tables
/// render the traces as the CLI's `play` CSV payloads.
///
/// Long playbacks can pause and continue: with pause_after_steps set, run()
/// stops every playback after that many steps and returns per-scenario
/// checkpoints (timeline/checkpoint.hpp serializes them); resume() picks
/// the checkpoints back up and finishes, and the finished traces are
/// byte-identical to an uninterrupted run — at any thread count, since
/// each playback is single-threaded and index-ordered either way.
#pragma once

#include <vector>

#include "timeline/playback.hpp"
#include "util/csv.hpp"

namespace photherm::timeline {

struct TimelineBatchOptions {
  /// Concurrent scenario playbacks. 0 = util::concurrency(); 1 = serial.
  std::size_t threads = 0;
  PlaybackOptions playback;
  /// Pause every playback after at most this many (further) steps and
  /// report checkpoints instead of playing to completion. 0 = never pause.
  std::size_t pause_after_steps = 0;
};

struct TimelineBatchStats {
  std::size_t scenario_count = 0;
  std::size_t total_steps = 0;
  std::size_t total_cg_iterations = 0;
  std::size_t settled_count = 0;   ///< scenarios that reached the steady field
  std::size_t periodic_count = 0;  ///< scenarios that reached a repeating cycle
  std::size_t paused_count = 0;    ///< playbacks paused by pause_after_steps
};

struct TimelineBatchResult {
  /// Index-aligned with the input scenario list.
  std::vector<TimelineTrace> traces;
  /// Checkpoints of the playbacks the pause actually caught (scenario
  /// order; playbacks that finished first are complete in `traces` and
  /// carry no checkpoint). Empty when every playback ran to completion.
  std::vector<PlaybackCheckpoint> checkpoints;
  TimelineBatchStats stats;
};

class TimelineRunner {
 public:
  explicit TimelineRunner(TimelineBatchOptions options = {});

  /// Play every scenario (pausing per pause_after_steps, see above).
  /// Throws on an empty list or an invalid spec; a playback failing inside
  /// a worker surfaces on the caller as an Error naming the scenario.
  TimelineBatchResult run(const std::vector<scenario::ScenarioSpec>& scenarios) const;

  /// Continue paused playbacks: each scenario is matched to its checkpoint
  /// by name and played on (to completion, or to another pause if
  /// pause_after_steps is still set); scenarios without a checkpoint play
  /// from the start, and checkpoints matching no scenario are refused. The
  /// finished traces are byte-identical to a run that never paused.
  TimelineBatchResult resume(const std::vector<scenario::ScenarioSpec>& scenarios,
                             const std::vector<PlaybackCheckpoint>& checkpoints) const;

 private:
  TimelineBatchResult play(const std::vector<scenario::ScenarioSpec>& scenarios,
                           const std::vector<const PlaybackCheckpoint*>& resume_from) const;

  TimelineBatchOptions options_;
};

/// Long-format time series — the CLI's `play` CSV: one row per (scenario,
/// step) with the shared probe columns. Full numeric precision, so the
/// rendered CSV is bit-identical whenever the traces are. Requires every
/// trace to carry the same probe names (true for suites built from one
/// base); throws SpecError otherwise.
Table timeline_table(const TimelineBatchResult& result);

/// One summary row per scenario: step count, settle/periodic verdicts and
/// cost (including the adaptive step-size growth).
Table timeline_summary_table(const TimelineBatchResult& result);

}  // namespace photherm::timeline
