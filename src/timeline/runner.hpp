/// \file runner.hpp
/// \brief Batch transient playback: N scenarios dispatched onto the shared
/// thread pool (util/thread_pool.hpp), traces collected in index order —
/// results are bit-identical for every thread count, matching the
/// BatchRunner guarantee of the steady-state scenario engine. The tables
/// render the traces as the CLI's `play` CSV payloads.
#pragma once

#include <vector>

#include "timeline/playback.hpp"
#include "util/csv.hpp"

namespace photherm::timeline {

struct TimelineBatchOptions {
  /// Concurrent scenario playbacks. 0 = util::concurrency(); 1 = serial.
  std::size_t threads = 0;
  PlaybackOptions playback;
};

struct TimelineBatchStats {
  std::size_t scenario_count = 0;
  std::size_t total_steps = 0;
  std::size_t total_cg_iterations = 0;
  std::size_t settled_count = 0;  ///< scenarios that reached steady state
};

struct TimelineBatchResult {
  /// Index-aligned with the input scenario list.
  std::vector<TimelineTrace> traces;
  TimelineBatchStats stats;
};

class TimelineRunner {
 public:
  explicit TimelineRunner(TimelineBatchOptions options = {});

  /// Play every scenario. Throws on an empty list or an invalid spec.
  TimelineBatchResult run(const std::vector<scenario::ScenarioSpec>& scenarios) const;

 private:
  TimelineBatchOptions options_;
};

/// Long-format time series — the CLI's `play` CSV: one row per (scenario,
/// step) with the shared probe columns. Full numeric precision, so the
/// rendered CSV is bit-identical whenever the traces are. Requires every
/// trace to carry the same probe names (true for suites built from one
/// base); throws SpecError otherwise.
Table timeline_table(const TimelineBatchResult& result);

/// One summary row per scenario: step count, settle verdict and cost.
Table timeline_summary_table(const TimelineBatchResult& result);

}  // namespace photherm::timeline
