/// \file probe.hpp
/// \brief Sampling points for transient playback: named reductions over
/// regions of the evolving thermal field, evaluated every step into a
/// TimelineTrace. The standard set tracks what the paper's calibration
/// story cares about — the chip average, the hottest tile, the die-level
/// tile gradient and each ONI's micro-ring temperature (the quantity whose
/// settle time paces the run-time MR calibration loop, Sec. II).
#pragma once

#include <string>
#include <vector>

#include "soc/scc.hpp"
#include "thermal/thermal_map.hpp"

namespace photherm::timeline {

/// One named reduction over a set of boxes. Per-box values are the
/// volume-weighted average temperature (ThermalField::average_in); the
/// reduction folds them into one sample.
struct Probe {
  enum class Reduction {
    kMeanOfAverages,    ///< mean of the per-box averages
    kMaxOfAverages,     ///< hottest box
    kSpreadOfAverages,  ///< max - min across boxes (a gradient)
  };

  std::string name;
  Reduction reduction = Reduction::kMeanOfAverages;
  std::vector<geometry::Box3> boxes;

  double sample(const thermal::ThermalField& field) const;
};

/// Ordered probe list; sample order always matches name order, so traces
/// sampled with equal probe sets are column-aligned.
class ProbeSet {
 public:
  void add(Probe probe);

  const std::vector<Probe>& probes() const { return probes_; }
  std::vector<std::string> names() const;
  std::size_t size() const { return probes_.size(); }

  /// Sample every probe against `field`, in probe order.
  std::vector<double> sample(const thermal::ThermalField& field) const;

  /// The standard playback probes for a built system:
  ///   chip_avg      mean over the heat-source layer
  ///   tile_hottest  hottest per-tile average (heat-source layer)
  ///   die_gradient  spread of the per-tile averages
  ///   oni<k>_mr     mean micro-ring temperature of each ONI
  /// Probe geometry depends only on the system, so two scenarios built from
  /// the same base produce identical probe sets (and comparable traces).
  static ProbeSet standard(const soc::SccSystem& system);

 private:
  std::vector<Probe> probes_;
};

/// A probe set resolved against one mesh: every box's overlapping cells and
/// overlap-volume weights are computed once, so sampling a step is a few
/// weighted sums instead of a mesh search per box per step. Accumulation
/// replays ThermalField::average_in cell for cell, so samples are
/// bit-identical to ProbeSet::sample on the same field.
class BoundProbeSet {
 public:
  BoundProbeSet(const ProbeSet& probes, const mesh::RectilinearMesh& mesh);

  const std::vector<std::string>& names() const { return names_; }

  /// Sample every probe against `field` (must live on the bound mesh's
  /// grid), in probe order.
  std::vector<double> sample(const thermal::ThermalField& field) const;

 private:
  struct BoundBox {
    std::vector<std::pair<std::size_t, double>> cell_weights;
    double total_weight = 0.0;
  };
  struct BoundProbe {
    Probe::Reduction reduction = Probe::Reduction::kMeanOfAverages;
    std::vector<BoundBox> boxes;
  };

  std::size_t cell_count_ = 0;
  std::vector<std::string> names_;
  std::vector<BoundProbe> probes_;
};

}  // namespace photherm::timeline
