/// \file timeline.hpp
/// \brief Compilation of a scenario's activity schedule into a
/// piecewise-constant power timeline the transient playback can step
/// through. The steady-state pipeline folds a schedule into one
/// duty-averaged power (ScenarioSpec::effective_design); the timeline
/// engine keeps it resolved in time instead: each phase becomes a segment
/// of whole backward-Euler steps at that phase's power scale, and the
/// segment list repeats periodically during playback.
#pragma once

#include <cstddef>
#include <vector>

#include "power/activity.hpp"

namespace photherm::timeline {

/// One run of consecutive steps at a constant power scale.
struct TimelineSegment {
  double scale = 1.0;      ///< multiplier on the scenario's modulated power
  std::size_t steps = 1;   ///< whole time steps spent at this scale
};

/// A compiled schedule: one period of piecewise-constant segments on a
/// fixed step size. Compilation is deterministic — the same (schedule,
/// time_step) pair always yields the same segments.
struct PowerTimeline {
  std::vector<TimelineSegment> segments;
  double time_step = 0.0;  ///< [s]

  std::size_t steps_per_period() const;
  double period() const;  ///< steps_per_period() * time_step [s]

  /// Power scale applied during step `step` (0-based, wraps periodically).
  double scale_at_step(std::size_t step) const;

  /// Time-weighted mean scale over one period — matches the duty factor the
  /// steady-state pipeline folds the schedule into *if* the phase durations
  /// quantize exactly onto the step grid; otherwise it is the duty of the
  /// quantized timeline actually played.
  double average_scale() const;
};

/// Quantize a schedule onto the step grid: each phase becomes one segment of
/// round(duration / time_step) steps (at least 1, so no phase vanishes). An
/// empty schedule compiles to a single always-on segment of one step per
/// period. Throws SpecError on a non-positive time step or on phases that
/// the ActivityTrace validation rejects (non-positive durations, negative
/// scales).
PowerTimeline compile_timeline(const std::vector<power::ActivityPhase>& schedule,
                               double time_step);

}  // namespace photherm::timeline
