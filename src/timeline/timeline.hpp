/// \file timeline.hpp
/// \brief Compilation of a scenario's activity schedule into a
/// piecewise-constant power timeline the transient playback can step
/// through. The steady-state pipeline folds a schedule into one
/// duty-averaged power (ScenarioSpec::effective_design); the timeline
/// engine keeps it resolved in time instead: each phase becomes a segment
/// of whole backward-Euler steps at that phase's power scale, and the
/// segment list repeats periodically during playback.
#pragma once

#include <cstddef>
#include <vector>

#include "power/activity.hpp"

namespace photherm::timeline {

/// One run of consecutive steps at a constant power scale.
struct TimelineSegment {
  double scale = 1.0;      ///< multiplier on the scenario's modulated power
  std::size_t steps = 1;   ///< whole time steps spent at this scale
  /// The phase duration the schedule asked for [s]. `steps * time_step`
  /// is what actually plays; the difference is this segment's
  /// quantization error.
  double duration = 0.0;
};

/// Default bound on the relative period error a compiled timeline may
/// carry before compile_timeline fails fast: the quantized period must be
/// within 25% of the schedule's analytic period. Schedules whose phases
/// are far shorter than the step grid would otherwise play a silently
/// distorted (inflated) period.
inline constexpr double kDefaultMaxPeriodError = 0.25;

/// A compiled schedule: one period of piecewise-constant segments on a
/// fixed step size. Compilation is deterministic — the same (schedule,
/// time_step) pair always yields the same segments.
struct PowerTimeline {
  std::vector<TimelineSegment> segments;
  double time_step = 0.0;  ///< [s]

  std::size_t steps_per_period() const;
  double period() const;  ///< steps_per_period() * time_step [s]

  /// Sum of the requested phase durations [s] — the analytic period the
  /// schedule describes, before quantization onto the step grid.
  double requested_period() const;

  /// Signed quantization error of segment `i`:
  /// steps * time_step - duration [s].
  double segment_error(std::size_t i) const;

  /// Worst per-phase quantization error: max |segment_error(i)| [s]. Zero
  /// when every phase duration is a whole multiple of the step.
  double quantization_error() const;

  /// |period() - requested_period()| / requested_period(). This is the
  /// figure compile_timeline bounds: a large value means the played
  /// period is not the period the schedule asked for.
  double relative_period_error() const;

  /// Power scale applied during step `step` (0-based, wraps periodically).
  double scale_at_step(std::size_t step) const;

  /// Time-weighted mean scale over one period — matches the duty factor the
  /// steady-state pipeline folds the schedule into *if* the phase durations
  /// quantize exactly onto the step grid; otherwise it is the duty of the
  /// quantized timeline actually played (compare against
  /// ScenarioSpec::duty_scale to expose the drift).
  double average_scale() const;
};

/// True when every phase of `schedule` plays the same power scale (an
/// empty schedule counts: it plays always-on). Such a schedule has no
/// observable period — the injected power never changes — so the
/// period-error bound of compile_timeline does not apply and adaptive
/// playback may regrow its grid freely. The one definition shared by the
/// compiler and the playback, so their gating can never disagree.
bool constant_scale(const std::vector<power::ActivityPhase>& schedule);

/// Quantize a schedule onto the step grid: each phase becomes one segment of
/// round(duration / time_step) steps (at least 1, so no phase vanishes). An
/// empty schedule compiles to a single always-on segment of one step per
/// period. Throws SpecError on a non-positive time step, on phases that the
/// ActivityTrace validation rejects (non-positive durations, negative
/// scales), or when the quantized period misses the analytic period by more
/// than `max_period_error` (relative; pass a larger bound — or infinity —
/// to accept coarser grids, e.g. when probing how far a step size can
/// grow). Constant-scale schedules are exempt from the period bound: their
/// power never changes, so no grid can distort what they play.
PowerTimeline compile_timeline(const std::vector<power::ActivityPhase>& schedule,
                               double time_step,
                               double max_period_error = kDefaultMaxPeriodError);

}  // namespace photherm::timeline
