/// \file checkpoint.hpp
/// \brief Text round-trip for paused playbacks. A checkpoint file carries
/// one or more PlaybackCheckpoints (one per scenario of a paused batch) in
/// a line-oriented format modelled on the scenario files:
///
///     # photherm timeline checkpoint (2 playbacks)
///
///     playback burst_d0p5
///     base_dt = 0.2
///     time = 1.4
///     state = 25.1 25.3 ...
///     row = 0.2 1 14 25.1 26.0 ...
///     ...
///
/// A `playback <name>` line opens a checkpoint; `key = value` lines fill it
/// (the `cycle` and `row` keys repeat, in order). Every double is written
/// in its shortest round-trip spelling (util::format_shortest), so
/// parse(serialize(x)) reproduces x bit for bit — which is what makes a
/// resumed playback byte-identical to an uninterrupted one.
#pragma once

#include <string>
#include <vector>

#include "timeline/playback.hpp"

namespace photherm::timeline {

/// Serialize checkpoints at full (shortest round-trip) precision.
std::string serialize_checkpoints(const std::vector<PlaybackCheckpoint>& checkpoints);

/// Parse a checkpoint file. Throws SpecError (with the line number) on
/// unknown keys, malformed vectors or missing mandatory fields.
std::vector<PlaybackCheckpoint> parse_checkpoints(const std::string& text);

/// Read + parse a checkpoint file; throws photherm::Error on I/O failure.
std::vector<PlaybackCheckpoint> load_checkpoint_file(const std::string& path);

/// Serialize + write a checkpoint file; throws photherm::Error on I/O
/// failure.
void save_checkpoint_file(const std::string& path,
                          const std::vector<PlaybackCheckpoint>& checkpoints);

}  // namespace photherm::timeline
