/// \file vcsel.hpp
/// \brief CMOS-compatible VCSEL model (paper Sec. III-C, Fig. 8).
///
/// The laser is modelled with the standard above-threshold L-I relation
///   Pout(I, T) = eta_d(T) * (h nu / q) * (I - Ith(T)),
/// a temperature-dependent threshold
///   Ith(T) = Ith0 * exp(((T - T_th_opt) / T0)^2),
/// a logistic derating of the differential efficiency eta_d(T), and an
/// electrical junction V(I) = V0 + Rs * I. The default parameters are
/// calibrated to the paper's anchor points: wall-plug efficiency ~15 % at
/// 40 degC dropping to ~4 % at 60 degC (Sec. III-C), direct-modulation
/// bandwidth 12 GHz, 0.1 nm 3-dB linewidth, 1550 nm emission.
#pragma once

namespace photherm::photonics {

struct VcselParams {
  double wavelength = 1550e-9;     ///< emission wavelength at t_ref [m]
  double dlambda_dt = 0.1e-9;      ///< emission shift [m/degC]
  double t_ref = 25.0;             ///< reference temperature [degC]

  double v0 = 0.95;                ///< diode knee voltage [V]
  double series_resistance = 55.0; ///< [ohm]

  double ith0 = 0.30e-3;           ///< minimum threshold current [A]
  double t_th_opt = 20.0;          ///< temperature of minimum threshold [degC]
  double t0_th = 55.0;             ///< threshold broadening [degC]

  double eta_d_max = 0.46;         ///< low-temperature differential quantum eff.
  double eta_d_t_half = 43.0;      ///< logistic midpoint [degC]
  double eta_d_t_slope = 10.0;     ///< logistic width [degC]

  double max_current = 20e-3;      ///< safe operating limit [A]

  /// Footprint of the device (Fig. 1-c: 15 um x 30 um).
  double footprint_x = 15e-6;
  double footprint_y = 30e-6;
  /// Direct-modulation bandwidth [Hz] (informational; Sec. V-A: 12 GHz).
  double modulation_bandwidth = 12e9;
};

/// Immutable VCSEL model.
class Vcsel {
 public:
  Vcsel() = default;
  explicit Vcsel(const VcselParams& params);

  const VcselParams& params() const { return params_; }

  /// Threshold current at junction temperature `t` [A].
  double threshold_current(double t) const;

  /// Differential (slope) quantum efficiency at `t`, dimensionless in (0, 1).
  double differential_efficiency(double t) const;

  /// Junction voltage at drive current `i` [V].
  double voltage(double i) const;

  /// Electrical input power I * V(I) [W].
  double electrical_power(double i) const;

  /// Emitted optical power OPVCSEL at drive `i`, junction temperature `t`
  /// [W]; zero below threshold.
  double output_power(double i, double t) const;

  /// Heat dissipated in the device: electrical power minus emitted light [W].
  double dissipated_power(double i, double t) const;

  /// Wall-plug efficiency Pout / Pelec (the paper's eta_VCSEL, Fig. 8-b).
  double wall_plug_efficiency(double i, double t) const;

  /// Emission wavelength at junction temperature `t` [m].
  double emission_wavelength(double t) const;

  /// Inverse model: drive current whose *dissipated* power equals `p_diss`
  /// at fixed junction temperature `t`. Monotonic in i; solved by bisection.
  double current_for_dissipated_power(double p_diss, double t) const;

  /// Self-consistent junction temperature for drive `i` when the device
  /// sees a local thermal resistance `r_th` [K/W] to a baseline temperature
  /// `t_base`: solves T = t_base + r_th * Pdiss(i, T) by fixed point.
  double junction_temperature(double i, double t_base, double r_th) const;

  /// Emitted power vs dissipated power including self-heating: the Fig. 8-c
  /// characteristic. Junction temperature is t_base + r_th * p_diss.
  double output_power_for_dissipated(double p_diss, double t_base, double r_th) const;

 private:
  VcselParams params_;
};

}  // namespace photherm::photonics
