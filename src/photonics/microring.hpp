/// \file microring.hpp
/// \brief Passive microring resonator (MR) transmission model and MR heater
/// (paper Fig. 5 and Sec. IV-C).
///
/// Power coupling to the drop port follows a Lorentzian of the detuning:
///   D(dl) = Dmax / (1 + (2 dl / BW3dB)^2),
/// so with the paper's BW3dB = 1.55 nm, half of the input power is dropped
/// at dl = 0.775 nm — the "50 % wrongly dropped at 7.7 degC difference"
/// anchor of Sec. IV-C. The resonant wavelength red-shifts with temperature
/// at 0.1 nm/degC (Table 1).
#pragma once

namespace photherm::photonics {

struct MicroRingParams {
  double resonance = 1550e-9;     ///< design resonant wavelength at t_ref [m]
  double bandwidth_3db = 1.55e-9; ///< power-coupling FWHM [m]
  double d_max = 1.0;             ///< peak drop fraction at zero detuning
  double dlambda_dt = 0.1e-9;     ///< thermal shift [m/degC]
  double t_ref = 25.0;            ///< [degC]
  double drop_loss_db = 0.5;      ///< excess loss on the dropped signal [dB]
  double through_loss_db = 0.01;  ///< excess loss per pass-by [dB]
  double diameter = 10e-6;        ///< footprint (Fig. 1-c: 10 um)

  /// Filter order: 1 = single ring (the paper's Lorentzian); higher-order
  /// (cascaded) designs roll off as the Lorentzian to the n-th power, a
  /// standard crosstalk-suppression option explored by the ablation bench.
  int filter_order = 1;

  /// Free spectral range [m]; 0 disables FSR aliasing. A 10 um ring has an
  /// FSR of ~18 nm at 1550 nm: signals one FSR away also couple (the
  /// clustering analysis of related work [14] hinges on this).
  double fsr = 0.0;

  /// Athermal cladding option (related work [9]): scales the thermal
  /// sensitivity (0 = perfectly athermal, 1 = plain silicon).
  double athermal_factor = 1.0;
};

class MicroRing {
 public:
  MicroRing() = default;
  explicit MicroRing(const MicroRingParams& params);

  const MicroRingParams& params() const { return params_; }

  /// Resonant wavelength at ring temperature `t` [m].
  double resonance_at(double t) const;

  /// Drop-port power fraction for an input at `lambda` when the ring sits
  /// at temperature `t` (before drop excess loss).
  double drop_fraction(double lambda, double t) const;

  /// Drop fraction as a function of raw detuning [m].
  double drop_fraction_detuned(double detuning) const;

  /// Through-port power fraction (1 - drop, reduced by the pass-by loss).
  double through_fraction(double lambda, double t) const;

  /// Power delivered to the drop port including the drop excess loss.
  double dropped_power(double input_power, double lambda, double t) const;

 private:
  MicroRingParams params_;
};

/// Resistive heater placed on top of an MR (Sec. III-B). Converts heater
/// power into a local temperature rise through an effective thermal
/// resistance; the full-physics path is to give the heater block its power
/// in the thermal model — this lumped version serves the analytical SNR
/// model and quick design iterations.
struct MrHeater {
  double r_th = 1.2e3;  ///< effective [K/W] (about 1.2 degC per mW)

  double temperature_rise(double power) const { return r_th * power; }

  /// Heater power needed to shift the MR resonance by `delta_lambda` given
  /// the ring's thermal sensitivity [m per degC].
  double power_for_shift(double delta_lambda, double dlambda_dt) const;
};

}  // namespace photherm::photonics
