#include "photonics/photodetector.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {

Photodetector::Photodetector(const PhotodetectorParams& params) : params_(params) {
  PH_REQUIRE(params.responsivity > 0.0, "responsivity must be positive");
}

double Photodetector::sensitivity_watt() const { return dbm_to_watt(params_.sensitivity_dbm); }

bool Photodetector::detects(double power) const {
  PH_REQUIRE(power >= 0.0, "optical power must be non-negative");
  return power >= sensitivity_watt();
}

double Photodetector::photocurrent(double power) const {
  PH_REQUIRE(power >= 0.0, "optical power must be non-negative");
  return params_.responsivity * power;
}

bool Photodetector::link_closes(double signal_power, double snr_db) const {
  return detects(signal_power) && snr_db >= params_.required_snr_db;
}

}  // namespace photherm::photonics
