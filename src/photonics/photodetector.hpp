/// \file photodetector.hpp
/// \brief Large-band photodetector model. Table 1 gives a -20 dBm
/// sensitivity; a communication is receivable when the signal power clears
/// the sensitivity and the SNR clears the required margin.
#pragma once

namespace photherm::photonics {

struct PhotodetectorParams {
  double sensitivity_dbm = -20.0;  ///< minimum detectable power (Table 1)
  double responsivity = 0.8;       ///< [A/W]
  double required_snr_db = 10.0;   ///< decision threshold used in reports
  /// Footprint (Fig. 1-c: 1.5 um x 15 um).
  double footprint_x = 1.5e-6;
  double footprint_y = 15e-6;
};

class Photodetector {
 public:
  Photodetector() = default;
  explicit Photodetector(const PhotodetectorParams& params);

  const PhotodetectorParams& params() const { return params_; }

  /// Sensitivity threshold in watts.
  double sensitivity_watt() const;

  /// True when `power` [W] is detectable.
  bool detects(double power) const;

  /// Photocurrent for incident power [A].
  double photocurrent(double power) const;

  /// True when both the power and SNR requirements are met.
  bool link_closes(double signal_power, double snr_db) const;

 private:
  PhotodetectorParams params_;
};

}  // namespace photherm::photonics
