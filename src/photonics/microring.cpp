#include "photonics/microring.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {

MicroRing::MicroRing(const MicroRingParams& params) : params_(params) {
  PH_REQUIRE(params.resonance > 0.0, "MR resonance must be positive");
  PH_REQUIRE(params.bandwidth_3db > 0.0, "MR bandwidth must be positive");
  PH_REQUIRE(params.d_max > 0.0 && params.d_max <= 1.0, "MR peak drop must be in (0, 1]");
  PH_REQUIRE(params.drop_loss_db >= 0.0 && params.through_loss_db >= 0.0,
             "MR losses must be non-negative");
  PH_REQUIRE(params.filter_order >= 1, "filter order must be at least 1");
  PH_REQUIRE(params.fsr >= 0.0, "FSR must be non-negative");
  PH_REQUIRE(params.athermal_factor >= 0.0 && params.athermal_factor <= 1.0,
             "athermal factor must be in [0, 1]");
}

double MicroRing::resonance_at(double t) const {
  return params_.resonance +
         params_.athermal_factor * params_.dlambda_dt * (t - params_.t_ref);
}

double MicroRing::drop_fraction_detuned(double detuning) const {
  // Fold the detuning into the nearest resonance order when an FSR is
  // configured: the ring also drops signals one FSR away.
  double d = detuning;
  if (params_.fsr > 0.0) {
    d = std::remainder(d, params_.fsr);
  }
  const double u = 2.0 * d / params_.bandwidth_3db;
  const double lorentzian = 1.0 / (1.0 + u * u);
  return params_.d_max * std::pow(lorentzian, params_.filter_order);
}

double MicroRing::drop_fraction(double lambda, double t) const {
  return drop_fraction_detuned(lambda - resonance_at(t));
}

double MicroRing::through_fraction(double lambda, double t) const {
  return (1.0 - drop_fraction(lambda, t)) * db_to_linear(params_.through_loss_db);
}

double MicroRing::dropped_power(double input_power, double lambda, double t) const {
  PH_REQUIRE(input_power >= 0.0, "input power must be non-negative");
  return input_power * drop_fraction(lambda, t) * db_to_linear(params_.drop_loss_db);
}

double MrHeater::power_for_shift(double delta_lambda, double dlambda_dt) const {
  PH_REQUIRE(dlambda_dt > 0.0, "thermal sensitivity must be positive");
  PH_REQUIRE(delta_lambda >= 0.0, "heaters can only red-shift the resonance");
  return delta_lambda / dlambda_dt / r_th;
}

}  // namespace photherm::photonics
