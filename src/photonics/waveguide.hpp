/// \file waveguide.hpp
/// \brief Waveguide propagation model. Table 1: 0.5 dB/cm propagation loss
/// [3]; crossings (used only by the baseline crossbar topologies — ORNoC is
/// crossing-free) and the VCSEL taper coupling (70 %, Fig. 2) live here too.
#pragma once

namespace photherm::photonics {

struct WaveguideParams {
  double propagation_loss_db_per_cm = 0.5;  ///< Table 1
  double crossing_loss_db = 0.15;           ///< per waveguide crossing
  double bend_loss_db = 0.005;              ///< per 90-degree bend
};

class Waveguide {
 public:
  Waveguide() = default;
  explicit Waveguide(const WaveguideParams& params);

  const WaveguideParams& params() const { return params_; }

  /// Linear transmission over `length` [m].
  double transmission(double length) const;

  /// Loss in dB over `length` [m].
  double loss_db(double length) const;

  /// Combined transmission of a path: length + crossings + bends.
  double path_transmission(double length, int crossings, int bends = 0) const;

 private:
  WaveguideParams params_;
};

/// Vertical-to-horizontal taper coupling the VCSEL into the waveguide
/// (Fig. 2-a: eta_coupling assumed 70 %).
struct TaperParams {
  double coupling_efficiency = 0.70;
};

class Taper {
 public:
  Taper() = default;
  explicit Taper(const TaperParams& params);

  double coupled_power(double input_power) const;
  const TaperParams& params() const { return params_; }

 private:
  TaperParams params_;
};

}  // namespace photherm::photonics
