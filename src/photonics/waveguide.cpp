#include "photonics/waveguide.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {

Waveguide::Waveguide(const WaveguideParams& params) : params_(params) {
  PH_REQUIRE(params.propagation_loss_db_per_cm >= 0.0, "propagation loss must be non-negative");
  PH_REQUIRE(params.crossing_loss_db >= 0.0, "crossing loss must be non-negative");
  PH_REQUIRE(params.bend_loss_db >= 0.0, "bend loss must be non-negative");
}

double Waveguide::loss_db(double length) const {
  PH_REQUIRE(length >= 0.0, "length must be non-negative");
  return params_.propagation_loss_db_per_cm * (length / 1e-2);
}

double Waveguide::transmission(double length) const { return db_to_linear(loss_db(length)); }

double Waveguide::path_transmission(double length, int crossings, int bends) const {
  PH_REQUIRE(crossings >= 0 && bends >= 0, "crossing/bend counts must be non-negative");
  const double extra_db =
      params_.crossing_loss_db * crossings + params_.bend_loss_db * bends;
  return transmission(length) * db_to_linear(extra_db);
}

Taper::Taper(const TaperParams& params) : params_(params) {
  PH_REQUIRE(params.coupling_efficiency > 0.0 && params.coupling_efficiency <= 1.0,
             "taper coupling efficiency must be in (0, 1]");
}

double Taper::coupled_power(double input_power) const {
  PH_REQUIRE(input_power >= 0.0, "input power must be non-negative");
  return params_.coupling_efficiency * input_power;
}

}  // namespace photherm::photonics
