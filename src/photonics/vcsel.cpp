#include "photonics/vcsel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace photherm::photonics {

Vcsel::Vcsel(const VcselParams& params) : params_(params) {
  PH_REQUIRE(params.wavelength > 0.0, "VCSEL wavelength must be positive");
  PH_REQUIRE(params.ith0 > 0.0, "VCSEL threshold current must be positive");
  PH_REQUIRE(params.eta_d_max > 0.0 && params.eta_d_max < 1.0,
             "differential efficiency must be in (0, 1)");
  PH_REQUIRE(params.v0 > 0.0 && params.series_resistance >= 0.0,
             "VCSEL electrical parameters must be physical");
  PH_REQUIRE(params.max_current > params.ith0, "max current must exceed the threshold");
}

double Vcsel::threshold_current(double t) const {
  const double u = (t - params_.t_th_opt) / params_.t0_th;
  return params_.ith0 * std::exp(u * u);
}

double Vcsel::differential_efficiency(double t) const {
  return params_.eta_d_max / (1.0 + std::exp((t - params_.eta_d_t_half) / params_.eta_d_t_slope));
}

double Vcsel::voltage(double i) const {
  PH_REQUIRE(i >= 0.0, "drive current must be non-negative");
  return params_.v0 + params_.series_resistance * i;
}

double Vcsel::electrical_power(double i) const { return i * voltage(i); }

double Vcsel::output_power(double i, double t) const {
  PH_REQUIRE(i >= 0.0, "drive current must be non-negative");
  const double ith = threshold_current(t);
  if (i <= ith) {
    return 0.0;
  }
  const double photon_voltage = photon_energy(params_.wavelength) / constants::kElementaryCharge;
  return differential_efficiency(t) * photon_voltage * (i - ith);
}

double Vcsel::dissipated_power(double i, double t) const {
  return electrical_power(i) - output_power(i, t);
}

double Vcsel::wall_plug_efficiency(double i, double t) const {
  if (i <= 0.0) {
    return 0.0;
  }
  return output_power(i, t) / electrical_power(i);
}

double Vcsel::emission_wavelength(double t) const {
  return params_.wavelength + params_.dlambda_dt * (t - params_.t_ref);
}

double Vcsel::current_for_dissipated_power(double p_diss, double t) const {
  PH_REQUIRE(p_diss >= 0.0, "dissipated power must be non-negative");
  if (p_diss == 0.0) {
    return 0.0;
  }
  // Pdiss(i) = i V(i) - Pout(i) is strictly increasing in i (the wall-plug
  // efficiency never reaches 1), so bisection on [0, i_hi] applies.
  double lo = 0.0;
  double hi = params_.max_current;
  PH_REQUIRE(dissipated_power(hi, t) >= p_diss,
             "requested dissipated power exceeds the VCSEL safe operating range");
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (dissipated_power(mid, t) < p_diss) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Vcsel::junction_temperature(double i, double t_base, double r_th) const {
  PH_REQUIRE(r_th >= 0.0, "thermal resistance must be non-negative");
  double t = t_base;
  for (int iter = 0; iter < 200; ++iter) {
    const double next = t_base + r_th * dissipated_power(i, t);
    if (std::abs(next - t) < 1e-9) {
      return next;
    }
    // Damped fixed point: the map is mildly contracting for realistic r_th,
    // damping keeps it stable even at high drive.
    t = 0.5 * t + 0.5 * next;
  }
  return t;
}

double Vcsel::output_power_for_dissipated(double p_diss, double t_base, double r_th) const {
  const double t_junction = t_base + r_th * p_diss;
  const double i = current_for_dissipated_power(p_diss, t_junction);
  return output_power(i, t_junction);
}

}  // namespace photherm::photonics
