/// \file spectrum.hpp
/// \brief WDM channel plan around the 1550 nm window. ORNoC assigns each
/// communication a (waveguide, wavelength) pair; channels are spaced so
/// that perfectly tuned neighbouring channels couple only weakly into each
/// other's rings, while thermal drift (0.1 nm/degC) erodes that margin —
/// which is exactly the effect the SNR analysis quantifies.
#pragma once

#include <vector>

namespace photherm::photonics {

struct ChannelPlanParams {
  double center = 1550e-9;    ///< window centre [m] (Table 1)
  /// Channel pitch [m]. With the paper's very broad 1.55 nm MR passband a
  /// coarse WDM grid is required for foreign channels to pass rings mostly
  /// untouched (CWDM-style spacing; VCSEL arrays span tens of nm).
  double spacing = 6.4e-9;
  std::size_t channel_count = 8;
};

class ChannelPlan {
 public:
  ChannelPlan() = default;
  explicit ChannelPlan(const ChannelPlanParams& params);

  std::size_t size() const { return params_.channel_count; }

  /// Design wavelength of channel `index` [m]; channels straddle the centre.
  double wavelength(std::size_t index) const;

  /// All channel wavelengths.
  std::vector<double> wavelengths() const;

  /// Index of the channel closest to `lambda`.
  std::size_t nearest_channel(double lambda) const;

  const ChannelPlanParams& params() const { return params_; }

 private:
  ChannelPlanParams params_;
};

}  // namespace photherm::photonics
