#include "photonics/spectrum.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::photonics {

ChannelPlan::ChannelPlan(const ChannelPlanParams& params) : params_(params) {
  PH_REQUIRE(params.channel_count >= 1, "a channel plan needs at least one channel");
  PH_REQUIRE(params.spacing > 0.0, "channel spacing must be positive");
  PH_REQUIRE(params.center > 0.0, "channel plan centre must be positive");
}

double ChannelPlan::wavelength(std::size_t index) const {
  PH_REQUIRE(index < params_.channel_count, "channel index out of range");
  const double offset =
      (static_cast<double>(index) - 0.5 * static_cast<double>(params_.channel_count - 1));
  return params_.center + offset * params_.spacing;
}

std::vector<double> ChannelPlan::wavelengths() const {
  std::vector<double> out(params_.channel_count);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = wavelength(i);
  }
  return out;
}

std::size_t ChannelPlan::nearest_channel(double lambda) const {
  std::size_t best = 0;
  double best_distance = std::abs(lambda - wavelength(0));
  for (std::size_t i = 1; i < params_.channel_count; ++i) {
    const double d = std::abs(lambda - wavelength(i));
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

}  // namespace photherm::photonics
