/// \file stats.hpp
/// \brief Small statistics helpers used when reducing thermal maps
/// (average/min/max/gradient over regions) and when summarising sweeps.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "util/error.hpp"

namespace photherm {

inline double mean(std::span<const double> values) {
  PH_REQUIRE(!values.empty(), "mean of empty range");
  return std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(values.size());
}

inline double min_value(std::span<const double> values) {
  PH_REQUIRE(!values.empty(), "min of empty range");
  return *std::min_element(values.begin(), values.end());
}

inline double max_value(std::span<const double> values) {
  PH_REQUIRE(!values.empty(), "max of empty range");
  return *std::max_element(values.begin(), values.end());
}

/// Peak-to-peak spread; this is the paper's "gradient temperature" metric
/// (max - min over a region).
inline double spread(std::span<const double> values) {
  PH_REQUIRE(!values.empty(), "spread of empty range");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  return *hi - *lo;
}

inline double stddev(std::span<const double> values) {
  PH_REQUIRE(values.size() >= 2, "stddev needs at least two samples");
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

/// Weighted mean (weights need not be normalised; must be non-negative with
/// positive sum). Used for volume-weighted region temperature averages.
inline double weighted_mean(std::span<const double> values, std::span<const double> weights) {
  PH_REQUIRE(values.size() == weights.size(), "weighted_mean: size mismatch");
  PH_REQUIRE(!values.empty(), "weighted_mean of empty range");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    PH_REQUIRE(weights[i] >= 0.0, "weighted_mean: negative weight");
    num += values[i] * weights[i];
    den += weights[i];
  }
  PH_REQUIRE(den > 0.0, "weighted_mean: zero total weight");
  return num / den;
}

}  // namespace photherm
