/// \file error.hpp
/// \brief Error handling for the photherm library.
///
/// Precondition violations and unrecoverable numerical failures throw
/// photherm::Error (derived from std::runtime_error) so that callers —
/// including the test-suite — can assert on failure modes.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace photherm {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a user-supplied specification is inconsistent
/// (overlapping blocks, empty mesh, negative power, ...).
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// Raised when an iterative solver fails to converge.
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* cond, const char* file, int line,
                                               const std::string& message) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement `" << cond << "` failed: " << message;
  throw Error(os.str());
}
}  // namespace detail

/// Run `fn`, rethrowing any std::exception as a photherm::Error with
/// `context` prepended ("scenario `x`: <original message>"). The batch
/// runners wrap each per-scenario worker body in this: the thread pool
/// rethrows the first worker exception on the calling thread
/// (thread_pool.hpp contract), and the context keeps that surfaced error
/// attributable to its scenario instead of terminating the process
/// anonymously.
template <typename Fn>
void with_error_context(const std::string& context, const Fn& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    throw Error(context + ": " + e.what());
  }
}

}  // namespace photherm

/// Precondition check that is always active (not compiled out in release
/// builds): design-space sweeps feed user parameters straight into the
/// solvers, so silent corruption is worse than the branch cost.
#define PH_REQUIRE(cond, message)                                                    \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      ::photherm::detail::throw_require_failure(#cond, __FILE__, __LINE__, message); \
    }                                                                                \
  } while (false)
