/// \file telemetry.hpp
/// \brief Runtime-gated observability: a metrics registry (named counters,
/// gauges and timers with thread-local accumulation, merged in deterministic
/// name order and exported as exact-mode CSV) plus scoped trace spans (RAII,
/// nestable, tagged with a per-thread label such as the thread-pool worker
/// id) exported as Chrome trace-event JSON loadable in Perfetto or
/// chrome://tracing.
///
/// Three contracts every instrumented call site relies on:
///
///  1. **Zero-overhead disabled mode.** Telemetry is off by default. Every
///     recording entry point is an inline single-branch check of one relaxed
///     atomic; with telemetry disabled no clock is read, no allocation
///     happens and no lock is taken. Spans cost one branch on construction
///     and one on destruction.
///  2. **Telemetry never perturbs physics.** Recording is strictly
///     write-only from the instrumented code's point of view: no solver,
///     stepper or runner ever reads a telemetry value back into a
///     computation, so every physics output (scenario CSVs, timeline
///     traces, checkpoints) is byte-identical with telemetry on or off, at
///     any thread count. The smoke suite enforces this bit-for-bit.
///  3. **Thread safety.** All accumulation is thread-local; the global
///     registry is only touched under a mutex when a thread first records,
///     when a thread exits, and at export time. Concurrent spans and counter
///     bumps from pool workers are race-free (TSan-covered).
///
/// Timing is inherently non-deterministic, which is why telemetry.cpp is
/// the project's single allowlisted clock site under the photherm_lint
/// determinism rule (tools/photherm_lint.rules): all wall-clock reads in
/// src/ live behind this interface, and nothing they produce feeds back
/// into numerical state.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"

namespace photherm::telemetry {

namespace detail {
/// The runtime gate. Relaxed loads are fine: enabling mid-flight only has
/// to eventually start recording, and the instrumented call sites never
/// branch on telemetry data for anything but recording.
extern std::atomic<bool> g_enabled;

void count_slow(const std::string& name, std::uint64_t delta);
void gauge_slow(const std::string& name, double value);
void timer_slow(const std::string& name, std::uint64_t elapsed_ns);
void instant_slow(const std::string& name);
void counter_slow(const char* name, double value, std::uint64_t index);

/// Monotonic nanoseconds since an arbitrary process-local epoch. Only
/// meaningful as differences; only ever called with telemetry enabled.
std::int64_t now_ns();
}  // namespace detail

/// True while telemetry is recording. One relaxed atomic load.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turn recording on or off. Enabling seeds the standard metric catalog
/// (see metric_catalog()) so the exported CSV always carries the core
/// solver/cache/playback rows, at zero, even for runs that never touch
/// them. Disabling stops recording but keeps what was collected.
void set_enabled(bool on);

/// Drop every collected metric, span and thread label (the enabled flag is
/// left alone; re-seeds the catalog when enabled). Tests and long-lived
/// processes use this between measurement windows.
void reset();

/// Monotonic counter: `name` accumulates `delta` (merged across threads by
/// summation). No-op while disabled. The const char* overloads exist so the
/// hot-path call sites build no std::string before the enabled branch.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (enabled()) {
    detail::count_slow(name, delta);
  }
}
inline void count(const std::string& name, std::uint64_t delta = 1) {
  if (enabled()) {
    detail::count_slow(name, delta);
  }
}

/// Gauge observation: records `value` into `name`'s count/sum/min/max
/// statistic. No-op while disabled.
inline void gauge(const char* name, double value) {
  if (enabled()) {
    detail::gauge_slow(name, value);
  }
}

/// Timer observation: adds an elapsed interval (nanoseconds) to `name`.
/// Most callers want ScopedTimer instead of calling this directly.
inline void timer_add(const std::string& name, std::uint64_t elapsed_ns) {
  if (enabled()) {
    detail::timer_slow(name, elapsed_ns);
  }
}

/// Zero-duration marker in the trace (a Chrome "instant" event) plus a
/// counter bump of the same name: pause/resume and other one-shot events.
inline void instant(const char* name) {
  if (enabled()) {
    detail::instant_slow(name);
  }
}

/// Plottable sample in the trace (a Chrome "C" counter event): `value` at
/// the current timestamp with an ordinal `index` in the event args. The
/// solvers emit one per Krylov iteration when SolverOptions::
/// record_convergence is on, so a residual history renders as a counter
/// track in Perfetto and `photherm_report convergence` can rebuild the
/// per-solve series. No metric cell is touched. No-op while disabled.
inline void counter(const char* name, double value, std::uint64_t index = 0) {
  if (enabled()) {
    detail::counter_slow(name, value, index);
  }
}

/// Label the calling thread in the trace ("pool-worker-3"); rendered via
/// Chrome thread_name metadata. Cheap and callable regardless of the
/// enabled state (the label is kept for when recording starts). The thread
/// pool labels its workers; the main thread defaults to "main".
void set_thread_label(const std::string& label);

/// RAII trace span: the region between construction and destruction becomes
/// one Chrome complete ("X") event on the calling thread's track, nested
/// spans render nested (and carry an explicit depth argument). `detail`
/// lands in the event's args. One branch when disabled.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) {
      begin(name, std::string());
    }
  }
  Span(const char* name, std::string detail_text) {
    if (enabled()) {
      begin(name, std::move(detail_text));
    }
  }
  /// Literal-detail overload: no std::string is built while disabled.
  Span(const char* name, const char* detail_text) {
    if (enabled()) {
      begin(name, std::string(detail_text));
    }
  }
  ~Span() {
    if (start_ns_ >= 0) {
      end();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, std::string detail_text);
  void end();

  const char* name_ = nullptr;
  std::string detail_;
  std::int64_t start_ns_ = -1;  ///< -1 = span not recording
};

/// RAII timer: adds the construction-to-destruction interval to the timer
/// metric `name`. Used for per-scenario wall time and pool queue waits;
/// pairs with (but does not require) a Span of the same region.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) {
    if (enabled()) {
      name_ = std::move(name);
      start_ns_ = detail::now_ns();
    }
  }
  /// Literal-name overload: no std::string is built while disabled.
  explicit ScopedTimer(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }
  ~ScopedTimer() {
    if (start_ns_ >= 0) {
      timer_add(name_, static_cast<std::uint64_t>(detail::now_ns() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  std::int64_t start_ns_ = -1;
};

/// The standard metric names seeded (at zero) by set_enabled(true), so the
/// exported CSV shape is stable across runs that exercise different paths.
/// Documented in README.md ("Observability"); append-only by convention.
const std::vector<std::pair<std::string, std::string>>& metric_catalog();

/// Attach a provenance entry to every subsequent export (the run manifest):
/// suite name, scenario count, thread count, command line — anything that
/// makes two artifacts comparable months apart. Merged over the build-time
/// entries (git_sha, build_type, compiler, sanitizer — compiled into
/// telemetry.cpp), runtime keys winning on collision; exported in sorted
/// key order as `# key=value` comment lines in the metrics CSV and a
/// top-level "manifest" object in the trace JSON. reset() clears the
/// runtime entries (the build-time ones are constants).
void set_manifest(const std::string& key, const std::string& value);

/// The merged manifest (build-time entries + set_manifest overrides),
/// sorted by key.
std::vector<std::pair<std::string, std::string>> manifest();

/// Merged metrics as an exact-mode util::csv Table, rows in deterministic
/// (lexicographic) metric-name order. Columns: metric, kind, count, total,
/// min, max, p50, p90, p99 — `count` is the number of observations
/// (counters: increments), `total` the accumulated value (counters: sum of
/// deltas; timers: nanoseconds); min/max are per-observation extremes
/// (empty for counters). Timers additionally carry percentile estimates
/// from a fixed 64-bucket log2 histogram of observed nanoseconds: each
/// percentile reports the inclusive upper bound (2^b - 1 ns) of the bucket
/// holding that rank, so the columns are deterministic for a deterministic
/// observation multiset, merge order and thread count notwithstanding.
/// Empty for counters, gauges, and zero-observation timers.
Table metrics_table();

/// The full metrics CSV payload: the manifest comment block
/// (`# photherm-manifest v1` + `# key=value` lines) followed by
/// metrics_table().to_csv().
std::string metrics_csv();

/// Chrome trace-event JSON ("traceEvents" array of complete/instant/
/// counter/metadata events, microsecond timestamps, plus the run manifest
/// as a top-level "manifest" object) — open in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing. Valid JSON even when
/// nothing was recorded.
std::string trace_json();

/// Write metrics_csv() / trace_json() to `path`; throws photherm::Error on
/// I/O failure.
void write_metrics_csv(const std::string& path);
void write_trace_json(const std::string& path);

}  // namespace photherm::telemetry
