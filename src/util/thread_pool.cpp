#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace photherm::util {

namespace {

std::atomic<std::size_t> g_concurrency_override{0};

std::size_t default_concurrency() {
  if (const char* env = std::getenv("PHOTHERM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

/// Set while a thread is executing pool work; nested parallel regions run
/// inline on it instead of waiting on the pool (which could deadlock).
thread_local bool t_in_pool_worker = false;

}  // namespace

std::size_t concurrency() {
  const std::size_t forced = g_concurrency_override.load(std::memory_order_relaxed);
  const std::size_t resolved = forced > 0 ? forced : default_concurrency();
  return resolved < kMaxThreads ? resolved : kMaxThreads;
}

void set_concurrency(std::size_t threads) {
  g_concurrency_override.store(threads, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  /// One parallel region. Workers pull chunk indices from `next` until it
  /// passes `count`; the caller waits until `done == count`.
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::size_t max_extra_workers = 0;
    /// Telemetry publish stamp (detail::now_ns at submit); -1 while
    /// telemetry is disabled so workers read no clock and take no lock.
    std::int64_t publish_ns = -1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> claimed{0};
    std::mutex wait_mutex;
    std::condition_variable done_cv;
    std::mutex error_mutex;
    std::exception_ptr error;

    void execute_chunks() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) {
            error = std::current_exception();
          }
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
          std::lock_guard<std::mutex> lock(wait_mutex);
          done_cv.notify_all();
        }
      }
    }
  };

  std::mutex mutex;
  std::condition_variable job_cv;
  std::vector<std::thread> workers;
  std::shared_ptr<Job> job;  ///< current region, null when idle
  std::uint64_t job_seq = 0;
  bool stop = false;

  void worker_loop(std::uint64_t start_seq, std::size_t worker_index) {
    // The label is kept across enable/disable cycles, so traces recorded
    // later still attribute spans to "pool-worker-N".
    telemetry::set_thread_label("pool-worker-" + std::to_string(worker_index + 1));
    std::uint64_t seen = start_seq;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      job_cv.wait(lock, [&] { return stop || job_seq != seen; });
      if (stop) {
        return;
      }
      seen = job_seq;
      std::shared_ptr<Job> current = job;
      lock.unlock();
      if (current &&
          current->claimed.fetch_add(1, std::memory_order_relaxed) < current->max_extra_workers) {
        if (current->publish_ns >= 0 && telemetry::enabled()) {
          // Wake-up latency between job submission and this worker joining.
          telemetry::timer_add(
              "pool.queue_wait",
              static_cast<std::uint64_t>(telemetry::detail::now_ns() - current->publish_ns));
        }
        t_in_pool_worker = true;
        current->execute_chunks();
        t_in_pool_worker = false;
      }
      lock.lock();
    }
  }

  void spawn_locked(std::size_t how_many) {
    for (std::size_t i = 0; i < how_many; ++i) {
      workers.emplace_back(
          [this, seq = job_seq, index = workers.size()] { worker_loop(seq, index); });
    }
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) : impl_(new Impl) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spawn_locked(thread_count);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->job_cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    worker.join();
  }
  delete impl_;
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->workers.size();
}

void ThreadPool::ensure_size(std::size_t thread_count) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (thread_count > impl_->workers.size()) {
    impl_->spawn_locked(thread_count - impl_->workers.size());
  }
}

void ThreadPool::run(std::size_t chunk_count, std::size_t max_threads,
                     const std::function<void(std::size_t)>& chunk_fn) {
  if (chunk_count == 0) {
    return;
  }
  if (max_threads == 0) {
    max_threads = concurrency();
  }
  max_threads = std::min(max_threads, kMaxThreads);
  // Serial paths: a single chunk, a single-thread request, or a nested call
  // from a worker (re-entering the pool from a worker could deadlock).
  if (chunk_count == 1 || max_threads <= 1 || t_in_pool_worker) {
    for (std::size_t i = 0; i < chunk_count; ++i) {
      chunk_fn(i);
    }
    return;
  }

  // More executors than chunks would spawn persistent workers (the pool
  // never shrinks) that can never receive work.
  const std::size_t executors = std::min(max_threads, chunk_count);
  ensure_size(executors - 1);
  auto job = std::make_shared<Impl::Job>();
  job->fn = chunk_fn;
  job->count = chunk_count;
  job->max_extra_workers = executors - 1;
  if (telemetry::enabled()) {
    job->publish_ns = telemetry::detail::now_ns();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->job_seq;
  }
  impl_->job_cv.notify_all();

  // The caller is an executor too, and counts as a pool worker while it
  // drains chunks: a nested parallel region issued from its chunk must run
  // inline (like it would on any other worker) instead of re-entering the
  // pool and displacing this job from the single job slot.
  t_in_pool_worker = true;
  job->execute_chunks();
  t_in_pool_worker = false;

  {
    std::unique_lock<std::mutex> lock(job->wait_mutex);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->count;
    });
  }
  {
    // Detach the finished job so late-waking workers see an exhausted
    // region at most (next > count) and do no work.
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->job == job) {
      impl_->job = nullptr;
    }
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(concurrency() > 0 ? concurrency() - 1 : 0);
  return pool;
}

void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) {
    return;
  }
  PH_REQUIRE(grain > 0, "parallel_for: grain must be positive");
  if (threads == 0) {
    threads = concurrency();
  }
  const std::size_t chunks = (count + grain - 1) / grain;
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * grain;
    const std::size_t end = begin + grain < count ? begin + grain : count;
    body(begin, end);
  };
  if (chunks == 1 || threads <= 1 || t_in_pool_worker) {
    // Same chunk boundaries as the parallel path so reductions that key off
    // chunk indices stay bit-identical across thread counts.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      run_chunk(chunk);
    }
    return;
  }
  ThreadPool::shared().run(chunks, threads, run_chunk);
}

}  // namespace photherm::util
