/// \file log.hpp
/// \brief Minimal leveled logger. Benches and examples use it to narrate
/// sweeps; the library itself only logs at Debug/Trace level so that tests
/// stay quiet by default.
#pragma once

#include <sstream>
#include <string>

namespace photherm {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread-safe, writes to stderr).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace photherm

#define PH_LOG(level)                                     \
  if (static_cast<int>(level) < static_cast<int>(::photherm::log_level())) { \
  } else                                                  \
    ::photherm::detail::LogLine(level)

#define PH_LOG_INFO PH_LOG(::photherm::LogLevel::kInfo)
#define PH_LOG_DEBUG PH_LOG(::photherm::LogLevel::kDebug)
#define PH_LOG_WARN PH_LOG(::photherm::LogLevel::kWarn)
#define PH_LOG_ERROR PH_LOG(::photherm::LogLevel::kError)
