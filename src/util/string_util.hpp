/// \file string_util.hpp
/// \brief Formatting helpers shared by reports and benches.
#pragma once

#include <string>
#include <vector>

namespace photherm {

/// printf-style float with fixed decimals, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Human-readable SI formatting of a power in watts ("3.6 mW", "25 W").
std::string format_power(double watts);

/// Human-readable SI formatting of a length in metres ("15 um", "3.2 mm").
std::string format_length(double metres);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cased copy (ASCII).
std::string to_lower(std::string s);

}  // namespace photherm
