/// \file string_util.hpp
/// \brief Formatting helpers shared by reports and benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace photherm {

/// printf-style float with fixed decimals, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Shortest decimal spelling that parses back to exactly the same double
/// (std::to_chars round-trip guarantee): serialize/parse round-trips are
/// bit-identical while common values stay readable ("0.3", not
/// "0.29999999999999999"). The scenario files and timeline checkpoints both
/// rely on this for their exact text round-trips.
std::string format_shortest(double value);

/// Human-readable SI formatting of a power in watts ("3.6 mW", "25 W").
std::string format_power(double watts);

/// Human-readable SI formatting of a length in metres ("15 um", "3.2 mm").
std::string format_length(double metres);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cased copy (ASCII).
std::string to_lower(std::string s);

/// Copy with ASCII whitespace stripped from both ends.
std::string trim(const std::string& s);

/// Split on a delimiter character; empty fields are kept ("a,,b" gives
/// three parts) and an empty input gives one empty part.
std::vector<std::string> split(const std::string& s, char delim);

/// Parse a floating-point number, requiring the whole (trimmed) string to
/// be consumed; throws photherm::SpecError naming `what` otherwise.
double parse_double(const std::string& s, const std::string& what);

/// Parse a non-negative integer the same way.
std::uint64_t parse_uint(const std::string& s, const std::string& what);

/// Parse "true"/"false"/"1"/"0" (case-insensitive).
bool parse_bool(const std::string& s, const std::string& what);

}  // namespace photherm
