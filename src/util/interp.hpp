/// \file interp.hpp
/// \brief Piecewise-linear interpolation. The VCSEL model and material
/// library expose measured curves (efficiency vs temperature, conductivity
/// vs temperature) as sampled tables interpolated at query time.
#pragma once

#include <vector>

namespace photherm {

/// Piecewise-linear 1-D interpolant over strictly increasing abscissae.
/// Queries outside the domain clamp to the boundary values (device curves
/// saturate rather than extrapolate).
class LinearInterp1D {
 public:
  LinearInterp1D() = default;

  /// `xs` must be strictly increasing and the two vectors the same size >= 2.
  LinearInterp1D(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;

  /// Derivative of the interpolant at `x` (piecewise constant; at knots the
  /// right-segment slope is returned, at the last knot the left-segment one).
  double derivative(double x) const;

  bool empty() const { return xs_.empty(); }
  double x_min() const;
  double x_max() const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Bilinear interpolation on a tensor grid: values[i][j] = f(xs[i], ys[j]).
/// Queries clamp to the grid boundary.
class BilinearInterp2D {
 public:
  BilinearInterp2D() = default;
  BilinearInterp2D(std::vector<double> xs, std::vector<double> ys,
                   std::vector<std::vector<double>> values);

  double operator()(double x, double y) const;

  bool empty() const { return xs_.empty(); }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::vector<double>> values_;
};

/// Index of the segment containing x in a strictly increasing knot vector:
/// returns i such that knots[i] <= x < knots[i+1], clamped to
/// [0, knots.size()-2]. Exposed for reuse by the mesh axis lookup.
std::size_t find_segment(const std::vector<double>& knots, double x);

}  // namespace photherm
