#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace photherm {

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string format_shortest(double value) {
  char buf[64];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  PH_REQUIRE(r.ec == std::errc(), "cannot format a double");
  return std::string(buf, r.ptr);
}

namespace {
std::string format_si(double value, const char* unit, double scale_milli, double scale_micro) {
  std::ostringstream os;
  const double mag = std::abs(value);
  if (mag >= 1.0 || mag == 0.0) {
    os << format_fixed(value, 3) << " " << unit;
  } else if (mag >= scale_milli) {
    os << format_fixed(value * 1e3, 3) << " m" << unit;
  } else if (mag >= scale_micro) {
    os << format_fixed(value * 1e6, 3) << " u" << unit;
  } else {
    os << format_fixed(value * 1e9, 3) << " n" << unit;
  }
  return os.str();
}
}  // namespace

std::string format_power(double watts) { return format_si(watts, "W", 1e-3, 1e-6); }

std::string format_length(double metres) { return format_si(metres, "m", 1e-3, 1e-6); }

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return s;
}

std::string trim(const std::string& s) {
  const auto is_space = [](unsigned char ch) { return std::isspace(ch) != 0; };
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && is_space(static_cast<unsigned char>(s[lo]))) {
    ++lo;
  }
  while (hi > lo && is_space(static_cast<unsigned char>(s[hi - 1]))) {
    --hi;
  }
  return s.substr(lo, hi - lo);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

double parse_double(const std::string& s, const std::string& what) {
  const std::string text = trim(s);
  PH_REQUIRE(!text.empty(), "empty value for " + what);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    throw SpecError("cannot parse `" + text + "` as a number for " + what);
  }
  // Rejects "inf"/"nan" and overflowed literals like 1e999: non-finite
  // inputs must fail here, not deep inside a solver.
  if (!std::isfinite(value)) {
    throw SpecError("`" + text + "` is not a finite number for " + what);
  }
  return value;
}

std::uint64_t parse_uint(const std::string& s, const std::string& what) {
  const std::string text = trim(s);
  PH_REQUIRE(!text.empty(), "empty value for " + what);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || text[0] == '-' || errno == ERANGE) {
    throw SpecError("cannot parse `" + text + "` as a non-negative 64-bit integer for " + what);
  }
  return static_cast<std::uint64_t>(value);
}

bool parse_bool(const std::string& s, const std::string& what) {
  const std::string text = to_lower(trim(s));
  if (text == "true" || text == "1") {
    return true;
  }
  if (text == "false" || text == "0") {
    return false;
  }
  throw SpecError("cannot parse `" + trim(s) + "` as a boolean for " + what);
}

}  // namespace photherm
