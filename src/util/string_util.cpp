#include "util/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace photherm {

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

namespace {
std::string format_si(double value, const char* unit, double scale_milli, double scale_micro) {
  std::ostringstream os;
  const double mag = std::abs(value);
  if (mag >= 1.0 || mag == 0.0) {
    os << format_fixed(value, 3) << " " << unit;
  } else if (mag >= scale_milli) {
    os << format_fixed(value * 1e3, 3) << " m" << unit;
  } else if (mag >= scale_micro) {
    os << format_fixed(value * 1e6, 3) << " u" << unit;
  } else {
    os << format_fixed(value * 1e9, 3) << " n" << unit;
  }
  return os.str();
}
}  // namespace

std::string format_power(double watts) { return format_si(watts, "W", 1e-3, 1e-6); }

std::string format_length(double metres) { return format_si(metres, "m", 1e-3, 1e-6); }

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return s;
}

}  // namespace photherm
