/// \file thread_pool.hpp
/// \brief Shared thread pool and deterministic parallel-for.
///
/// The sweep engines (design-space grids, calibration plans) and the math
/// kernels (SpMV, vector ops) dispatch onto one process-wide pool. Two
/// properties are guaranteed:
///
///  1. **Determinism.** `parallel_for` always partitions the index range
///     into the same chunks for a given (range, grain) pair, independent of
///     how many threads execute them. Element-wise kernels write disjoint
///     ranges, and reductions accumulate per-chunk partials that are summed
///     in chunk order, so every result is bit-identical at 1, 2 or N
///     threads (and identical to the serial code path).
///  2. **No nested oversubscription.** A `parallel_for` issued from inside
///     a pool worker (e.g. an SpMV inside a parallel sweep task) runs
///     inline on the calling worker instead of re-entering the pool.
///
/// The pool is work-stealing-free by design: chunks are handed out from a
/// single atomic cursor, which is cheap at the grain sizes used here and
/// keeps the scheduler trivially auditable.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace photherm::util {

/// Hard ceiling on pool workers. Requests beyond it (a typo'd
/// `PHOTHERM_THREADS=100000`, a huge `threads` option) are clamped instead
/// of spawning OS threads until creation fails.
inline constexpr std::size_t kMaxThreads = 256;

/// Process-wide concurrency knob. Resolution order: the value set by
/// `set_concurrency` (if non-zero), else the `PHOTHERM_THREADS` environment
/// variable (if set and positive), else `std::thread::hardware_concurrency`.
/// Always at least 1, at most `kMaxThreads`.
std::size_t concurrency();

/// Override the concurrency knob for this process (0 restores the
/// environment/hardware default). Thread counts above the hardware level
/// are honoured up to `kMaxThreads` (useful for oversubscription tests).
void set_concurrency(std::size_t threads);

/// Fixed-size pool of persistent workers. Most callers should use the free
/// function `parallel_for` on the shared pool instead of instantiating one.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (the caller of `run` participates as
  /// one extra executor, so effective parallelism is `size() + 1`).
  std::size_t size() const;

  /// Execute `chunk_fn(0) .. chunk_fn(chunk_count - 1)`, each exactly once,
  /// across at most `max_threads` executors (including the caller). Blocks
  /// until every chunk finished. The first exception thrown by a chunk is
  /// rethrown on the caller after all chunks complete or drain. Calls from
  /// inside a pool worker run inline (serially) on that worker.
  ///
  /// The pool holds a single job slot: results stay correct if two
  /// application threads issue top-level regions concurrently (each caller
  /// always drains its own job's cursor), but the later region takes the
  /// workers and the earlier one degrades towards serial. Issue concurrent
  /// regions from one thread at a time — parallelism belongs inside a
  /// region, not across regions.
  void run(std::size_t chunk_count, std::size_t max_threads,
           const std::function<void(std::size_t)>& chunk_fn);

  /// The process-wide pool used by `parallel_for`. Created on first use
  /// with `concurrency() - 1` workers and grown on demand, never shrunk.
  static ThreadPool& shared();

  /// Grow the pool to at least `thread_count` workers (no-op if smaller).
  void ensure_size(std::size_t thread_count);

 private:
  struct Impl;
  Impl* impl_;
};

/// Deterministic chunked parallel loop over `[0, count)` on the shared
/// pool. `body(begin, end)` is invoked once per chunk of at most `grain`
/// consecutive indices; chunk boundaries depend only on `count` and
/// `grain`, never on `threads`, so per-chunk reductions are reproducible
/// across thread counts. `threads == 0` means `concurrency()`; `1` runs
/// serially without touching the pool (same chunk boundaries).
void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t threads = 0);

/// Deterministic chunked reduction over `[0, count)`: `chunk_fn(begin, end)`
/// produces one partial per chunk (chunk boundaries as in `parallel_for`),
/// and the partials are folded with `combine` in chunk order starting from
/// `init`. Because neither the chunking nor the combine order depends on the
/// thread count, the result is bit-identical at 1, 2 or N threads. This is
/// the one place the chunk-index bookkeeping lives; the reductions in the
/// math kernels and calibration plans all go through it.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t count, std::size_t grain, T init, const ChunkFn& chunk_fn,
                  const CombineFn& combine, std::size_t threads = 0) {
  if (count == 0) {
    return init;
  }
  std::vector<T> partial((count + grain - 1) / grain);
  parallel_for(
      count, grain,
      [&](std::size_t begin, std::size_t end) { partial[begin / grain] = chunk_fn(begin, end); },
      threads);
  T acc = init;
  for (const T& p : partial) {
    acc = combine(acc, p);
  }
  return acc;
}

/// Below this many elements the math kernels (SpMV, dot, axpy) stay on the
/// straight serial code path: small meshes must not pay scheduling
/// overhead. Chunked reductions switch on at the same size so the summation
/// order is a function of problem size only.
inline constexpr std::size_t kSerialCutoff = 16384;

/// Elements per chunk for the math kernels once they go parallel.
inline constexpr std::size_t kKernelGrain = 8192;

}  // namespace photherm::util
