#include "util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace photherm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PH_REQUIRE(!header_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<TableCell> row) {
  PH_REQUIRE(row.size() == header_.size(), "row width must match the header");
  rows_.push_back(std::move(row));
}

void Table::set_precision(int digits) {
  PH_REQUIRE(digits >= 1 && digits <= 17, "precision must be in [1, 17]");
  precision_ = digits;
}

std::string Table::format_cell(const TableCell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    return *text;
  }
  if (precision_ == kExactPrecision) {
    // Exact mode: shortest spelling that parses back to the identical
    // double, so CSV consumers (diff tools, golden comparisons, resumed
    // playbacks) can round-trip cells bit-for-bit.
    return format_shortest(std::get<double>(cell));
  }
  std::ostringstream os;
  // ph-lint: allow(serialization) caller opted into lossy display precision
  os << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    formatted.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& cells : formatted) {
    emit_row(cells);
  }
  return os.str();
}

namespace {
std::string csv_escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    return value;
  }
  std::string out = "\"";
  for (char ch : value) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "" : ",") << csv_escape(header_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(format_cell(row[c]));
    }
    os << "\n";
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  PH_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  out << to_csv();
  PH_REQUIRE(out.good(), "failed while writing CSV output file: " + path);
}

void print_table(std::ostream& os, const std::string& title, const Table& table) {
  os << "== " << title << " ==\n" << table.to_text() << "\n";
}

}  // namespace photherm
