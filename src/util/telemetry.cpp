#include "util/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

// Build provenance for the run manifest. CMake scopes real values onto this
// one translation unit (set_source_files_properties in the top-level
// CMakeLists.txt); the fallbacks keep standalone builds compiling.
#ifndef PHOTHERM_GIT_SHA
#define PHOTHERM_GIT_SHA "unknown"
#endif
#ifndef PHOTHERM_BUILD_TYPE
#ifdef NDEBUG
#define PHOTHERM_BUILD_TYPE "release"
#else
#define PHOTHERM_BUILD_TYPE "debug"
#endif
#endif
#ifndef PHOTHERM_SANITIZE_NAME
#define PHOTHERM_SANITIZE_NAME "none"
#endif

namespace photherm::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Fixed bucket count of the per-timer log2 histogram: bucket b holds
/// observations whose nanosecond value has bit width b (i.e. the interval
/// [2^(b-1), 2^b - 1]; bucket 0 holds exact zeros), clamped at the top so
/// 64-bit values always land somewhere. Bucket counts merge across threads
/// by summation, so the merged histogram — and every percentile derived
/// from it — is deterministic for a deterministic observation multiset.
constexpr std::size_t kTimerBuckets = 64;

std::size_t bucket_index(std::uint64_t elapsed_ns) {
  return std::min<std::size_t>(std::bit_width(elapsed_ns), kTimerBuckets - 1);
}

/// Inclusive upper bound of bucket `b` in nanoseconds: the value every
/// percentile reports, making the exported columns exact small integers.
double bucket_upper_bound(std::size_t b) {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
}

/// One metric's thread-local accumulation. Counters and timers keep their
/// totals in integers (no precision loss at any count); gauges accumulate
/// doubles. Merging across threads is summation / min / max throughout, so
/// the merged value is independent of the merge order up to the (timing-
/// dependent anyway) double sums of gauges.
struct MetricCell {
  char kind = 'c';  ///< 'c'ounter, 'g'auge, 't'imer
  std::uint64_t observations = 0;
  std::uint64_t total_int = 0;  ///< counter deltas / timer nanoseconds
  double total_real = 0.0;      ///< gauge sum
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// log2 histogram of timer observations; sized lazily on the first timer
  /// observation so counter/gauge cells stay small.
  std::vector<std::uint64_t> buckets;

  void observe_duration(std::uint64_t elapsed_ns) {
    if (buckets.empty()) {
      buckets.resize(kTimerBuckets, 0);
    }
    buckets[bucket_index(elapsed_ns)] += 1;
  }

  void merge(const MetricCell& other) {
    observations += other.observations;
    total_int += other.total_int;
    total_real += other.total_real;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    if (!other.buckets.empty()) {
      if (buckets.empty()) {
        buckets.resize(kTimerBuckets, 0);
      }
      for (std::size_t b = 0; b < kTimerBuckets; ++b) {
        buckets[b] += other.buckets[b];
      }
    }
  }

  /// Upper bound of the bucket holding the q-quantile observation
  /// (0 < q <= 1), by cumulative walk over the merged histogram.
  double percentile(double q) const {
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(q * static_cast<double>(observations))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      cumulative += buckets[b];
      if (cumulative >= rank) {
        return bucket_upper_bound(b);
      }
    }
    return bucket_upper_bound(kTimerBuckets - 1);
  }
};

struct TraceEvent {
  char ph = 'X';  ///< 'X' complete span, 'i' instant, 'C' counter sample
  std::string name;
  std::string detail;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;        ///< 'X' only
  std::uint32_t depth = 0;        ///< 'X' only
  double value = 0.0;             ///< 'C' only
  std::uint64_t index = 0;        ///< 'C' only (e.g. solver iteration)
};

/// Everything one thread records. The owning thread appends under its own
/// mutex — uncontended in steady state (the exporter only takes it at
/// export/reset time), so accumulation never crosses a cache line with
/// another recording thread.
struct ThreadState {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::string label;
  // std::map keeps per-thread metrics name-ordered from the start, so the
  // merged export order never depends on hash seeds or insertion order.
  std::map<std::string, MetricCell> metrics;
  std::vector<TraceEvent> events;
  std::uint32_t span_depth = 0;
};

struct Registry {
  std::mutex mutex;
  /// Registration order; states outlive their threads (shared_ptr also held
  /// thread-locally), so a pool destroyed mid-run loses no data.
  std::vector<std::shared_ptr<ThreadState>> states;
  /// Runtime manifest entries (set_manifest); merged over the build-time
  /// constants at export time. std::map keeps the export key-ordered.
  std::map<std::string, std::string> manifest;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: usable during exit
  return *instance;
}

ThreadState& thread_state() {
  thread_local std::shared_ptr<ThreadState> state = [] {
    auto s = std::make_shared<ThreadState>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    s->tid = static_cast<std::uint32_t>(reg.states.size() + 1);
    std::ostringstream label;
    label << "thread-" << s->tid;
    s->label = s->tid == 1 ? "main" : label.str();
    reg.states.push_back(s);
    return s;
  }();
  return *state;
}

/// The standard catalog (see telemetry.hpp). Kind letters as in MetricCell.
const std::vector<std::pair<std::string, std::string>>& catalog() {
  static const std::vector<std::pair<std::string, std::string>> entries = {
      {"batch.cache.hits", "counter"},
      {"batch.cache.misses", "counter"},
      {"batch.scenario.wall", "timer"},
      {"batch.scenarios", "counter"},
      {"checkpoint.pauses", "counter"},
      {"checkpoint.resumes", "counter"},
      {"playback.dt_growths", "counter"},
      {"playback.scenario.wall", "timer"},
      {"playback.scenarios", "counter"},
      {"playback.steps", "counter"},
      {"pool.queue_wait", "timer"},
      {"precond.chebyshev.applies", "counter"},
      {"precond.chebyshev.builds", "counter"},
      {"precond.identity.applies", "counter"},
      {"precond.identity.builds", "counter"},
      {"precond.ilu0.applies", "counter"},
      {"precond.ilu0.builds", "counter"},
      {"precond.jacobi.applies", "counter"},
      {"precond.jacobi.builds", "counter"},
      {"precond.ssor.applies", "counter"},
      {"precond.ssor.builds", "counter"},
      {"solver.bicgstab.iterations", "counter"},
      {"solver.bicgstab.relative_residual", "gauge"},
      {"solver.bicgstab.solves", "counter"},
      {"solver.conjugate_gradient.iterations", "counter"},
      {"solver.conjugate_gradient.relative_residual", "gauge"},
      {"solver.conjugate_gradient.solves", "counter"},
      {"solver.gauss_seidel.iterations", "counter"},
      {"solver.gauss_seidel.relative_residual", "gauge"},
      {"solver.gauss_seidel.solves", "counter"},
      {"spmv.csr", "counter"},
      {"spmv.stencil", "counter"},
      {"transient.preconditioner_builds", "counter"},
      {"transient.reassemblies", "counter"},
      {"transient.steps", "counter"},
  };
  return entries;
}

char kind_letter(const std::string& kind_name) {
  return kind_name == "timer" ? 't' : kind_name == "gauge" ? 'g' : 'c';
}

const char* kind_name(char kind) {
  switch (kind) {
    case 'g':
      return "gauge";
    case 't':
      return "timer";
    default:
      return "counter";
  }
}

/// Seed the catalog into the calling thread's state so every standard
/// metric exports a row even at zero.
void seed_catalog() {
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& [name, kind] : catalog()) {
    state.metrics[name].kind = kind_letter(kind);
  }
}

MetricCell& cell(ThreadState& state, const std::string& name, char kind) {
  MetricCell& c = state.metrics[name];
  c.kind = kind;
  return c;
}

/// JSON string escaping (RFC 8259): quotes, backslashes and control
/// characters; everything else passes through byte-for-byte.
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (unsigned char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (ch < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[ch >> 4] << hex[ch & 0xf];
        } else {
          os << static_cast<char>(ch);
        }
    }
  }
  return os.str();
}

/// Compiler identity for the build-time manifest entries, from predefined
/// macros so it always matches the binary doing the recording.
const char* compiler_id() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// Build-time manifest constants; runtime entries from set_manifest overlay
/// these at export time.
const std::map<std::string, std::string>& builtin_manifest() {
  static const std::map<std::string, std::string> entries = {
      {"build_type", PHOTHERM_BUILD_TYPE},
      {"compiler", compiler_id()},
      {"git_sha", PHOTHERM_GIT_SHA},
      {"sanitizer", PHOTHERM_SANITIZE_NAME},
  };
  return entries;
}

/// Trace timestamps are Chrome-format microseconds; format_shortest keeps
/// them exact (integer nanoseconds / 1000 is exact in double far beyond any
/// session length) without the lint-banned setprecision machinery.
std::string format_us(std::int64_t ns) { return format_shortest(static_cast<double>(ns) / 1e3); }

void write_text_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path);
  PH_REQUIRE(out.good(), "cannot open telemetry output file: " + path);
  out << payload;
  out.flush();
  PH_REQUIRE(out.good(), "failed while writing telemetry output file: " + path);
}

}  // namespace

namespace detail {

std::int64_t now_ns() {
  // The single clock read in src/ (photherm_lint determinism allowlist):
  // monotonic, process-local epoch, used for trace/metric timing only —
  // never fed back into numerical state.
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch)
      .count();
}

void count_slow(const std::string& name, std::uint64_t delta) {
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricCell& c = cell(state, name, 'c');
  c.observations += 1;
  c.total_int += delta;
}

void gauge_slow(const std::string& name, double value) {
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricCell& c = cell(state, name, 'g');
  c.observations += 1;
  c.total_real += value;
  c.min = std::min(c.min, value);
  c.max = std::max(c.max, value);
}

void timer_slow(const std::string& name, std::uint64_t elapsed_ns) {
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricCell& c = cell(state, name, 't');
  c.observations += 1;
  c.total_int += elapsed_ns;
  c.min = std::min(c.min, static_cast<double>(elapsed_ns));
  c.max = std::max(c.max, static_cast<double>(elapsed_ns));
  c.observe_duration(elapsed_ns);
}

void instant_slow(const std::string& name) {
  const std::int64_t now = now_ns();
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricCell& c = cell(state, name, 'c');
  c.observations += 1;
  c.total_int += 1;
  TraceEvent event;
  event.ph = 'i';
  event.name = name;
  event.ts_ns = now;
  event.depth = state.span_depth;
  state.events.push_back(std::move(event));
}

void counter_slow(const char* name, double value, std::uint64_t index) {
  const std::int64_t now = now_ns();
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  TraceEvent event;
  event.ph = 'C';
  event.name = name;
  event.ts_ns = now;
  event.value = value;
  event.index = index;
  state.events.push_back(std::move(event));
}

}  // namespace detail

void set_enabled(bool on) {
  if (on) {
    seed_catalog();
  }
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  // Registering this thread first keeps the lock order one-way: the
  // registry lock below is never held while thread_state() wants it.
  thread_state();
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto& state : reg.states) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->metrics.clear();
      state->events.clear();
      state->span_depth = 0;
    }
    reg.manifest.clear();
  }
  if (enabled()) {
    // Keep the stable CSV shape for the next measurement window.
    seed_catalog();
  }
}

void set_thread_label(const std::string& label) {
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.label = label;
}

void set_manifest(const std::string& key, const std::string& value) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.manifest[key] = value;
}

std::vector<std::pair<std::string, std::string>> manifest() {
  std::map<std::string, std::string> merged = builtin_manifest();
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& [key, value] : reg.manifest) {
      merged[key] = value;
    }
  }
  return {merged.begin(), merged.end()};
}

void Span::begin(const char* name, std::string detail_text) {
  name_ = name;
  detail_ = std::move(detail_text);
  ThreadState& state = thread_state();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.span_depth += 1;
  }
  // The clock read comes last so the span's own bookkeeping is outside the
  // measured interval.
  start_ns_ = detail::now_ns();
}

void Span::end() {
  const std::int64_t end_ns = detail::now_ns();
  ThreadState& state = thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.span_depth = state.span_depth > 0 ? state.span_depth - 1 : 0;
  TraceEvent event;
  event.name = name_;
  event.detail = std::move(detail_);
  event.ts_ns = start_ns_;
  event.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  event.depth = state.span_depth;
  state.events.push_back(std::move(event));
}

const std::vector<std::pair<std::string, std::string>>& metric_catalog() { return catalog(); }

Table metrics_table() {
  // Merge thread blocks in registration order into a name-ordered map; the
  // row order of the exported CSV is the lexicographic metric name order,
  // independent of which threads recorded what when.
  std::map<std::string, MetricCell> merged;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto& state : reg.states) {
      std::lock_guard<std::mutex> lock(state->mutex);
      for (const auto& [name, c] : state->metrics) {
        auto [it, fresh] = merged.try_emplace(name, c);
        if (!fresh) {
          it->second.merge(c);
        }
      }
    }
  }

  Table table({"metric", "kind", "count", "total", "min", "max", "p50", "p90", "p99"});
  table.set_exact();
  for (const auto& [name, c] : merged) {
    std::vector<TableCell> row{name, std::string(kind_name(c.kind)),
                               static_cast<double>(c.observations)};
    row.emplace_back(c.kind == 'g' ? c.total_real : static_cast<double>(c.total_int));
    if (c.observations > 0 && c.kind != 'c') {
      row.emplace_back(c.min);
      row.emplace_back(c.max);
    } else {
      row.emplace_back(std::string());
      row.emplace_back(std::string());
    }
    if (c.kind == 't' && c.observations > 0 && !c.buckets.empty()) {
      row.emplace_back(c.percentile(0.50));
      row.emplace_back(c.percentile(0.90));
      row.emplace_back(c.percentile(0.99));
    } else {
      row.emplace_back(std::string());
      row.emplace_back(std::string());
      row.emplace_back(std::string());
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string metrics_csv() {
  std::ostringstream os;
  os << "# photherm-manifest v1\n";
  for (const auto& [key, value] : manifest()) {
    os << "# " << key << "=" << value << "\n";
  }
  os << metrics_table().to_csv();
  return os.str();
}

std::string trace_json() {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"manifest\":{";
  {
    bool first_entry = true;
    for (const auto& [key, value] : manifest()) {
      os << (first_entry ? "" : ",") << "\"" << json_escape(key) << "\":\"" << json_escape(value)
         << "\"";
      first_entry = false;
    }
  }
  os << "},\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    os << (first ? "\n " : ",\n ") << event_json;
    first = false;
  };
  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":1,"
       "\"args\":{\"name\":\"photherm\"}}");

  Registry& reg = registry();
  std::lock_guard<std::mutex> reg_lock(reg.mutex);
  for (const auto& state : reg.states) {
    std::lock_guard<std::mutex> lock(state->mutex);
    {
      std::ostringstream event;
      event << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << state->tid
            << ",\"args\":{\"name\":\"" << json_escape(state->label) << "\"}}";
      emit(event.str());
    }
    for (const TraceEvent& e : state->events) {
      std::ostringstream event;
      if (e.ph == 'i') {
        event << "{\"ph\":\"i\",\"name\":\"" << json_escape(e.name) << "\",\"pid\":1,\"tid\":"
              << state->tid << ",\"ts\":" << format_us(e.ts_ns) << ",\"s\":\"t\"}";
      } else if (e.ph == 'C') {
        event << "{\"ph\":\"C\",\"name\":\"" << json_escape(e.name) << "\",\"pid\":1,\"tid\":"
              << state->tid << ",\"ts\":" << format_us(e.ts_ns)
              << ",\"args\":{\"value\":" << format_shortest(e.value)
              << ",\"iteration\":" << e.index << "}}";
      } else {
        event << "{\"ph\":\"X\",\"name\":\"" << json_escape(e.name) << "\",\"pid\":1,\"tid\":"
              << state->tid << ",\"ts\":" << format_us(e.ts_ns)
              << ",\"dur\":" << format_us(e.dur_ns) << ",\"args\":{\"depth\":" << e.depth;
        if (!e.detail.empty()) {
          event << ",\"detail\":\"" << json_escape(e.detail) << "\"";
        }
        event << "}}";
      }
      emit(event.str());
    }
  }
  os << "\n]}\n";
  return os.str();
}

void write_metrics_csv(const std::string& path) { write_text_file(path, metrics_csv()); }

void write_trace_json(const std::string& path) { write_text_file(path, trace_json()); }

}  // namespace photherm::telemetry
