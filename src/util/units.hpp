/// \file units.hpp
/// \brief Unit helpers. The library uses SI internally: metres, watts,
/// kelvin (temperatures are stored in degrees Celsius where noted),
/// amperes, seconds. These helpers make literals in examples and tests
/// readable: `15.0 * units::um`, `3.6 * units::mW`.
#pragma once

namespace photherm::units {

// Length (metres).
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Power (watts).
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;

// Current (amperes).
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;

// Time (seconds).
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;

}  // namespace photherm::units

namespace photherm {

/// Physical constants used by the photonic device models.
namespace constants {
/// Planck constant [J*s].
inline constexpr double kPlanck = 6.62607015e-34;
/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 2.99792458e8;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
}  // namespace constants

/// Photon energy [J] at vacuum wavelength `lambda_m` [m].
inline constexpr double photon_energy(double lambda_m) {
  return constants::kPlanck * constants::kSpeedOfLight / lambda_m;
}

/// Convert a power in watts to dBm. `p_watt` must be > 0.
double watt_to_dbm(double p_watt);

/// Convert a power in dBm to watts.
double dbm_to_watt(double p_dbm);

/// Convert a loss expressed in dB (positive = attenuation) to a linear
/// transmission factor in (0, 1].
double db_to_linear(double loss_db);

/// Convert a linear transmission factor in (0, 1] to a loss in dB.
double linear_to_db(double transmission);

/// Power ratio in dB: 10*log10(num/den).
double ratio_db(double num, double den);

}  // namespace photherm
