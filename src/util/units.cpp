#include "util/units.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm {

double watt_to_dbm(double p_watt) {
  PH_REQUIRE(p_watt > 0.0, "watt_to_dbm requires a strictly positive power");
  return 10.0 * std::log10(p_watt / 1e-3);
}

double dbm_to_watt(double p_dbm) { return 1e-3 * std::pow(10.0, p_dbm / 10.0); }

double db_to_linear(double loss_db) { return std::pow(10.0, -loss_db / 10.0); }

double linear_to_db(double transmission) {
  PH_REQUIRE(transmission > 0.0, "linear_to_db requires transmission > 0");
  return -10.0 * std::log10(transmission);
}

double ratio_db(double num, double den) {
  PH_REQUIRE(num > 0.0 && den > 0.0, "ratio_db requires positive powers");
  return 10.0 * std::log10(num / den);
}

}  // namespace photherm
