#include "util/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace photherm {

std::size_t find_segment(const std::vector<double>& knots, double x) {
  PH_REQUIRE(knots.size() >= 2, "find_segment requires at least two knots");
  if (x <= knots.front()) {
    return 0;
  }
  if (x >= knots[knots.size() - 2]) {
    return knots.size() - 2;
  }
  const auto it = std::upper_bound(knots.begin(), knots.end(), x);
  return static_cast<std::size_t>(std::distance(knots.begin(), it)) - 1;
}

namespace {
void check_strictly_increasing(const std::vector<double>& xs, const char* what) {
  for (std::size_t i = 1; i < xs.size(); ++i) {
    PH_REQUIRE(xs[i] > xs[i - 1], std::string(what) + " must be strictly increasing");
  }
}
}  // namespace

LinearInterp1D::LinearInterp1D(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  PH_REQUIRE(xs_.size() == ys_.size(), "interpolation vectors must have equal size");
  PH_REQUIRE(xs_.size() >= 2, "interpolation needs at least two samples");
  check_strictly_increasing(xs_, "interpolation abscissae");
}

double LinearInterp1D::operator()(double x) const {
  PH_REQUIRE(!xs_.empty(), "querying an empty interpolant");
  if (x <= xs_.front()) {
    return ys_.front();
  }
  if (x >= xs_.back()) {
    return ys_.back();
  }
  const std::size_t i = find_segment(xs_, x);
  const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
  return ys_[i] + t * (ys_[i + 1] - ys_[i]);
}

double LinearInterp1D::derivative(double x) const {
  PH_REQUIRE(!xs_.empty(), "querying an empty interpolant");
  const std::size_t i = find_segment(xs_, x);
  return (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
}

double LinearInterp1D::x_min() const {
  PH_REQUIRE(!xs_.empty(), "querying an empty interpolant");
  return xs_.front();
}

double LinearInterp1D::x_max() const {
  PH_REQUIRE(!xs_.empty(), "querying an empty interpolant");
  return xs_.back();
}

BilinearInterp2D::BilinearInterp2D(std::vector<double> xs, std::vector<double> ys,
                                   std::vector<std::vector<double>> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  PH_REQUIRE(xs_.size() >= 2 && ys_.size() >= 2, "bilinear grid needs at least 2x2 samples");
  check_strictly_increasing(xs_, "bilinear x grid");
  check_strictly_increasing(ys_, "bilinear y grid");
  PH_REQUIRE(values_.size() == xs_.size(), "bilinear values: row count must match xs");
  for (const auto& row : values_) {
    PH_REQUIRE(row.size() == ys_.size(), "bilinear values: column count must match ys");
  }
}

double BilinearInterp2D::operator()(double x, double y) const {
  PH_REQUIRE(!xs_.empty(), "querying an empty interpolant");
  const double cx = std::clamp(x, xs_.front(), xs_.back());
  const double cy = std::clamp(y, ys_.front(), ys_.back());
  const std::size_t i = find_segment(xs_, cx);
  const std::size_t j = find_segment(ys_, cy);
  const double tx = (cx - xs_[i]) / (xs_[i + 1] - xs_[i]);
  const double ty = (cy - ys_[j]) / (ys_[j + 1] - ys_[j]);
  const double v00 = values_[i][j];
  const double v10 = values_[i + 1][j];
  const double v01 = values_[i][j + 1];
  const double v11 = values_[i + 1][j + 1];
  return (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 + (1 - tx) * ty * v01 + tx * ty * v11;
}

}  // namespace photherm
