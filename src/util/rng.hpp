/// \file rng.hpp
/// \brief Deterministic random number generation for activity scenarios.
/// All stochastic inputs (random chip activity, property-test sampling)
/// derive from an explicit seed so every figure is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace photherm {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace photherm
