/// \file csv.hpp
/// \brief Tabular output used by the benchmark harness: every figure/table
/// reproduction prints an aligned text table (for the console) and can dump
/// the same rows as CSV (for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace photherm {

/// A cell is either text or a number (formatted with configurable precision).
using TableCell = std::variant<std::string, double>;

/// Accumulates rows and renders them either as an aligned console table or
/// as CSV. Column count is fixed by the header.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<TableCell> row);

  /// Number of data rows.
  std::size_t row_count() const { return rows_.size(); }

  /// Number of columns.
  std::size_t column_count() const { return header_.size(); }

  /// Numeric cells formatted at kExactPrecision use util::format_shortest —
  /// the shortest decimal spelling that parses back to the identical double —
  /// so persisted CSVs round-trip bit-for-bit. Every other precision is a
  /// lossy display mode.
  static constexpr int kExactPrecision = 17;

  /// Set the number of significant digits used for numeric cells (default 4).
  /// kExactPrecision (17) selects exact shortest-round-trip formatting.
  void set_precision(int digits);

  /// Exact mode: numeric cells round-trip bit-for-bit (see kExactPrecision).
  void set_exact() { set_precision(kExactPrecision); }

  /// Render as an aligned, human-readable table.
  std::string to_text() const;

  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  std::string to_csv() const;

  /// Write CSV to `path`, throwing photherm::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::string format_cell(const TableCell& cell) const;

  std::vector<std::string> header_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 4;
};

/// Convenience: print `table.to_text()` with a title banner to `os`.
void print_table(std::ostream& os, const std::string& title, const Table& table);

}  // namespace photherm
