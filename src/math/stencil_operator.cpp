#include "math/stencil_operator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace photherm::math {

StencilOperator7::StencilOperator7(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), n_(nx * ny * nz) {
  PH_REQUIRE(nx > 0 && ny > 0 && nz > 0, "stencil grid dimensions must be positive");
  diag_.assign(n_, 0.0);
  west_.assign(n_, 0.0);
  east_.assign(n_, 0.0);
  south_.assign(n_, 0.0);
  north_.assign(n_, 0.0);
  down_.assign(n_, 0.0);
  up_.assign(n_, 0.0);
}

void StencilOperator7::apply(const Vector& x, Vector& y, std::size_t threads) const {
  PH_REQUIRE(x.size() == n_, "stencil apply: x size mismatch");
  telemetry::count("spmv.stencil");
  y.resize(n_);
  const std::size_t sy = nx_;
  const std::size_t sz = nx_ * ny_;

  // Guarded row: substitutes 0.0 for out-of-range neighbours. A boundary
  // cell's coefficient toward a missing neighbour is zero, so for rows
  // whose neighbour index merely wraps (e.g. west at ix == 0 reading the
  // previous y-row) the unguarded product is coefficient * finite = +-0.0
  // and the sum is bit-identical to the guarded one; the guards only exist
  // to keep the first/last sz rows from indexing outside x.
  auto guarded_row = [&](std::size_t i) {
    double acc = down_[i] * (i >= sz ? x[i - sz] : 0.0);
    acc += south_[i] * (i >= sy ? x[i - sy] : 0.0);
    acc += west_[i] * (i >= 1 ? x[i - 1] : 0.0);
    acc += diag_[i] * x[i];
    acc += east_[i] * (i + 1 < n_ ? x[i + 1] : 0.0);
    acc += north_[i] * (i + sy < n_ ? x[i + sy] : 0.0);
    acc += up_[i] * (i + sz < n_ ? x[i + sz] : 0.0);
    return acc;
  };
  const std::size_t interior_end = n_ > sz ? n_ - sz : 0;
  auto rows_kernel = [&](std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    for (; i < end && i < sz; ++i) {
      y[i] = guarded_row(i);
    }
    // Branch-free interior: every neighbour index is in bounds, and the
    // accumulation order matches guarded_row exactly.
    for (; i < end && i < interior_end; ++i) {
      double acc = down_[i] * x[i - sz];
      acc += south_[i] * x[i - sy];
      acc += west_[i] * x[i - 1];
      acc += diag_[i] * x[i];
      acc += east_[i] * x[i + 1];
      acc += north_[i] * x[i + sy];
      acc += up_[i] * x[i + sz];
      y[i] = acc;
    }
    for (; i < end; ++i) {
      y[i] = guarded_row(i);
    }
  };
  if (n_ < util::kSerialCutoff) {
    rows_kernel(0, n_);
    return;
  }
  util::parallel_for(n_, util::kKernelGrain, rows_kernel, threads);
}

std::unique_ptr<LinearOperator> StencilOperator7::clone() const {
  return std::make_unique<StencilOperator7>(*this);
}

double StencilOperator7::scaled_row_sum_bound(const Vector& scale) const {
  PH_REQUIRE(scale.size() == n_, "scaled_row_sum_bound: scale size mismatch");
  double bound = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double sum = std::abs(down_[i]) + std::abs(south_[i]) + std::abs(west_[i]) +
                       std::abs(diag_[i]) + std::abs(east_[i]) + std::abs(north_[i]) +
                       std::abs(up_[i]);
    bound = std::max(bound, scale[i] * sum);
  }
  return bound;
}

void StencilOperator7::add_to_diagonal(const Vector& delta) {
  PH_REQUIRE(delta.size() == n_, "add_to_diagonal: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    diag_[i] += delta[i];
  }
}

CsrMatrix StencilOperator7::to_csr() const {
  const std::size_t sy = nx_;
  const std::size_t sz = nx_ * ny_;
  CsrBuilder builder(n_, n_);
  builder.reserve(7 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (down_[i] != 0.0) {
      builder.add(i, i - sz, down_[i]);
    }
    if (south_[i] != 0.0) {
      builder.add(i, i - sy, south_[i]);
    }
    if (west_[i] != 0.0) {
      builder.add(i, i - 1, west_[i]);
    }
    builder.add(i, i, diag_[i]);
    if (east_[i] != 0.0) {
      builder.add(i, i + 1, east_[i]);
    }
    if (north_[i] != 0.0) {
      builder.add(i, i + sy, north_[i]);
    }
    if (up_[i] != 0.0) {
      builder.add(i, i + sz, up_[i]);
    }
  }
  return builder.build();
}

StencilOperator7 StencilOperator7::from_csr(const CsrMatrix& a, std::size_t nx, std::size_t ny,
                                            std::size_t nz) {
  StencilOperator7 op(nx, ny, nz);
  PH_REQUIRE(a.rows() == op.rows() && a.cols() == op.cols(),
             "from_csr: matrix does not match the nx*ny*nz grid");
  const std::size_t sy = nx;
  const std::size_t sz = nx * ny;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (std::size_t i = 0; i < op.n_; ++i) {
    const std::size_t ix = i % nx;
    const std::size_t iy = (i / nx) % ny;
    const std::size_t iz = i / sz;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      const double v = values[k];
      if (j == i) {
        op.diag_[i] = v;
      } else if (j + 1 == i && ix > 0) {
        op.west_[i] = v;
      } else if (j == i + 1 && ix + 1 < nx) {
        op.east_[i] = v;
      } else if (j + sy == i && iy > 0) {
        op.south_[i] = v;
      } else if (j == i + sy && iy + 1 < ny) {
        op.north_[i] = v;
      } else if (j + sz == i && iz > 0) {
        op.down_[i] = v;
      } else if (j == i + sz && iz + 1 < nz) {
        op.up_[i] = v;
      } else {
        std::ostringstream os;
        os << "from_csr: entry (" << i << ", " << j
           << ") falls outside the 7-point stencil pattern";
        throw Error(os.str());
      }
    }
  }
  return op;
}

}  // namespace photherm::math
