#include "math/preconditioner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace photherm::math {

namespace {

/// Inverted diagonal with the actionable guard the Krylov stack relies on:
/// a zero diagonal would divide to inf and a negative one silently breaks
/// the SPD preconditioners, and either surfaces much later as a cryptic CG
/// non-convergence. Fail at construction, naming the row.
Vector checked_inverse_diagonal(const LinearOperator& a, const char* who) {
  Vector inv_diag = a.diagonal();
  for (std::size_t i = 0; i < inv_diag.size(); ++i) {
    if (!(inv_diag[i] > 0.0)) {
      std::ostringstream os;
      os << who << ": non-positive diagonal entry " << inv_diag[i] << " at row " << i
         << " (the operator must be SPD; check the assembly feeding this solve)";
      throw Error(os.str());
    }
    inv_diag[i] = 1.0 / inv_diag[i];
  }
  return inv_diag;
}

/// Elementwise z[i] = r[i] * d[i], threaded chunk-ordered like the vector
/// kernels (serial below kSerialCutoff): a serial diagonal scale inside an
/// otherwise-threaded CG iteration would be the one unthreaded stage.
void scaled_copy(const Vector& r, const Vector& d, Vector& z, std::size_t threads) {
  z.resize(r.size());
  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      z[i] = r[i] * d[i];
    }
  };
  if (r.size() < util::kSerialCutoff) {
    body(0, r.size());
    return;
  }
  util::parallel_for(r.size(), util::kKernelGrain, body, threads);
}

}  // namespace

void IdentityPreconditioner::apply(const Vector& r, Vector& z, std::size_t) const {
  telemetry::count("precond.identity.applies");
  z = r;
}

JacobiPreconditioner::JacobiPreconditioner(const LinearOperator& a)
    : inv_diag_(checked_inverse_diagonal(a, "Jacobi preconditioner")) {}

void JacobiPreconditioner::apply(const Vector& r, Vector& z, std::size_t threads) const {
  PH_REQUIRE(r.size() == inv_diag_.size(), "Jacobi apply: size mismatch");
  telemetry::count("precond.jacobi.applies");
  scaled_copy(r, inv_diag_, z, threads);
}

SsorPreconditioner::SsorPreconditioner(const CsrMatrix& a, double omega)
    : row_ptr_(a.row_ptr()), col_idx_(a.col_idx()), values_(a.values()), omega_(omega) {
  PH_REQUIRE(omega > 0.0 && omega < 2.0, "SSOR omega must be in (0, 2)");
  diag_ = a.diagonal();
  for (std::size_t i = 0; i < diag_.size(); ++i) {
    if (!(diag_[i] > 0.0)) {
      std::ostringstream os;
      os << "SSOR preconditioner: non-positive diagonal entry " << diag_[i] << " at row " << i;
      throw Error(os.str());
    }
  }
}

void SsorPreconditioner::apply(const Vector& r, Vector& z, std::size_t) const {
  const std::size_t n = diag_.size();
  PH_REQUIRE(r.size() == n, "SSOR apply: size mismatch");
  telemetry::count("precond.ssor.applies");

  // Forward sweep: (D/w + L) y = r
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j < i) {
        acc -= values_[k] * y[j];
      }
    }
    y[i] = acc * omega_ / diag_[i];
  }
  // Scale: y = D/w * y * (2-w)/w  -> combined below with backward sweep.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] *= diag_[i] * (2.0 - omega_) / omega_;
  }
  // Backward sweep: (D/w + U) z = y
  z.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = row_ptr_[ii]; k < row_ptr_[ii + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j > ii) {
        acc -= values_[k] * z[j];
      }
    }
    z[ii] = acc * omega_ / diag_[ii];
  }
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a)
    : row_ptr_(a.row_ptr()), col_idx_(a.col_idx()), values_(a.values()), n_(a.rows()) {
  PH_REQUIRE(a.rows() == a.cols(), "ILU(0) requires a square matrix");
  diag_pos_.assign(n_, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] == i) {
        diag_pos_[i] = k;
      }
    }
    PH_REQUIRE(diag_pos_[i] != static_cast<std::size_t>(-1),
               "ILU(0) requires a stored diagonal in every row");
    if (!(values_[diag_pos_[i]] > 0.0)) {
      std::ostringstream os;
      os << "ILU(0) preconditioner: non-positive diagonal entry " << values_[diag_pos_[i]]
         << " at row " << i << " (the operator must be SPD; check the assembly feeding "
         << "this solve)";
      throw Error(os.str());
    }
  }

  // IKJ-variant ILU(0) factorisation restricted to the pattern of A.
  std::vector<double> work_val(n_, 0.0);
  std::vector<std::int8_t> work_set(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      work_val[col_idx_[k]] = values_[k];
      work_set[col_idx_[k]] = 1;
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) {
        break;  // columns are sorted; only strictly-lower entries eliminate
      }
      const double pivot = values_[diag_pos_[j]];
      const double lij = work_val[j] / pivot;
      work_val[j] = lij;
      for (std::size_t kk = diag_pos_[j] + 1; kk < row_ptr_[j + 1]; ++kk) {
        const std::size_t c = col_idx_[kk];
        if (work_set[c]) {
          work_val[c] -= lij * values_[kk];
        }
      }
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      values_[k] = work_val[col_idx_[k]];
      work_val[col_idx_[k]] = 0.0;
      work_set[col_idx_[k]] = 0;
    }
    if (!(std::abs(values_[diag_pos_[i]]) > 0.0)) {
      std::ostringstream os;
      os << "ILU(0) produced a zero pivot at row " << i;
      throw Error(os.str());
    }
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z, std::size_t) const {
  PH_REQUIRE(r.size() == n_, "ILU(0) apply: size mismatch");
  telemetry::count("precond.ilu0.applies");
  // Solve L y = r (unit lower triangular).
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = r[i];
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      acc -= values_[k] * y[col_idx_[k]];
    }
    y[i] = acc;
  }
  // Solve U z = y.
  z.resize(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = diag_pos_[ii] + 1; k < row_ptr_[ii + 1]; ++k) {
      acc -= values_[k] * z[col_idx_[k]];
    }
    z[ii] = acc / values_[diag_pos_[ii]];
  }
}

ChebyshevPreconditioner::ChebyshevPreconditioner(const LinearOperator& a,
                                                 const ChebyshevSettings& settings)
    : a_(a.clone()),
      inv_diag_(checked_inverse_diagonal(a, "Chebyshev preconditioner")),
      degree_(settings.degree) {
  PH_REQUIRE(settings.degree >= 1, "Chebyshev degree must be at least 1");
  PH_REQUIRE(settings.eig_ratio > 1.0, "Chebyshev eig_ratio must exceed 1");
  lambda_max_ = a.scaled_row_sum_bound(inv_diag_);
  PH_REQUIRE(lambda_max_ > 0.0 && std::isfinite(lambda_max_),
             "Chebyshev preconditioner: operator has no finite positive spectrum bound");
  // Jacobi scaling pins every diagonal of D^{-1} A at 1, so the Gershgorin
  // discs give a lower spectrum bound for free: min_i (1 - sum|offdiag|/d_i)
  // = 2 - lambda_max. For the bare conduction operator this is ~0 (useless,
  // fall back to lambda_max / eig_ratio), but for the diagonally shifted
  // transient stepping operator A + C/dt it is tight — the interval then
  // hugs the actual spectrum instead of chasing modes that do not exist,
  // which is what makes the cached preconditioner cheap per warm step.
  // Keep a sliver of interval so it never collapses (a diagonal operator
  // has lambda_max == 1 and the two bounds would otherwise meet).
  lambda_min_ = std::max(lambda_max_ / settings.eig_ratio, 2.0 - lambda_max_);
  lambda_min_ = std::min(lambda_min_, 0.95 * lambda_max_);
}

void ChebyshevPreconditioner::apply(const Vector& r, Vector& z, std::size_t threads) const {
  const std::size_t n = inv_diag_.size();
  PH_REQUIRE(r.size() == n, "Chebyshev apply: size mismatch");
  telemetry::count("precond.chebyshev.applies");

  // Chebyshev iteration on (D^{-1} A) z = D^{-1} r with zero initial
  // guess (Saad, Iterative Methods, Alg. 12.1), tracking the unscaled
  // residual res = r - A z so each step costs exactly one SpMV.
  const double theta = 0.5 * (lambda_max_ + lambda_min_);
  const double delta = 0.5 * (lambda_max_ - lambda_min_);
  const double sigma = theta / delta;

  // First step: z = d = D^{-1} r / theta.
  Vector d(n);
  auto first = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      d[i] = inv_diag_[i] * r[i] / theta;
    }
  };
  if (n < util::kSerialCutoff) {
    first(0, n);
  } else {
    util::parallel_for(n, util::kKernelGrain, first, threads);
  }
  z = d;
  if (degree_ == 1) {
    return;
  }

  Vector res = r;
  Vector ad(n);
  double rho = 1.0 / sigma;
  for (std::size_t k = 1; k < degree_; ++k) {
    // res -= A d (z just moved by d).
    a_->apply(d, ad, threads);
    axpy(-1.0, ad, res, threads);
    const double rho_next = 1.0 / (2.0 * sigma - rho);
    const double c_d = rho_next * rho;
    const double c_res = 2.0 * rho_next / delta;
    auto update = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        d[i] = c_d * d[i] + c_res * inv_diag_[i] * res[i];
        z[i] += d[i];
      }
    };
    if (n < util::kSerialCutoff) {
      update(0, n);
    } else {
      util::parallel_for(n, util::kKernelGrain, update, threads);
    }
    rho = rho_next;
  }
}

const char* to_string(PreconditionerKind kind) {
  switch (kind) {
    case PreconditionerKind::kIdentity:
      return "identity";
    case PreconditionerKind::kJacobi:
      return "jacobi";
    case PreconditionerKind::kSsor:
      return "ssor";
    case PreconditionerKind::kIlu0:
      return "ilu0";
    case PreconditionerKind::kChebyshev:
      return "chebyshev";
  }
  return "unknown";
}

PreconditionerKind preconditioner_kind_from_string(const std::string& name) {
  for (PreconditionerKind kind :
       {PreconditionerKind::kIdentity, PreconditionerKind::kJacobi, PreconditionerKind::kSsor,
        PreconditionerKind::kIlu0, PreconditionerKind::kChebyshev}) {
    if (name == to_string(kind)) {
      return kind;
    }
  }
  throw Error("unknown preconditioner `" + name +
              "` (expected identity, jacobi, ssor, ilu0 or chebyshev)");
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const LinearOperator& a,
                                                    const ChebyshevSettings& chebyshev) {
  telemetry::Span span("precond.build", to_string(kind));
  if (telemetry::enabled()) {
    telemetry::count(std::string("precond.") + to_string(kind) + ".builds");
  }
  switch (kind) {
    case PreconditionerKind::kIdentity:
      return std::make_unique<IdentityPreconditioner>();
    case PreconditionerKind::kJacobi:
      return std::make_unique<JacobiPreconditioner>(a);
    case PreconditionerKind::kChebyshev:
      return std::make_unique<ChebyshevPreconditioner>(a, chebyshev);
    case PreconditionerKind::kSsor:
    case PreconditionerKind::kIlu0: {
      const auto* csr = dynamic_cast<const CsrMatrix*>(&a);
      if (csr == nullptr) {
        throw Error(std::string(to_string(kind)) +
                    " preconditioning needs explicit CSR sparsity; the matrix-free stencil "
                    "path supports identity, jacobi and chebyshev");
      }
      if (kind == PreconditionerKind::kSsor) {
        return std::make_unique<SsorPreconditioner>(*csr);
      }
      return std::make_unique<Ilu0Preconditioner>(*csr);
    }
  }
  throw Error("unknown preconditioner kind");
}

}  // namespace photherm::math
