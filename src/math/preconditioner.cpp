#include "math/preconditioner.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::math {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) : inv_diag_(a.diagonal()) {
  for (double& d : inv_diag_) {
    PH_REQUIRE(d != 0.0, "Jacobi preconditioner: zero diagonal entry");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const Vector& r, Vector& z) const {
  PH_REQUIRE(r.size() == inv_diag_.size(), "Jacobi apply: size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    z[i] = r[i] * inv_diag_[i];
  }
}

SsorPreconditioner::SsorPreconditioner(const CsrMatrix& a, double omega)
    : a_(&a), omega_(omega), diag_(a.diagonal()) {
  PH_REQUIRE(omega > 0.0 && omega < 2.0, "SSOR omega must be in (0, 2)");
  for (double d : diag_) {
    PH_REQUIRE(d != 0.0, "SSOR preconditioner: zero diagonal entry");
  }
}

void SsorPreconditioner::apply(const Vector& r, Vector& z) const {
  const std::size_t n = a_->rows();
  PH_REQUIRE(r.size() == n, "SSOR apply: size mismatch");
  const auto& row_ptr = a_->row_ptr();
  const auto& col_idx = a_->col_idx();
  const auto& values = a_->values();

  // Forward sweep: (D/w + L) y = r
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j < i) {
        acc -= values[k] * y[j];
      }
    }
    y[i] = acc * omega_ / diag_[i];
  }
  // Scale: y = D/w * y * (2-w)/w  -> combined below with backward sweep.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] *= diag_[i] * (2.0 - omega_) / omega_;
  }
  // Backward sweep: (D/w + U) z = y
  z.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = row_ptr[ii]; k < row_ptr[ii + 1]; ++k) {
      const std::size_t j = col_idx[k];
      if (j > ii) {
        acc -= values[k] * z[j];
      }
    }
    z[ii] = acc * omega_ / diag_[ii];
  }
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a)
    : row_ptr_(a.row_ptr()), col_idx_(a.col_idx()), values_(a.values()), n_(a.rows()) {
  PH_REQUIRE(a.rows() == a.cols(), "ILU(0) requires a square matrix");
  diag_pos_.assign(n_, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] == i) {
        diag_pos_[i] = k;
      }
    }
    PH_REQUIRE(diag_pos_[i] != static_cast<std::size_t>(-1),
               "ILU(0) requires a stored diagonal in every row");
  }

  // IKJ-variant ILU(0) factorisation restricted to the pattern of A.
  std::vector<double> work_val(n_, 0.0);
  std::vector<std::int8_t> work_set(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      work_val[col_idx_[k]] = values_[k];
      work_set[col_idx_[k]] = 1;
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) {
        break;  // columns are sorted; only strictly-lower entries eliminate
      }
      const double pivot = values_[diag_pos_[j]];
      PH_REQUIRE(std::abs(pivot) > 0.0, "ILU(0) zero pivot");
      const double lij = work_val[j] / pivot;
      work_val[j] = lij;
      for (std::size_t kk = diag_pos_[j] + 1; kk < row_ptr_[j + 1]; ++kk) {
        const std::size_t c = col_idx_[kk];
        if (work_set[c]) {
          work_val[c] -= lij * values_[kk];
        }
      }
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      values_[k] = work_val[col_idx_[k]];
      work_val[col_idx_[k]] = 0.0;
      work_set[col_idx_[k]] = 0;
    }
    PH_REQUIRE(std::abs(values_[diag_pos_[i]]) > 0.0, "ILU(0) produced a zero pivot");
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  PH_REQUIRE(r.size() == n_, "ILU(0) apply: size mismatch");
  // Solve L y = r (unit lower triangular).
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = r[i];
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      acc -= values_[k] * y[col_idx_[k]];
    }
    y[i] = acc;
  }
  // Solve U z = y.
  z.resize(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = diag_pos_[ii] + 1; k < row_ptr_[ii + 1]; ++k) {
      acc -= values_[k] * z[col_idx_[k]];
    }
    z[ii] = acc / values_[diag_pos_[ii]];
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind, const CsrMatrix& a) {
  switch (kind) {
    case PreconditionerKind::kIdentity:
      return std::make_unique<IdentityPreconditioner>();
    case PreconditionerKind::kJacobi:
      return std::make_unique<JacobiPreconditioner>(a);
    case PreconditionerKind::kSsor:
      return std::make_unique<SsorPreconditioner>(a);
    case PreconditionerKind::kIlu0:
      return std::make_unique<Ilu0Preconditioner>(a);
  }
  throw Error("unknown preconditioner kind");
}

}  // namespace photherm::math
