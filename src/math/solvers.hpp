/// \file solvers.hpp
/// \brief Iterative linear solvers. Steady-state conduction is SPD, so CG is
/// the workhorse; BiCGSTAB is provided for the (non-symmetric) transient
/// operator variants and as a robustness fallback.
#pragma once

#include <string>

#include "math/csr_matrix.hpp"
#include "math/preconditioner.hpp"

namespace photherm::math {

struct SolverOptions {
  double rel_tolerance = 1e-9;   ///< on ||r|| / ||b||
  std::size_t max_iterations = 20000;
  PreconditionerKind preconditioner = PreconditionerKind::kIlu0;
  bool throw_on_failure = true;  ///< if false, return best-effort result
};

struct SolverResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;    ///< final ||b - A x||
  double relative_residual = 0.0;
};

/// Preconditioned conjugate gradient. `x` is used as the initial guess and
/// receives the solution.
SolverResult conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                                const SolverOptions& options = {});

/// Preconditioned BiCGSTAB for general (possibly non-symmetric) systems.
SolverResult bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                      const SolverOptions& options = {});

/// Plain Gauss-Seidel iteration (used as a smoother and in tests as an
/// independent cross-check of CG results).
SolverResult gauss_seidel(const CsrMatrix& a, const Vector& b, Vector& x,
                          const SolverOptions& options = {});

std::string to_string(const SolverResult& result);

}  // namespace photherm::math
