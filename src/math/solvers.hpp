/// \file solvers.hpp
/// \brief Iterative linear solvers. Steady-state conduction is SPD, so CG is
/// the workhorse; BiCGSTAB is provided for the (non-symmetric) transient
/// operator variants and as a robustness fallback.
#pragma once

#include <string>
#include <vector>

#include "math/csr_matrix.hpp"
#include "math/preconditioner.hpp"

namespace photherm::math {

struct SolverOptions {
  double rel_tolerance = 1e-9;   ///< on ||r|| / ||b||
  std::size_t max_iterations = 20000;
  PreconditionerKind preconditioner = PreconditionerKind::kIlu0;
  /// Used only when `preconditioner == kChebyshev`.
  ChebyshevSettings chebyshev;
  bool throw_on_failure = true;  ///< if false, return best-effort result
  /// Multiplier (>= 1) on `rel_tolerance` when the final true residual is
  /// judged for `SolverResult::converged`. The default of 1 reports against
  /// exactly the tolerance the caller requested. Krylov iterations track a
  /// *recursive* residual that can drift a little from the true
  /// ||b - A x||, so callers that restart solves with warm starts (the FVM
  /// stack) opt into a small explicit slack instead of the old behaviour of
  /// silently accepting 10x the requested tolerance.
  double convergence_slack = 1.0;
  /// Worker threads for the SpMV / vector kernels inside the solve.
  /// 0 = util::concurrency(); 1 = serial. Results are bit-identical for
  /// every value (see thread_pool.hpp).
  std::size_t threads = 0;
  /// Capture the per-iteration recursive relative residual (||r|| / ||b||
  /// at the top of each CG/BiCGSTAB iteration, including the final accepted
  /// check) into SolverResult::convergence, and — when telemetry is
  /// recording — emit each sample as a plottable trace counter event
  /// (`solver.<name>.residual`). Off by default: the history allocates per
  /// solve, and nothing on the hot path should pay for observability it
  /// did not ask for. The captured values are the norms the iteration
  /// already computes, so enabling this never perturbs the solve
  /// (bit-identical results, any thread count).
  bool record_convergence = false;
};

struct SolverResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;    ///< final ||b - A x||
  double relative_residual = 0.0;
  /// Per-iteration recursive relative residuals, captured only when
  /// SolverOptions::record_convergence is set (empty otherwise). Entry k is
  /// the residual entering iteration k; when the solve converges via the
  /// iteration check, the last entry is the accepted residual.
  std::vector<double> convergence;
};

/// Warm-start contract shared by every solver below: `x` is used as the
/// initial guess if and only if `x.size()` already equals the system size;
/// any other size (including empty) is reset to the zero vector. A
/// correctly sized vector is therefore never silently truncated or padded
/// with stale entries. `x` receives the solution.

/// Preconditioned conjugate gradient. Builds the preconditioner named by
/// `options.preconditioner` for this solve.
SolverResult conjugate_gradient(const LinearOperator& a, const Vector& b, Vector& x,
                                const SolverOptions& options = {});

/// CG with a caller-owned preconditioner: `options.preconditioner` is
/// ignored and `precond` is applied as-is. This is the hot-path overload —
/// a transient stepper that solves the same operator every step builds M
/// once and amortises the setup (ILU(0) factorisation, Chebyshev bounds)
/// across the whole run instead of paying it per solve.
SolverResult conjugate_gradient(const LinearOperator& a, const Vector& b, Vector& x,
                                const Preconditioner& precond, const SolverOptions& options = {});

/// Preconditioned BiCGSTAB for general (possibly non-symmetric) systems.
SolverResult bicgstab(const LinearOperator& a, const Vector& b, Vector& x,
                      const SolverOptions& options = {});

/// BiCGSTAB with a caller-owned preconditioner (see the CG overload).
SolverResult bicgstab(const LinearOperator& a, const Vector& b, Vector& x,
                      const Preconditioner& precond, const SolverOptions& options = {});

/// Plain Gauss-Seidel iteration (used as a smoother and in tests as an
/// independent cross-check of CG results). The true residual is checked
/// every 10th sweep, on the final sweep, and whenever the per-sweep update
/// stalls below the tolerance, so the reported iteration count is within
/// one sweep of the detection point and never exceeds `max_iterations`.
SolverResult gauss_seidel(const CsrMatrix& a, const Vector& b, Vector& x,
                          const SolverOptions& options = {});

std::string to_string(const SolverResult& result);

}  // namespace photherm::math
