#include "math/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace photherm::math {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  PH_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  PH_REQUIRE(row < rows_ && col < cols_, "triplet index out of range");
  triplets_.push_back({static_cast<std::uint32_t>(row), static_cast<std::uint32_t>(col), value});
}

CsrMatrix CsrBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(sorted.size());
  values.reserve(sorted.size());

  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint32_t row = sorted[i].row;
    const std::uint32_t col = sorted[i].col;
    double acc = 0.0;
    while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
      acc += sorted[i].value;
      ++i;
    }
    col_idx.push_back(col);
    values.push_back(acc);
    ++row_ptr[row + 1];
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
                     std::vector<std::uint32_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  PH_REQUIRE(row_ptr_.size() == rows_ + 1, "row_ptr size must be rows+1");
  PH_REQUIRE(col_idx_.size() == values_.size(), "col_idx/values size mismatch");
  PH_REQUIRE(row_ptr_.back() == values_.size(), "row_ptr must end at nnz");
}

void CsrMatrix::multiply(const Vector& x, Vector& y, std::size_t threads) const {
  PH_REQUIRE(x.size() == cols_, "SpMV: x size mismatch");
  telemetry::count("spmv.csr");
  y.resize(rows_);
  auto rows_kernel = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += values_[k] * x[col_idx_[k]];
      }
      y[r] = acc;
    }
  };
  if (rows_ < util::kSerialCutoff) {
    rows_kernel(0, rows_);
    return;
  }
  // Row-parallel SpMV: disjoint writes, per-row accumulation order
  // unchanged, hence bit-identical to the serial loop.
  util::parallel_for(rows_, util::kKernelGrain / 8, rows_kernel, threads);
}

Vector CsrMatrix::multiply(const Vector& x, std::size_t threads) const {
  Vector y;
  multiply(x, y, threads);
  return y;
}

std::unique_ptr<LinearOperator> CsrMatrix::clone() const {
  return std::make_unique<CsrMatrix>(*this);
}

double CsrMatrix::scaled_row_sum_bound(const Vector& scale) const {
  PH_REQUIRE(scale.size() == rows_, "scaled_row_sum_bound: scale size mismatch");
  double bound = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += std::abs(values_[k]);
    }
    bound = std::max(bound, scale[r] * sum);
  }
  return bound;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  PH_REQUIRE(row < rows_ && col < cols_, "index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(col));
  if (it == end || *it != col) {
    return 0.0;
  }
  return values_[static_cast<std::size_t>(std::distance(col_idx_.begin(), it))];
}

Vector CsrMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  for (std::size_t r = 0; r < std::min(rows_, cols_); ++r) {
    d[r] = at(r, r);
  }
  return d;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      const double v = values_[k];
      const double vt = at(c, r);
      const double scale = std::max({std::abs(v), std::abs(vt), 1.0});
      if (std::abs(v - vt) > tol * scale) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace photherm::math
