#include "math/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace photherm::math {

namespace {

SolverResult finalize(const LinearOperator& a, const Vector& b, const Vector& x,
                      std::size_t iters, double norm_b, const SolverOptions& options,
                      const char* name) {
  PH_REQUIRE(options.convergence_slack >= 1.0, "convergence_slack must be >= 1");
  Vector r;
  a.apply(x, r, options.threads);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = b[i] - r[i];
  }
  SolverResult result;
  result.iterations = iters;
  result.residual_norm = norm2(r, options.threads);
  result.relative_residual = norm_b > 0.0 ? result.residual_norm / norm_b : result.residual_norm;
  if (telemetry::enabled()) {
    const std::string prefix = std::string("solver.") + name;
    telemetry::count(prefix + ".solves");
    telemetry::count(prefix + ".iterations", iters);
    telemetry::gauge((prefix + ".relative_residual").c_str(), result.relative_residual);
  }
  // Judged on the true residual against the tolerance the caller actually
  // requested; any loosening must be asked for via convergence_slack.
  result.converged =
      result.relative_residual <= options.rel_tolerance * options.convergence_slack;
  if (!result.converged && options.throw_on_failure) {
    std::ostringstream os;
    os << name << " failed to converge after " << iters
       << " iterations (relative residual = " << result.relative_residual << ")";
    throw SolverError(os.str());
  }
  return result;
}

/// Resolve the kernel thread count once per solve: `concurrency()` consults
/// the environment, which is too much work to repeat on every dot/axpy of
/// every iteration.
std::size_t resolve_threads(const SolverOptions& options) {
  return options.threads != 0 ? options.threads : util::concurrency();
}

/// Warm-start contract (see solvers.hpp): keep `x` as the initial guess
/// only when it is already exactly the system size; otherwise start from
/// zero instead of inheriting stale or truncated entries.
void prepare_initial_guess(Vector& x, std::size_t n) {
  if (x.size() != n) {
    x.assign(n, 0.0);
  }
}

}  // namespace

SolverResult conjugate_gradient(const LinearOperator& a, const Vector& b, Vector& x,
                                const Preconditioner& precond, const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "CG: rhs size mismatch");
  telemetry::Span span("solver.conjugate_gradient");
  const std::size_t n = a.rows();
  prepare_initial_guess(x, n);
  const std::size_t threads = resolve_threads(options);

  const double norm_b = norm2(b, threads);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0, {}};
  }

  Vector r;
  a.apply(x, r, threads);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  Vector z(n);
  precond.apply(r, z, threads);
  Vector p = z;
  Vector ap(n);
  double rz = dot(r, z, threads);

  std::vector<double> history;
  std::size_t it = 0;
  for (; it < options.max_iterations; ++it) {
    // The iteration's own stopping check; record_convergence captures
    // exactly this value, so the history costs no extra norm.
    const double rel = norm2(r, threads) / norm_b;
    if (options.record_convergence) {
      history.push_back(rel);
      telemetry::counter("solver.conjugate_gradient.residual", rel, it);
    }
    if (rel <= options.rel_tolerance) {
      break;
    }
    a.apply(p, ap, threads);
    const double p_ap = dot(p, ap, threads);
    PH_REQUIRE(p_ap > 0.0, "CG breakdown: matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, x, threads);
    axpy(-alpha, ap, r, threads);
    precond.apply(r, z, threads);
    const double rz_next = dot(r, z, threads);
    const double beta = rz_next / rz;
    rz = rz_next;
    xpby(z, beta, p, threads);
  }
  SolverResult result = finalize(a, b, x, it, norm_b, options, "conjugate_gradient");
  result.convergence = std::move(history);
  return result;
}

SolverResult conjugate_gradient(const LinearOperator& a, const Vector& b, Vector& x,
                                const SolverOptions& options) {
  const auto precond = make_preconditioner(options.preconditioner, a, options.chebyshev);
  return conjugate_gradient(a, b, x, *precond, options);
}

SolverResult bicgstab(const LinearOperator& a, const Vector& b, Vector& x,
                      const Preconditioner& precond, const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "BiCGSTAB requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "BiCGSTAB: rhs size mismatch");
  telemetry::Span span("solver.bicgstab");
  const std::size_t n = a.rows();
  prepare_initial_guess(x, n);
  const std::size_t threads = resolve_threads(options);

  const double norm_b = norm2(b, threads);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0, {}};
  }

  Vector r;
  a.apply(x, r, threads);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  const Vector r0 = r;
  Vector p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  std::vector<double> history;
  std::size_t it = 0;
  for (; it < options.max_iterations; ++it) {
    const double rel = norm2(r, threads) / norm_b;
    if (options.record_convergence) {
      history.push_back(rel);
      telemetry::counter("solver.bicgstab.residual", rel, it);
    }
    if (rel <= options.rel_tolerance) {
      break;
    }
    const double rho_next = dot(r0, r, threads);
    if (std::abs(rho_next) < 1e-300) {
      break;  // breakdown; finalize() reports the achieved residual
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    precond.apply(p, y, threads);
    a.apply(y, v, threads);
    alpha = rho / dot(r0, v, threads);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
    }
    if (norm2(s, threads) / norm_b <= options.rel_tolerance) {
      axpy(alpha, y, x, threads);
      ++it;
      break;
    }
    precond.apply(s, z, threads);
    a.apply(z, t, threads);
    const double tt = dot(t, t, threads);
    if (tt == 0.0) {
      axpy(alpha, y, x, threads);
      ++it;
      break;
    }
    omega = dot(t, s, threads) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    if (omega == 0.0) {
      break;
    }
  }
  SolverResult result = finalize(a, b, x, it, norm_b, options, "bicgstab");
  result.convergence = std::move(history);
  return result;
}

SolverResult bicgstab(const LinearOperator& a, const Vector& b, Vector& x,
                      const SolverOptions& options) {
  const auto precond = make_preconditioner(options.preconditioner, a, options.chebyshev);
  return bicgstab(a, b, x, *precond, options);
}

SolverResult gauss_seidel(const CsrMatrix& a, const Vector& b, Vector& x,
                          const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "Gauss-Seidel requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "Gauss-Seidel: rhs size mismatch");
  telemetry::Span span("solver.gauss_seidel");
  const std::size_t n = a.rows();
  prepare_initial_guess(x, n);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t threads = resolve_threads(options);
  const double norm_b = norm2(b, threads);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0, {}};
  }

  std::size_t it = 0;
  double stall_check_gate = std::numeric_limits<double>::infinity();
  for (; it < options.max_iterations; ++it) {
    double max_delta = 0.0;
    double max_x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      double acc = b[i];
      for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const std::size_t j = col_idx[k];
        if (j == i) {
          diag = values[k];
        } else {
          acc -= values[k] * x[j];
        }
      }
      PH_REQUIRE(diag != 0.0, "Gauss-Seidel: zero diagonal");
      const double next = acc / diag;
      max_delta = std::max(max_delta, std::abs(next - x[i]));
      max_x = std::max(max_x, std::abs(next));
      x[i] = next;
    }
    // The true residual is the criterion the caller asked for, but it costs
    // an SpMV, so it is only evaluated every 10th sweep, on the final sweep
    // (the old code could run up to 9 sweeps past `max_iterations` intent
    // without ever checking), and whenever the cheap per-sweep update stalls
    // below the tolerance (so the reported iteration count reflects the
    // sweep where convergence actually happened instead of the next
    // multiple of 10).
    const bool update_stalled = max_delta <= options.rel_tolerance * std::max(1.0, max_x) &&
                                max_delta <= stall_check_gate;
    if (it % 10 == 9 || it + 1 == options.max_iterations || update_stalled) {
      Vector r = a.multiply(x, threads);
      for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - r[i];
      }
      const double rel_res = norm2(r, threads) / norm_b;
      if (rel_res <= options.rel_tolerance) {
        ++it;
        break;
      }
      // On slowly converging systems the stall proxy holds long before the
      // residual does, and without a gate it would trigger the (SpMV-priced)
      // check on every remaining sweep. The update and the residual decay at
      // the same asymptotic rate, so project: skip stall checks until the
      // update has shrunk in proportion to the remaining residual gap, with
      // a 10x margin so per-sweep checks resume on the final approach and
      // the reported iteration count stays minimal.
      stall_check_gate = rel_res > 10.0 * options.rel_tolerance
                             ? max_delta * (10.0 * options.rel_tolerance / rel_res)
                             : std::numeric_limits<double>::infinity();
    }
  }
  return finalize(a, b, x, it, norm_b, options, "gauss_seidel");
}

std::string to_string(const SolverResult& result) {
  std::ostringstream os;
  os << (result.converged ? "converged" : "NOT converged") << " in " << result.iterations
     << " iterations, relative residual " << result.relative_residual;
  return os.str();
}

}  // namespace photherm::math
