#include "math/solvers.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::math {

namespace {

SolverResult finalize(const CsrMatrix& a, const Vector& b, const Vector& x, std::size_t iters,
                      double norm_b, const SolverOptions& options, const char* name) {
  Vector r = a.multiply(x);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = b[i] - r[i];
  }
  SolverResult result;
  result.iterations = iters;
  result.residual_norm = norm2(r);
  result.relative_residual = norm_b > 0.0 ? result.residual_norm / norm_b : result.residual_norm;
  result.converged = result.relative_residual <= options.rel_tolerance * 10.0;
  if (!result.converged && options.throw_on_failure) {
    std::ostringstream os;
    os << name << " failed to converge after " << iters
       << " iterations (relative residual = " << result.relative_residual << ")";
    throw SolverError(os.str());
  }
  return result;
}

}  // namespace

SolverResult conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                                const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "CG requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "CG: rhs size mismatch");
  const std::size_t n = a.rows();
  x.resize(n, 0.0);

  const auto precond = make_preconditioner(options.preconditioner, a);
  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0};
  }

  Vector r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  Vector z(n);
  precond->apply(r, z);
  Vector p = z;
  Vector ap(n);
  double rz = dot(r, z);

  std::size_t it = 0;
  for (; it < options.max_iterations; ++it) {
    if (norm2(r) / norm_b <= options.rel_tolerance) {
      break;
    }
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    PH_REQUIRE(p_ap > 0.0, "CG breakdown: matrix is not positive definite");
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precond->apply(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    xpby(z, beta, p);
  }
  return finalize(a, b, x, it, norm_b, options, "conjugate_gradient");
}

SolverResult bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                      const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "BiCGSTAB requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "BiCGSTAB: rhs size mismatch");
  const std::size_t n = a.rows();
  x.resize(n, 0.0);

  const auto precond = make_preconditioner(options.preconditioner, a);
  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0};
  }

  Vector r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
  }
  const Vector r0 = r;
  Vector p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  std::size_t it = 0;
  for (; it < options.max_iterations; ++it) {
    if (norm2(r) / norm_b <= options.rel_tolerance) {
      break;
    }
    const double rho_next = dot(r0, r);
    if (std::abs(rho_next) < 1e-300) {
      break;  // breakdown; finalize() reports the achieved residual
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    precond->apply(p, y);
    a.multiply(y, v);
    alpha = rho / dot(r0, v);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
    }
    if (norm2(s) / norm_b <= options.rel_tolerance) {
      axpy(alpha, y, x);
      ++it;
      break;
    }
    precond->apply(s, z);
    a.multiply(z, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      axpy(alpha, y, x);
      ++it;
      break;
    }
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    if (omega == 0.0) {
      break;
    }
  }
  return finalize(a, b, x, it, norm_b, options, "bicgstab");
}

SolverResult gauss_seidel(const CsrMatrix& a, const Vector& b, Vector& x,
                          const SolverOptions& options) {
  PH_REQUIRE(a.rows() == a.cols(), "Gauss-Seidel requires a square matrix");
  PH_REQUIRE(b.size() == a.rows(), "Gauss-Seidel: rhs size mismatch");
  const std::size_t n = a.rows();
  x.resize(n, 0.0);
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    return {true, 0, 0.0, 0.0};
  }

  std::size_t it = 0;
  for (; it < options.max_iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      double acc = b[i];
      for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const std::size_t j = col_idx[k];
        if (j == i) {
          diag = values[k];
        } else {
          acc -= values[k] * x[j];
        }
      }
      PH_REQUIRE(diag != 0.0, "Gauss-Seidel: zero diagonal");
      x[i] = acc / diag;
    }
    // Check the true residual periodically (the per-sweep change is a much
    // weaker criterion than the residual the caller asked for).
    if (it % 10 == 9) {
      Vector r = a.multiply(x);
      for (std::size_t i = 0; i < n; ++i) {
        r[i] = b[i] - r[i];
      }
      if (norm2(r) / norm_b <= options.rel_tolerance) {
        ++it;
        break;
      }
    }
  }
  return finalize(a, b, x, it, norm_b, options, "gauss_seidel");
}

std::string to_string(const SolverResult& result) {
  std::ostringstream os;
  os << (result.converged ? "converged" : "NOT converged") << " in " << result.iterations
     << " iterations, relative residual " << result.relative_residual;
  return os.str();
}

}  // namespace photherm::math
