/// \file linear_operator.hpp
/// \brief Abstract SpMV-shaped operator the Krylov solvers iterate on.
/// Concrete implementations: CsrMatrix (general sparsity) and
/// StencilOperator7 (matrix-free 7-point stencil on a structured grid).
/// Everything a solver or an SpMV-based preconditioner needs is virtual
/// here; preconditioners that require explicit sparsity (SSOR, ILU(0))
/// downcast to CsrMatrix and fail with an actionable error otherwise.
#pragma once

#include <cstddef>
#include <memory>

#include "math/vector_ops.hpp"

namespace photherm::math {

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual std::size_t rows() const = 0;
  virtual std::size_t cols() const = 0;

  /// y = A * x. Implementations thread chunk-ordered over rows (serial
  /// below util::kSerialCutoff), so the result is bit-identical at every
  /// thread count. `threads == 0` means util::concurrency().
  virtual void apply(const Vector& x, Vector& y, std::size_t threads = 0) const = 0;

  /// Main diagonal (zero where no entry is stored).
  virtual Vector diagonal() const = 0;

  /// Deep copy. Preconditioners that need the operator beyond their
  /// constructor (Chebyshev) clone it so they can never dangle into
  /// storage a caller later rebuilds (the SsorPreconditioner stale-matrix
  /// hazard, fixed in this layer for good).
  virtual std::unique_ptr<LinearOperator> clone() const = 0;

  /// max_i scale[i] * sum_j |a_ij|: a Gershgorin-style upper bound on the
  /// spectral radius of diag(scale) * A. With scale = 1/diag(A) this bounds
  /// the Jacobi-scaled spectrum, which is how ChebyshevPreconditioner
  /// obtains its eigenvalue interval without any power iteration.
  virtual double scaled_row_sum_bound(const Vector& scale) const = 0;
};

}  // namespace photherm::math
