/// \file preconditioner.hpp
/// \brief Preconditioners for the Krylov solvers: Jacobi, symmetric
/// Gauss-Seidel (SSOR with omega=1) and ILU(0). The FVM conduction matrix is
/// an SPD M-matrix, so ILU(0) exists and is stable without pivoting.
#pragma once

#include <memory>

#include "math/csr_matrix.hpp"

namespace photherm::math {

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const Vector& r, Vector& z) const = 0;
};

/// Identity (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override { z = r; }
};

/// Diagonal scaling.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  Vector inv_diag_;
};

/// Symmetric successive over-relaxation used as a preconditioner:
/// M = (D/w + L) (D/w)^{-1} (D/w + U) * w/(2-w). Keeps symmetry for CG.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(const CsrMatrix& a, double omega = 1.0);
  void apply(const Vector& r, Vector& z) const override;

 private:
  const CsrMatrix* a_;
  double omega_;
  Vector diag_;
};

/// Incomplete LU with zero fill-in on the sparsity pattern of A.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  // Factor stored on A's pattern: strictly-lower entries hold L (unit
  // diagonal implied), diagonal + strictly-upper hold U.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  std::vector<std::size_t> diag_pos_;
  std::size_t n_ = 0;
};

enum class PreconditionerKind { kIdentity, kJacobi, kSsor, kIlu0 };

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind, const CsrMatrix& a);

}  // namespace photherm::math
