/// \file preconditioner.hpp
/// \brief Preconditioners for the Krylov solvers: Jacobi, symmetric
/// Gauss-Seidel (SSOR with omega=1), ILU(0) and a fixed-degree Chebyshev
/// polynomial. The FVM conduction matrix is an SPD M-matrix, so ILU(0)
/// exists and is stable without pivoting.
///
/// Every preconditioner owns all the data it applies — none keeps a
/// pointer into the caller's matrix — so rebuilding or destroying A after
/// construction can never make apply() read freed or stale storage. A
/// preconditioner built for one A stays a *valid* (merely outdated)
/// preconditioner if the caller later changes A; callers that reassemble
/// (the transient stepping path) rebuild their cached preconditioner
/// alongside the operator.
#pragma once

#include <memory>
#include <string>

#include "math/csr_matrix.hpp"
#include "math/linear_operator.hpp"

namespace photherm::math {

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// `threads` as in vector_ops.hpp: 0 = util::concurrency(), 1 = serial;
  /// results are bit-identical for every value. The elementwise (Jacobi)
  /// and SpMV-based (Chebyshev) applies thread chunk-ordered; the
  /// triangular-solve applies (SSOR, ILU(0)) are inherently sequential and
  /// ignore the parameter.
  virtual void apply(const Vector& r, Vector& z, std::size_t threads = 0) const = 0;
};

/// Identity (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z, std::size_t threads = 0) const override;
};

/// Diagonal scaling.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const LinearOperator& a);
  void apply(const Vector& r, Vector& z, std::size_t threads = 0) const override;

 private:
  Vector inv_diag_;
};

/// Symmetric successive over-relaxation used as a preconditioner:
/// M = (D/w + L) (D/w)^{-1} (D/w + U) * w/(2-w). Keeps symmetry for CG.
/// Owns a copy of the matrix arrays: a caller that rebuilds A between
/// applies (e.g. TransientSolver::set_time_step) gets the M it constructed,
/// never a read of freed storage.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(const CsrMatrix& a, double omega = 1.0);
  void apply(const Vector& r, Vector& z, std::size_t threads = 0) const override;

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  double omega_;
  Vector diag_;
};

/// Incomplete LU with zero fill-in on the sparsity pattern of A.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z, std::size_t threads = 0) const override;

 private:
  // Factor stored on A's pattern: strictly-lower entries hold L (unit
  // diagonal implied), diagonal + strictly-upper hold U.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  std::vector<std::size_t> diag_pos_;
  std::size_t n_ = 0;
};

struct ChebyshevSettings {
  /// Chebyshev steps per apply; an apply costs `degree - 1` operator
  /// applications (plus elementwise work), so the polynomial in A has
  /// degree `degree - 1`. Must be >= 1 (1 degenerates to scaled Jacobi).
  /// The default is the wall-time sweet spot on the fine FVM meshes
  /// (bench_solver_perf BM_CgChebyshevDegree): going from 4 to 8 halves
  /// the CG iteration count for the same wall time, past ~12 the extra
  /// SpMVs per apply cost more than the iterations they save.
  std::size_t degree = 8;
  /// Fallback width of the target interval
  /// [lambda_max / eig_ratio, lambda_max]: modes below the lower bound are
  /// left to CG itself, exactly like a multigrid smoother's split. When the
  /// Gershgorin lower bound (2 - lambda_max in the Jacobi-scaled operator)
  /// is tighter — true for diagonally shifted stepping operators A + C/dt —
  /// that bound wins and eig_ratio is ignored. Must be > 1.
  double eig_ratio = 30.0;
};

/// Fixed-degree Chebyshev polynomial in the Jacobi-scaled operator
/// D^{-1} A: z = p(D^{-1} A) D^{-1} r, with p chosen to approximate the
/// inverse on [lambda_max / eig_ratio, lambda_max] and lambda_max bounded
/// by the (deterministic, iteration-free) Gershgorin row sums. The apply
/// needs nothing but SpMV + elementwise kernels, so unlike the triangular
/// solves of SSOR/ILU(0) it threads chunk-ordered end to end, and its
/// setup cost is one diagonal pass — exactly what the adaptive-dt
/// reassembly path wants. Symmetric by construction
/// (p(D^{-1}A) D^{-1} = D^{-1/2} p(D^{-1/2} A D^{-1/2}) D^{-1/2}), so CG
/// applies. Owns a clone of the operator: no stale-matrix hazard.
class ChebyshevPreconditioner final : public Preconditioner {
 public:
  explicit ChebyshevPreconditioner(const LinearOperator& a,
                                   const ChebyshevSettings& settings = {});
  void apply(const Vector& r, Vector& z, std::size_t threads = 0) const override;

  double lambda_max() const { return lambda_max_; }
  double lambda_min() const { return lambda_min_; }

 private:
  std::unique_ptr<const LinearOperator> a_;
  Vector inv_diag_;
  std::size_t degree_;
  double lambda_max_ = 0.0;  ///< of D^{-1} A (Gershgorin bound)
  double lambda_min_ = 0.0;
};

enum class PreconditionerKind { kIdentity, kJacobi, kSsor, kIlu0, kChebyshev };

const char* to_string(PreconditionerKind kind);
PreconditionerKind preconditioner_kind_from_string(const std::string& name);

/// Build a preconditioner of `kind` for `a`. SSOR and ILU(0) need explicit
/// CSR sparsity; asking for them on a matrix-free operator (the stencil
/// path) throws an Error naming the kinds that do work there.
std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const LinearOperator& a,
                                                    const ChebyshevSettings& chebyshev = {});

}  // namespace photherm::math
