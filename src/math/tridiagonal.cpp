#include "math/tridiagonal.hpp"

#include <cmath>

#include "util/error.hpp"

namespace photherm::math {

std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs) {
  const std::size_t n = diag.size();
  PH_REQUIRE(n >= 1, "tridiagonal system must be non-empty");
  PH_REQUIRE(lower.size() == n && upper.size() == n && rhs.size() == n,
             "tridiagonal vectors must have equal length");

  std::vector<double> c_prime(n, 0.0);
  std::vector<double> d_prime(n, 0.0);

  PH_REQUIRE(std::abs(diag[0]) > 0.0, "tridiagonal: zero pivot at row 0");
  c_prime[0] = upper[0] / diag[0];
  d_prime[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - lower[i] * c_prime[i - 1];
    PH_REQUIRE(std::abs(denom) > 0.0, "tridiagonal: zero pivot during elimination");
    c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom;
  }

  std::vector<double> x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) {
    x[ii] = d_prime[ii] - c_prime[ii] * x[ii + 1];
  }
  return x;
}

}  // namespace photherm::math
