/// \file csr_matrix.hpp
/// \brief Compressed-sparse-row matrix with a triplet builder. The finite
/// volume assembler produces a 7-point stencil per cell; the builder merges
/// duplicate entries so assembly code can simply accumulate contributions.
#pragma once

#include <cstdint>
#include <vector>

#include "math/linear_operator.hpp"
#include "math/vector_ops.hpp"

namespace photherm::math {

/// One (row, col, value) contribution.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

class CsrMatrix;

/// Accumulates triplets; duplicates are summed when `build()` is called.
class CsrBuilder {
 public:
  explicit CsrBuilder(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, double value);
  void reserve(std::size_t nnz_estimate) { triplets_.reserve(nnz_estimate); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  CsrMatrix build() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Immutable CSR matrix.
class CsrMatrix : public LinearOperator {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> row_ptr,
            std::vector<std::uint32_t> col_idx, std::vector<double> values);

  std::size_t rows() const override { return rows_; }
  std::size_t cols() const override { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A * x. Rows are computed independently (each writes one y entry),
  /// so the result is bit-identical for every thread count; matrices below
  /// `util::kSerialCutoff` rows stay serial. `threads == 0` means
  /// `util::concurrency()`.
  void multiply(const Vector& x, Vector& y, std::size_t threads = 0) const;
  Vector multiply(const Vector& x, std::size_t threads = 0) const;

  /// LinearOperator interface (same kernel as multiply).
  void apply(const Vector& x, Vector& y, std::size_t threads = 0) const override {
    multiply(x, y, threads);
  }
  std::unique_ptr<LinearOperator> clone() const override;
  double scaled_row_sum_bound(const Vector& scale) const override;

  /// Value at (row, col); zero if not stored. O(log nnz_row).
  double at(std::size_t row, std::size_t col) const;

  /// Diagonal as a vector (zero where no stored diagonal entry).
  Vector diagonal() const override;

  /// Structural symmetry + value symmetry check within `tol` (relative).
  /// The steady-state conduction operator must be symmetric; the FVM tests
  /// assert this.
  bool is_symmetric(double tol = 1e-10) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace photherm::math
