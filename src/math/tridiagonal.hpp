/// \file tridiagonal.hpp
/// \brief Thomas algorithm for tridiagonal systems. Used by the 1-D
/// analytical validation fixtures (layer-stack solutions) and available for
/// ADI-style transient stepping.
#pragma once

#include <vector>

namespace photherm::math {

/// Solve a tridiagonal system:
///   lower[i] * x[i-1] + diag[i] * x[i] + upper[i] * x[i+1] = rhs[i]
/// `lower[0]` and `upper[n-1]` are ignored. Throws photherm::Error when a
/// pivot vanishes. Returns x.
std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs);

}  // namespace photherm::math
