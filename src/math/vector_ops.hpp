/// \file vector_ops.hpp
/// \brief Free functions on std::vector<double> used by the Krylov solvers.
/// Kept header-only so the compiler can inline the hot loops.
///
/// Vectors below `util::kSerialCutoff` elements take the straight serial
/// path; larger ones dispatch chunks onto the shared thread pool. The
/// reductions (`dot`, `norm2`) accumulate fixed-size per-chunk partials and
/// sum them in chunk order, so their result depends only on the vector
/// size — never on the thread count — and every solver trajectory is
/// bit-reproducible at 1, 2 or N threads. `threads == 0` means
/// `util::concurrency()`.
#pragma once

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace photherm::math {

using Vector = std::vector<double>;

inline double dot(const Vector& a, const Vector& b, std::size_t threads = 0) {
  PH_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  const std::size_t n = a.size();
  if (n < util::kSerialCutoff) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += a[i] * b[i];
    }
    return acc;
  }
  return util::parallel_reduce(
      n, util::kKernelGrain, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          acc += a[i] * b[i];
        }
        return acc;
      },
      [](double acc, double p) { return acc + p; }, threads);
}

inline double norm2(const Vector& a, std::size_t threads = 0) {
  return std::sqrt(dot(a, a, threads));
}

/// y += alpha * x
inline void axpy(double alpha, const Vector& x, Vector& y, std::size_t threads = 0) {
  PH_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  if (x.size() < util::kSerialCutoff) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] += alpha * x[i];
    }
    return;
  }
  util::parallel_for(
      x.size(), util::kKernelGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          y[i] += alpha * x[i];
        }
      },
      threads);
}

/// y = x + beta * y
inline void xpby(const Vector& x, double beta, Vector& y, std::size_t threads = 0) {
  PH_REQUIRE(x.size() == y.size(), "xpby: size mismatch");
  if (x.size() < util::kSerialCutoff) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = x[i] + beta * y[i];
    }
    return;
  }
  util::parallel_for(
      x.size(), util::kKernelGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          y[i] = x[i] + beta * y[i];
        }
      },
      threads);
}

inline void scale(double alpha, Vector& x) {
  for (double& v : x) {
    v *= alpha;
  }
}

inline Vector subtract(const Vector& a, const Vector& b) {
  PH_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

inline double max_abs(const Vector& a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace photherm::math
