/// \file vector_ops.hpp
/// \brief Free functions on std::vector<double> used by the Krylov solvers.
/// Kept header-only so the compiler can inline the hot loops.
#pragma once

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace photherm::math {

using Vector = std::vector<double>;

inline double dot(const Vector& a, const Vector& b) {
  PH_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

/// y += alpha * x
inline void axpy(double alpha, const Vector& x, Vector& y) {
  PH_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x + beta * y
inline void xpby(const Vector& x, double beta, Vector& y) {
  PH_REQUIRE(x.size() == y.size(), "xpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = x[i] + beta * y[i];
  }
}

inline void scale(double alpha, Vector& x) {
  for (double& v : x) {
    v *= alpha;
  }
}

inline Vector subtract(const Vector& a, const Vector& b) {
  PH_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

inline double max_abs(const Vector& a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace photherm::math
