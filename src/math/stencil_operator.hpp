/// \file stencil_operator.hpp
/// \brief Matrix-free 7-point stencil operator on a structured nx*ny*nz
/// grid (cell (ix, iy, iz) linearised as ((iz * ny) + iy) * nx + ix, the
/// RectilinearMesh convention). The FVM conduction operator has exactly
/// this shape, so storing one coefficient per face direction removes the
/// CSR column indirection entirely: an SpMV reads seven contiguous
/// coefficient streams plus x at fixed strides — SIMD-friendly and roughly
/// half the memory traffic of the CSR kernel (no col_idx, no row_ptr).
///
/// Boundary cells simply carry zero coefficients toward the missing
/// neighbours, so the interior kernel is branch-free. The per-row
/// accumulation order is fixed (down, south, west, diag, east, north, up —
/// ascending column index, matching the CSR kernel's sorted-column order),
/// and rows are chunk-ordered over the shared pool, so results are
/// bit-identical at 1, 2 or N threads, exactly like CsrMatrix::multiply.
#pragma once

#include "math/csr_matrix.hpp"
#include "math/linear_operator.hpp"

namespace photherm::math {

class StencilOperator7 final : public LinearOperator {
 public:
  /// Zero operator on an nx*ny*nz grid; assembly writes the coefficients.
  StencilOperator7(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t rows() const override { return n_; }
  std::size_t cols() const override { return n_; }

  /// Coefficient streams by neighbour offset: west/east = -/+1 on x,
  /// south/north = -/+nx on y, down/up = -/+(nx*ny) on z. A boundary cell's
  /// coefficient toward a missing neighbour must stay zero.
  Vector& diag() { return diag_; }
  Vector& west() { return west_; }
  Vector& east() { return east_; }
  Vector& south() { return south_; }
  Vector& north() { return north_; }
  Vector& up() { return up_; }
  Vector& down() { return down_; }
  const Vector& diag() const { return diag_; }
  const Vector& west() const { return west_; }
  const Vector& east() const { return east_; }
  const Vector& south() const { return south_; }
  const Vector& north() const { return north_; }
  const Vector& up() const { return up_; }
  const Vector& down() const { return down_; }

  void apply(const Vector& x, Vector& y, std::size_t threads = 0) const override;
  Vector diagonal() const override { return diag_; }
  std::unique_ptr<LinearOperator> clone() const override;
  double scaled_row_sum_bound(const Vector& scale) const override;

  /// diag += delta (size must match). The transient stepping operator
  /// C/dt + A differs from A only on the diagonal, so an adaptive-dt
  /// rebuild on the stencil path is one vector add instead of a full CSR
  /// triplet sort.
  void add_to_diagonal(const Vector& delta);

  /// Explicit CSR form (tests; CSR-only preconditioners).
  CsrMatrix to_csr() const;

  /// Extract the stencil from a CSR matrix that has pure 7-point structure
  /// on the given grid; throws Error naming the offending row if any entry
  /// falls outside the stencil pattern.
  static StencilOperator7 from_csr(const CsrMatrix& a, std::size_t nx, std::size_t ny,
                                   std::size_t nz);

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::size_t nz_ = 0;
  std::size_t n_ = 0;
  Vector diag_, west_, east_, south_, north_, down_, up_;
};

}  // namespace photherm::math
