/// \file transient.hpp
/// \brief Transient conduction by implicit (backward) Euler. IcTherm's
/// original publication [23] is a transient simulator; the paper only needs
/// steady state, but the transient engine is provided for studying heating
/// latency of the MR calibration loop (Sec. II discussion).
#pragma once

#include <functional>
#include <memory>

#include "thermal/fvm.hpp"

namespace photherm::thermal {

struct TransientOptions {
  double time_step = 1e-3;  ///< [s]
  math::SolverOptions solver;
  TransientOptions() {
    solver.rel_tolerance = 1e-10;
    // Warm-started per-step solves: same explicit recursive-vs-true residual
    // slack as SteadyStateOptions (see fvm.hpp).
    solver.convergence_slack = 10.0;
  }
};

/// Steps T(t) forward with backward Euler:
///   (C/dt + A) T_{n+1} = (C/dt) T_n + q.
/// The operator (C/dt + A) is SPD, so CG applies. Power can be updated
/// between steps (e.g. activity phases) via set_power_scale or reassembly.
class TransientSolver {
 public:
  TransientSolver(std::shared_ptr<const mesh::RectilinearMesh> mesh, const BoundarySet& bcs,
                  const TransientOptions& options = {});

  /// Initialise the state to a uniform temperature.
  void set_uniform_state(double t_celsius);

  /// Initialise from an existing field (must share the mesh dimensions).
  void set_state(const ThermalField& field);

  /// Advance one time step; returns the new field (state is kept
  /// internally as well).
  ThermalField step();

  /// Advance `n` steps; returns the final field.
  ThermalField advance(std::size_t n);

  /// Scale all injected power uniformly (activity throttling); takes effect
  /// on the next step.
  void set_power_scale(double scale);

  double time() const { return time_; }
  const ThermalField state() const;

 private:
  std::shared_ptr<const mesh::RectilinearMesh> mesh_;
  TransientOptions options_;
  DiscreteSystem system_;          ///< steady-state operator A and rhs q
  math::CsrMatrix stepping_matrix_;  ///< C/dt + A
  math::Vector power_;             ///< injected power per cell [W]
  math::Vector bc_rhs_;            ///< boundary wall terms of the rhs
  math::Vector state_;
  double power_scale_ = 1.0;
  double time_ = 0.0;
};

}  // namespace photherm::thermal
