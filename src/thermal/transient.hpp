/// \file transient.hpp
/// \brief Transient conduction by implicit (backward) Euler. IcTherm's
/// original publication [23] is a transient simulator; the paper only needs
/// steady state, but the transient engine is provided for studying heating
/// latency of the MR calibration loop (Sec. II discussion). The timeline
/// engine (timeline/playback.hpp) drives it through scenario schedules.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "thermal/fvm.hpp"

namespace photherm::thermal {

struct TransientOptions {
  double time_step = 1e-3;  ///< [s]
  math::SolverOptions solver;
  /// Representation of the stepping operator C/dt + A. The stencil form
  /// skips the CSR triplet sort on every adaptive-dt rebuild (the diagonal
  /// shift is one vector add) and runs the cheaper matrix-free SpMV; it
  /// supports the identity/jacobi/chebyshev preconditioners (asking for
  /// ssor/ilu0 throws at construction).
  OperatorKind operator_kind = OperatorKind::kCsr;
  /// Seed each step's CG solve with the previous state. The stepping update
  /// (C/dt + A) T_{n+1} = (C/dt) T_n + q moves the field a little per step,
  /// so the previous state is an excellent initial guess and cuts the
  /// per-step iteration count hard (see bench_timeline_playback). Off
  /// restarts every solve from the zero vector — only useful to measure the
  /// warm-start savings; results agree within the solver tolerance but are
  /// not bit-identical.
  bool warm_start = true;
  TransientOptions() {
    solver.rel_tolerance = 1e-10;
    // Warm-started per-step solves: same explicit recursive-vs-true residual
    // slack as SteadyStateOptions (see fvm.hpp).
    solver.convergence_slack = 10.0;
  }
};

/// Cumulative per-solver stepping statistics (for benches and the timeline
/// trace): how many steps ran and what they cost in CG iterations.
struct TransientStats {
  std::size_t steps = 0;
  std::size_t total_cg_iterations = 0;
  std::size_t max_cg_iterations = 0;  ///< worst single step
  /// Stepping-matrix rebuilds triggered by set_time_step (adaptive dt).
  /// The construction-time assembly is not counted.
  std::size_t reassemblies = 0;
  /// Preconditioner rebuilds triggered by set_time_step. The solver caches
  /// its preconditioner with the stepping operator (the construction-time
  /// build is not counted, mirroring `reassemblies`), so this stays equal
  /// to `reassemblies` instead of growing by one per step as the old
  /// build-inside-CG path did.
  std::size_t preconditioner_builds = 0;
};

/// Element-wise accumulation (max for the worst-step figure). The timeline
/// checkpoint machinery folds the cost of a resumed playback's earlier
/// session into the fresh solver's counters with this.
TransientStats operator+(const TransientStats& a, const TransientStats& b);

/// Steps T(t) forward with backward Euler:
///   (C/dt + A) T_{n+1} = (C/dt) T_n + q.
/// The operator (C/dt + A) is SPD, so CG applies. Power can be updated
/// between steps — uniformly via set_power_scale or per cell via set_power;
/// both only touch the right-hand side, so no reassembly or
/// re-preconditioning happens between phases.
class TransientSolver {
 public:
  TransientSolver(std::shared_ptr<const mesh::RectilinearMesh> mesh, const BoundarySet& bcs,
                  const TransientOptions& options = {});

  /// Initialise the state to a uniform temperature.
  void set_uniform_state(double t_celsius);

  /// Initialise from an existing field (must share the mesh dimensions).
  void set_state(const ThermalField& field);

  /// Advance one time step; returns the new field (state is kept
  /// internally as well).
  const ThermalField& step();

  /// Advance `n` steps; returns the final field.
  const ThermalField& advance(std::size_t n);

  /// Scale all injected power uniformly (activity throttling); takes effect
  /// on the next step. Composes with set_power: the scale applies to the
  /// current injected-power vector.
  void set_power_scale(double scale);

  /// Replace the injected power per cell [W] (size must match the mesh).
  /// Rhs-only, so phase changes cost nothing beyond the copy — the timeline
  /// engine swaps power vectors between schedule phases without touching
  /// the stepping matrix.
  void set_power(const math::Vector& power);

  /// Injected power per cell currently applied (before power_scale).
  const math::Vector& power() const { return power_; }

  /// Change the step size; takes effect on the next step. Rebuilds the
  /// stepping matrix C/dt + A (the only dt-dependent state) — the one
  /// genuinely expensive part of a dt change, so adaptive stepping calls
  /// this rarely (geometric growth) and never per step. Counted in
  /// stats().reassemblies. The state, time, power and rhs split are
  /// untouched; a no-op when `dt` already is the current step.
  void set_time_step(double dt);
  double time_step() const { return options_.time_step; }

  /// Restore the simulation clock (checkpoint resume): the next step ends
  /// at `time + time_step()`. Must be non-negative and finite.
  void set_time(double time);

  double time() const { return time_; }
  const ThermalField& state() const { return *field_; }

  /// CG result of the most recent step() (default-constructed before the
  /// first step).
  const math::SolverResult& last_solve() const { return last_solve_; }

  /// Cumulative stepping statistics since construction.
  const TransientStats& stats() const { return stats_; }

  /// The assembled steady-state system (operator A, rhs, capacitance) this
  /// solver steps. Read-only; the timeline engine reuses it for the steady
  /// settle reference instead of assembling the same scene twice.
  const DiscreteSystem& system() const { return system_; }

 private:
  void refresh_field();
  /// Rebuild C/dt + A and the preconditioner cached with it for the current
  /// time step.
  void rebuild_stepping();
  /// The operator step() iterates on (CSR or stencil form per options).
  const math::LinearOperator& stepping_operator() const;

  std::shared_ptr<const mesh::RectilinearMesh> mesh_;
  TransientOptions options_;
  DiscreteSystem system_;          ///< steady-state operator A and rhs q
  math::CsrMatrix stepping_matrix_;  ///< C/dt + A (kCsr path)
  std::optional<math::StencilOperator7> stencil_a_;        ///< A (kStencil path)
  std::optional<math::StencilOperator7> stepping_stencil_;  ///< C/dt + A (kStencil path)
  /// Cached with the stepping operator and rebuilt only by set_time_step —
  /// never per solve (see TransientStats::preconditioner_builds).
  std::unique_ptr<math::Preconditioner> precond_;
  math::Vector power_;             ///< injected power per cell [W]
  math::Vector bc_rhs_;            ///< boundary wall terms of the rhs
  math::Vector state_;
  std::optional<ThermalField> field_;  ///< mirrors state_ (state() is a cheap ref)
  math::SolverResult last_solve_;
  TransientStats stats_;
  double power_scale_ = 1.0;
  double time_ = 0.0;
};

}  // namespace photherm::thermal
