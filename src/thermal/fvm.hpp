/// \file fvm.hpp
/// \brief Finite-volume heat-conduction solver (the IcTherm substitute,
/// paper Sec. IV-B). Assembles the 7-point conduction operator on a
/// rectilinear mesh with harmonic-mean face conductances and solves the
/// steady-state system with preconditioned CG.
#pragma once

#include <memory>

#include "math/csr_matrix.hpp"
#include "math/solvers.hpp"
#include "math/stencil_operator.hpp"
#include "mesh/mesh.hpp"
#include "thermal/bc.hpp"
#include "thermal/thermal_map.hpp"

namespace photherm::thermal {

/// Discrete conduction problem: A T = b with per-cell heat capacitance
/// (C = rho * cp * V) for transient stepping.
struct DiscreteSystem {
  math::CsrMatrix matrix;
  math::Vector rhs;
  math::Vector capacitance;  ///< [J/K] per cell
};

/// The same discrete problem with the operator in matrix-free 7-point
/// stencil form (see stencil_operator.hpp): identical coefficients, no CSR
/// indirection in the SpMV.
struct StencilSystem {
  math::StencilOperator7 op;
  math::Vector rhs;
  math::Vector capacitance;  ///< [J/K] per cell
};

/// Assemble the steady-state conduction system for `mesh` under `bcs`.
/// Face conductance between two cells is the series combination of the
/// half-cell resistances: G = A / (d1/(2 k1) + d2/(2 k2)).
/// `cell_conductivity` (optional) overrides the material conductivity per
/// cell — used by the nonlinear solver for temperature-dependent k(T).
DiscreteSystem assemble(const mesh::RectilinearMesh& mesh, const BoundarySet& bcs,
                        const math::Vector* cell_conductivity = nullptr);

/// Assemble the same system straight into stencil form. Runs the identical
/// face loop as assemble() (one shared implementation), so the operator
/// matches the CSR one coefficient for coefficient; only the floating-point
/// summation order of coincident contributions may differ (CsrBuilder sums
/// duplicates in unspecified order), which keeps the two within a few ULP.
StencilSystem assemble_stencil(const mesh::RectilinearMesh& mesh, const BoundarySet& bcs,
                               const math::Vector* cell_conductivity = nullptr);

/// Which operator representation the solvers iterate on.
enum class OperatorKind {
  kCsr,      ///< explicit CSR sparsity; supports every preconditioner
  kStencil,  ///< matrix-free 7-point stencil; identity/jacobi/chebyshev only
};

const char* to_string(OperatorKind kind);

struct SteadyStateOptions {
  math::SolverOptions solver;
  OperatorKind operator_kind = OperatorKind::kCsr;
  SteadyStateOptions() {
    solver.rel_tolerance = 1e-10;
    // CG tracks a recursive residual; after many iterations (and across the
    // warm-started Picard / two-level restarts) the true ||b - A x|| can sit
    // slightly above the iteration's exit criterion. Accept up to 10x the
    // (already very tight) tolerance explicitly rather than failing solves
    // whose fields are converged far beyond the physics' needs.
    solver.convergence_slack = 10.0;
  }
};

/// Solve the steady-state problem. Throws SolverError if CG fails (an
/// all-adiabatic boundary set gives a singular system and is reported as a
/// SpecError before solving).
ThermalField solve_steady_state(std::shared_ptr<const mesh::RectilinearMesh> mesh,
                                const BoundarySet& bcs, const SteadyStateOptions& options = {});

/// Convenience overload taking the mesh by value.
ThermalField solve_steady_state(mesh::RectilinearMesh mesh, const BoundarySet& bcs,
                                const SteadyStateOptions& options = {});

/// Total heat leaving the domain through boundary faces for a given field
/// [W]. At steady state this equals the injected power (energy balance);
/// the validation tests assert it.
double boundary_heat_flow(const ThermalField& field, const BoundarySet& bcs);

struct NonlinearOptions {
  SteadyStateOptions linear;
  std::size_t max_picard_iterations = 30;
  double temperature_tolerance = 1e-4;  ///< max |dT| between iterations [degC]
};

/// Steady state with temperature-dependent conductivities (materials with
/// a non-zero `conductivity_exponent`, e.g. silicon ~T^-1.3): Picard
/// iteration — evaluate k at the current field, reassemble, resolve, until
/// the field stops moving. Falls back to a single linear solve when every
/// material is temperature-independent.
ThermalField solve_steady_state_nonlinear(std::shared_ptr<const mesh::RectilinearMesh> mesh,
                                          const BoundarySet& bcs,
                                          const NonlinearOptions& options = {});

}  // namespace photherm::thermal
