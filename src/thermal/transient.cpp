#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace photherm::thermal {

TransientStats operator+(const TransientStats& a, const TransientStats& b) {
  TransientStats sum;
  sum.steps = a.steps + b.steps;
  sum.total_cg_iterations = a.total_cg_iterations + b.total_cg_iterations;
  sum.max_cg_iterations = std::max(a.max_cg_iterations, b.max_cg_iterations);
  sum.reassemblies = a.reassemblies + b.reassemblies;
  sum.preconditioner_builds = a.preconditioner_builds + b.preconditioner_builds;
  return sum;
}

namespace {
math::CsrMatrix add_capacitance(const math::CsrMatrix& a, const math::Vector& capacitance,
                                double dt) {
  math::CsrBuilder builder(a.rows(), a.cols());
  builder.reserve(a.nnz() + a.rows());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      builder.add(r, col_idx[k], values[k]);
    }
    builder.add(r, r, capacitance[r] / dt);
  }
  return builder.build();
}
}  // namespace

TransientSolver::TransientSolver(std::shared_ptr<const mesh::RectilinearMesh> mesh,
                                 const BoundarySet& bcs, const TransientOptions& options)
    : mesh_(std::move(mesh)), options_(options) {
  PH_REQUIRE(mesh_ != nullptr, "TransientSolver: null mesh");
  PH_REQUIRE(options_.time_step > 0.0, "time step must be positive");
  // The CSR system is assembled on both paths: system() is the public
  // steady-reference API and its rhs/capacitance drive the stepping maths.
  system_ = assemble(*mesh_, bcs);
  if (options_.operator_kind == OperatorKind::kStencil) {
    stencil_a_.emplace(assemble_stencil(*mesh_, bcs).op);
  }
  rebuild_stepping();
  state_.assign(mesh_->cell_count(), 0.0);
  // Separate injected power from boundary wall terms so set_power_scale /
  // set_power throttle only the heat sources, not the ambient coupling.
  power_.resize(mesh_->cell_count());
  bc_rhs_.resize(mesh_->cell_count());
  for (std::size_t i = 0; i < mesh_->cell_count(); ++i) {
    power_[i] = mesh_->power(i);
    bc_rhs_[i] = system_.rhs[i] - power_[i];
  }
  refresh_field();
}

void TransientSolver::set_uniform_state(double t_celsius) {
  state_.assign(mesh_->cell_count(), t_celsius);
  refresh_field();
}

void TransientSolver::set_state(const ThermalField& field) {
  PH_REQUIRE(field.temperatures().size() == mesh_->cell_count(),
             "set_state: field does not match the mesh");
  state_ = field.temperatures();
  refresh_field();
}

const ThermalField& TransientSolver::step() {
  const std::size_t n = mesh_->cell_count();
  math::Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = system_.capacitance[i] / options_.time_step * state_[i] + bc_rhs_[i] +
             power_scale_ * power_[i];
  }
  if (options_.warm_start) {
    // state_ already has the system size, so CG keeps it as the initial
    // guess (solvers.hpp warm-start contract) — the previous step's field.
    last_solve_ =
        math::conjugate_gradient(stepping_operator(), rhs, state_, *precond_, options_.solver);
  } else {
    math::Vector x;  // empty -> CG starts from the zero vector
    last_solve_ =
        math::conjugate_gradient(stepping_operator(), rhs, x, *precond_, options_.solver);
    state_ = std::move(x);
  }
  stats_.steps += 1;
  stats_.total_cg_iterations += last_solve_.iterations;
  stats_.max_cg_iterations = std::max(stats_.max_cg_iterations, last_solve_.iterations);
  telemetry::count("transient.steps");
  time_ += options_.time_step;
  refresh_field();
  return *field_;
}

const ThermalField& TransientSolver::advance(std::size_t n) {
  PH_REQUIRE(n >= 1, "advance requires at least one step");
  for (std::size_t i = 0; i + 1 < n; ++i) {
    step();
  }
  return step();
}

void TransientSolver::set_time_step(double dt) {
  PH_REQUIRE(dt > 0.0 && std::isfinite(dt), "time step must be positive and finite");
  if (dt == options_.time_step) {
    return;
  }
  options_.time_step = dt;
  {
    telemetry::Span span("transient.reassemble");
    rebuild_stepping();
  }
  stats_.reassemblies += 1;
  stats_.preconditioner_builds += 1;
  telemetry::count("transient.reassemblies");
  telemetry::count("transient.preconditioner_builds");
}

void TransientSolver::rebuild_stepping() {
  if (options_.operator_kind == OperatorKind::kStencil) {
    // Diagonal-only shift: copy A's coefficient streams and add C/dt — no
    // triplet sort, which is what makes adaptive-dt rebuilds cheap here.
    math::Vector shift = system_.capacitance;
    for (std::size_t i = 0; i < shift.size(); ++i) {
      shift[i] /= options_.time_step;
    }
    stepping_stencil_.emplace(*stencil_a_);
    stepping_stencil_->add_to_diagonal(shift);
  } else {
    stepping_matrix_ = add_capacitance(system_.matrix, system_.capacitance, options_.time_step);
  }
  precond_ = math::make_preconditioner(options_.solver.preconditioner, stepping_operator(),
                                       options_.solver.chebyshev);
}

const math::LinearOperator& TransientSolver::stepping_operator() const {
  if (stepping_stencil_.has_value()) {
    return *stepping_stencil_;
  }
  return stepping_matrix_;
}

void TransientSolver::set_time(double time) {
  PH_REQUIRE(time >= 0.0 && std::isfinite(time), "time must be non-negative and finite");
  time_ = time;
}

void TransientSolver::set_power_scale(double scale) {
  PH_REQUIRE(scale >= 0.0, "power scale must be non-negative");
  power_scale_ = scale;
}

void TransientSolver::set_power(const math::Vector& power) {
  PH_REQUIRE(power.size() == mesh_->cell_count(),
             "set_power: power vector does not match the mesh");
  power_ = power;
}

void TransientSolver::refresh_field() { field_.emplace(mesh_, state_); }

}  // namespace photherm::thermal
