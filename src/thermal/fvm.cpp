#include "thermal/fvm.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::thermal {

using geometry::Vec3;
using mesh::RectilinearMesh;

namespace {

/// Conductance of the boundary half-cell path plus (for convection) the
/// film resistance. `d` is the full cell width normal to the face.
double boundary_conductance(const FaceBc& bc, double area, double d, double k) {
  switch (bc.kind) {
    case BcKind::kAdiabatic:
      return 0.0;
    case BcKind::kConvection:
      PH_REQUIRE(bc.h > 0.0, "convection BC requires h > 0");
      return area / (d / (2.0 * k) + 1.0 / bc.h);
    case BcKind::kDirichlet:
    case BcKind::kDirichletField:
      return area / (d / (2.0 * k));
  }
  return 0.0;
}

double boundary_wall_temperature(const FaceBc& bc, const Vec3& face_center) {
  switch (bc.kind) {
    case BcKind::kAdiabatic:
      return 0.0;
    case BcKind::kConvection:
      return bc.t_ambient;
    case BcKind::kDirichlet:
      return bc.t_wall;
    case BcKind::kDirichletField:
      PH_REQUIRE(static_cast<bool>(bc.wall_field), "DirichletField BC without a field callback");
      return bc.wall_field(face_center);
  }
  return 0.0;
}

/// Visits every boundary cell of `face` and reports its index, the face
/// area, the cell width normal to the face and the face centre.
template <typename Fn>
void for_each_boundary_cell(const RectilinearMesh& m, Face face, Fn&& fn) {
  const auto& gx = m.x();
  const auto& gy = m.y();
  const auto& gz = m.z();
  const int f = static_cast<int>(face);
  const int axis = f / 2;
  const bool at_max = (f % 2) == 1;

  auto visit = [&](std::size_t ix, std::size_t iy, std::size_t iz) {
    const std::size_t cell = m.index(ix, iy, iz);
    double area = 0.0;
    double width = 0.0;
    Vec3 c{gx.cell_center(ix), gy.cell_center(iy), gz.cell_center(iz)};
    switch (axis) {
      case 0:
        area = gy.cell_width(iy) * gz.cell_width(iz);
        width = gx.cell_width(ix);
        c.x = at_max ? gx.hi() : gx.lo();
        break;
      case 1:
        area = gx.cell_width(ix) * gz.cell_width(iz);
        width = gy.cell_width(iy);
        c.y = at_max ? gy.hi() : gy.lo();
        break;
      default:
        area = gx.cell_width(ix) * gy.cell_width(iy);
        width = gz.cell_width(iz);
        c.z = at_max ? gz.hi() : gz.lo();
        break;
    }
    fn(cell, area, width, c);
  };

  const std::size_t nx = m.nx();
  const std::size_t ny = m.ny();
  const std::size_t nz = m.nz();
  if (axis == 0) {
    const std::size_t ix = at_max ? nx - 1 : 0;
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        visit(ix, iy, iz);
      }
    }
  } else if (axis == 1) {
    const std::size_t iy = at_max ? ny - 1 : 0;
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        visit(ix, iy, iz);
      }
    }
  } else {
    const std::size_t iz = at_max ? nz - 1 : 0;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        visit(ix, iy, iz);
      }
    }
  }
}

bool has_fixing_bc(const BoundarySet& bcs) {
  for (const FaceBc& bc : bcs.faces) {
    if (bc.kind != BcKind::kAdiabatic) {
      return true;
    }
  }
  return false;
}

/// One implementation of the FVM face loop, shared by the CSR and stencil
/// assemblies so the two operators can never drift apart. The emitter
/// receives every internal face once (`pair(cell, nb, axis, g)` with the
/// neighbour toward +axis) and every non-adiabatic boundary face
/// (`boundary(cell, g)`); rhs and capacitance are filled here.
template <typename Emitter>
void assemble_core(const RectilinearMesh& m, const BoundarySet& bcs,
                   const math::Vector* cell_conductivity, math::Vector& rhs,
                   math::Vector& capacitance, Emitter&& emit) {
  PH_REQUIRE(has_fixing_bc(bcs),
             "all-adiabatic boundary set: the steady-state problem is singular");
  PH_REQUIRE(cell_conductivity == nullptr || cell_conductivity->size() == m.cell_count(),
             "conductivity override must have one entry per cell");

  const std::size_t n = m.cell_count();
  const std::size_t nx = m.nx();
  const std::size_t ny = m.ny();
  const std::size_t nz = m.nz();
  const auto& lib = m.materials_library();

  rhs.assign(n, 0.0);
  capacitance.assign(n, 0.0);

  auto conductivity = [&](std::size_t cell) {
    return cell_conductivity != nullptr ? (*cell_conductivity)[cell]
                                        : lib.get(m.material(cell)).conductivity;
  };

  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t cell = m.index(ix, iy, iz);
        const double dx = m.x().cell_width(ix);
        const double dy = m.y().cell_width(iy);
        const double dz = m.z().cell_width(iz);
        const double k1 = conductivity(cell);

        rhs[cell] += m.power(cell);
        const auto& mat = lib.get(m.material(cell));
        capacitance[cell] = mat.density * mat.specific_heat * dx * dy * dz;

        // Internal faces toward +x, +y, +z (each pair handled once).
        struct Neighbour {
          bool valid;
          std::size_t cell;
          double d1, d2, area;
        };
        const Neighbour neighbours[3] = {
            {ix + 1 < nx, ix + 1 < nx ? m.index(ix + 1, iy, iz) : 0, dx,
             ix + 1 < nx ? m.x().cell_width(ix + 1) : 0.0, dy * dz},
            {iy + 1 < ny, iy + 1 < ny ? m.index(ix, iy + 1, iz) : 0, dy,
             iy + 1 < ny ? m.y().cell_width(iy + 1) : 0.0, dx * dz},
            {iz + 1 < nz, iz + 1 < nz ? m.index(ix, iy, iz + 1) : 0, dz,
             iz + 1 < nz ? m.z().cell_width(iz + 1) : 0.0, dx * dy},
        };
        for (int axis = 0; axis < 3; ++axis) {
          const Neighbour& nb = neighbours[axis];
          if (!nb.valid) {
            continue;
          }
          const double k2 = conductivity(nb.cell);
          const double g = nb.area / (nb.d1 / (2.0 * k1) + nb.d2 / (2.0 * k2));
          emit.pair(cell, nb.cell, axis, g);
        }
      }
    }
  }

  // Boundary faces.
  for (int f = 0; f < 6; ++f) {
    const FaceBc& bc = bcs.faces[f];
    if (bc.kind == BcKind::kAdiabatic) {
      continue;
    }
    for_each_boundary_cell(m, static_cast<Face>(f),
                           [&](std::size_t cell, double area, double width, const Vec3& center) {
                             const double k = conductivity(cell);
                             const double g = boundary_conductance(bc, area, width, k);
                             emit.boundary(cell, g);
                             rhs[cell] += g * boundary_wall_temperature(bc, center);
                           });
  }
}

}  // namespace

DiscreteSystem assemble(const RectilinearMesh& m, const BoundarySet& bcs,
                        const math::Vector* cell_conductivity) {
  const std::size_t n = m.cell_count();
  struct CsrEmitter {
    math::CsrBuilder builder;
    void pair(std::size_t cell, std::size_t nb, int /*axis*/, double g) {
      builder.add(cell, cell, g);
      builder.add(nb, nb, g);
      builder.add(cell, nb, -g);
      builder.add(nb, cell, -g);
    }
    void boundary(std::size_t cell, double g) { builder.add(cell, cell, g); }
  } emit{math::CsrBuilder(n, n)};
  emit.builder.reserve(7 * n);
  math::Vector rhs;
  math::Vector capacitance;
  assemble_core(m, bcs, cell_conductivity, rhs, capacitance, emit);
  return DiscreteSystem{emit.builder.build(), std::move(rhs), std::move(capacitance)};
}

StencilSystem assemble_stencil(const RectilinearMesh& m, const BoundarySet& bcs,
                               const math::Vector* cell_conductivity) {
  struct StencilEmitter {
    math::StencilOperator7 op;
    void pair(std::size_t cell, std::size_t nb, int axis, double g) {
      op.diag()[cell] += g;
      op.diag()[nb] += g;
      // `nb` is the +axis neighbour of `cell`.
      switch (axis) {
        case 0:
          op.east()[cell] = -g;
          op.west()[nb] = -g;
          break;
        case 1:
          op.north()[cell] = -g;
          op.south()[nb] = -g;
          break;
        default:
          op.up()[cell] = -g;
          op.down()[nb] = -g;
          break;
      }
    }
    void boundary(std::size_t cell, double g) { op.diag()[cell] += g; }
  } emit{math::StencilOperator7(m.nx(), m.ny(), m.nz())};
  math::Vector rhs;
  math::Vector capacitance;
  assemble_core(m, bcs, cell_conductivity, rhs, capacitance, emit);
  return StencilSystem{std::move(emit.op), std::move(rhs), std::move(capacitance)};
}

const char* to_string(OperatorKind kind) {
  return kind == OperatorKind::kStencil ? "stencil" : "csr";
}

namespace {

/// Steady solve on whichever operator representation the options ask for.
/// The warm-start contract of conjugate_gradient applies to `t` unchanged.
math::SolverResult steady_solve(const RectilinearMesh& m, const BoundarySet& bcs,
                                const math::Vector* cell_conductivity,
                                const SteadyStateOptions& options, math::Vector& t) {
  if (options.operator_kind == OperatorKind::kStencil) {
    StencilSystem system = assemble_stencil(m, bcs, cell_conductivity);
    return math::conjugate_gradient(system.op, system.rhs, t, options.solver);
  }
  DiscreteSystem system = assemble(m, bcs, cell_conductivity);
  return math::conjugate_gradient(system.matrix, system.rhs, t, options.solver);
}

}  // namespace

ThermalField solve_steady_state(std::shared_ptr<const RectilinearMesh> mesh,
                                const BoundarySet& bcs, const SteadyStateOptions& options) {
  PH_REQUIRE(mesh != nullptr, "solve_steady_state: null mesh");
  math::Vector t(mesh->cell_count(), 0.0);
  const auto result = steady_solve(*mesh, bcs, nullptr, options, t);
  PH_LOG_DEBUG << "steady-state solve: " << math::to_string(result);
  return ThermalField(std::move(mesh), std::move(t));
}

ThermalField solve_steady_state(RectilinearMesh mesh, const BoundarySet& bcs,
                                const SteadyStateOptions& options) {
  return solve_steady_state(std::make_shared<const RectilinearMesh>(std::move(mesh)), bcs,
                            options);
}

ThermalField solve_steady_state_nonlinear(std::shared_ptr<const RectilinearMesh> mesh,
                                          const BoundarySet& bcs,
                                          const NonlinearOptions& options) {
  PH_REQUIRE(mesh != nullptr, "solve_steady_state_nonlinear: null mesh");
  const RectilinearMesh& m = *mesh;
  const auto& lib = m.materials_library();

  bool any_nonlinear = false;
  for (std::size_t cell = 0; cell < m.cell_count(); ++cell) {
    if (lib.get(m.material(cell)).conductivity_exponent != 0.0) {
      any_nonlinear = true;
      break;
    }
  }
  if (!any_nonlinear) {
    return solve_steady_state(std::move(mesh), bcs, options.linear);
  }

  // Picard iteration: k is evaluated at the previous temperature field.
  ThermalField field = solve_steady_state(mesh, bcs, options.linear);
  for (std::size_t iter = 0; iter < options.max_picard_iterations; ++iter) {
    math::Vector k(m.cell_count());
    const auto& t = field.temperatures();
    for (std::size_t cell = 0; cell < m.cell_count(); ++cell) {
      k[cell] = lib.get(m.material(cell)).conductivity_at(t[cell]);
    }
    math::Vector next = t;  // warm start
    steady_solve(m, bcs, &k, options.linear, next);
    double max_change = 0.0;
    for (std::size_t cell = 0; cell < m.cell_count(); ++cell) {
      max_change = std::max(max_change, std::abs(next[cell] - t[cell]));
    }
    field = ThermalField(mesh, std::move(next));
    PH_LOG_DEBUG << "Picard iteration " << iter << ": max dT = " << max_change;
    if (max_change <= options.temperature_tolerance) {
      return field;
    }
  }
  throw SolverError("nonlinear steady state did not converge within the Picard budget");
}

double boundary_heat_flow(const ThermalField& field, const BoundarySet& bcs) {
  const RectilinearMesh& m = field.mesh();
  const auto& lib = m.materials_library();
  const auto& t = field.temperatures();
  double total = 0.0;
  for (int f = 0; f < 6; ++f) {
    const FaceBc& bc = bcs.faces[f];
    if (bc.kind == BcKind::kAdiabatic) {
      continue;
    }
    for_each_boundary_cell(m, static_cast<Face>(f),
                           [&](std::size_t cell, double area, double width, const Vec3& center) {
                             const double k = lib.get(m.material(cell)).conductivity;
                             const double g = boundary_conductance(bc, area, width, k);
                             total += g * (t[cell] - boundary_wall_temperature(bc, center));
                           });
  }
  return total;
}

}  // namespace photherm::thermal
