#include "thermal/two_level.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace photherm::thermal {

using geometry::Box3;
using geometry::Scene;
using geometry::Vec3;

namespace {

/// True when `a` equals `b` within the axis snapping tolerance.
bool near(double a, double b) { return std::abs(a - b) < 1e-9; }

BoundarySet local_boundaries(const BoundarySet& global_bcs, const Box3& global_domain,
                             const Box3& local_domain, const ThermalField& global_field) {
  BoundarySet local;
  auto shell = [&global_field](const Vec3& face_center) {
    return global_field.at(face_center);
  };
  struct FaceGeom {
    Face face;
    double local_coord;
    double global_coord;
  };
  const FaceGeom faces[6] = {
      {Face::kXMin, local_domain.lo.x, global_domain.lo.x},
      {Face::kXMax, local_domain.hi.x, global_domain.hi.x},
      {Face::kYMin, local_domain.lo.y, global_domain.lo.y},
      {Face::kYMax, local_domain.hi.y, global_domain.hi.y},
      {Face::kZMin, local_domain.lo.z, global_domain.lo.z},
      {Face::kZMax, local_domain.hi.z, global_domain.hi.z},
  };
  for (const FaceGeom& fg : faces) {
    if (near(fg.local_coord, fg.global_coord)) {
      local[fg.face] = global_bcs[fg.face];
    } else {
      local[fg.face] = FaceBc::dirichlet_field(shell);
    }
  }
  return local;
}

}  // namespace

ThermalField solve_local_window(const Scene& scene, const BoundarySet& bcs,
                                const ThermalField& global_field, const Box3& local_box,
                                const TwoLevelOptions& options) {
  const Box3 global_domain = scene.bounding_box();
  PH_REQUIRE(global_domain.intersects(local_box), "local box is outside the scene");

  Box3 window = local_box;
  window.lo.x = std::max(global_domain.lo.x, window.lo.x - options.window_margin);
  window.lo.y = std::max(global_domain.lo.y, window.lo.y - options.window_margin);
  window.hi.x = std::min(global_domain.hi.x, window.hi.x + options.window_margin);
  window.hi.y = std::min(global_domain.hi.y, window.hi.y + options.window_margin);
  window.lo.z = std::max(global_domain.lo.z, window.lo.z);
  window.hi.z = std::min(global_domain.hi.z, window.hi.z);

  const BoundarySet local_bcs = local_boundaries(bcs, global_domain, window, global_field);
  auto local_mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, window, options.local_mesh));
  PH_LOG_DEBUG << "two-level local window: " << local_mesh->cell_count() << " cells";
  return solve_steady_state(std::move(local_mesh), local_bcs, options.solver);
}

TwoLevelResult solve_two_level(const Scene& scene, const BoundarySet& bcs, const Box3& local_box,
                               const TwoLevelOptions& options) {
  auto global_mesh = std::make_shared<const mesh::RectilinearMesh>(
      mesh::RectilinearMesh::build(scene, options.global_mesh));
  ThermalField global_field = solve_steady_state(global_mesh, bcs, options.solver);
  ThermalField local_field = solve_local_window(scene, bcs, global_field, local_box, options);
  return TwoLevelResult{std::move(global_field), std::move(local_field)};
}

}  // namespace photherm::thermal
