/// \file bc.hpp
/// \brief Boundary conditions of the thermal problem. The package model
/// uses convection on the heat-sink face (effective h lumps the sink fins
/// and fan), mild convection to the board on the bottom, adiabatic sides.
/// The two-level solver imposes spatially varying Dirichlet shells sampled
/// from the coarse global solution.
#pragma once

#include <array>
#include <functional>

#include "geometry/vec.hpp"

namespace photherm::thermal {

enum class BcKind {
  kAdiabatic,       ///< no heat flux through the face
  kConvection,      ///< Robin: q = h (T_surface - T_ambient)
  kDirichlet,       ///< fixed uniform wall temperature at the face
  kDirichletField,  ///< fixed wall temperature sampled per face centre
};

/// Boundary condition on one domain face.
struct FaceBc {
  BcKind kind = BcKind::kAdiabatic;
  double h = 0.0;          ///< heat transfer coefficient [W/(m^2 K)]
  double t_ambient = 0.0;  ///< [deg C] for convection
  double t_wall = 0.0;     ///< [deg C] for uniform Dirichlet
  std::function<double(const geometry::Vec3&)> wall_field;  ///< for kDirichletField

  static FaceBc adiabatic() { return {}; }
  static FaceBc convection(double h, double t_ambient) {
    FaceBc bc;
    bc.kind = BcKind::kConvection;
    bc.h = h;
    bc.t_ambient = t_ambient;
    return bc;
  }
  static FaceBc dirichlet(double t_wall) {
    FaceBc bc;
    bc.kind = BcKind::kDirichlet;
    bc.t_wall = t_wall;
    return bc;
  }
  static FaceBc dirichlet_field(std::function<double(const geometry::Vec3&)> field) {
    FaceBc bc;
    bc.kind = BcKind::kDirichletField;
    bc.wall_field = std::move(field);
    return bc;
  }
};

/// Domain faces in order: x-, x+, y-, y+, z-, z+.
enum class Face : int { kXMin = 0, kXMax = 1, kYMin = 2, kYMax = 3, kZMin = 4, kZMax = 5 };

struct BoundarySet {
  std::array<FaceBc, 6> faces;

  FaceBc& operator[](Face f) { return faces[static_cast<int>(f)]; }
  const FaceBc& operator[](Face f) const { return faces[static_cast<int>(f)]; }

  /// All-adiabatic set (every physical problem must override at least one
  /// face or the steady-state system is singular; the solver checks).
  static BoundarySet adiabatic() { return {}; }

  /// Typical packaged-chip setup: convection on top (heat sink) and bottom
  /// (board), adiabatic laterals.
  static BoundarySet package(double h_top, double h_bottom, double t_ambient) {
    BoundarySet set;
    set[Face::kZMax] = FaceBc::convection(h_top, t_ambient);
    set[Face::kZMin] = FaceBc::convection(h_bottom, t_ambient);
    return set;
  }
};

}  // namespace photherm::thermal
