/// \file thermal_map.hpp
/// \brief Result of a thermal solve: a temperature per mesh cell with
/// region-reduction queries (the paper's "thermal map" of Fig. 4). The
/// paper's two key metrics are the volume-weighted *average* temperature of
/// a region and the *gradient* temperature (max - min) across regions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geometry/block.hpp"
#include "mesh/mesh.hpp"

namespace photherm::thermal {

class ThermalField {
 public:
  ThermalField(std::shared_ptr<const mesh::RectilinearMesh> mesh,
               std::vector<double> temperatures);

  const mesh::RectilinearMesh& mesh() const { return *mesh_; }
  std::shared_ptr<const mesh::RectilinearMesh> mesh_ptr() const { return mesh_; }
  const std::vector<double>& temperatures() const { return t_; }

  /// Temperature of the cell containing `p` [deg C].
  double at(const geometry::Vec3& p) const;

  /// Volume-weighted average over all cells intersecting `box`.
  double average_in(const geometry::Box3& box) const;

  double min_in(const geometry::Box3& box) const;
  double max_in(const geometry::Box3& box) const;

  /// Paper's "gradient temperature": max - min over `box`.
  double spread_in(const geometry::Box3& box) const;

  /// Gradient across a set of boxes: max over all boxes' averages minus min
  /// (e.g. gradient between the VCSELs and MRs of one ONI).
  double spread_of_averages(const std::vector<geometry::Box3>& boxes) const;

  double global_min() const;
  double global_max() const;

  /// CSV dump of the z-slice closest to height `z`: columns x,y,T.
  std::string slice_csv(double z) const;

 private:
  std::shared_ptr<const mesh::RectilinearMesh> mesh_;
  std::vector<double> t_;
};

}  // namespace photherm::thermal
