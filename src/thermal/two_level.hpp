/// \file two_level.hpp
/// \brief Two-level (global coarse / local fine) steady-state solver.
///
/// The paper meshes ONI regions at 5 um inside a multi-centimetre package —
/// done naively on a tensor grid, the fine ticks propagate across the whole
/// die. Instead we solve the full package at coarse resolution, then re-mesh
/// a window around each ONI at device resolution with Dirichlet shell
/// temperatures sampled from the coarse field. Heat spreading from a ~mW
/// device is local (hundreds of um), so a window a few hundred um beyond
/// the ONI reproduces the fine-grain IcTherm solution.
#pragma once

#include <memory>

#include "thermal/fvm.hpp"

namespace photherm::thermal {

struct TwoLevelOptions {
  mesh::MeshOptions global_mesh;
  mesh::MeshOptions local_mesh;
  SteadyStateOptions solver;
  /// Window margin added around the requested local box on x/y [m].
  double window_margin = 150e-6;
};

struct TwoLevelResult {
  ThermalField global_field;
  ThermalField local_field;
};

/// Solve `scene` globally, then re-solve the sub-box `local_box` (grown by
/// the margin on x/y, clamped to the domain) at fine resolution. Faces of
/// the local domain that coincide with the global domain reuse the global
/// BC; interior cut faces get Dirichlet shells from the global field.
TwoLevelResult solve_two_level(const geometry::Scene& scene, const BoundarySet& bcs,
                               const geometry::Box3& local_box, const TwoLevelOptions& options);

/// Local-refinement step only, reusing an existing global field (lets a
/// sweep share one global solve across many local solves).
ThermalField solve_local_window(const geometry::Scene& scene, const BoundarySet& bcs,
                                const ThermalField& global_field,
                                const geometry::Box3& local_box, const TwoLevelOptions& options);

}  // namespace photherm::thermal
