#include "thermal/thermal_map.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace photherm::thermal {

ThermalField::ThermalField(std::shared_ptr<const mesh::RectilinearMesh> mesh,
                           std::vector<double> temperatures)
    : mesh_(std::move(mesh)), t_(std::move(temperatures)) {
  PH_REQUIRE(mesh_ != nullptr, "thermal field requires a mesh");
  PH_REQUIRE(t_.size() == mesh_->cell_count(), "temperature vector size must match the mesh");
}

double ThermalField::at(const geometry::Vec3& p) const { return t_[mesh_->cell_at(p)]; }

double ThermalField::average_in(const geometry::Box3& box) const {
  const auto cells = mesh_->cells_in(box);
  PH_REQUIRE(!cells.empty(), "average_in: box does not overlap the mesh");
  double num = 0.0;
  double den = 0.0;
  const std::size_t nx = mesh_->nx();
  const std::size_t ny = mesh_->ny();
  for (std::size_t cell : cells) {
    const std::size_t ix = cell % nx;
    const std::size_t iy = (cell / nx) % ny;
    const std::size_t iz = cell / (nx * ny);
    // Weight by the portion of the cell inside the query box so that small
    // device regions are not polluted by neighbouring bulk cells.
    const double w = box.overlap_volume(mesh_->cell_box(ix, iy, iz));
    num += t_[cell] * w;
    den += w;
  }
  PH_REQUIRE(den > 0.0, "average_in: zero overlap volume");
  return num / den;
}

double ThermalField::min_in(const geometry::Box3& box) const {
  const auto cells = mesh_->cells_in(box);
  PH_REQUIRE(!cells.empty(), "min_in: box does not overlap the mesh");
  double m = t_[cells.front()];
  for (std::size_t cell : cells) {
    m = std::min(m, t_[cell]);
  }
  return m;
}

double ThermalField::max_in(const geometry::Box3& box) const {
  const auto cells = mesh_->cells_in(box);
  PH_REQUIRE(!cells.empty(), "max_in: box does not overlap the mesh");
  double m = t_[cells.front()];
  for (std::size_t cell : cells) {
    m = std::max(m, t_[cell]);
  }
  return m;
}

double ThermalField::spread_in(const geometry::Box3& box) const {
  return max_in(box) - min_in(box);
}

double ThermalField::spread_of_averages(const std::vector<geometry::Box3>& boxes) const {
  PH_REQUIRE(!boxes.empty(), "spread_of_averages: no boxes");
  double lo = average_in(boxes.front());
  double hi = lo;
  for (const auto& box : boxes) {
    const double avg = average_in(box);
    lo = std::min(lo, avg);
    hi = std::max(hi, avg);
  }
  return hi - lo;
}

double ThermalField::global_min() const { return min_value(t_); }

double ThermalField::global_max() const { return max_value(t_); }

std::string ThermalField::slice_csv(double z) const {
  const std::size_t iz = mesh_->z().find_cell(z);
  std::ostringstream os;
  os << "x,y,temperature\n";
  for (std::size_t iy = 0; iy < mesh_->ny(); ++iy) {
    for (std::size_t ix = 0; ix < mesh_->nx(); ++ix) {
      os << mesh_->x().cell_center(ix) << "," << mesh_->y().cell_center(iy) << ","
         << t_[mesh_->index(ix, iy, iz)] << "\n";
    }
  }
  return os.str();
}

}  // namespace photherm::thermal
