/// \file vec.hpp
/// \brief 3-D vectors and axis-aligned boxes. The entire system
/// specification (package, die, devices) is a set of axis-aligned
/// rectangular blocks, matching the paper's Sec. IV-B modelling.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace photherm::geometry {

enum class Axis : int { kX = 0, kY = 1, kZ = 2 };

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  double operator[](int axis) const {
    switch (axis) {
      case 0:
        return x;
      case 1:
        return y;
      default:
        return z;
    }
  }

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  bool operator==(const Vec3& o) const = default;
};

inline double distance(const Vec3& a, const Vec3& b) {
  const Vec3 d = a - b;
  return std::sqrt(d.x * d.x + d.y * d.y + d.z * d.z);
}

/// Axis-aligned box, [lo, hi] per axis. Degenerate (zero-thickness) boxes
/// are rejected on construction; use Box3::make for checked construction.
struct Box3 {
  Vec3 lo;
  Vec3 hi;

  static Box3 make(const Vec3& lo, const Vec3& hi) {
    PH_REQUIRE(lo.x < hi.x && lo.y < hi.y && lo.z < hi.z,
               "box must have strictly positive extent on every axis");
    return Box3{lo, hi};
  }

  /// Box from a corner and positive sizes.
  static Box3 from_size(const Vec3& corner, const Vec3& size) {
    return make(corner, corner + size);
  }

  double extent(int axis) const { return hi[axis] - lo[axis]; }
  double volume() const { return extent(0) * extent(1) * extent(2); }
  Vec3 center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2, (lo.z + hi.z) / 2}; }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z && p.z <= hi.z;
  }

  /// Strict interior containment (used to detect block overlap).
  bool contains_interior(const Vec3& p) const {
    return p.x > lo.x && p.x < hi.x && p.y > lo.y && p.y < hi.y && p.z > lo.z && p.z < hi.z;
  }

  bool intersects(const Box3& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y && lo.z < o.hi.z &&
           o.lo.z < hi.z;
  }

  /// Intersection volume with another box (0 when disjoint).
  double overlap_volume(const Box3& o) const {
    const double dx = std::min(hi.x, o.hi.x) - std::max(lo.x, o.lo.x);
    const double dy = std::min(hi.y, o.hi.y) - std::max(lo.y, o.lo.y);
    const double dz = std::min(hi.z, o.hi.z) - std::max(lo.z, o.lo.z);
    if (dx <= 0.0 || dy <= 0.0 || dz <= 0.0) {
      return 0.0;
    }
    return dx * dy * dz;
  }

  /// Smallest box containing both.
  Box3 union_with(const Box3& o) const {
    return Box3{{std::min(lo.x, o.lo.x), std::min(lo.y, o.lo.y), std::min(lo.z, o.lo.z)},
                {std::max(hi.x, o.hi.x), std::max(hi.y, o.hi.y), std::max(hi.z, o.hi.z)}};
  }

  bool operator==(const Box3& o) const = default;
};

}  // namespace photherm::geometry
